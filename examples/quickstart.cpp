/**
 * @file
 * Quickstart: run the LPO closed loop on one suboptimal function.
 *
 *   $ ./quickstart
 *
 * Parses an IR function, asks the (simulated) LLM for an optimal
 * version, syntax-checks it with the opt driver, gates it on
 * interestingness, proves refinement with the translation validator,
 * and prints the verified missed optimization.
 */
#include <cstdio>

#include "core/pipeline.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "llm/mock_model.h"

int
main()
{
    using namespace lpo;

    // A missed optimization: (x & y) + (x | y) is just x + y.
    const char *suboptimal =
        "define i32 @src(i32 %x, i32 %y) {\n"
        "  %a = and i32 %x, %y\n"
        "  %o = or i32 %x, %y\n"
        "  %r = add i32 %a, %o\n"
        "  ret i32 %r\n"
        "}\n";

    ir::Context context;
    auto function = ir::parseFunction(context, suboptimal);
    if (!function) {
        std::fprintf(stderr, "parse error: %s\n",
                     function.error().toString().c_str());
        return 1;
    }

    // Pick a model from Table 1 and run the pipeline.
    llm::MockModel model(llm::modelByName("Gemini2.0T"),
                         /*session_seed=*/2024);
    core::Pipeline pipeline(model);
    core::CaseOutcome outcome = pipeline.optimizeSequence(**function);

    std::printf("Input function:\n%s\n",
                ir::printFunction(**function).c_str());
    std::printf("Pipeline outcome: %s (attempts: %u, verifier: %s)\n\n",
                core::caseStatusName(outcome.status), outcome.attempts,
                outcome.verifier_backend.c_str());
    if (outcome.found()) {
        std::printf("Verified optimization found:\n%s\n",
                    outcome.candidate_text.c_str());
        return 0;
    }
    std::printf("No optimization found. Last feedback:\n%s\n",
                outcome.last_feedback.c_str());
    return 1;
}
