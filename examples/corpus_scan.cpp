/**
 * @file
 * RQ2 in miniature: scan a synthetic multi-project corpus for missed
 * optimizations, exactly as the paper's eleven-month run scanned
 * llvm-opt-benchmark.
 *
 * Generates per-project IR files, extracts and deduplicates dependent
 * sequences, runs the LPO loop over each, and prints every verified
 * finding with its project of origin and pipeline statistics.
 */
#include <cstdio>
#include <map>

#include "core/pipeline.h"
#include "corpus/generator.h"
#include "extract/extractor.h"
#include "ir/parser.h"
#include "llm/mock_model.h"

int
main(int argc, char **argv)
{
    using namespace lpo;

    unsigned files_per_project = argc > 1 ? std::atoi(argv[1]) : 3;

    ir::Context context;
    corpus::CorpusOptions options;
    options.files_per_project = files_per_project;
    options.functions_per_file = 5;
    options.pattern_density = 0.35;
    corpus::CorpusGenerator generator(context, options);

    extract::Extractor extractor;
    llm::MockModel model(llm::modelByName("Gemini2.0T"), 77);
    core::Pipeline pipeline(model);

    std::map<std::string, unsigned> found_per_project;
    unsigned total_found = 0;
    for (const auto &project : corpus::paperProjects()) {
        for (unsigned f = 0; f < files_per_project; ++f) {
            auto module = generator.generateFile(project, f);
            auto outcomes = pipeline.processModule(*module, extractor,
                                                   f);
            for (const auto &outcome : outcomes) {
                if (!outcome.found())
                    continue;
                ++found_per_project[project.name];
                ++total_found;
                std::printf("[%s] verified missed optimization:\n%s\n",
                            module->name().c_str(),
                            outcome.candidate_text.c_str());
            }
        }
    }

    const auto &xstats = extractor.stats();
    const auto &pstats = pipeline.stats();
    std::printf("=== Scan summary ===\n");
    std::printf("Projects scanned: %zu (%u files each)\n",
                corpus::paperProjects().size(), files_per_project);
    std::printf("Sequences considered: %llu, extracted: %llu, "
                "duplicates removed: %llu, still-optimizable removed: "
                "%llu\n",
                static_cast<unsigned long long>(
                    xstats.sequences_considered),
                static_cast<unsigned long long>(xstats.extracted),
                static_cast<unsigned long long>(
                    xstats.duplicates_skipped),
                static_cast<unsigned long long>(
                    xstats.still_optimizable_skipped));
    std::printf("LLM calls: %llu, verifier calls: %llu, syntax errors "
                "fed back: %llu, incorrect candidates fed back: %llu\n",
                static_cast<unsigned long long>(pstats.llm_calls),
                static_cast<unsigned long long>(pstats.verifier_calls),
                static_cast<unsigned long long>(pstats.syntax_errors),
                static_cast<unsigned long long>(
                    pstats.incorrect_candidates));
    std::printf("Verified findings: %u\n", total_found);
    for (const auto &[project, count] : found_per_project)
        std::printf("  %-10s %u\n", project.c_str(), count);
    return 0;
}
