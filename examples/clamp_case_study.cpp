/**
 * @file
 * The paper's illustrative example (Figures 1 and 3), end to end.
 *
 * Builds the vectorized clamp module of Fig. 1d, extracts dependent
 * instruction sequences from its loop body (step 1), and walks the
 * closed loop: the simulated LLM's first candidate can contain the
 * Fig. 3b syntax error (a bare `smax` opcode); opt's error message is
 * fed back (step 6), and the corrected candidate is verified by the
 * translation validator. Demonstrates exactly the feedback mechanism
 * the paper credits for LPO's advantage over LPO-.
 */
#include <cstdio>

#include "core/pipeline.h"
#include "extract/extractor.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "llm/mock_model.h"
#include "opt/opt_driver.h"

int
main()
{
    using namespace lpo;

    // Fig. 1d, reduced to the vector.body block's computation.
    const char *module_text =
        "define void @clamp(ptr %inp, ptr %out, i64 %n.vec) {\n"
        "entry:\n"
        "  br label %vector.body\n"
        "vector.body:\n"
        "  %i = phi i64 [ 0, %entry ], [ %i.next, %vector.body ]\n"
        "  %p.in = getelementptr inbounds nuw i32, ptr %inp, i64 %i\n"
        "  %p.out = getelementptr inbounds nuw i8, ptr %out, i64 %i\n"
        "  %wide.load = load <4 x i32>, ptr %p.in, align 4\n"
        "  %cmp = icmp slt <4 x i32> %wide.load, zeroinitializer\n"
        "  %umin = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> "
        "%wide.load, <4 x i32> splat (i32 255))\n"
        "  %trunc = trunc nuw <4 x i32> %umin to <4 x i8>\n"
        "  %sel = select <4 x i1> %cmp, <4 x i8> zeroinitializer, "
        "<4 x i8> %trunc\n"
        "  store <4 x i8> %sel, ptr %p.out, align 1\n"
        "  %i.next = add nuw i64 %i, 4\n"
        "  %done = icmp eq i64 %i.next, %n.vec\n"
        "  br i1 %done, label %exit, label %vector.body\n"
        "exit:\n"
        "  ret void\n"
        "}\n";

    ir::Context context;
    auto module = ir::parseModule(context, module_text, "clamp.ll");
    if (!module) {
        std::fprintf(stderr, "parse error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }

    // Step 1: extract dependent instruction sequences. The Fig. 3a
    // wrapped function includes the gep + load feeding the clamp, so
    // opt into memory-touching sequences (the production default
    // keeps extraction inside the SAT-verifiable fragment).
    extract::ExtractorOptions ex_options;
    ex_options.allow_memory = true;
    extract::Extractor extractor(ex_options);
    auto sequences = extractor.extractFromModule(**module);
    std::printf("Extracted %zu unique dependent sequences from "
                "vector.body.\n\n", sequences.size());

    // Step 2-7: the closed loop, with a model profile prone to the
    // Fig. 3b hallucination so the feedback path is exercised.
    llm::ModelProfile profile = llm::modelByName("Gemini2.0T");
    profile.skill = 1.2;             // always spot the pattern
    profile.syntax_error_rate = 1.0; // always hallucinate first
    profile.repair_skill = 1.0;      // always recover from feedback

    for (const auto &seq : sequences) {
        if (seq->instructionCount() < 3)
            continue;
        std::printf("--- Candidate sequence ---\n%s\n",
                    ir::printFunction(*seq).c_str());
        llm::MockModel model(profile, 11);
        core::Pipeline pipeline(model);
        core::CaseOutcome outcome = pipeline.optimizeSequence(*seq);
        std::printf("Outcome: %s after %u attempt(s)\n",
                    core::caseStatusName(outcome.status),
                    outcome.attempts);
        if (outcome.attempts > 1)
            std::printf("(first attempt was rejected; feedback-driven "
                        "retry succeeded — the paper's Fig. 3 loop)\n");
        if (outcome.found())
            std::printf("\nVerified missed optimization:\n%s\n",
                        outcome.candidate_text.c_str());
    }
    return 0;
}
