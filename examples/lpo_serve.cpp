/**
 * @file
 * lpo_serve — the always-on optimization service daemon (see
 * src/serve/server.h and DESIGN.md, "Service layer").
 *
 * Subcommands:
 *   lpo_serve run <spool> [options]   serve requests from the spool
 *   lpo_serve submit <spool> <id> <file.ll>
 *                                     atomically enqueue a request
 *   lpo_serve wait <spool> <id> [--timeout-ms=N]
 *                                     block until the response lands
 *   lpo_serve status <spool>          print the live status snapshot
 *
 * SIGTERM/SIGINT drain the request in flight, flush the store, and
 * exit 0; `kill -9` is recovered on the next start (claimed requests
 * re-queued, store recovered on open).
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/proposer.h"
#include "serve/server.h"
#include "serve/spool.h"

using namespace lpo;

namespace {

serve::Server *g_server = nullptr;

void
onStopSignal(int)
{
    // Async-signal-safe: one relaxed atomic store; the serve loop
    // notices between requests (or between poll slices when idle).
    if (g_server)
        g_server->requestStop();
}

bool
parseUnsigned(const char *text, uint64_t max, uint64_t *out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end || v > max)
        return false;
    *out = v;
    return true;
}

bool
parseRunOptions(int argc, char **argv, int first,
                serve::ServeOptions *out)
{
    for (int i = first; i < argc; ++i) {
        const char *arg = argv[i];
        uint64_t v = 0;
        if (!std::strncmp(arg, "--store=", 8) && arg[8]) {
            out->store_path = arg + 8;
        } else if (!std::strncmp(arg, "--model=", 8) && arg[8]) {
            out->model = arg + 8;
        } else if (!std::strncmp(arg, "--proposer=", 11)) {
            if (!core::parseProposerKind(arg + 11, &out->proposer)) {
                std::fprintf(stderr,
                             "lpo_serve: unknown proposer '%s'\n",
                             arg + 11);
                return false;
            }
        } else if (!std::strncmp(arg, "--threads=", 10) &&
                   parseUnsigned(arg + 10, 4096, &v)) {
            out->threads = static_cast<unsigned>(v);
        } else if (!std::strncmp(arg, "--queue=", 8) &&
                   parseUnsigned(arg + 8, 1u << 20, &v) && v) {
            out->queue_capacity = static_cast<size_t>(v);
        } else if (!std::strncmp(arg, "--step-budget=", 14) &&
                   parseUnsigned(arg + 14, UINT64_MAX, &v)) {
            out->step_budget = v;
        } else if (!std::strncmp(arg, "--retry-after-ms=", 17) &&
                   parseUnsigned(arg + 17, 1u << 30, &v)) {
            out->retry_after_ms = static_cast<unsigned>(v);
        } else if (!std::strncmp(arg, "--fault-retries=", 16) &&
                   parseUnsigned(arg + 16, 100, &v)) {
            out->fault_retry_limit = static_cast<unsigned>(v);
        } else if (!std::strncmp(arg, "--flush-retries=", 16) &&
                   parseUnsigned(arg + 16, 100, &v)) {
            out->flush_retry_limit = static_cast<unsigned>(v);
        } else if (!std::strncmp(arg, "--flush-backoff-ms=", 19) &&
                   parseUnsigned(arg + 19, 1u << 20, &v)) {
            out->flush_backoff_ms = static_cast<unsigned>(v);
        } else if (!std::strncmp(arg, "--compact-interval=", 19) &&
                   parseUnsigned(arg + 19, UINT64_MAX, &v)) {
            out->compact_interval = v;
        } else if (!std::strncmp(arg, "--poll-ms=", 10) &&
                   parseUnsigned(arg + 10, 1u << 20, &v) && v) {
            out->poll_ms = static_cast<unsigned>(v);
        } else if (!std::strncmp(arg, "--max-requests=", 15) &&
                   parseUnsigned(arg + 15, UINT64_MAX, &v)) {
            out->max_requests = v;
        } else if (!std::strcmp(arg, "--once")) {
            out->once = true;
        } else {
            std::fprintf(stderr, "lpo_serve: bad option '%s'\n", arg);
            return false;
        }
    }
    return true;
}

int
cmdRun(int argc, char **argv)
{
    serve::ServeOptions options;
    options.spool_root = argv[2];
    if (!parseRunOptions(argc, argv, 3, &options))
        return 1;

    serve::Server server(std::move(options));
    g_server = &server;
    struct sigaction action = {};
    action.sa_handler = onStopSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    int rc = server.run();
    g_server = nullptr;
    return rc;
}

int
cmdSubmit(const char *spool_root, const char *id, const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "lpo_serve: cannot open '%s'\n", path);
        return 1;
    }
    std::ostringstream bytes;
    bytes << in.rdbuf();

    serve::Spool spool(spool_root);
    std::string error;
    if (!spool.ensureLayout(&error) ||
        !spool.submit(id, bytes.str(), &error)) {
        std::fprintf(stderr, "lpo_serve: submit failed: %s\n",
                     error.c_str());
        return 1;
    }
    return 0;
}

/**
 * Block until a final response meta (status != retry) exists for
 * @p id, then print it. A shed notice (status=retry) is not final —
 * the input is still queued, so keep waiting. Exit 0 for ok/partial,
 * 2 for error, 1 on timeout.
 */
int
cmdWait(const char *spool_root, const char *id, const char *opt)
{
    uint64_t timeout_ms = 60000;
    if (opt) {
        if (std::strncmp(opt, "--timeout-ms=", 13) ||
            !parseUnsigned(opt + 13, 1u << 30, &timeout_ms)) {
            std::fprintf(stderr, "lpo_serve: bad option '%s'\n", opt);
            return 1;
        }
    }

    serve::Spool spool(spool_root);
    std::string meta_path = spool.metaPath(id);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    for (;;) {
        std::ifstream in(meta_path, std::ios::binary);
        if (in) {
            std::ostringstream bytes;
            bytes << in.rdbuf();
            std::string meta = bytes.str();
            if (meta.find("status=retry\n") == std::string::npos) {
                std::fputs(meta.c_str(), stdout);
                return meta.find("status=error\n") != std::string::npos
                           ? 2
                           : 0;
            }
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            std::fprintf(stderr,
                         "lpo_serve: timed out waiting for '%s'\n", id);
            return 1;
        }
        struct timespec ts = {0, 20 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
    }
}

int
cmdStatus(const char *spool_root)
{
    serve::Spool spool(spool_root);
    std::ifstream in(spool.statusPath(), std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "lpo_serve: no status snapshot at %s (server "
                     "never started?)\n",
                     spool.statusPath().c_str());
        return 1;
    }
    std::ostringstream bytes;
    bytes << in.rdbuf();
    std::fputs(bytes.str().c_str(), stdout);
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
        "usage: lpo_serve <command> [args]\n"
        "  run <spool> [options]      serve .ll requests from the\n"
        "                             spool's inbox/ until SIGTERM\n"
        "  submit <spool> <id> <file.ll>\n"
        "                             atomically enqueue a request\n"
        "                             (response arrives at\n"
        "                             outbox/<id>.ll + <id>.meta)\n"
        "  wait <spool> <id> [--timeout-ms=N]\n"
        "                             block until the response lands,\n"
        "                             print its meta (exit 0 ok or\n"
        "                             partial, 2 error, 1 timeout)\n"
        "  status <spool>             print the server's status.json\n"
        "\n"
        "run options:\n"
        "  --store=DIR                shared persistent verify store\n"
        "  --model=NAME               mock model (default Gemini2.0T)\n"
        "  --proposer=llm|egraph|hybrid   (default hybrid)\n"
        "  --threads=N                pipeline worker threads\n"
        "  --queue=N                  admitted requests per scan;\n"
        "                             excess is shed with a\n"
        "                             status=retry meta (default 64)\n"
        "  --step-budget=N            per-request watchdog deadline in\n"
        "                             deterministic step costs; cut\n"
        "                             requests answer status=partial\n"
        "  --retry-after-ms=N         retry hint in shed notices\n"
        "  --fault-retries=N          replays of a request after an\n"
        "                             injected fault (default 3)\n"
        "  --flush-retries=N          store flush retries before\n"
        "                             degrading to memory-only\n"
        "  --flush-backoff-ms=N      base flush retry backoff\n"
        "  --compact-interval=N       snapshot-compact the store every\n"
        "                             N requests (0 = never)\n"
        "  --poll-ms=N                idle inbox scan interval\n"
        "  --max-requests=N           exit after N responses (tests)\n"
        "  --once                     drain the inbox, then exit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const char *cmd = argv[1];
    try {
        if (!std::strcmp(cmd, "run") && argc >= 3)
            return cmdRun(argc, argv);
        if (!std::strcmp(cmd, "submit") && argc == 5)
            return cmdSubmit(argv[2], argv[3], argv[4]);
        if (!std::strcmp(cmd, "wait") && (argc == 4 || argc == 5))
            return cmdWait(argv[2], argv[3], argc == 5 ? argv[4] : nullptr);
        if (!std::strcmp(cmd, "status") && argc == 3)
            return cmdStatus(argv[2]);
        if (!std::strcmp(cmd, "help") || !std::strcmp(cmd, "--help") ||
            !std::strcmp(cmd, "-h")) {
            usage();
            return 0;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lpo_serve: fatal: %s\n", e.what());
        return 1;
    }
    usage();
    return 1;
}
