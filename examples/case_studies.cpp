/**
 * @file
 * The three confirmed case studies of paper §4.3 (Figure 4): missed
 * optimizations LPO finds that neither Souper nor Minotaur detects.
 *
 * Case 1: adjacent-load merging (loads + getelementptr — outside
 *         Souper's fragment entirely).
 * Case 2: a redundant umax clamp (llvm.umax.* is unsupported by
 *         Souper; Minotaur accepts the input but misses the rewrite).
 * Case 3: a NaN-guard select before an ordered compare (Souper has no
 *         floating point; Minotaur crashes on the function).
 */
#include <cstdio>

#include "core/pipeline.h"
#include "corpus/benchmarks.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "llm/mock_model.h"
#include "souper/minotaur.h"
#include "souper/souper.h"

int
main()
{
    using namespace lpo;
    ir::Context context;

    struct Case
    {
        const char *title;
        const char *issue_id;
    };
    const Case cases[] = {
        {"Case 1: consecutive load merge (Fig. 4a/4d)", "167055"},
        {"Case 2: redundant umax clamp (Fig. 4b/4e)", "163115"},
        {"Case 3: NaN-guard select (Fig. 4c/4f)", "139786"},
    };

    for (const Case &cs : cases) {
        const corpus::MissedOptBenchmark *bench =
            corpus::findBenchmark(cs.issue_id);
        std::printf("=== %s ===\n\nsrc:\n%s\n", cs.title,
                    bench->src_text.c_str());

        auto src = ir::parseFunction(context, bench->src_text);

        // LPO (reasoning model).
        llm::MockModel model(llm::modelByName("o4-mini"), 5);
        core::Pipeline pipeline(model);
        core::CaseOutcome outcome = pipeline.optimizeSequence(**src, 3);
        std::printf("LPO: %s\n", core::caseStatusName(outcome.status));
        if (outcome.found())
            std::printf("tgt:\n%s\n", outcome.candidate_text.c_str());

        // Baselines.
        bool souper_hit = false;
        for (unsigned e = 0; e <= 3 && !souper_hit; ++e) {
            souper::SouperOptions opts;
            opts.enum_limit = e;
            auto result = runSouper(**src, opts);
            souper_hit = result.detected;
            if (e == 0 && !result.supported) {
                std::printf("Souper: unsupported instructions (outside "
                            "its fragment)\n");
                break;
            }
        }
        if (souper_hit)
            std::printf("Souper: detected\n");
        else
            std::printf("Souper: not detected\n");

        auto mino = souper::runMinotaur(**src);
        if (mino.crashed)
            std::printf("Minotaur: crashed on this IR function\n");
        else
            std::printf("Minotaur: %s\n",
                        mino.detected ? "detected" : "not detected");
        std::printf("\n");
    }
    return 0;
}
