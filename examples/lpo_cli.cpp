/**
 * @file
 * lpo — command-line driver (the artifact's user-facing tool).
 *
 * Subcommands:
 *   lpo opt <file.ll>              run the InstCombine pipeline
 *   lpo verify <src.ll> <tgt.ll>   refinement-check a function pair
 *   lpo extract <file.ll>          print extracted unique sequences
 *   lpo run <file.ll> [model]      run the LPO loop on every sequence
 *   lpo models                     list the Table 1 model registry
 *
 * Files may contain one function (verify) or a whole module.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/pipeline.h"
#include "extract/extractor.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "llm/mock_model.h"
#include "opt/opt_driver.h"
#include "verify/refine.h"

using namespace lpo;

namespace {

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "lpo: cannot open '%s'\n", path);
        std::exit(1);
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

int
cmdOpt(const char *path)
{
    ir::Context ctx;
    auto module = ir::parseModule(ctx, readFile(path));
    if (!module) {
        std::fprintf(stderr, "error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }
    for (const auto &fn : (*module)->functions()) {
        auto optimized = opt::optimizeFunction(*fn);
        std::printf("%s\n", ir::printFunction(*optimized).c_str());
    }
    return 0;
}

int
cmdVerify(const char *src_path, const char *tgt_path)
{
    ir::Context ctx;
    auto src = ir::parseFunction(ctx, readFile(src_path));
    auto tgt = ir::parseFunction(ctx, readFile(tgt_path));
    if (!src || !tgt) {
        std::fprintf(stderr, "error: %s\n",
                     (!src ? src.error() : tgt.error())
                         .toString().c_str());
        return 1;
    }
    auto verdict = verify::checkRefinement(**src, **tgt);
    if (verdict.correct()) {
        std::printf("Transformation seems to be correct! (%s: %s)\n",
                    verdict.backend.c_str(), verdict.detail.c_str());
        return 0;
    }
    std::printf("%s\n", verdict.feedbackMessage(**src).c_str());
    return 2;
}

int
cmdExtract(const char *path)
{
    ir::Context ctx;
    auto module = ir::parseModule(ctx, readFile(path));
    if (!module) {
        std::fprintf(stderr, "error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }
    extract::Extractor extractor;
    auto sequences = extractor.extractFromModule(**module);
    for (const auto &seq : sequences)
        std::printf("%s\n", ir::printFunction(*seq).c_str());
    const auto &stats = extractor.stats();
    std::fprintf(stderr,
                 "; considered=%llu extracted=%llu duplicates=%llu "
                 "still-optimizable=%llu\n",
                 (unsigned long long)stats.sequences_considered,
                 (unsigned long long)stats.extracted,
                 (unsigned long long)stats.duplicates_skipped,
                 (unsigned long long)stats.still_optimizable_skipped);
    return 0;
}

int
cmdRun(const char *path, const char *model_name)
{
    ir::Context ctx;
    auto module = ir::parseModule(ctx, readFile(path));
    if (!module) {
        std::fprintf(stderr, "error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }
    llm::MockModel model(llm::modelByName(model_name), 1);
    core::Pipeline pipeline(model);
    extract::Extractor extractor;
    unsigned found = 0;
    for (const auto &outcome :
         pipeline.processModule(**module, extractor, 1)) {
        if (!outcome.found())
            continue;
        ++found;
        std::printf("; verified missed optimization "
                    "(%u attempt(s), %s backend)\n%s\n",
                    outcome.attempts, outcome.verifier_backend.c_str(),
                    outcome.candidate_text.c_str());
    }
    const auto &stats = pipeline.stats();
    std::fprintf(stderr,
                 "; cases=%llu found=%u llm-calls=%llu "
                 "syntax-errors=%llu incorrect=%llu\n",
                 (unsigned long long)stats.cases, found,
                 (unsigned long long)stats.llm_calls,
                 (unsigned long long)stats.syntax_errors,
                 (unsigned long long)stats.incorrect_candidates);
    return 0;
}

int
cmdModels()
{
    for (const auto &profile : llm::modelRegistry()) {
        std::printf("%-12s %-40s %s, cut-off %s\n",
                    profile.name.c_str(), profile.version.c_str(),
                    profile.reasoning ? "reasoning" : "base",
                    profile.cutoff.c_str());
    }
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
        "usage: lpo <command> [args]\n"
        "  opt <file.ll>              optimize with the pipeline\n"
        "  verify <src.ll> <tgt.ll>   check refinement (Alive2-style)\n"
        "  extract <file.ll>          extract unique sequences\n"
        "  run <file.ll> [model]      run the LPO loop (default "
        "Gemini2.0T)\n"
        "  models                     list the model registry\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const char *cmd = argv[1];
    if (!std::strcmp(cmd, "opt") && argc == 3)
        return cmdOpt(argv[2]);
    if (!std::strcmp(cmd, "verify") && argc == 4)
        return cmdVerify(argv[2], argv[3]);
    if (!std::strcmp(cmd, "extract") && argc == 3)
        return cmdExtract(argv[2]);
    if (!std::strcmp(cmd, "run") && (argc == 3 || argc == 4))
        return cmdRun(argv[2], argc == 4 ? argv[3] : "Gemini2.0T");
    if (!std::strcmp(cmd, "models"))
        return cmdModels();
    usage();
    return 1;
}
