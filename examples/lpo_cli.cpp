/**
 * @file
 * lpo — command-line driver (the artifact's user-facing tool).
 *
 * Subcommands:
 *   lpo opt <file.ll>              run the InstCombine pipeline
 *   lpo verify <src.ll> <tgt.ll>   refinement-check a function pair
 *   lpo extract <file.ll>          print extracted unique sequences
 *   lpo run <file.ll> [model] [options]
 *                                  run the LPO loop on every sequence
 *   lpo models                     list the Table 1 model registry
 *   lpo store info|verify|compact <dir>
 *                                  inspect / integrity-check / compact
 *                                  a persistent verify store
 *
 * Files may contain one function (verify) or a whole module.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "core/module_opt.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "corpus/generator.h"
#include "extract/extractor.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "llm/mock_model.h"
#include "opt/opt_driver.h"
#include "support/failpoint.h"
#include "support/kvstore.h"
#include "support/telemetry.h"
#include "support/trace.h"
#include "verify/persist.h"
#include "verify/refine.h"

using namespace lpo;

namespace {

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "lpo: cannot open '%s'\n", path);
        std::exit(1);
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

int
cmdOpt(const char *path)
{
    ir::Context ctx;
    auto module = ir::parseModule(ctx, readFile(path));
    if (!module) {
        std::fprintf(stderr, "error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }
    for (const auto &fn : (*module)->functions()) {
        auto optimized = opt::optimizeFunction(*fn);
        std::printf("%s\n", ir::printFunction(*optimized).c_str());
    }
    return 0;
}

int
cmdVerify(const char *src_path, const char *tgt_path)
{
    ir::Context ctx;
    auto src = ir::parseFunction(ctx, readFile(src_path));
    auto tgt = ir::parseFunction(ctx, readFile(tgt_path));
    if (!src || !tgt) {
        std::fprintf(stderr, "error: %s\n",
                     (!src ? src.error() : tgt.error())
                         .toString().c_str());
        return 1;
    }
    auto verdict = verify::checkRefinement(**src, **tgt);
    if (verdict.correct()) {
        std::printf("Transformation seems to be correct! (%s: %s)\n",
                    verdict.backend.c_str(), verdict.detail.c_str());
        return 0;
    }
    std::printf("%s\n", verdict.feedbackMessage(**src).c_str());
    return 2;
}

int
cmdExtract(const char *path)
{
    ir::Context ctx;
    auto module = ir::parseModule(ctx, readFile(path));
    if (!module) {
        std::fprintf(stderr, "error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }
    extract::Extractor extractor;
    auto sequences = extractor.extractFromModule(**module);
    for (const auto &seq : sequences)
        std::printf("%s\n", ir::printFunction(*seq).c_str());
    const auto &stats = extractor.stats();
    std::fprintf(stderr,
                 "; considered=%llu extracted=%llu duplicates=%llu "
                 "still-optimizable=%llu\n",
                 (unsigned long long)stats.sequences_considered,
                 (unsigned long long)stats.extracted,
                 (unsigned long long)stats.duplicates_skipped,
                 (unsigned long long)stats.still_optimizable_skipped);
    return 0;
}

/** `lpo run` knobs parsed from the trailing argument list. */
struct RunOptions
{
    std::string model = "Gemini2.0T";
    core::PipelineConfig config;
    bool sat_stats = false;
    bool degradation_stats = false;
    /** optimize-module only: write the patched module here. */
    std::string emit_path;
    /** --trace=FILE: Chrome trace-event JSON of the run. */
    std::string trace_path;
    /** --metrics[=FILE]: metrics registry snapshot as JSON. */
    std::string metrics_path;
    /** --profile: per-phase wall-time table on stderr. */
    bool profile = false;
};

bool
parseRunOptions(int argc, char **argv, int first, RunOptions *out)
{
    bool model_set = false;
    for (int i = first; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strncmp(arg, "--proposer=", 11)) {
            if (!core::parseProposerKind(arg + 11,
                                         &out->config.proposer)) {
                std::fprintf(stderr,
                             "lpo: unknown proposer '%s' (expected "
                             "llm, egraph, or hybrid)\n",
                             arg + 11);
                return false;
            }
        } else if (!std::strncmp(arg, "--threads=", 10)) {
            char *end = nullptr;
            long threads = std::strtol(arg + 10, &end, 10);
            if (end == arg + 10 || *end || threads < 0 ||
                threads > 4096) {
                std::fprintf(stderr,
                             "lpo: bad --threads value '%s' "
                             "(expected 0..4096)\n",
                             arg + 10);
                return false;
            }
            out->config.num_threads = static_cast<unsigned>(threads);
        } else if (!std::strcmp(arg, "--no-verify-cache")) {
            out->config.enable_verify_cache = false;
        } else if (!std::strcmp(arg, "--no-incremental-sat")) {
            out->config.refine.incremental_sat = false;
        } else if (!std::strcmp(arg, "--sat-stats")) {
            out->sat_stats = true;
        } else if (!std::strcmp(arg, "--degradation-stats")) {
            out->degradation_stats = true;
        } else if (!std::strncmp(arg, "--store=", 8)) {
            if (!arg[8]) {
                std::fprintf(stderr,
                             "lpo: --store needs a directory path\n");
                return false;
            }
            out->config.store_path = arg + 8;
        } else if (!std::strncmp(arg, "--emit=", 7)) {
            if (!arg[7]) {
                std::fprintf(stderr, "lpo: --emit needs a file path\n");
                return false;
            }
            out->emit_path = arg + 7;
        } else if (!std::strncmp(arg, "--trace=", 8)) {
            if (!arg[8]) {
                std::fprintf(stderr, "lpo: --trace needs a file path\n");
                return false;
            }
            out->trace_path = arg + 8;
        } else if (!std::strcmp(arg, "--metrics")) {
            out->metrics_path = "metrics.lpo.json";
        } else if (!std::strncmp(arg, "--metrics=", 10)) {
            if (!arg[10]) {
                std::fprintf(stderr,
                             "lpo: --metrics needs a file path\n");
                return false;
            }
            out->metrics_path = arg + 10;
        } else if (!std::strcmp(arg, "--profile")) {
            out->profile = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "lpo: unknown option '%s'\n", arg);
            return false;
        } else if (!model_set) {
            out->model = arg;
            model_set = true;
        } else {
            std::fprintf(stderr, "lpo: unexpected argument '%s'\n", arg);
            return false;
        }
    }
    return true;
}

/** Observability outputs to salvage if the run is killed externally:
 *  stashed by beginObservability for the fatal-signal handler. */
struct
{
    char metrics_path[4096] = {0};
    char trace_path[4096] = {0};
} g_observability;

/**
 * SIGTERM/SIGINT during an instrumented run: write whatever the
 * metrics registry and tracer have accumulated so far before dying,
 * so --metrics/--trace artifacts survive an external kill. Best
 * effort by design — the exit code still reports the signal death.
 */
void
onFatalSignal(int sig)
{
    if (g_observability.metrics_path[0]) {
        std::ofstream out(g_observability.metrics_path,
                          std::ios::binary | std::ios::trunc);
        if (out)
            out << telemetry::MetricsRegistry::instance()
                       .snapshot()
                       .toJson()
                << "\n";
    }
    if (g_observability.trace_path[0])
        trace::Tracer::instance().writeTo(g_observability.trace_path);
    ::_exit(128 + sig);
}

/** Arm the span tracer before the run when --trace was given (the
 * metrics registry records unconditionally; recording never feeds
 * back into pipeline decisions — see DESIGN.md "Observability"). */
void
beginObservability(const RunOptions &options)
{
    if (!options.trace_path.empty())
        trace::Tracer::instance().start();
    if (options.metrics_path.empty() && options.trace_path.empty())
        return;
    std::snprintf(g_observability.metrics_path,
                  sizeof(g_observability.metrics_path), "%s",
                  options.metrics_path.c_str());
    std::snprintf(g_observability.trace_path,
                  sizeof(g_observability.trace_path), "%s",
                  options.trace_path.c_str());
    struct sigaction action = {};
    action.sa_handler = onFatalSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
}

/**
 * Emit whatever observability outputs were requested: the --profile
 * table on stderr, the --metrics JSON snapshot, and the --trace
 * Chrome trace-event file. Returns 1 if any output file failed.
 */
int
finishObservability(const RunOptions &options,
                    const core::PipelineStats &stats)
{
    int rc = 0;
    if (options.profile || !options.metrics_path.empty()) {
        telemetry::MetricsSnapshot snapshot =
            telemetry::MetricsRegistry::instance().snapshot();
        if (options.profile)
            std::fprintf(stderr, "%s",
                         core::profileSummary(stats, snapshot).c_str());
        if (!options.metrics_path.empty()) {
            std::ofstream out(options.metrics_path,
                              std::ios::binary | std::ios::trunc);
            if (out)
                out << snapshot.toJson() << "\n";
            out.flush();
            if (!out) {
                std::fprintf(stderr, "lpo: cannot write '%s'\n",
                             options.metrics_path.c_str());
                rc = 1;
            }
        }
    }
    if (!options.trace_path.empty()) {
        std::string error;
        if (!trace::Tracer::instance().writeTo(options.trace_path,
                                               &error)) {
            std::fprintf(stderr, "lpo: %s\n", error.c_str());
            rc = 1;
        }
    }
    return rc;
}

/** moduleSummary already prints the degradation line when any counter
 * is nonzero; --degradation-stats only needs to cover the all-zero
 * case, so the line appears exactly once either way. */
bool
anyDegradation(const core::PipelineStats &stats)
{
    return stats.sat_escalations || stats.concrete_fallbacks ||
           stats.degraded_verdicts || stats.contained_exceptions;
}

int
cmdRun(const char *path, const RunOptions &options)
{
    beginObservability(options);
    ir::Context ctx;
    auto module = ir::parseModule(ctx, readFile(path));
    if (!module) {
        std::fprintf(stderr, "error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }
    llm::MockModel model(llm::modelByName(options.model), 1);
    core::Pipeline pipeline(model, options.config);
    extract::Extractor extractor;
    auto outcomes = pipeline.processModule(**module, extractor, 1);
    for (const auto &outcome : outcomes) {
        if (!outcome.found())
            continue;
        std::printf("; verified missed optimization "
                    "(%s proposer, %u attempt(s), %s backend)\n%s\n",
                    outcome.proposer.c_str(), outcome.attempts,
                    outcome.verifier_backend.c_str(),
                    outcome.candidate_text.c_str());
    }
    std::fprintf(stderr, "%s",
                 core::moduleSummary(
                     pipeline.stats(), outcomes,
                     options.config.enable_verify_cache,
                     options.config.refine.incremental_sat).c_str());
    if (options.sat_stats)
        std::fprintf(stderr, "%s",
                     core::satStatsLine(pipeline.stats()).c_str());
    if (options.degradation_stats && !anyDegradation(pipeline.stats()))
        std::fprintf(stderr, "%s",
                     core::degradationStatsLine(pipeline.stats()).c_str());
    return finishObservability(options, pipeline.stats());
}

int
cmdOptimizeModule(const char *path, const RunOptions &options)
{
    beginObservability(options);
    ir::Context ctx;
    auto module = ir::parseModule(ctx, readFile(path));
    if (!module) {
        std::fprintf(stderr, "error: %s\n",
                     module.error().toString().c_str());
        return 1;
    }
    llm::MockModel model(llm::modelByName(options.model), 1);
    core::ModuleOptOptions mod_options;
    // Adopt the shared run options but keep the module-scale
    // verification budgets — both the conflict budget and the
    // escalation ladder (the whole-config assignment would restore the
    // one-shot defaults, letting a single adversarial sequence stall
    // the run or Timeout instead of degrading).
    uint64_t module_budget = mod_options.pipeline.refine.conflict_budget;
    std::vector<uint64_t> module_tiers =
        mod_options.pipeline.refine.budget_tiers;
    mod_options.pipeline = options.config;
    mod_options.pipeline.refine.conflict_budget = module_budget;
    mod_options.pipeline.refine.budget_tiers = std::move(module_tiers);
    core::ModuleOptimizer optimizer(model, mod_options);
    core::ModuleOptResult result = optimizer.optimize(**module, 1);

    std::printf("%s\n", core::savingsTable(result).c_str());
    std::printf("extraction: considered=%llu unique=%llu "
                "duplicates=%llu length-filtered=%llu "
                "still-optimizable=%llu collisions=%llu\n",
                (unsigned long long)result.extraction.sequences_considered,
                (unsigned long long)result.unique_sequences,
                (unsigned long long)result.extraction.duplicates_skipped,
                (unsigned long long)result.extraction.length_filtered,
                (unsigned long long)
                    result.extraction.still_optimizable_skipped,
                (unsigned long long)result.extraction.hash_collisions);
    std::printf("patched %llu rewrite site(s) (%llu failed, %llu "
                "function(s) rolled back), swept %u dead "
                "instruction(s); mca cycles %.1f -> %.1f\n",
                (unsigned long long)result.patched_rewrites,
                (unsigned long long)result.patch_failures,
                (unsigned long long)result.functions_rolled_back,
                result.dce_removed, result.cycles_before,
                result.cycles_after);
    // Blocks generated by corpus::largeModule are labelled
    // "s<j>.<family>"; fold patch sites per family when present.
    std::map<std::string, unsigned> families;
    for (const core::PatchRecord &patch : result.patches) {
        size_t dot = patch.block.find('.');
        if (dot != std::string::npos)
            ++families[patch.block.substr(dot + 1)];
    }
    if (!families.empty()) {
        std::printf("patched families (%zu):", families.size());
        for (const auto &[family, count] : families)
            std::printf(" %s x%u", family.c_str(), count);
        std::printf("\n");
    }
    if (result.invalid_functions) {
        std::fprintf(stderr,
                     "lpo: %llu patched function(s) failed ir::isValid\n",
                     (unsigned long long)result.invalid_functions);
        return 1;
    }
    std::fprintf(stderr, "%s",
                 core::moduleSummary(
                     result.pipeline, result.outcomes,
                     options.config.enable_verify_cache,
                     options.config.refine.incremental_sat).c_str());
    if (options.sat_stats)
        std::fprintf(stderr, "%s",
                     core::satStatsLine(result.pipeline).c_str());
    if (options.degradation_stats && !anyDegradation(result.pipeline))
        std::fprintf(stderr, "%s",
                     core::degradationStatsLine(result.pipeline).c_str());
    if (!options.emit_path.empty()) {
        std::ofstream out(options.emit_path);
        if (!out) {
            std::fprintf(stderr, "lpo: cannot write '%s'\n",
                         options.emit_path.c_str());
            return 1;
        }
        out << ir::printModule(**module);
        out.close();
        if (!out) {
            std::fprintf(stderr, "lpo: write to '%s' failed\n",
                         options.emit_path.c_str());
            return 1;
        }
    }
    return finishObservability(options, result.pipeline);
}

/** `lpo store info|verify|compact <dir>` — offline store maintenance.
 *  info prints each file's status read-only; verify additionally exits
 *  2 when anything is corrupt, torn, or rejected (nothing is repaired
 *  — a clean exit certifies the store as-is); compact runs the normal
 *  recovery open and rewrites both files as deduplicated snapshots. */
int
cmdStore(const char *action, const char *dir)
{
    const struct
    {
        const char *name;
        KvOpenOptions options;
    } files[] = {
        {verify::kVerifyStoreFile, verify::verifyStoreFileOptions(true)},
        {verify::kCatalogStoreFile,
         verify::catalogStoreFileOptions(true)},
    };

    if (!std::strcmp(action, "info") || !std::strcmp(action, "verify")) {
        const bool checking = !std::strcmp(action, "verify");
        int rc = 0;
        for (const auto &file : files) {
            std::string path = std::string(dir) + "/" + file.name;
            struct stat st;
            if (::stat(path.c_str(), &st) != 0) {
                std::printf("%s: absent\n", file.name);
                continue;
            }
            KvLoadStats stats;
            std::string error;
            KvOpen status = KvStore::inspect(path, file.options, nullptr,
                                             &stats, &error);
            std::printf("%s: %s, %llu record(s), %llu corrupt, "
                        "%llu torn byte(s), quarantine sidecar "
                        "%llu byte(s)\n",
                        file.name, kvOpenName(status),
                        (unsigned long long)stats.records,
                        (unsigned long long)stats.quarantined,
                        (unsigned long long)stats.torn_bytes,
                        (unsigned long long)
                            KvStore::quarantineSize(path));
            if (!kvOpenUsable(status)) {
                if (!error.empty())
                    std::printf("  %s\n", error.c_str());
                if (checking)
                    rc = 2;
            } else if (stats.recovered) {
                if (checking)
                    rc = 2;
                else
                    std::printf("  recovery pending (reopen for write "
                                "or run `lpo store compact`)\n");
            }
        }
        if (checking)
            std::printf("store: %s\n", rc ? "FAILED" : "OK");
        return rc;
    }

    if (!std::strcmp(action, "compact")) {
        verify::VerifyCache cache;
        std::string warning;
        auto store = verify::PersistentStore::open(dir, &cache, &warning);
        if (!warning.empty())
            std::fprintf(stderr, "lpo: warning: %s\n", warning.c_str());
        if (!store)
            return 1;
        std::string error;
        if (!store->compact(&error)) {
            std::fprintf(stderr, "lpo: compact failed: %s\n",
                         error.c_str());
            return 1;
        }
        verify::StoreStats stats = store->stats();
        std::printf("compacted: %llu verdict(s) + %llu rewrite(s) kept, "
                    "%llu recover%s, %llu quarantined, %llu undecodable "
                    "dropped\n",
                    (unsigned long long)stats.cache_loaded,
                    (unsigned long long)stats.catalog_loaded,
                    (unsigned long long)stats.recoveries,
                    stats.recoveries == 1 ? "y" : "ies",
                    (unsigned long long)stats.quarantined,
                    (unsigned long long)stats.decode_skipped);
        return 0;
    }

    std::fprintf(stderr,
                 "lpo: unknown store action '%s' "
                 "(expected info, verify, or compact)\n",
                 action);
    return 1;
}

int
cmdFailpoints()
{
    // Site names come from the failpoint registry; the live hit/fire
    // counters come from the metrics snapshot (the registry exports
    // them via a collector), so this doubles as a smoke test of the
    // telemetry path. Scripts that only want the names take column 1.
    FailPoints &failpoints = FailPoints::instance();
    telemetry::MetricsSnapshot snapshot =
        telemetry::MetricsRegistry::instance().snapshot();
    for (const std::string &site : failpoints.siteNames()) {
        std::printf(
            "%s hits=%llu fires=%llu\n", site.c_str(),
            static_cast<unsigned long long>(
                snapshot.counter("failpoint." + site + ".hits")),
            static_cast<unsigned long long>(
                snapshot.counter("failpoint." + site + ".fires")));
    }
    return 0;
}

/**
 * `lpo gen-module [seed] [functions] [blocks]` — print a deterministic
 * corpus module (the module-pipeline benchmark's workload) so scripts
 * can drive optimize-module without shipping .ll fixtures.
 */
int
cmdGenModule(int argc, char **argv)
{
    uint64_t values[3] = {1, 48, 3}; // seed, functions, blocks
    for (int i = 2; i < argc; ++i) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(argv[i], &end, 10);
        if (end == argv[i] || *end) {
            std::fprintf(stderr, "lpo: bad gen-module argument '%s'\n",
                         argv[i]);
            return 1;
        }
        values[i - 2] = v;
    }
    if (values[1] == 0 || values[1] > 100000 || values[2] == 0 ||
        values[2] > 1000) {
        std::fprintf(stderr,
                     "lpo: gen-module needs 1..100000 functions and "
                     "1..1000 blocks\n");
        return 1;
    }
    ir::Context ctx;
    corpus::CorpusGenerator generator(ctx);
    auto module = generator.largeModule(
        values[0], static_cast<unsigned>(values[1]),
        static_cast<unsigned>(values[2]));
    std::printf("%s", ir::printModule(*module).c_str());
    return 0;
}

int
cmdModels()
{
    for (const auto &profile : llm::modelRegistry()) {
        std::printf("%-12s %-40s %s, cut-off %s\n",
                    profile.name.c_str(), profile.version.c_str(),
                    profile.reasoning ? "reasoning" : "base",
                    profile.cutoff.c_str());
    }
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
        "usage: lpo <command> [args]\n"
        "  opt <file.ll>              optimize with the pipeline\n"
        "  verify <src.ll> <tgt.ll>   check refinement (Alive2-style)\n"
        "  extract <file.ll>          extract unique sequences\n"
        "  run <file.ll> [model] [options]\n"
        "                             run the LPO loop (default "
        "Gemini2.0T)\n"
        "  optimize-module <file.ll> [model] [options]\n"
        "                             extract, optimize, and patch\n"
        "                             verified rewrites back into the\n"
        "                             module; prints the per-function\n"
        "                             savings table (accepts the same\n"
        "                             options as run)\n"
        "  store info <dir>           print each store file's status\n"
        "  store verify <dir>         integrity-check a store; exit 2\n"
        "                             on corruption, torn tails, or\n"
        "                             version/option skew\n"
        "  store compact <dir>        recover and rewrite both files\n"
        "                             as deduplicated snapshots\n"
        "  models                     list the model registry\n"
        "  failpoints                 list the registered fault-\n"
        "                             injection sites with their live\n"
        "                             hit/fire counters (armed via the\n"
        "                             LPO_FAILPOINTS environment\n"
        "                             variable; see DESIGN.md)\n"
        "  gen-module [seed] [functions] [blocks]\n"
        "                             print a deterministic corpus\n"
        "                             module (defaults 1 48 3) for\n"
        "                             driving optimize-module\n"
        "  help                       show this message\n"
        "\n"
        "run options:\n"
        "  --proposer=llm|egraph|hybrid\n"
        "                             candidate backend: the LLM loop,\n"
        "                             e-graph equality saturation, or\n"
        "                             LLM with e-graph fallback\n"
        "                             (default llm)\n"
        "  --threads=N                worker threads for the sequence\n"
        "                             fan-out; 0 = all hardware\n"
        "                             threads, 1 = serial (default 0;\n"
        "                             results are identical for every\n"
        "                             thread count)\n"
        "  --no-verify-cache          disable the shared verification\n"
        "                             result cache (results are\n"
        "                             identical; only speed changes)\n"
        "  --no-incremental-sat       verify every candidate with a\n"
        "                             fresh SAT solver instead of the\n"
        "                             per-case incremental session\n"
        "                             (results are identical except\n"
        "                             that a warm session may prove\n"
        "                             queries the fresh path would\n"
        "                             abandon at the conflict budget)\n"
        "  --sat-stats                print the per-run solver stat\n"
        "                             line (decisions / conflicts /\n"
        "                             propagations / restarts /\n"
        "                             learnts carried)\n"
        "  --degradation-stats        print the degradation telemetry\n"
        "                             line (budget-ladder escalations,\n"
        "                             concrete fallbacks, degraded\n"
        "                             verdicts, contained exceptions)\n"
        "                             even when all counters are zero\n"
        "  --store=DIR                persist verified verdicts and\n"
        "                             learned rewrites in DIR (created\n"
        "                             if missing); warm runs replay\n"
        "                             them for free. An unusable path\n"
        "                             warns once and runs memory-only\n"
        "  --emit=FILE                optimize-module only: write the\n"
        "                             patched module text to FILE\n"
        "  --trace=FILE               write a Chrome trace-event JSON\n"
        "                             of the run to FILE (load it in\n"
        "                             chrome://tracing or Perfetto);\n"
        "                             tracing never changes results\n"
        "  --metrics[=FILE]           write the metrics registry\n"
        "                             snapshot (counters, gauges,\n"
        "                             latency histograms with p50/p90/\n"
        "                             p99) as JSON to FILE (default\n"
        "                             metrics.lpo.json)\n"
        "  --profile                  print the per-phase wall-time\n"
        "                             table (share of the run plus\n"
        "                             per-invocation percentiles) on\n"
        "                             stderr after the summary\n");
}

} // namespace

int
dispatch(int argc, char **argv)
{
    const char *cmd = argv[1];
    if (!std::strcmp(cmd, "help") || !std::strcmp(cmd, "--help") ||
        !std::strcmp(cmd, "-h")) {
        usage();
        return 0;
    }
    if (!std::strcmp(cmd, "opt") && argc == 3)
        return cmdOpt(argv[2]);
    if (!std::strcmp(cmd, "verify") && argc == 4)
        return cmdVerify(argv[2], argv[3]);
    if (!std::strcmp(cmd, "extract") && argc == 3)
        return cmdExtract(argv[2]);
    if (!std::strcmp(cmd, "run") && argc >= 3) {
        RunOptions options;
        if (!parseRunOptions(argc, argv, 3, &options))
            return 1;
        return cmdRun(argv[2], options);
    }
    if (!std::strcmp(cmd, "optimize-module") && argc >= 3) {
        RunOptions options;
        if (!parseRunOptions(argc, argv, 3, &options))
            return 1;
        return cmdOptimizeModule(argv[2], options);
    }
    if (!std::strcmp(cmd, "store") && argc == 4)
        return cmdStore(argv[2], argv[3]);
    if (!std::strcmp(cmd, "models"))
        return cmdModels();
    if (!std::strcmp(cmd, "failpoints"))
        return cmdFailpoints();
    if (!std::strcmp(cmd, "gen-module") && argc <= 5)
        return cmdGenModule(argc, argv);
    usage();
    return 1;
}

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    // Last-resort containment: anything the per-case isolation in the
    // pipeline could not absorb still exits with a diagnostic instead
    // of an unhandled-exception abort.
    try {
        return dispatch(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lpo: fatal: %s\n", e.what());
        return 1;
    }
}
