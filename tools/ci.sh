#!/usr/bin/env bash
# CI entry point: build Release + Debug, run the test suite in both,
# and run the throughput benchmarks, leaving BENCH_interp.json and
# BENCH_verify.json in the repo root so the perf trajectory is tracked
# per commit. The verify benchmark is gated against its committed
# baseline: a >20% drop in geomean speedup fails the build.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

for config in Release Debug; do
    build_dir="build-${config,,}"
    echo "=== Configuring ${config} ==="
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
    echo "=== Building ${config} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== Testing ${config} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
done

echo "=== Sanitize job: ASan+UBSan over concurrency and containment ==="
# Lifetime bugs hide in exactly two places: the work-stealing deques
# (racing thieves reading retired ring buffers, scope teardown vs
# worker handshake, cancellation drains) and the fault containment /
# rollback paths. Build those tests with -fsanitize=address,undefined
# and run them — test_task_graph's cancellation tests double as the
# zero-leaked-tasks check (a leaked task node is an ASan leak report).
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=Debug -DLPO_SANITIZE=ON
cmake --build build-sanitize -j "${jobs}" \
    --target test_task_graph test_thread_pool test_chaos
./build-sanitize/test_task_graph
./build-sanitize/test_thread_pool
./build-sanitize/test_chaos
# Repeat the failpoint sweep under the sanitizers (site list comes
# from the Release CLI; the sites themselves are build-independent).
for site in $(./build-release/lpo_cli failpoints | awk '{print $1}'); do
    LPO_FAILPOINTS="${site}=always" \
        ./build-sanitize/test_chaos --gtest_filter='ChaosEnvTest.*' \
        > /dev/null
    echo "sanitize chaos site ${site}: OK"
done

echo "=== Chaos sweep: every failpoint site, one at a time (Release) ==="
# Each site is forced to fire on every hit while the end-to-end module
# run (ChaosEnvTest) must still complete without crashing or patching
# invalid IR. The per-site degradation telemetry is collected into
# build-release/chaos_degradation.txt (a build artifact, not a tracked
# file) so the fault-handling trajectory is tracked per commit
# alongside the perf numbers. `failpoints` now prints live hit/fire
# counters after each site name, so take column one only.
: > build-release/chaos_degradation.txt
for site in $(./build-release/lpo_cli failpoints | awk '{print $1}'); do
    echo "--- chaos site: ${site} ---"
    LPO_FAILPOINTS="${site}=always" \
        ./build-release/test_chaos --gtest_filter='ChaosEnvTest.*' \
        | tee /tmp/chaos_site.log
    {
        echo "site: ${site}"
        grep '^degradation:' /tmp/chaos_site.log || echo "degradation: none"
        grep '^store:' /tmp/chaos_site.log || true
    } >> build-release/chaos_degradation.txt
done
echo "chaos_degradation.txt:"
cat build-release/chaos_degradation.txt

echo "=== Observability: traced module run (Release) ==="
# One end-to-end optimize-module run over a generated 48-function
# module with tracing, metrics, and the profile table on. The trace
# and metrics files must be valid JSON (json.tool is the arbiter),
# the trace must contain a span for every pipeline phase, and — the
# hard invariant — the emitted module must be byte-identical with and
# without observability, serial and threaded.
obs_dir=build-release/observability
rm -rf "${obs_dir}" && mkdir -p "${obs_dir}"
./build-release/lpo_cli gen-module > "${obs_dir}/module.ll"

./build-release/lpo_cli optimize-module "${obs_dir}/module.ll" \
    --proposer=hybrid --threads=1 --emit="${obs_dir}/plain_t1.ll"
./build-release/lpo_cli optimize-module "${obs_dir}/module.ll" \
    --proposer=hybrid --threads=1 --emit="${obs_dir}/traced_t1.ll" \
    --trace="${obs_dir}/trace.lpo.json" \
    --metrics="${obs_dir}/metrics.lpo.json" --profile
./build-release/lpo_cli optimize-module "${obs_dir}/module.ll" \
    --proposer=hybrid --threads=8 --emit="${obs_dir}/plain_t8.ll"
./build-release/lpo_cli optimize-module "${obs_dir}/module.ll" \
    --proposer=hybrid --threads=8 --emit="${obs_dir}/traced_t8.ll" \
    --trace="${obs_dir}/trace_t8.lpo.json" \
    --metrics="${obs_dir}/metrics_t8.lpo.json" --profile

for f in trace.lpo.json metrics.lpo.json trace_t8.lpo.json \
         metrics_t8.lpo.json; do
    python3 -m json.tool "${obs_dir}/${f}" > /dev/null
    echo "observability: ${f} is valid JSON"
done
# Patch-back streams inside the pipeline's commit chain now (timed via
# phase.patch_ns, attributed to the per-sequence spans), so the trace
# has no standalone "patch" phase span anymore.
for span in extract propose verify dce; do
    grep -q "\"${span}\"" "${obs_dir}/trace.lpo.json" || {
        echo "FAIL: trace is missing the ${span} phase span"
        exit 1
    }
done
grep -q '"module.latency_ns"' "${obs_dir}/metrics.lpo.json" || {
    echo "FAIL: metrics JSON is missing module.latency_ns"
    exit 1
}
cmp "${obs_dir}/plain_t1.ll" "${obs_dir}/traced_t1.ll"
cmp "${obs_dir}/plain_t8.ll" "${obs_dir}/traced_t8.ll"
cmp "${obs_dir}/plain_t1.ll" "${obs_dir}/plain_t8.ll"
echo "observability: traced and untraced modules byte-identical at 1 and 8 threads"

echo "=== Scheduler skew determinism (Release) ==="
# A steal-heavy workload: many one-block functions means many cheap
# case tasks, all pushed onto the scope owner's deque, so threaded
# runs only make progress by stealing. The emitted module must be
# byte-identical to the serial reference at 2 and 8 workers, with the
# verify cache on and off — the ordered commit chain, not scheduling
# luck, decides every byte.
skew_dir=build-release/skew
rm -rf "${skew_dir}" && mkdir -p "${skew_dir}"
./build-release/lpo_cli gen-module 7 96 1 > "${skew_dir}/skew.ll"
./build-release/lpo_cli optimize-module "${skew_dir}/skew.ll" \
    --proposer=hybrid --threads=1 --emit="${skew_dir}/ref.ll"
for threads in 2 8; do
    ./build-release/lpo_cli optimize-module "${skew_dir}/skew.ll" \
        --proposer=hybrid --threads="${threads}" \
        --emit="${skew_dir}/t${threads}.ll"
    cmp "${skew_dir}/ref.ll" "${skew_dir}/t${threads}.ll"
    ./build-release/lpo_cli optimize-module "${skew_dir}/skew.ll" \
        --proposer=hybrid --threads="${threads}" --no-verify-cache \
        --emit="${skew_dir}/t${threads}_nocache.ll"
    cmp "${skew_dir}/ref.ll" "${skew_dir}/t${threads}_nocache.ll"
done
echo "scheduler skew determinism: byte-identical at 1/2/8 threads x cache on/off"

echo "=== Interpreter throughput benchmark (Release) ==="
# The benchmark writes BENCH_interp.json into its working directory.
(cd build-release && ./bench_interp_throughput)
cp build-release/BENCH_interp.json .
echo "BENCH_interp.json:"
cat BENCH_interp.json

echo "=== Verification throughput benchmark (Release) ==="
# Exits nonzero itself if structural hashing fails to shrink a
# repeated-subcircuit query or the cache never hits.
(cd build-release && ./bench_verify_throughput)
cp build-release/BENCH_verify.json .
echo "BENCH_verify.json:"
cat BENCH_verify.json

# Regression gate: compare geomean speedup (a ratio, so portable
# across runner hardware) against the committed baseline.
baseline=$(grep -o '"geomean_speedup": [0-9.]*' \
    bench/BENCH_verify.baseline.json | awk '{print $2}')
current=$(grep -o '"geomean_speedup": [0-9.]*' \
    BENCH_verify.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: verify geomean speedup %.2fx regressed more " \
               "than 20%% against the committed baseline %.2fx\n", c, b
        exit 1
    }
    printf "verify geomean speedup %.2fx vs baseline %.2fx: OK\n", c, b
}'

# Same gate for the incremental-session speedup on the multi-candidate
# stream (the benchmark itself already fails below the 1.5x floor).
baseline=$(grep -o '"session_geomean_speedup": [0-9.]*' \
    bench/BENCH_verify.baseline.json | awk '{print $2}')
current=$(grep -o '"session_geomean_speedup": [0-9.]*' \
    BENCH_verify.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: incremental-session geomean speedup %.2fx " \
               "regressed more than 20%% against the committed " \
               "baseline %.2fx\n", c, b
        exit 1
    }
    printf "session geomean speedup %.2fx vs baseline %.2fx: OK\n", c, b
}'

echo "=== Module pipeline benchmark (Release) ==="
# Exits nonzero itself if nothing is patched, mca cycles fail to
# decrease, patched IR is invalid, or duplicate modules never hit the
# verification cache.
(cd build-release && ./bench_module_pipeline)
cp build-release/BENCH_module.json .
echo "BENCH_module.json:"
cat BENCH_module.json

# Regression gate: end-to-end sequences/sec against the committed
# baseline (>20% drop fails).
baseline=$(grep -o '"sequences_per_sec": [0-9.]*' \
    bench/BENCH_module.baseline.json | awk '{print $2}')
current=$(grep -o '"sequences_per_sec": [0-9.]*' \
    BENCH_module.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: module pipeline %.0f sequences/sec regressed " \
               "more than 20%% against the committed baseline %.0f\n", \
               c, b
        exit 1
    }
    printf "module pipeline %.0f sequences/sec vs baseline %.0f: OK\n", \
           c, b
}'

# Patched-rewrite count is deterministic (seeded mock model,
# deterministic saturation), so any sizable drop is a real regression.
baseline=$(grep -o '"patched_rewrites": [0-9]*' \
    bench/BENCH_module.baseline.json | awk '{print $2}')
current=$(grep -o '"patched_rewrites": [0-9]*' \
    BENCH_module.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: module pipeline patched %d rewrites, more than " \
               "20%% below the committed baseline %d\n", c, b
        exit 1
    }
    printf "module pipeline patched %d vs baseline %d: OK\n", c, b
}'

echo "=== Proposer comparison benchmark (Release) ==="
# Exits nonzero itself if hybrid's findings are not a strict superset
# of the LLM backend's.
(cd build-release && ./bench_proposer_compare)
cp build-release/BENCH_proposer.json .
echo "BENCH_proposer.json:"
cat BENCH_proposer.json

# Regression gate: found-optimization counts are deterministic
# (seeded mock model, deterministic saturation), so any drop is a
# real regression; fail at >20%.
baseline=$(grep -o '"hybrid_found": [0-9]*' \
    bench/BENCH_proposer.baseline.json | awk '{print $2}')
current=$(grep -o '"hybrid_found": [0-9]*' \
    BENCH_proposer.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: hybrid found %d optimizations, more than 20%% " \
               "below the committed baseline %d\n", c, b
        exit 1
    }
    printf "hybrid found %d vs baseline %d: OK\n", c, b
}'

echo "=== Persistent store benchmark (Release) ==="
# Cold run fills the store; warm run (fresh process-life) must replay
# every cataloged rewrite without an LLM call and serve every
# verification from the seeded cache. The binary exits nonzero itself
# on result divergence, a cold catalog, warm cache misses, or a warm
# run no faster than the cold one.
(cd build-release && rm -rf BENCH_persist.store && ./bench_persist)
cp build-release/BENCH_persist.json .
echo "BENCH_persist.json:"
cat BENCH_persist.json

# Regression gate: warm/cold speedup (a ratio, so portable across
# runner hardware) against the committed baseline; >20% drop fails.
baseline=$(grep -o '"warm_speedup": [0-9.]*' \
    bench/BENCH_persist.baseline.json | awk '{print $2}')
current=$(grep -o '"warm_speedup": [0-9.]*' \
    BENCH_persist.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: persistent-store warm speedup %.1fx regressed " \
               "more than 20%% against the committed baseline %.1fx\n", \
               c, b
        exit 1
    }
    printf "persistent-store warm speedup %.1fx vs baseline %.1fx: OK\n", \
           c, b
}'

echo "=== Durability sweep (Release) ==="
# End-to-end crash-safety drill against the real CLI: a cold and a
# warm run against one store must emit byte-identical modules, the
# warm run must replay from the catalog with zero LLM calls, and the
# store must pass an offline integrity check. Then the same contract
# under injected write faults (store faults may cost persistence,
# never results), and the fork+SIGKILL torn-write/snapshot-atomicity
# harness.
durability_dir=$(mktemp -d)
trap 'rm -rf "${durability_dir}"' EXIT
cat > "${durability_dir}/missed.ll" <<'EOF'
define i32 @f(i32 %x, i32 %y) {
  %a = and i32 %x, %y
  %o = or i32 %x, %y
  %r = add i32 %a, %o
  ret i32 %r
}
EOF

./build-release/lpo_cli optimize-module "${durability_dir}/missed.ll" \
    --proposer=hybrid --store="${durability_dir}/store" \
    --emit="${durability_dir}/cold.ll"
./build-release/lpo_cli optimize-module "${durability_dir}/missed.ll" \
    --proposer=hybrid --store="${durability_dir}/store" \
    --emit="${durability_dir}/warm.ll" 2>&1 | tee /tmp/durability_warm.log
cmp "${durability_dir}/cold.ll" "${durability_dir}/warm.ll"
grep -q 'llm-calls=0' /tmp/durability_warm.log || {
    echo "FAIL: warm run against a populated store paid LLM calls"
    exit 1
}
./build-release/lpo_cli store verify "${durability_dir}/store"

# Same round trip with one in five store writes failing: runs still
# succeed and agree byte-for-byte; only persistence may degrade.
rm -rf "${durability_dir}/store"
LPO_FAILPOINTS='store.write.fail=prob:0.2:7' \
    ./build-release/lpo_cli optimize-module \
    "${durability_dir}/missed.ll" --proposer=hybrid \
    --store="${durability_dir}/store" \
    --emit="${durability_dir}/faulty_cold.ll"
LPO_FAILPOINTS='store.write.fail=prob:0.2:7' \
    ./build-release/lpo_cli optimize-module \
    "${durability_dir}/missed.ll" --proposer=hybrid \
    --store="${durability_dir}/store" \
    --emit="${durability_dir}/faulty_warm.ll"
cmp "${durability_dir}/cold.ll" "${durability_dir}/faulty_cold.ll"
cmp "${durability_dir}/cold.ll" "${durability_dir}/faulty_warm.ll"
echo "durability sweep: faulty-write round trip byte-identical"

# kill -9 mid-append and mid-snapshot at a spread of byte offsets:
# reopen must recover the committed prefix, quarantine or truncate
# the rest, and never serve a torn record. ctest already runs these;
# rerunning them here keeps the sweep self-contained and loggable.
./build-release/test_persist --gtest_filter='KvStoreCrashTest.*'

echo "=== Serve throughput benchmark (Release) ==="
# 200-module request stream through the serve loop, cold store then
# warm store. The binary exits nonzero itself on any non-ok response,
# warm/cold response divergence, or a warm run that replayed nothing
# from the catalog.
(cd build-release && rm -rf BENCH_serve.store && ./bench_serve)
cp build-release/BENCH_serve.json .
echo "BENCH_serve.json:"
cat BENCH_serve.json

# Regression gate: sustained warm throughput against the committed
# baseline (>20% drop fails), plus the deterministic catalog hit rate.
baseline=$(grep -o '"sustained_modules_per_sec": [0-9.]*' \
    bench/BENCH_serve.baseline.json | awk '{print $2}')
current=$(grep -o '"sustained_modules_per_sec": [0-9.]*' \
    BENCH_serve.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: serve sustained %.1f modules/sec regressed more " \
               "than 20%% against the committed baseline %.1f\n", c, b
        exit 1
    }
    printf "serve sustained %.1f modules/sec vs baseline %.1f: OK\n", c, b
}'
baseline=$(grep -o '"warm_catalog_hit_rate": [0-9.]*' \
    bench/BENCH_serve.baseline.json | awk '{print $2}')
current=$(grep -o '"warm_catalog_hit_rate": [0-9.]*' \
    BENCH_serve.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: serve warm catalog hit rate %.3f fell more than " \
               "20%% below the committed baseline %.3f\n", c, b
        exit 1
    }
    printf "serve warm catalog hit rate %.3f vs baseline %.3f: OK\n", c, b
}'

echo "=== Serve soak: kill -9 mid-stream, restart, byte-identity (Release) ==="
# The service acceptance drill: stream 50 modules through lpo_serve,
# kill -9 the daemon mid-stream, restart, and require every response
# to be byte-identical to a cold one-shot optimize-module run of the
# same module — at-least-once replay made safe by determinism. The
# shared store must pass an offline integrity check afterwards (its
# reopen already repaired any torn tail the kill left).
serve_dir=build-release/serve_soak
rm -rf "${serve_dir}"
mkdir -p "${serve_dir}/modules" "${serve_dir}/refs"
for i in $(seq 1 50); do
    ./build-release/lpo_cli gen-module "${i}" 2 1 \
        > "${serve_dir}/modules/m${i}.ll"
    ./build-release/lpo_cli optimize-module "${serve_dir}/modules/m${i}.ll" \
        --proposer=hybrid --emit="${serve_dir}/refs/m${i}.ll" > /dev/null
done

./build-release/lpo_serve run "${serve_dir}/spool" \
    --store="${serve_dir}/store" --poll-ms=10 &
serve_pid=$!
for i in $(seq 1 50); do
    ./build-release/lpo_serve submit "${serve_dir}/spool" "m${i}" \
        "${serve_dir}/modules/m${i}.ll"
done
# Block on the first few via the client verb, then let the daemon get
# a bit further before the kill.
for i in 1 2 3; do
    ./build-release/lpo_serve wait "${serve_dir}/spool" "m${i}" \
        --timeout-ms=60000 > /dev/null
done
while [ "$(ls "${serve_dir}/spool/outbox/" 2>/dev/null \
        | grep -c '\.ll$' || true)" -lt 10 ]; do
    sleep 0.1
done
kill -9 "${serve_pid}"
wait "${serve_pid}" 2>/dev/null || true
echo "serve soak: SIGKILLed the daemon after $(ls "${serve_dir}/spool/outbox/" \
    | grep -c '\.ll$') responses"

./build-release/lpo_serve run "${serve_dir}/spool" \
    --store="${serve_dir}/store" --once
for i in $(seq 1 50); do
    cmp "${serve_dir}/refs/m${i}.ll" "${serve_dir}/spool/outbox/m${i}.ll"
done
./build-release/lpo_cli store verify "${serve_dir}/store"
./build-release/lpo_serve status "${serve_dir}/spool" \
    | python3 -m json.tool > /dev/null
echo "serve soak: all 50 responses byte-identical to one-shot runs"

echo "=== Serve chaos: every failpoint site fired once mid-stream (Release) ==="
# Per site: a fresh spool+store, a 10-module stream, and the site
# armed nth:2 so it fires exactly once inside a request. The server
# must detect the fire, quarantine pending store state, rebuild the
# optimizer, and replay — every response still byte-identical to the
# fault-free one-shot reference. Sites off the serve path simply never
# fire, which degenerates to the fault-free contract.
for site in $(./build-release/lpo_cli failpoints | awk '{print $1}'); do
    spool="${serve_dir}/chaos_${site}"
    rm -rf "${spool}" "${spool}.store"
    for i in $(seq 1 10); do
        ./build-release/lpo_serve submit "${spool}" "m${i}" \
            "${serve_dir}/modules/m${i}.ll"
    done
    LPO_FAILPOINTS="${site}=nth:2" ./build-release/lpo_serve run \
        "${spool}" --store="${spool}.store" --once
    for i in $(seq 1 10); do
        cmp "${serve_dir}/refs/m${i}.ll" "${spool}/outbox/m${i}.ll" || {
            echo "FAIL: site ${site} changed the response for m${i}"
            exit 1
        }
    done
    echo "serve chaos site ${site}: 10/10 responses byte-identical"
done

# Probabilistic store-fault chaos with another kill -9 mid-stream:
# store faults may cost persistence, never results.
spool="${serve_dir}/chaos_prob"
rm -rf "${spool}" "${spool}.store"
LPO_FAILPOINTS='store.write.fail=prob:0.2:7;store.fsync.fail=prob:0.1:11' \
    ./build-release/lpo_serve run "${spool}" --store="${spool}.store" \
    --poll-ms=10 &
serve_pid=$!
for i in $(seq 1 50); do
    ./build-release/lpo_serve submit "${spool}" "m${i}" \
        "${serve_dir}/modules/m${i}.ll"
done
while [ "$(ls "${spool}/outbox/" 2>/dev/null \
        | grep -c '\.ll$' || true)" -lt 10 ]; do
    sleep 0.1
done
kill -9 "${serve_pid}"
wait "${serve_pid}" 2>/dev/null || true
LPO_FAILPOINTS='store.write.fail=prob:0.2:7;store.fsync.fail=prob:0.1:11' \
    ./build-release/lpo_serve run "${spool}" --store="${spool}.store" --once
for i in $(seq 1 50); do
    cmp "${serve_dir}/refs/m${i}.ll" "${spool}/outbox/m${i}.ll"
done
./build-release/lpo_cli store verify "${spool}.store"
echo "serve chaos: store-fault stream with kill -9 stayed byte-identical"

echo "=== SIGTERM flush: metrics and trace survive termination (Release) ==="
# lpo_cli with --metrics/--trace must leave valid artifacts behind
# when terminated mid-run (the signal handler flushes both before
# exiting), so an operator killing a stuck run keeps its telemetry.
./build-release/lpo_cli gen-module > "${serve_dir}/big.ll"
rm -f "${serve_dir}/sigterm_metrics.json" "${serve_dir}/sigterm_trace.json"
./build-release/lpo_cli optimize-module "${serve_dir}/big.ll" \
    --proposer=hybrid --threads=1 \
    --metrics="${serve_dir}/sigterm_metrics.json" \
    --trace="${serve_dir}/sigterm_trace.json" > /dev/null &
cli_pid=$!
sleep 1
kill -TERM "${cli_pid}" 2>/dev/null || true
wait "${cli_pid}" || true
python3 -m json.tool "${serve_dir}/sigterm_metrics.json" > /dev/null
python3 -m json.tool "${serve_dir}/sigterm_trace.json" > /dev/null
echo "sigterm flush: metrics and trace JSON valid after SIGTERM"
