#!/usr/bin/env bash
# CI entry point: build Release + Debug, run the test suite in both,
# and run the interpreter throughput benchmark, leaving BENCH_interp.json
# in the repo root so the perf trajectory is tracked per commit.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

for config in Release Debug; do
    build_dir="build-${config,,}"
    echo "=== Configuring ${config} ==="
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
    echo "=== Building ${config} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== Testing ${config} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
done

echo "=== Interpreter throughput benchmark (Release) ==="
# The benchmark writes BENCH_interp.json into its working directory.
(cd build-release && ./bench_interp_throughput)
cp build-release/BENCH_interp.json .
echo "BENCH_interp.json:"
cat BENCH_interp.json
