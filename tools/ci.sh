#!/usr/bin/env bash
# CI entry point: build Release + Debug, run the test suite in both,
# and run the throughput benchmarks, leaving BENCH_interp.json and
# BENCH_verify.json in the repo root so the perf trajectory is tracked
# per commit. The verify benchmark is gated against its committed
# baseline: a >20% drop in geomean speedup fails the build.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

for config in Release Debug; do
    build_dir="build-${config,,}"
    echo "=== Configuring ${config} ==="
    cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
    echo "=== Building ${config} ==="
    cmake --build "${build_dir}" -j "${jobs}"
    echo "=== Testing ${config} ==="
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
done

echo "=== Chaos sweep: every failpoint site, one at a time (Release) ==="
# Each site is forced to fire on every hit while the end-to-end module
# run (ChaosEnvTest) must still complete without crashing or patching
# invalid IR. The per-site degradation telemetry is collected into
# chaos_degradation.txt so the fault-handling trajectory is tracked
# per commit alongside the perf numbers.
: > chaos_degradation.txt
for site in $(./build-release/lpo_cli failpoints); do
    echo "--- chaos site: ${site} ---"
    LPO_FAILPOINTS="${site}=always" \
        ./build-release/test_chaos --gtest_filter='ChaosEnvTest.*' \
        | tee /tmp/chaos_site.log
    {
        echo "site: ${site}"
        grep '^degradation:' /tmp/chaos_site.log || echo "degradation: none"
    } >> chaos_degradation.txt
done
echo "chaos_degradation.txt:"
cat chaos_degradation.txt

echo "=== Interpreter throughput benchmark (Release) ==="
# The benchmark writes BENCH_interp.json into its working directory.
(cd build-release && ./bench_interp_throughput)
cp build-release/BENCH_interp.json .
echo "BENCH_interp.json:"
cat BENCH_interp.json

echo "=== Verification throughput benchmark (Release) ==="
# Exits nonzero itself if structural hashing fails to shrink a
# repeated-subcircuit query or the cache never hits.
(cd build-release && ./bench_verify_throughput)
cp build-release/BENCH_verify.json .
echo "BENCH_verify.json:"
cat BENCH_verify.json

# Regression gate: compare geomean speedup (a ratio, so portable
# across runner hardware) against the committed baseline.
baseline=$(grep -o '"geomean_speedup": [0-9.]*' \
    bench/BENCH_verify.baseline.json | awk '{print $2}')
current=$(grep -o '"geomean_speedup": [0-9.]*' \
    BENCH_verify.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: verify geomean speedup %.2fx regressed more " \
               "than 20%% against the committed baseline %.2fx\n", c, b
        exit 1
    }
    printf "verify geomean speedup %.2fx vs baseline %.2fx: OK\n", c, b
}'

# Same gate for the incremental-session speedup on the multi-candidate
# stream (the benchmark itself already fails below the 1.5x floor).
baseline=$(grep -o '"session_geomean_speedup": [0-9.]*' \
    bench/BENCH_verify.baseline.json | awk '{print $2}')
current=$(grep -o '"session_geomean_speedup": [0-9.]*' \
    BENCH_verify.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: incremental-session geomean speedup %.2fx " \
               "regressed more than 20%% against the committed " \
               "baseline %.2fx\n", c, b
        exit 1
    }
    printf "session geomean speedup %.2fx vs baseline %.2fx: OK\n", c, b
}'

echo "=== Module pipeline benchmark (Release) ==="
# Exits nonzero itself if nothing is patched, mca cycles fail to
# decrease, patched IR is invalid, or duplicate modules never hit the
# verification cache.
(cd build-release && ./bench_module_pipeline)
cp build-release/BENCH_module.json .
echo "BENCH_module.json:"
cat BENCH_module.json

# Regression gate: end-to-end sequences/sec against the committed
# baseline (>20% drop fails).
baseline=$(grep -o '"sequences_per_sec": [0-9.]*' \
    bench/BENCH_module.baseline.json | awk '{print $2}')
current=$(grep -o '"sequences_per_sec": [0-9.]*' \
    BENCH_module.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: module pipeline %.0f sequences/sec regressed " \
               "more than 20%% against the committed baseline %.0f\n", \
               c, b
        exit 1
    }
    printf "module pipeline %.0f sequences/sec vs baseline %.0f: OK\n", \
           c, b
}'

# Patched-rewrite count is deterministic (seeded mock model,
# deterministic saturation), so any sizable drop is a real regression.
baseline=$(grep -o '"patched_rewrites": [0-9]*' \
    bench/BENCH_module.baseline.json | awk '{print $2}')
current=$(grep -o '"patched_rewrites": [0-9]*' \
    BENCH_module.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: module pipeline patched %d rewrites, more than " \
               "20%% below the committed baseline %d\n", c, b
        exit 1
    }
    printf "module pipeline patched %d vs baseline %d: OK\n", c, b
}'

echo "=== Proposer comparison benchmark (Release) ==="
# Exits nonzero itself if hybrid's findings are not a strict superset
# of the LLM backend's.
(cd build-release && ./bench_proposer_compare)
cp build-release/BENCH_proposer.json .
echo "BENCH_proposer.json:"
cat BENCH_proposer.json

# Regression gate: found-optimization counts are deterministic
# (seeded mock model, deterministic saturation), so any drop is a
# real regression; fail at >20%.
baseline=$(grep -o '"hybrid_found": [0-9]*' \
    bench/BENCH_proposer.baseline.json | awk '{print $2}')
current=$(grep -o '"hybrid_found": [0-9]*' \
    BENCH_proposer.json | awk '{print $2}')
awk -v c="$current" -v b="$baseline" 'BEGIN {
    if (c + 0 < 0.8 * b) {
        printf "FAIL: hybrid found %d optimizations, more than 20%% " \
               "below the committed baseline %d\n", c, b
        exit 1
    }
    printf "hybrid found %d vs baseline %d: OK\n", c, b
}'
