/**
 * @file
 * Table 2 (RQ1): detection of 25 previously reported missed
 * optimizations.
 *
 * For each benchmark and each Table 1 model (minus Gemini2.5), runs
 * LPO and the LPO- ablation for five rounds each, and runs Souper
 * (default + Enum 1..3) and Minotaur once. Prints the per-benchmark
 * success counts, the per-model per-round averages, and the totals —
 * the same rows the paper reports.
 */
#include <cstdio>

#include "core/pipeline.h"
#include "core/report.h"
#include "corpus/benchmarks.h"
#include "ir/parser.h"
#include "llm/mock_model.h"
#include "souper/minotaur.h"
#include "souper/souper.h"
#include "support/string_utils.h"

using namespace lpo;

namespace {

constexpr unsigned kRounds = 5;

struct ModelScore
{
    // per benchmark: successes out of kRounds, for LPO- and LPO
    std::vector<unsigned> lpo_minus;
    std::vector<unsigned> lpo;
};

unsigned
runRounds(const ir::Function &src, const llm::ModelProfile &profile,
          bool feedback, unsigned bench_index)
{
    unsigned successes = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        llm::MockModel model(profile,
                             /*session_seed=*/1000 + round * 131);
        core::PipelineConfig config;
        config.enable_feedback = feedback;
        core::Pipeline pipeline(model, config);
        core::CaseOutcome outcome = pipeline.optimizeSequence(
            src, bench_index * 977 + round);
        successes += outcome.found();
    }
    return successes;
}

} // namespace

int
main()
{
    const auto &benchmarks = corpus::rq1Benchmarks();
    std::vector<std::string> model_names = {
        "Gemma3", "Llama3.3", "Gemini2.0", "Gemini2.0T", "GPT-4.1",
        "o4-mini"};

    ir::Context ctx;
    std::vector<std::unique_ptr<ir::Function>> sources;
    for (const auto &bench : benchmarks) {
        auto parsed = ir::parseFunction(ctx, bench.src_text);
        sources.push_back(parsed.take());
    }

    std::map<std::string, ModelScore> scores;
    for (const std::string &name : model_names) {
        const llm::ModelProfile &profile = llm::modelByName(name);
        ModelScore score;
        for (size_t i = 0; i < benchmarks.size(); ++i) {
            score.lpo_minus.push_back(
                runRounds(*sources[i], profile, false, i));
            score.lpo.push_back(runRounds(*sources[i], profile, true, i));
        }
        scores[name] = std::move(score);
        std::fprintf(stderr, "model %s done\n", name.c_str());
    }

    // Baselines.
    std::vector<bool> souper_default(benchmarks.size());
    std::vector<bool> souper_enum(benchmarks.size());
    std::vector<bool> minotaur(benchmarks.size());
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        souper::SouperOptions def;
        def.enum_limit = 0;
        souper_default[i] = souper::runSouper(*sources[i], def).detected;
        for (unsigned e = 1; e <= 3 && !souper_enum[i]; ++e) {
            souper::SouperOptions opt;
            opt.enum_limit = e;
            souper_enum[i] = souper::runSouper(*sources[i], opt).detected;
        }
        minotaur[i] = souper::runMinotaur(*sources[i]).detected;
        std::fprintf(stderr, "baselines %s done\n",
                     benchmarks[i].issue_id.c_str());
    }

    std::vector<std::string> headers = {"Issue ID"};
    for (const std::string &name : model_names) {
        headers.push_back(name + " LPO-");
        headers.push_back(name + " LPO");
    }
    headers.insert(headers.end(),
                   {"SouperDef", "SouperEnum", "Minotaur"});
    core::TextTable table(headers);

    auto cell = [](unsigned n) { return n ? std::to_string(n) : ""; };
    std::map<std::string, double> avg_minus, avg_plus;
    std::map<std::string, unsigned> total_minus, total_plus;

    for (size_t i = 0; i < benchmarks.size(); ++i) {
        std::vector<std::string> row = {benchmarks[i].issue_id};
        for (const std::string &name : model_names) {
            unsigned m = scores[name].lpo_minus[i];
            unsigned p = scores[name].lpo[i];
            row.push_back(cell(m));
            row.push_back(cell(p));
            avg_minus[name] += m;
            avg_plus[name] += p;
            total_minus[name] += m > 0;
            total_plus[name] += p > 0;
        }
        row.push_back(souper_default[i] ? "Y" : "");
        row.push_back(souper_enum[i] ? "Y" : "");
        row.push_back(minotaur[i] ? "Y" : "");
        table.addRow(row);
    }

    // Average (successful benchmarks per round) and Total rows.
    std::vector<std::string> avg_row = {"Average"};
    std::vector<std::string> tot_row = {"Total"};
    unsigned sd = 0, se = 0, mi = 0;
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        sd += souper_default[i];
        se += souper_enum[i] || souper_default[i];
        mi += minotaur[i];
    }
    for (const std::string &name : model_names) {
        avg_row.push_back(formatFixed(avg_minus[name] / kRounds, 1));
        avg_row.push_back(formatFixed(avg_plus[name] / kRounds, 1));
        tot_row.push_back(std::to_string(total_minus[name]));
        tot_row.push_back(std::to_string(total_plus[name]));
    }
    avg_row.insert(avg_row.end(), {"-", "-", "-"});
    tot_row.insert(tot_row.end(),
                   {std::to_string(sd), std::to_string(se),
                    std::to_string(mi)});
    table.addRow(avg_row);
    table.addRow(tot_row);

    std::printf("Table 2: detection of 25 previously reported missed "
                "optimizations\n(%u rounds per model; cells are success "
                "counts)\n\n%s\n",
                kRounds, table.render().c_str());

    // The paper's cross-tool summary (§4.2, "LPO vs Souper and
    // Minotaur").
    unsigned souper_total = se;
    unsigned souper_missed_lpo_catches = 0;
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        bool souper_any = souper_default[i] || souper_enum[i];
        bool lpo_any = false;
        for (const std::string &name : model_names)
            lpo_any |= scores[name].lpo[i] > 0;
        if (!souper_any && lpo_any)
            ++souper_missed_lpo_catches;
    }
    std::printf("Souper total (default or Enum 1-3): %u of 25\n",
                souper_total);
    std::printf("Missed by Souper but caught by LPO (some model): %u\n",
                souper_missed_lpo_catches);
    return 0;
}
