/**
 * @file
 * Persistent verify store throughput: cold run (empty store, every
 * verdict proved and journaled) vs warm run (fresh process-life, same
 * store: verdicts seeded into the cache, learned rewrites replayed by
 * the catalog proposer ahead of the LLM leg).
 *
 * The workload is one corpus::largeModule per phase — the same module
 * text both times, as a crash-recovered or nightly re-run would see it.
 * The warm run must (a) find exactly what the cold run found, (b) emit
 * a byte-identical patched module, (c) serve every verification from
 * the seeded cache, and (d) route every finding through the catalog,
 * paying the LLM only for the cases that never produced a verified
 * rewrite (there is nothing to catalog for those).
 *
 * Emits BENCH_persist.json; tools/ci.sh gates warm_speedup against the
 * committed baseline (>20% regression fails). The binary itself fails
 * on broken invariants: result divergence, cold catalog, cold cache,
 * or a warm run no faster than the cold one.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/json_writer.h"
#include "core/module_opt.h"
#include "core/report.h"
#include "corpus/generator.h"
#include "ir/printer.h"
#include "llm/mock_model.h"

using namespace lpo;
using Clock = std::chrono::steady_clock;

namespace {

constexpr unsigned kFunctions = 48;
constexpr unsigned kBlocks = 3;
constexpr unsigned kReps = 3;
constexpr uint64_t kModuleSeed = 100;
const char *kStoreDir = "BENCH_persist.store";

struct PhaseResult
{
    double seconds = 0;
    uint64_t considered = 0;
    uint64_t found = 0;
    uint64_t found_by_catalog = 0;
    uint64_t llm_calls = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t store_loaded = 0;
    uint64_t catalog_loaded = 0;
    std::string module_text;
};

/** One optimize() of a freshly generated module through a fresh
 *  optimizer (new process-life: empty in-memory cache) against the
 *  persistent store at kStoreDir. */
PhaseResult
runPhase()
{
    ir::Context ctx;
    corpus::CorpusGenerator generator(ctx);
    auto module = generator.largeModule(kModuleSeed, kFunctions, kBlocks);

    llm::MockModel model(llm::modelByName("Gemini2.0T"), 1);
    core::ModuleOptOptions options;
    options.pipeline.proposer = core::ProposerKind::Hybrid;
    options.pipeline.store_path = kStoreDir;
    PhaseResult phase;
    auto start = Clock::now();
    {
        core::ModuleOptimizer optimizer(model, options);
        core::ModuleOptResult result = optimizer.optimize(*module, 1);
        phase.considered = result.extraction.sequences_considered;
        phase.found = result.pipeline.found;
        phase.found_by_catalog = result.pipeline.found_by_catalog;
        phase.llm_calls = result.pipeline.llm_calls;
        phase.cache_hits = result.pipeline.verify_cache_hits;
        phase.cache_misses = result.pipeline.verify_cache_misses;
        phase.store_loaded = result.pipeline.store_cache_loaded;
        phase.catalog_loaded = result.pipeline.store_catalog_loaded;
        // Destruction flushes the store (timed: a real run pays it).
    }
    phase.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    phase.module_text = ir::printModule(*module);
    return phase;
}

} // namespace

int
main()
{
    // Counters are deterministic across reps (seeded mock model, one
    // store lifecycle per rep); only the timings vary, so keep each
    // phase's minimum seconds and any rep's stats.
    PhaseResult cold, warm;
    for (unsigned rep = 0; rep < kReps; ++rep) {
        std::string cleanup = std::string("rm -rf '") + kStoreDir + "'";
        if (std::system(cleanup.c_str()) != 0) {
            std::fprintf(stderr, "FAIL: cannot clean %s\n", kStoreDir);
            return 1;
        }
        PhaseResult rep_cold = runPhase();
        PhaseResult rep_warm = runPhase();
        std::printf("rep %u: cold %.2fs, warm %.2fs (%.1fx)\n", rep,
                    rep_cold.seconds, rep_warm.seconds,
                    rep_cold.seconds / rep_warm.seconds);
        double best_cold =
            rep ? std::min(cold.seconds, rep_cold.seconds)
                : rep_cold.seconds;
        double best_warm =
            rep ? std::min(warm.seconds, rep_warm.seconds)
                : rep_warm.seconds;
        // Every rep must agree, not just the fastest one.
        if (rep_cold.module_text != rep_warm.module_text) {
            std::fprintf(stderr,
                         "FAIL: rep %u warm module text diverged from "
                         "cold\n",
                         rep);
            return 1;
        }
        if (rep_warm.found != rep_cold.found) {
            std::fprintf(stderr,
                         "FAIL: rep %u warm found %llu != cold %llu\n",
                         rep,
                         static_cast<unsigned long long>(rep_warm.found),
                         static_cast<unsigned long long>(rep_cold.found));
            return 1;
        }
        cold = std::move(rep_cold);
        warm = std::move(rep_warm);
        cold.seconds = best_cold;
        warm.seconds = best_warm;
    }

    double cold_seq_per_sec = cold.considered / cold.seconds;
    double warm_seq_per_sec = warm.considered / warm.seconds;
    double warm_speedup = cold.seconds / warm.seconds;
    double catalog_hit_rate =
        warm.found ? double(warm.found_by_catalog) / double(warm.found)
                   : 0.0;
    double warm_cache_hit_rate =
        warm.cache_hits + warm.cache_misses
            ? double(warm.cache_hits) /
                  double(warm.cache_hits + warm.cache_misses)
            : 0.0;

    std::printf(
        "\npersistent store: 1 module x %u functions x %u blocks\n"
        "  cold: %.0f sequences/sec (%llu verifications paid)\n"
        "  warm: %.0f sequences/sec, %.1fx speedup\n"
        "  warm verify cache: %s\n"
        "  catalog: %llu/%llu findings replayed (%.0f%%), "
        "%llu LLM calls\n"
        "  loaded on warm open: %llu verdicts, %llu rewrites\n",
        kFunctions, kBlocks, cold_seq_per_sec,
        static_cast<unsigned long long>(cold.cache_misses),
        warm_seq_per_sec, warm_speedup,
        core::cacheSummary(warm.cache_hits, warm.cache_misses).c_str(),
        static_cast<unsigned long long>(warm.found_by_catalog),
        static_cast<unsigned long long>(warm.found),
        100.0 * catalog_hit_rate,
        static_cast<unsigned long long>(warm.llm_calls),
        static_cast<unsigned long long>(warm.store_loaded),
        static_cast<unsigned long long>(warm.catalog_loaded));

    core::JsonWriter json;
    json.beginObject();
    json.field("functions", kFunctions);
    json.field("blocks_per_fn", kBlocks);
    json.field("cold_sequences_per_sec", cold_seq_per_sec, 1);
    json.field("warm_sequences_per_sec", warm_seq_per_sec, 1);
    json.field("warm_speedup", warm_speedup, 2);
    json.field("catalog_hit_rate", catalog_hit_rate, 3);
    json.field("warm_cache_hit_rate", warm_cache_hit_rate, 3);
    json.field("verdicts_loaded", warm.store_loaded);
    json.field("rewrites_loaded", warm.catalog_loaded);
    json.endObject();
    std::ofstream out("BENCH_persist.json");
    out << json.str() << "\n";
    std::printf("wrote BENCH_persist.json\n");

    bool fail = false;
    if (warm.found_by_catalog == 0) {
        std::fprintf(stderr,
                     "FAIL: warm run replayed nothing from the "
                     "catalog\n");
        fail = true;
    }
    if (warm.cache_hits == 0 || warm.cache_misses != 0) {
        std::fprintf(stderr,
                     "FAIL: warm verifications not fully served by the "
                     "seeded cache (%llu hits / %llu misses)\n",
                     static_cast<unsigned long long>(warm.cache_hits),
                     static_cast<unsigned long long>(warm.cache_misses));
        fail = true;
    }
    // Cataloged findings skip the LLM leg entirely; only the cases
    // that never produced a verified rewrite (nothing to catalog)
    // still consult it, so warm strictly undercuts cold.
    if (warm.llm_calls >= cold.llm_calls) {
        std::fprintf(stderr,
                     "FAIL: warm run paid %llu LLM calls (cold: %llu)\n",
                     static_cast<unsigned long long>(warm.llm_calls),
                     static_cast<unsigned long long>(cold.llm_calls));
        fail = true;
    }
    if (warm_speedup <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: warm run no faster than cold (%.2fx)\n",
                     warm_speedup);
        fail = true;
    }
    return fail ? 1 : 0;
}
