/**
 * @file
 * google-benchmark microbenches for the substrate components, plus
 * the ablation counters DESIGN.md calls out (extractor dedup ratio,
 * interestingness-before-verification savings).
 */
#include <benchmark/benchmark.h>

#include "core/interestingness.h"
#include "corpus/benchmarks.h"
#include "corpus/generator.h"
#include "extract/extractor.h"
#include "ir/parser.h"
#include "ir/pattern.h"
#include "ir/printer.h"
#include "opt/instcombine.h"
#include "verify/refine.h"

using namespace lpo;

namespace {

const char *kSample =
    "define i8 @src(i32 %x) {\n"
    "  %c = icmp slt i32 %x, 0\n"
    "  %m = tail call i32 @llvm.umin.i32(i32 %x, i32 255)\n"
    "  %t = trunc nuw i32 %m to i8\n"
    "  %r = select i1 %c, i8 0, i8 %t\n"
    "  ret i8 %r\n}\n";

void
BM_ParseFunction(benchmark::State &state)
{
    for (auto _ : state) {
        ir::Context ctx;
        auto fn = ir::parseFunction(ctx, kSample);
        benchmark::DoNotOptimize(fn.ok());
    }
}
BENCHMARK(BM_ParseFunction);

void
BM_PrintFunction(benchmark::State &state)
{
    ir::Context ctx;
    auto fn = ir::parseFunction(ctx, kSample).take();
    for (auto _ : state) {
        std::string text = ir::printFunction(*fn);
        benchmark::DoNotOptimize(text.size());
    }
}
BENCHMARK(BM_PrintFunction);

void
BM_StructuralHash(benchmark::State &state)
{
    ir::Context ctx;
    auto fn = ir::parseFunction(ctx, kSample).take();
    for (auto _ : state)
        benchmark::DoNotOptimize(ir::structuralHash(*fn));
}
BENCHMARK(BM_StructuralHash);

void
BM_InstCombine(benchmark::State &state)
{
    ir::Context ctx;
    auto fn = ir::parseFunction(ctx, kSample).take();
    for (auto _ : state) {
        auto clone = fn->clone("c");
        benchmark::DoNotOptimize(opt::runInstCombine(*clone));
    }
}
BENCHMARK(BM_InstCombine);

void
BM_RefinementSat(benchmark::State &state)
{
    ir::Context ctx;
    const auto &bench = corpus::rq1Benchmarks()[0]; // add_signbit i8
    auto src = ir::parseFunction(ctx, bench.src_text).take();
    auto tgt = ir::parseFunction(ctx, bench.tgt_text).take();
    for (auto _ : state) {
        auto result = verify::checkRefinement(*src, *tgt);
        benchmark::DoNotOptimize(result.correct());
    }
}
BENCHMARK(BM_RefinementSat);

void
BM_ExtractModule(benchmark::State &state)
{
    ir::Context ctx;
    corpus::CorpusOptions copts;
    copts.files_per_project = 1;
    corpus::CorpusGenerator generator(ctx, copts);
    auto module = generator.generateFile(corpus::paperProjects()[0], 0);
    for (auto _ : state) {
        extract::Extractor extractor;
        auto seqs = extractor.extractFromModule(*module);
        benchmark::DoNotOptimize(seqs.size());
    }
    // Ablation counter: dedup ratio on repeated extraction.
    extract::Extractor extractor;
    for (int i = 0; i < 4; ++i)
        extractor.extractFromModule(*module);
    state.counters["dedup_skipped"] =
        extractor.stats().duplicates_skipped;
    state.counters["extracted"] = extractor.stats().extracted;
}
BENCHMARK(BM_ExtractModule);

void
BM_Interestingness(benchmark::State &state)
{
    ir::Context ctx;
    const auto &bench = corpus::rq1Benchmarks()[0];
    auto src = ir::parseFunction(ctx, bench.src_text).take();
    auto tgt = ir::parseFunction(ctx, bench.tgt_text).take();
    for (auto _ : state) {
        auto gate = core::checkInteresting(*src, *tgt);
        benchmark::DoNotOptimize(gate.interesting);
    }
}
BENCHMARK(BM_Interestingness);

} // namespace
