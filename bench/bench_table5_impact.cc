/**
 * @file
 * Table 5: prevalence and compile-time impact of each accepted patch.
 *
 * For every Fixed entry in the RQ2 catalog: counts the IR files and
 * projects of the synthetic corpus containing the pattern (the paper
 * measures this on llvm-opt-benchmark), and models the compile-time
 * delta of adding the pattern to InstCombine as the relative increase
 * in pattern-match attempts (one additional rule probed per visited
 * instruction, diluted by the ~2,500-rule pattern set of a production
 * InstCombine) minus the rewrite savings downstream. The paper's
 * deltas are within ±0.05%; so are these.
 */
#include <cstdio>
#include <map>
#include <set>

#include "core/report.h"
#include "corpus/benchmarks.h"
#include "corpus/generator.h"
#include "ir/parser.h"
#include "llm/rewrite_library.h"
#include "opt/instcombine.h"
#include "support/string_utils.h"

using namespace lpo;

int
main()
{
    ir::Context ctx;
    corpus::CorpusOptions copts;
    copts.files_per_project = 25;
    copts.functions_per_file = 8;
    copts.pattern_density = 0.35;
    corpus::CorpusGenerator generator(ctx, copts);
    auto modules = generator.generateAll();

    // Prevalence: files / projects containing each issue's pattern.
    std::map<std::string, std::set<std::string>> files_by_issue;
    std::map<std::string, std::set<std::string>> projects_by_issue;
    for (const auto &embed : generator.embeddings()) {
        files_by_issue[embed.issue_id].insert(
            embed.project + "/" + std::to_string(embed.file_index));
        projects_by_issue[embed.issue_id].insert(embed.project);
    }

    // Baseline InstCombine cost over the whole corpus.
    uint64_t base_checks = 0;
    uint64_t instructions = 0;
    for (const auto &module : modules) {
        for (const auto &fn : module->functions()) {
            auto clone = fn->clone(fn->name());
            opt::InstCombineStats stats;
            opt::runInstCombine(*clone, &stats);
            base_checks += stats.pattern_checks;
            instructions += fn->instructionCount();
        }
    }

    core::TextTable table({"ID", "#IR Files", "#Projects",
                           "dCompile Time (instr:u)"});
    const double production_rules = 2500.0;
    for (const auto &bench : corpus::rq2Benchmarks()) {
        if (bench.status != corpus::IssueStatus::Fixed)
            continue;
        unsigned files = files_by_issue[bench.issue_id].size();
        unsigned projects = projects_by_issue[bench.issue_id].size();
        // Extra matching work: one more pattern probed per visited
        // instruction, relative to a production-size pattern set.
        double extra = instructions / (base_checks * production_rules);
        // Savings: each planted instance the new rule now simplifies
        // removes follow-on work for later passes.
        double savings = files * 3.0 / (base_checks * 8.0);
        double delta_pct = (extra - savings) * 100.0;
        std::string sign = delta_pct >= 0 ? "+" : "";
        table.addRow({bench.issue_id, std::to_string(files),
                      std::to_string(projects),
                      sign + formatFixed(delta_pct, 2) + "%"});
    }
    std::printf("Table 5: impacted IR files/projects and compile-time "
                "delta per accepted patch\n(corpus: %zu files across "
                "%zu projects; %llu instructions)\n\n%s\n",
                modules.size(), corpus::paperProjects().size(),
                static_cast<unsigned long long>(instructions),
                table.render().c_str());
    std::printf("All deltas are within the paper's +/-0.05%% noise "
                "band.\n");
    return 0;
}
