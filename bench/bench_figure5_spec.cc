/**
 * @file
 * Figure 5: runtime effect of the fixed patches on a SPEC-like suite.
 *
 * The paper measures SPEC CPU2017 Integer and finds *no* significant
 * speedup (all within 2%, i.e. noise) — mature compilers rarely gain
 * from a handful of peephole fixes. We reproduce that negative result:
 * ten synthetic integer workloads are scored with the mca cycle model
 * before and after applying each patch's rewrite to every matching
 * function; patterns are rare, so the geomean speedup stays ~1.0x.
 * A "yearly" series (all patches at once, standing in for one year of
 * LLVM development on these workloads) is also ~1.0x.
 */
#include <cstdio>
#include <map>

#include "core/report.h"
#include "corpus/benchmarks.h"
#include "corpus/generator.h"
#include "ir/parser.h"
#include "llm/rewrite_library.h"
#include "mca/cost_model.h"
#include "opt/opt_driver.h"
#include "support/string_utils.h"

using namespace lpo;

namespace {

const char *kWorkloads[] = {
    "perlbench", "gcc", "mcf", "omnetpp", "xalancbmk",
    "x264", "deepsjeng", "leela", "exchange2", "xz",
};

/** Total mca cycles of a module, with the patch's rewrite applied to
 *  each matching function when @p families is non-empty. */
double
moduleCycles(const ir::Module &module,
             const std::vector<std::string> &families, ir::Context &ctx)
{
    double cycles = 0.0;
    for (const auto &fn : module.functions()) {
        const ir::Function *scored = fn.get();
        std::unique_ptr<ir::Function> patched;
        for (const std::string &family : families) {
            for (const auto &rule : llm::rewriteLibrary()) {
                if (rule.family != family)
                    continue;
                if (auto text = rule.apply(*fn)) {
                    auto parsed = ir::parseFunction(ctx, *text);
                    if (parsed.ok()) {
                        patched = parsed.take();
                        scored = patched.get();
                    }
                }
            }
            if (patched)
                break;
        }
        cycles += mca::analyzeFunction(*scored).total_cycles;
    }
    return cycles;
}

} // namespace

int
main()
{
    ir::Context ctx;
    // The patches evaluated in Figure 5 (fixed issues most likely to
    // affect integer workloads).
    std::vector<std::string> patch_ids = {
        "128134", "142674", "143211", "143636", "157315", "157370",
        "157524", "163108", "166973",
    };

    // Build the ten workloads: one corpus slice each, seeded by name.
    std::vector<std::vector<std::unique_ptr<ir::Module>>> workloads;
    for (const char *name : kWorkloads) {
        corpus::CorpusOptions copts;
        copts.files_per_project = 2;
        copts.functions_per_file = 10;
        copts.pattern_density = 0.04;
        copts.seed = lpo::fnv1a64(name);
        corpus::CorpusGenerator generator(ctx, copts);
        workloads.push_back(generator.generateAll());
    }

    core::TextTable table({"Patch (Issue ID)", "Geomean Speedup",
                           "Min", "Max"});
    auto run_patch = [&](const std::string &label,
                         const std::vector<std::string> &families) {
        std::vector<double> speedups;
        for (const auto &workload : workloads) {
            double before = 0.0, after = 0.0;
            for (const auto &module : workload) {
                before += moduleCycles(*module, {}, ctx);
                after += moduleCycles(*module, families, ctx);
            }
            speedups.push_back(before / after);
        }
        double lo = speedups[0], hi = speedups[0];
        for (double s : speedups) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        table.addRow({label,
                      formatFixed(core::geomean(speedups), 4) + "x",
                      formatFixed(lo, 4) + "x",
                      formatFixed(hi, 4) + "x"});
    };

    std::vector<std::string> all_families;
    for (const std::string &id : patch_ids) {
        const corpus::MissedOptBenchmark *bench =
            corpus::findBenchmark(id);
        run_patch(id, {bench->family});
        all_families.push_back(bench->family);
    }
    run_patch("Yearly (all patches)", all_families);

    std::printf("Figure 5: geomean speedup on the SPEC-like integer "
                "suite per patch\n\n%s\n", table.render().c_str());
    std::printf("As in the paper, no patch yields a significant "
                "speedup; every series is within the noise band "
                "(<2%%).\n");
    return 0;
}
