/**
 * @file
 * Proposer-backend comparison on the missed-optimization corpus
 * (RQ1 + RQ2): found optimizations and verified-candidates/sec for
 * --proposer=llm, egraph, and hybrid at equal RefineOptions, model,
 * and seeds.
 *
 * Asserts the hybrid contract: hybrid's verified findings must be a
 * strict superset of the LLM's (per case, not just in total) — the
 * fallback only ever runs after the LLM leg has failed, and the
 * e-graph covers families beyond every model's knowledge. Emits
 * BENCH_proposer.json; tools/ci.sh gates hybrid's found count
 * against the committed baseline (>20% drop fails).
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/json_writer.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "corpus/benchmarks.h"
#include "ir/parser.h"
#include "llm/mock_model.h"

using namespace lpo;
using Clock = std::chrono::steady_clock;

namespace {

struct ProposerResult
{
    const char *name = "";
    std::vector<bool> found;
    core::PipelineStats stats;
    double elapsed_seconds = 0.0;

    unsigned foundCount() const
    {
        unsigned n = 0;
        for (bool f : found)
            n += f;
        return n;
    }
    double verifiedCandidatesPerSec() const
    {
        return elapsed_seconds > 0
                   ? static_cast<double>(stats.verifier_calls) /
                         elapsed_seconds
                   : 0.0;
    }
};

ProposerResult
runCorpus(core::ProposerKind kind,
          const std::vector<corpus::MissedOptBenchmark> &catalog)
{
    ProposerResult result;
    result.name = core::proposerKindName(kind);

    ir::Context ctx;
    llm::MockModel model(llm::modelByName("Gemini2.0T"), 1);
    core::PipelineConfig config;
    config.proposer = kind;
    core::Pipeline pipeline(model, config);

    auto start = Clock::now();
    uint64_t round = 0;
    for (const auto &bench : catalog) {
        auto src = ir::parseFunction(ctx, bench.src_text);
        if (!src.ok()) {
            std::fprintf(stderr, "parse failed for %s\n",
                         bench.issue_id.c_str());
            std::exit(1);
        }
        auto outcome = pipeline.optimizeSequence(**src, round++);
        result.found.push_back(outcome.found());
    }
    result.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.stats = pipeline.stats();
    return result;
}

} // namespace

int
main()
{
    std::vector<corpus::MissedOptBenchmark> catalog =
        corpus::rq1Benchmarks();
    for (const auto &bench : corpus::rq2Benchmarks())
        catalog.push_back(bench);

    std::vector<ProposerResult> results;
    for (core::ProposerKind kind :
         {core::ProposerKind::Llm, core::ProposerKind::EGraph,
          core::ProposerKind::Hybrid})
        results.push_back(runCorpus(kind, catalog));
    const ProposerResult &llm = results[0];
    const ProposerResult &egraph = results[1];
    const ProposerResult &hybrid = results[2];

    // The acceptance contract, checked per case.
    bool superset = true;
    for (size_t i = 0; i < catalog.size(); ++i) {
        if (llm.found[i] && !hybrid.found[i]) {
            superset = false;
            std::fprintf(stderr,
                         "FAIL: hybrid lost %s, which llm found\n",
                         catalog[i].issue_id.c_str());
        }
    }
    bool strictly_more = hybrid.foundCount() > llm.foundCount();

    core::TextTable table({"Proposer", "Found", "Cases",
                           "Verifier Calls", "Verified Cand/s",
                           "LLM Calls", "E-graph Consults"});
    for (const ProposerResult &r : results) {
        char rate[32];
        std::snprintf(rate, sizeof rate, "%.1f",
                      r.verifiedCandidatesPerSec());
        table.addRow({r.name, std::to_string(r.foundCount()),
                      std::to_string(r.found.size()),
                      std::to_string(r.stats.verifier_calls), rate,
                      std::to_string(r.stats.llm_calls),
                      std::to_string(r.stats.egraph_consults)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nhybrid superset of llm: %s, strictly more: %s "
                "(hybrid %u vs llm %u, egraph alone %u)\n",
                superset ? "yes" : "NO",
                strictly_more ? "yes" : "NO", hybrid.foundCount(),
                llm.foundCount(), egraph.foundCount());

    core::JsonWriter json;
    json.beginObject();
    json.key("proposers").beginArray();
    for (const ProposerResult &r : results) {
        json.beginObject(core::JsonWriter::Layout::Inline);
        json.field("name", r.name);
        json.field("found", r.foundCount());
        json.field("cases", static_cast<uint64_t>(r.found.size()));
        json.field("verifier_calls", r.stats.verifier_calls);
        json.field("verified_cands_per_sec",
                   r.verifiedCandidatesPerSec(), 1);
        json.field("llm_calls", r.stats.llm_calls);
        json.field("egraph_consults", r.stats.egraph_consults);
        json.field("hybrid_fallbacks", r.stats.hybrid_fallbacks);
        json.endObject();
    }
    json.endArray();
    json.field("llm_found", llm.foundCount());
    json.field("egraph_found", egraph.foundCount());
    json.field("hybrid_found", hybrid.foundCount());
    json.field("hybrid_superset_of_llm", superset);
    json.field("hybrid_strictly_more", strictly_more);
    json.endObject();

    std::ofstream out("BENCH_proposer.json");
    out << json.str() << "\n";
    std::printf("wrote BENCH_proposer.json\n");

    if (!superset) {
        std::fprintf(stderr,
                     "FAIL: hybrid is not a superset of llm\n");
        return 1;
    }
    if (!strictly_more) {
        std::fprintf(stderr,
                     "FAIL: hybrid found no more than llm alone\n");
        return 1;
    }
    return 0;
}
