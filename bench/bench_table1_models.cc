/**
 * @file
 * Table 1: the selected LLMs (model registry).
 *
 * Prints the evaluated model roster with version, reasoning flag, and
 * knowledge cut-off, plus the calibration parameters the simulation
 * assigns to each profile (documented in DESIGN.md, Substitutions).
 */
#include <cstdio>

#include "core/report.h"
#include "llm/model_profile.h"
#include "support/string_utils.h"

int
main()
{
    using lpo::formatFixed;
    lpo::core::TextTable table({"Model Name", "Model Version",
                                "Reasoning", "Cut-off Date", "Deploy",
                                "skill", "syn.err", "repair",
                                "latency(s)"});
    for (const auto &model : lpo::llm::modelRegistry()) {
        table.addRow({model.name, model.version,
                      model.reasoning ? "Yes" : "No", model.cutoff,
                      model.local ? "local" : "API",
                      formatFixed(model.skill, 2),
                      formatFixed(model.syntax_error_rate, 2),
                      formatFixed(model.repair_skill, 2),
                      formatFixed(model.latency_seconds, 1)});
    }
    std::printf("Table 1: selected LLMs (simulated profiles)\n\n%s\n",
                table.render().c_str());
    std::printf("Note: Gemini2.5 is excluded from RQ1 to prevent "
                "potential data leakage (paper, Table 1 caption).\n");
    return 0;
}
