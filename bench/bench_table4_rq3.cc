/**
 * @file
 * Table 4 (RQ3): throughput and cost.
 *
 * Measures simulated per-case latency of LPO under a locally deployed
 * Llama3.3 and an API Gemini2.5, against Souper default / Enum=1,2,3,
 * over instruction sequences extracted from the synthetic corpus.
 * Latency is simulated (model latency profiles + Souper's
 * node-budget-derived time, see DESIGN.md); the 20-minute timeout
 * count is reported per Souper configuration, and API cost for
 * Gemini2.5.
 *
 * The paper uses 5,000 sampled sequences; this binary defaults to a
 * 60-sequence sample (pass a count as argv[1]) and reports the scale
 * alongside the results. Rates (s/case, timeout fraction) are
 * comparable across scales.
 */
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "core/report.h"
#include "corpus/generator.h"
#include "extract/extractor.h"
#include "llm/mock_model.h"
#include "souper/souper.h"
#include "support/string_utils.h"

using namespace lpo;

int
main(int argc, char **argv)
{
    unsigned target = argc > 1 ? std::atoi(argv[1]) : 60;

    ir::Context ctx;
    corpus::CorpusOptions copts;
    copts.files_per_project = 8;
    copts.functions_per_file = 6;
    copts.pattern_density = 0.15;
    corpus::CorpusGenerator generator(ctx, copts);
    extract::Extractor extractor;

    std::vector<std::unique_ptr<ir::Function>> sequences;
    for (const auto &module : generator.generateAll()) {
        auto extracted = extractor.extractFromModule(*module);
        for (auto &fn : extracted) {
            if (sequences.size() < target)
                sequences.push_back(std::move(fn));
        }
        if (sequences.size() >= target)
            break;
    }
    std::printf("Benchmark suite: %zu instruction sequences (paper: "
                "5,000; rates are scale-independent).\n\n",
                sequences.size());

    core::TextTable table({"Tool", "Time/Case (s)", "# of Timeouts",
                           "Total Cost (USD)"});

    for (const char *model_name : {"Llama3.3", "Gemini2.5"}) {
        llm::MockModel model(llm::modelByName(model_name), 21);
        core::Pipeline pipeline(model);
        double total = 0.0;
        for (size_t i = 0; i < sequences.size(); ++i) {
            core::CaseOutcome outcome =
                pipeline.optimizeSequence(*sequences[i], i);
            total += outcome.total_seconds;
        }
        table.addRow({std::string("LPO ") + model_name,
                      formatFixed(total / sequences.size(), 1), "0",
                      model_name == std::string("Gemini2.5")
                          ? formatFixed(pipeline.stats().total_cost_usd *
                                            (5000.0 / sequences.size()),
                                        2) + " (scaled to 5k)"
                          : "0 (local)"});
        std::fprintf(stderr, "%s done\n", model_name);
    }

    for (unsigned enum_limit = 0; enum_limit <= 3; ++enum_limit) {
        double total = 0.0;
        unsigned timeouts = 0;
        for (const auto &seq : sequences) {
            souper::SouperOptions opts;
            opts.enum_limit = enum_limit;
            auto result = souper::runSouper(*seq, opts);
            total += result.simulated_seconds;
            timeouts += result.timeout;
        }
        std::string name = enum_limit == 0
            ? "Souper Default"
            : "Souper Enum=" + std::to_string(enum_limit);
        table.addRow({name, formatFixed(total / sequences.size(), 1),
                      std::to_string(timeouts), "0 (local)"});
        std::fprintf(stderr, "souper enum=%u done\n", enum_limit);
    }

    std::printf("Table 4: average per-case execution time (simulated) "
                "and timeouts\n\n%s\n", table.render().c_str());
    return 0;
}
