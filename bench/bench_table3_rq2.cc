/**
 * @file
 * Table 3 (RQ2): the 62 missed optimizations found by LPO on the
 * real-project corpus, with resolution status and whether Souper /
 * Minotaur can detect each.
 *
 * The discovery run itself is reproduced in miniature: the corpus
 * generator plants the RQ2 patterns into per-project modules, the
 * extractor harvests sequences, and the LPO pipeline (Gemini2.0T
 * profile, the strongest discoverer) confirms each finding before it
 * is reported. Souper/Minotaur columns come from running the
 * baselines on each reported function.
 */
#include <cstdio>
#include <map>
#include <set>

#include "core/pipeline.h"
#include "core/report.h"
#include "corpus/benchmarks.h"
#include "corpus/generator.h"
#include "extract/extractor.h"
#include "ir/parser.h"
#include "llm/mock_model.h"
#include "souper/minotaur.h"
#include "souper/souper.h"

using namespace lpo;

int
main()
{
    ir::Context ctx;

    // Miniature discovery pass over a corpus slice: demonstrates that
    // the planted patterns are really discovered end to end.
    corpus::CorpusOptions copts;
    copts.files_per_project = 2;
    copts.functions_per_file = 4;
    copts.pattern_density = 0.5;
    corpus::CorpusGenerator generator(ctx, copts);
    extract::Extractor extractor;
    llm::MockModel model(llm::modelByName("Gemini2.0T"), 7);
    core::Pipeline pipeline(model);
    std::set<std::string> discovered_families;
    unsigned found = 0, sequences = 0;
    for (const auto &module : generator.generateAll()) {
        auto outcomes = pipeline.processModule(*module, extractor, 1);
        sequences += outcomes.size();
        for (const auto &outcome : outcomes)
            found += outcome.found();
    }
    std::printf("Discovery pass: %u verified findings from %u extracted "
                "sequences (%llu duplicates removed).\n\n",
                found, sequences,
                static_cast<unsigned long long>(
                    extractor.stats().duplicates_skipped));

    // Full Table 3 over the curated catalog.
    core::TextTable table({"Issue ID", "Status", "SouperDefault",
                           "SouperEnum", "Minotaur"});
    std::map<std::string, unsigned> status_counts;
    unsigned sd = 0, se = 0, mi = 0;
    unsigned souper_missed = 0, minotaur_missed = 0;
    unsigned confirmed_or_fixed = 0;
    for (const auto &bench : corpus::rq2Benchmarks()) {
        auto src = ir::parseFunction(ctx, bench.src_text);
        souper::SouperOptions def;
        def.enum_limit = 0;
        bool def_hit = souper::runSouper(**src, def).detected;
        bool enum_hit = false;
        bool enum_timeout = false;
        for (unsigned e = 1; e <= 3 && !enum_hit; ++e) {
            souper::SouperOptions opt;
            opt.enum_limit = e;
            auto result = souper::runSouper(**src, opt);
            enum_hit = result.detected;
            enum_timeout |= result.timeout;
        }
        auto mino = souper::runMinotaur(**src);
        table.addRow({bench.issue_id,
                      corpus::issueStatusName(bench.status),
                      def_hit ? "Y" : "",
                      enum_hit ? "Y" : (enum_timeout ? "timeout" : ""),
                      mino.detected ? "Y"
                                    : (mino.crashed ? "crash" : "")});
        ++status_counts[corpus::issueStatusName(bench.status)];
        sd += def_hit;
        se += enum_hit;
        mi += mino.detected;
        bool cf = bench.status == corpus::IssueStatus::Confirmed ||
                  bench.status == corpus::IssueStatus::Fixed;
        confirmed_or_fixed += cf;
        if (cf && !def_hit && !enum_hit)
            ++souper_missed;
        if (cf && !mino.detected)
            ++minotaur_missed;
    }
    std::printf("Table 3: missed optimizations found by LPO and "
                "reported\n\n%s\n", table.render().c_str());
    std::printf("Status summary:");
    for (const auto &[status, count] : status_counts)
        std::printf("  %s=%u", status.c_str(), count);
    std::printf("\nSouperDefault detected %u / 62, SouperEnum %u, "
                "Minotaur %u.\n", sd, se, mi);
    std::printf("Of the %u confirmed-or-fixed findings, Souper misses "
                "%u and Minotaur misses %u.\n",
                confirmed_or_fixed, souper_missed, minotaur_missed);
    return 0;
}
