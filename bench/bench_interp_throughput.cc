/**
 * @file
 * Interpreter throughput: legacy map-based engine vs the pre-compiled
 * ExecPlan engine, measured on 16-bit exhaustive verification sweeps
 * (the exact workload checkWithTesting runs per candidate).
 *
 * The legacy side is what checkWithTesting used to do per input:
 * build an ExecutionInput by decoding the sweep index, then re-walk
 * the ir::Function through interp::executeLegacy. The plan side
 * compiles once and runs the index-addressed loop over a reusable
 * frame. Emits BENCH_interp.json so CI tracks the trajectory.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/json_writer.h"
#include "interp/exec_plan.h"
#include "interp/interp.h"
#include "ir/parser.h"

using namespace lpo;
using Clock = std::chrono::steady_clock;

namespace {

struct BenchCase
{
    const char *name;
    const char *text;
};

// Representative straight-line sequences with a 16-bit input space,
// shaped like the extractor's wrapped candidates.
const BenchCase kCases[] = {
    {"i8x2_arith_chain",
     "define i8 @f(i8 %x, i8 %y) {\n"
     "  %a = add i8 %x, %y\n"
     "  %m = mul i8 %a, 3\n"
     "  %s = sub i8 %m, %x\n"
     "  %o = or i8 %s, 1\n"
     "  %r = xor i8 %o, %y\n"
     "  ret i8 %r\n}\n"},
    {"i8x2_flags_poison",
     "define i8 @f(i8 %x, i8 %y) {\n"
     "  %a = add nsw i8 %x, 1\n"
     "  %s = shl nuw i8 %a, 1\n"
     "  %c = icmp slt i8 %s, %y\n"
     "  %r = select i1 %c, i8 %s, i8 %y\n"
     "  ret i8 %r\n}\n"},
    {"i16_bit_tricks",
     "define i16 @f(i16 %x) {\n"
     "  %n = sub i16 0, %x\n"
     "  %a = and i16 %x, %n\n"
     "  %p = tail call i16 @llvm.ctpop.i16(i16 %a)\n"
     "  %z = tail call i16 @llvm.ctlz.i16(i16 %x, i1 0)\n"
     "  %r = add i16 %p, %z\n"
     "  ret i16 %r\n}\n"},
    {"v2i8_vector_clamp",
     "define <2 x i8> @f(<2 x i8> %x) {\n"
     "  %c = icmp slt <2 x i8> %x, zeroinitializer\n"
     "  %m = tail call <2 x i8> @llvm.umin.v2i8(<2 x i8> %x, "
     "<2 x i8> splat (i8 100))\n"
     "  %r = select <2 x i1> %c, <2 x i8> zeroinitializer, "
     "<2 x i8> %m\n"
     "  ret <2 x i8> %r\n}\n"},
};

/** The sweep-index decoding the legacy checkWithTesting performed. */
interp::ExecutionInput
decodeExhaustive(const ir::Function &fn, uint64_t index)
{
    interp::ExecutionInput input;
    for (const auto &arg : fn.args()) {
        const ir::Type *type = arg->type();
        unsigned lanes = type->isVector() ? type->lanes() : 1;
        unsigned width = type->scalarType()->intWidth();
        interp::RtValue value;
        for (unsigned lane = 0; lane < lanes; ++lane) {
            uint64_t mask = width == 64 ? ~uint64_t(0)
                                        : ((uint64_t(1) << width) - 1);
            value.lanes.push_back(
                interp::LaneValue::ofInt(APInt(width, index & mask)));
            index >>= width;
        }
        input.args.push_back(value);
    }
    return input;
}

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct CaseResult
{
    std::string name;
    uint64_t inputs = 0;
    double legacy_seconds = 0;
    double plan_seconds = 0;
    uint64_t check = 0; ///< fold of results, defeats dead-code elim
};

CaseResult
runCase(const BenchCase &bench)
{
    ir::Context ctx;
    auto parsed = ir::parseFunction(ctx, bench.text);
    if (!parsed.ok()) {
        std::fprintf(stderr, "parse failed for %s\n", bench.name);
        std::exit(1);
    }
    const ir::Function &fn = **parsed;

    unsigned bits = 0;
    for (const auto &arg : fn.args()) {
        const ir::Type *t = arg->type();
        unsigned lanes = t->isVector() ? t->lanes() : 1;
        bits += lanes * t->scalarType()->intWidth();
    }
    CaseResult result;
    result.name = bench.name;
    result.inputs = uint64_t(1) << bits;

    // Legacy: per-input ExecutionInput build + tree-walk execution.
    {
        auto start = Clock::now();
        for (uint64_t i = 0; i < result.inputs; ++i) {
            interp::ExecutionInput input = decodeExhaustive(fn, i);
            interp::ExecutionResult r = interp::executeLegacy(fn, input);
            result.check +=
                r.ub ? 1
                     : (r.ret ? r.ret->lanes[0].bits.zext() : 0);
        }
        result.legacy_seconds = secondsSince(start);
    }

    // ExecPlan: compile once, reuse one frame, decode in place.
    {
        auto start = Clock::now();
        interp::ExecPlan plan = interp::ExecPlan::compile(fn);
        interp::ExecFrame frame = plan.makeFrame();
        uint64_t check = 0;
        for (uint64_t i = 0; i < result.inputs; ++i) {
            interp::PlanResult r = plan.runExhaustive(frame, i);
            check += r.ub ? 1
                          : (r.has_ret ? r.ret[0].bits.zext() : 0);
        }
        result.plan_seconds = secondsSince(start);
        if (check != result.check) {
            std::fprintf(stderr,
                         "ENGINE DISAGREEMENT on %s: legacy=%llu "
                         "plan=%llu\n",
                         bench.name,
                         static_cast<unsigned long long>(result.check),
                         static_cast<unsigned long long>(check));
            std::exit(1);
        }
    }
    return result;
}

} // namespace

int
main()
{
    std::vector<CaseResult> results;
    double speedup_product = 1.0;
    for (const BenchCase &bench : kCases)
        results.push_back(runCase(bench));

    std::printf("%-22s %10s %14s %14s %9s\n", "case", "inputs",
                "legacy in/s", "plan in/s", "speedup");
    core::JsonWriter json;
    json.beginObject();
    json.key("benchmarks").beginArray();
    for (const CaseResult &r : results) {
        double legacy_ips = r.inputs / r.legacy_seconds;
        double plan_ips = r.inputs / r.plan_seconds;
        double speedup = plan_ips / legacy_ips;
        speedup_product *= speedup;
        std::printf("%-22s %10llu %14.0f %14.0f %8.1fx\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.inputs),
                    legacy_ips, plan_ips, speedup);
        json.beginObject(core::JsonWriter::Layout::Inline);
        json.field("name", r.name);
        json.field("inputs", r.inputs);
        json.field("legacy_inputs_per_sec", legacy_ips, 0);
        json.field("plan_inputs_per_sec", plan_ips, 0);
        json.field("speedup", speedup, 2);
        json.endObject();
    }
    json.endArray();
    double geomean =
        std::pow(speedup_product, 1.0 / results.size());
    std::printf("geomean speedup: %.1fx\n", geomean);
    json.field("geomean_speedup", geomean, 2);
    json.endObject();

    std::ofstream out("BENCH_interp.json");
    out << json.str() << "\n";
    std::printf("wrote BENCH_interp.json\n");
    return 0;
}
