/**
 * @file
 * lpo_serve sustained throughput: a 200-module heterogeneous request
 * stream through the serve loop (spool in, optimize, atomic response
 * out, store flush per request), cold store vs warm store.
 *
 * The cold pass pays every proof and journals verdicts + learned
 * rewrites; the warm pass is a fresh server process-life against the
 * same store and must replay findings through the catalog. This is
 * the service-level composition of bench_persist's store invariants
 * with the request loop's per-request overheads (spool scan, claim
 * rename, response fsync, flush).
 *
 * Emits BENCH_serve.json; tools/ci.sh gates sustained_modules_per_sec
 * against the committed baseline (>20% regression fails). The binary
 * itself fails on broken invariants: any non-ok response, a warm
 * response not byte-identical to its cold counterpart, or a warm run
 * that replayed nothing from the catalog.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/json_writer.h"
#include "corpus/generator.h"
#include "ir/printer.h"
#include "serve/server.h"
#include "serve/spool.h"
#include "support/telemetry.h"

using namespace lpo;
using Clock = std::chrono::steady_clock;

namespace {

constexpr unsigned kModules = 200;
constexpr unsigned kFunctions = 2;
constexpr unsigned kBlocks = 1;
const char *kStoreDir = "BENCH_serve.store";

std::string
requestId(unsigned i)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "r%03u", i);
    return buf;
}

struct PhaseResult
{
    double seconds = 0;
    double p99_request_ms = 0;
    uint64_t found = 0;
    uint64_t found_by_catalog = 0;
    uint64_t llm_calls = 0;
    std::vector<std::string> responses; ///< per request id order
    bool all_ok = true;
};

/** One fresh server process-life: submit the whole stream, drain it
 *  with --once semantics, and collect every response. */
PhaseResult
runPhase(const char *spool_dir)
{
    std::string cleanup = std::string("rm -rf '") + spool_dir + "'";
    if (std::system(cleanup.c_str()) != 0) {
        std::fprintf(stderr, "FAIL: cannot clean %s\n", spool_dir);
        std::exit(1);
    }

    serve::Spool spool(spool_dir);
    std::string error;
    if (!spool.ensureLayout(&error)) {
        std::fprintf(stderr, "FAIL: spool: %s\n", error.c_str());
        std::exit(1);
    }
    {
        ir::Context ctx;
        corpus::CorpusGenerator generator(ctx);
        for (unsigned i = 0; i < kModules; ++i) {
            auto module =
                generator.largeModule(i + 1, kFunctions, kBlocks);
            if (!spool.submit(requestId(i), ir::printModule(*module),
                              &error)) {
                std::fprintf(stderr, "FAIL: submit: %s\n",
                             error.c_str());
                std::exit(1);
            }
        }
    }

    telemetry::MetricsRegistry::instance().reset();
    serve::ServeOptions options;
    options.spool_root = spool_dir;
    options.store_path = kStoreDir;
    options.once = true;
    options.queue_capacity = kModules; // measure throughput, not shed
    PhaseResult phase;
    auto start = Clock::now();
    {
        serve::Server server(std::move(options));
        if (server.run() != 0) {
            std::fprintf(stderr, "FAIL: server run failed\n");
            std::exit(1);
        }
        phase.seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (const core::PipelineStats *stats = server.pipelineStats()) {
            phase.found = stats->found;
            phase.found_by_catalog = stats->found_by_catalog;
            phase.llm_calls = stats->llm_calls;
        }
        phase.all_ok = server.stats().ok == kModules &&
                       server.stats().requests == kModules;
    }
    telemetry::MetricsSnapshot snapshot =
        telemetry::MetricsRegistry::instance().snapshot();
    if (const telemetry::HistogramSnapshot *hist =
            snapshot.histogram("serve.request_ns"))
        phase.p99_request_ms = hist->p99() / 1e6;

    for (unsigned i = 0; i < kModules; ++i) {
        std::ifstream in(spool.responsePath(requestId(i)),
                         std::ios::binary);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        if (!in || bytes.str().empty())
            phase.all_ok = false;
        phase.responses.push_back(bytes.str());
    }
    return phase;
}

} // namespace

int
main()
{
    std::string cleanup = std::string("rm -rf '") + kStoreDir + "'";
    if (std::system(cleanup.c_str()) != 0) {
        std::fprintf(stderr, "FAIL: cannot clean %s\n", kStoreDir);
        return 1;
    }

    PhaseResult cold = runPhase("BENCH_serve.spool.cold");
    PhaseResult warm = runPhase("BENCH_serve.spool.warm");

    double cold_rate = kModules / cold.seconds;
    double warm_rate = kModules / warm.seconds;
    double catalog_hit_rate =
        warm.found ? double(warm.found_by_catalog) / double(warm.found)
                   : 0.0;

    std::printf(
        "serve stream: %u modules x %u functions x %u blocks\n"
        "  cold: %.1f modules/sec (%.2fs), p99 %.2f ms\n"
        "  warm: %.1f modules/sec (%.2fs), p99 %.2f ms\n"
        "  warm catalog: %llu/%llu findings replayed (%.0f%%), "
        "%llu LLM calls (cold %llu)\n",
        kModules, kFunctions, kBlocks, cold_rate, cold.seconds,
        cold.p99_request_ms, warm_rate, warm.seconds,
        warm.p99_request_ms,
        (unsigned long long)warm.found_by_catalog,
        (unsigned long long)warm.found, 100.0 * catalog_hit_rate,
        (unsigned long long)warm.llm_calls,
        (unsigned long long)cold.llm_calls);

    core::JsonWriter json;
    json.beginObject();
    json.field("modules", kModules);
    json.field("functions_per_module", kFunctions);
    json.field("blocks_per_fn", kBlocks);
    json.field("sustained_modules_per_sec", warm_rate, 1);
    json.field("cold_modules_per_sec", cold_rate, 1);
    json.field("warm_catalog_hit_rate", catalog_hit_rate, 3);
    json.field("p99_request_ms", warm.p99_request_ms, 2);
    json.field("cold_p99_request_ms", cold.p99_request_ms, 2);
    json.endObject();
    std::ofstream out("BENCH_serve.json");
    out << json.str() << "\n";
    std::printf("wrote BENCH_serve.json\n");

    bool fail = false;
    if (!cold.all_ok || !warm.all_ok) {
        std::fprintf(stderr,
                     "FAIL: not every request got an ok response\n");
        fail = true;
    }
    if (cold.responses != warm.responses) {
        std::fprintf(stderr,
                     "FAIL: warm responses diverged from cold\n");
        fail = true;
    }
    if (warm.found_by_catalog == 0) {
        std::fprintf(stderr,
                     "FAIL: warm run replayed nothing from the "
                     "catalog\n");
        fail = true;
    }
    return fail ? 1 : 0;
}
