/**
 * @file
 * Verification throughput: the pre-PR proving path (no structural
 * hashing, no result cache) vs the accelerated one, measured as
 * verified candidates/sec over the full missed-optimization corpus
 * (RQ1 + RQ2 pairs), plus the incremental-session mode over a
 * multi-candidate stream per case.
 *
 * The workload verifies every (src, tgt) pair kRounds times — the
 * shape the rewrite library actually produces, where structurally
 * identical candidates recur across sites and rounds. The baseline
 * re-proves each recurrence from scratch; the accelerated path proves
 * once and hits the verification cache afterwards, and its first
 * proof is itself cheaper because hash-consed circuits are smaller.
 *
 * Also records, for every SAT-fragment pair, the encoded query size
 * (variables/clauses) with and without structural hashing — the
 * variable count must shrink on every pair, since src and tgt share
 * argument structure at minimum. Emits BENCH_verify.json; tools/ci.sh
 * gates on geomean_speedup against the committed baseline.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "corpus/benchmarks.h"
#include "core/json_writer.h"
#include "core/report.h"
#include "ir/parser.h"
#include "opt/opt_driver.h"
#include "smt/bitblast.h"
#include "smt/sat.h"
#include "verify/cache.h"
#include "verify/encoder.h"
#include "verify/refine.h"

using namespace lpo;
using Clock = std::chrono::steady_clock;

namespace {

constexpr unsigned kRounds = 3;
/** Measurement repetitions; per-case times keep the minimum, which
 *  de-noises the microsecond-scale fast cases on loaded runners. The
 *  cache is recreated per repetition so every rep measures the same
 *  cold-to-warm 3-round workload. */
constexpr unsigned kReps = 3;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct QuerySize
{
    int vars = 0;
    uint64_t clauses = 0;
    uint64_t unique_hits = 0;
};

/** Size of the production SAT query (verify::encodeRefinementQuery). */
QuerySize
encodeQuery(const ir::Function &src, const ir::Function &tgt,
            bool structural_hashing)
{
    smt::SatSolver solver;
    smt::CircuitBuilder builder(solver, structural_hashing);
    if (!verify::encodeRefinementQuery(builder, src, tgt))
        return {};
    return {solver.numVars(), solver.clausesAdded(),
            builder.uniqueTableHits()};
}

struct CaseResult
{
    std::string name;
    std::string backend;
    double baseline_seconds = 0;
    double optimized_seconds = 0;
    QuerySize size_before;
    QuerySize size_after;
};

/**
 * The incremental-session comparison: each SAT-fragment case presents
 * a stream of distinct candidate targets — the expected target, the
 * identity, and the opt pipeline's rewrites of both, the shape LLM
 * feedback retries and hybrid fallback produce. The PR 2 path proves
 * each candidate in a fresh hash-consed solver; the session path
 * bit-blasts the source once and solves every candidate under an
 * activation-literal assumption in one persistent solver. No cache in
 * either mode: every candidate is distinct, so this measures raw
 * proving throughput.
 */
struct StreamResult
{
    std::string name;
    size_t catalog_index = 0;
    size_t candidates = 0;
    double fresh_seconds = 0;
    double session_seconds = 0;
};

} // namespace

int
main()
{
    std::vector<corpus::MissedOptBenchmark> catalog =
        corpus::rq1Benchmarks();
    for (const auto &bench : corpus::rq2Benchmarks())
        catalog.push_back(bench);

    // Parse every pair once, up front.
    std::vector<std::unique_ptr<ir::Context>> contexts;
    std::vector<std::unique_ptr<ir::Function>> srcs, tgts;
    std::vector<CaseResult> results;
    for (const auto &bench : catalog) {
        contexts.push_back(std::make_unique<ir::Context>());
        auto src = ir::parseFunction(*contexts.back(), bench.src_text);
        auto tgt = ir::parseFunction(*contexts.back(), bench.tgt_text);
        if (!src.ok() || !tgt.ok()) {
            std::fprintf(stderr, "parse failed for %s\n",
                         bench.issue_id.c_str());
            return 1;
        }
        srcs.push_back(std::move(*src));
        tgts.push_back(std::move(*tgt));
        CaseResult result;
        result.name = bench.issue_id;
        results.push_back(std::move(result));
    }

    verify::VerifyCache::Stats cache_stats;
    for (unsigned rep = 0; rep < kReps; ++rep) {
        verify::VerifyCache cache;
        for (size_t i = 0; i < catalog.size(); ++i) {
            // Pre-PR path: no unique table, every recurrence
            // re-proved.
            verify::RefineOptions baseline_options;
            baseline_options.num_threads = 1;
            baseline_options.structural_hashing = false;
            auto start = Clock::now();
            for (unsigned round = 0; round < kRounds; ++round) {
                auto verdict = verify::checkRefinement(
                    *srcs[i], *tgts[i], baseline_options);
                results[i].backend = verdict.backend;
            }
            double baseline_seconds = secondsSince(start);

            // Accelerated path: hash-consed circuits + shared cache.
            verify::RefineOptions optimized_options;
            optimized_options.num_threads = 1;
            optimized_options.cache = &cache;
            start = Clock::now();
            for (unsigned round = 0; round < kRounds; ++round)
                verify::checkRefinement(*srcs[i], *tgts[i],
                                        optimized_options);
            double optimized_seconds = secondsSince(start);

            if (rep == 0 ||
                baseline_seconds < results[i].baseline_seconds)
                results[i].baseline_seconds = baseline_seconds;
            if (rep == 0 ||
                optimized_seconds < results[i].optimized_seconds)
                results[i].optimized_seconds = optimized_seconds;
        }
        // Hit/miss counts are identical every rep (deterministic);
        // keep the last rep's.
        cache_stats = cache.stats();
    }

    double baseline_total = 0, optimized_total = 0;
    bool all_sat_queries_shrank = true;
    for (size_t i = 0; i < catalog.size(); ++i) {
        // Query-size accounting for the SAT fragment.
        if (verify::usesSatBackend(*srcs[i], *tgts[i])) {
            results[i].size_before = encodeQuery(*srcs[i], *tgts[i],
                                                 false);
            results[i].size_after = encodeQuery(*srcs[i], *tgts[i],
                                                true);
            // Any unique-table hit is a gate that would otherwise
            // have allocated a variable, so queries WITH repeated
            // subcircuits must strictly shrink; those without must at
            // least not grow.
            bool has_repetition = results[i].size_after.unique_hits > 0;
            if (results[i].size_after.vars >
                    results[i].size_before.vars ||
                (has_repetition && results[i].size_after.vars >=
                                       results[i].size_before.vars))
                all_sat_queries_shrank = false;
        }
        baseline_total += results[i].baseline_seconds;
        optimized_total += results[i].optimized_seconds;
    }

    // ----------------------------------------------------------------
    // Incremental-session mode over the multi-candidate stream.
    // ----------------------------------------------------------------
    std::vector<StreamResult> streams;
    std::vector<std::vector<std::unique_ptr<ir::Function>>> stream_cands;
    for (size_t i = 0; i < catalog.size(); ++i) {
        if (!verify::usesSatBackend(*srcs[i], *tgts[i]))
            continue;
        StreamResult stream;
        stream.name = results[i].name;
        stream.catalog_index = i;
        std::vector<std::unique_ptr<ir::Function>> cands;
        cands.push_back(ir::parseFunction(
            *contexts[i], catalog[i].tgt_text).take());
        cands.push_back(ir::parseFunction(
            *contexts[i], catalog[i].src_text).take());
        cands.push_back(opt::optimizeFunction(*srcs[i]));
        cands.push_back(opt::optimizeFunction(*tgts[i]));
        stream.candidates = cands.size();
        streams.push_back(std::move(stream));
        stream_cands.push_back(std::move(cands));
    }
    verify::RefineOptions stream_options;
    stream_options.num_threads = 1;
    for (unsigned rep = 0; rep < kReps; ++rep) {
        for (size_t s = 0; s < streams.size(); ++s) {
            size_t i = streams[s].catalog_index;

            verify::RefineOptions fresh_options = stream_options;
            fresh_options.incremental_sat = false;
            auto start = Clock::now();
            for (const auto &cand : stream_cands[s])
                verify::checkRefinement(*srcs[i], *cand, fresh_options);
            double fresh_seconds = secondsSince(start);

            verify::RefineOptions session_options = stream_options;
            session_options.incremental_sat = true;
            start = Clock::now();
            verify::RefinementSession session(*srcs[i], session_options);
            for (const auto &cand : stream_cands[s])
                session.check(*cand);
            double session_seconds = secondsSince(start);

            if (rep == 0 || fresh_seconds < streams[s].fresh_seconds)
                streams[s].fresh_seconds = fresh_seconds;
            if (rep == 0 || session_seconds < streams[s].session_seconds)
                streams[s].session_seconds = session_seconds;
        }
    }

    double stream_fresh_total = 0, stream_session_total = 0;
    uint64_t stream_candidates = 0;
    std::vector<double> session_speedups;
    std::printf("\n%-14s %5s %14s %16s %9s\n", "stream", "cands",
                "fresh cand/s", "session cand/s", "speedup");
    for (const StreamResult &stream : streams) {
        double speedup = stream.fresh_seconds / stream.session_seconds;
        session_speedups.push_back(speedup);
        stream_fresh_total += stream.fresh_seconds;
        stream_session_total += stream.session_seconds;
        stream_candidates += stream.candidates;
        std::printf("%-14s %5zu %14.0f %16.0f %8.1fx\n",
                    stream.name.c_str(), stream.candidates,
                    stream.candidates / stream.fresh_seconds,
                    stream.candidates / stream.session_seconds, speedup);
    }
    double session_geomean = core::geomean(session_speedups);
    double stream_fresh_cps = stream_candidates / stream_fresh_total;
    double stream_session_cps = stream_candidates / stream_session_total;
    std::printf("stream: %llu candidates over %zu cases\n",
                static_cast<unsigned long long>(stream_candidates),
                streams.size());
    std::printf("fresh per-candidate: %10.1f verified candidates/sec\n",
                stream_fresh_cps);
    std::printf("incremental session: %10.1f verified candidates/sec\n",
                stream_session_cps);
    std::printf("session geomean speedup: %.2fx\n", session_geomean);

    const uint64_t candidates = catalog.size() * kRounds;
    double baseline_cps = candidates / baseline_total;
    double optimized_cps = candidates / optimized_total;

    std::printf("%-14s %-10s %12s %12s %9s %8s %8s\n", "case", "backend",
                "base cand/s", "opt cand/s", "speedup", "vars-",
                "vars+");
    std::vector<double> speedups;
    core::JsonWriter json;
    json.beginObject();
    json.key("benchmarks").beginArray();
    for (const CaseResult &r : results) {
        double speedup = r.baseline_seconds / r.optimized_seconds;
        speedups.push_back(speedup);
        std::printf("%-14s %-10s %12.0f %12.0f %8.1fx %8d %8d\n",
                    r.name.c_str(), r.backend.c_str(),
                    kRounds / r.baseline_seconds,
                    kRounds / r.optimized_seconds, speedup,
                    r.size_before.vars, r.size_after.vars);
        json.beginObject(core::JsonWriter::Layout::Inline);
        json.field("name", r.name);
        json.field("backend", r.backend);
        json.field("baseline_cands_per_sec",
                   kRounds / r.baseline_seconds, 1);
        json.field("optimized_cands_per_sec",
                   kRounds / r.optimized_seconds, 1);
        json.field("speedup", speedup, 2);
        json.field("sat_vars_before", r.size_before.vars);
        json.field("sat_vars_after", r.size_after.vars);
        json.field("sat_clauses_before", r.size_before.clauses);
        json.field("sat_clauses_after", r.size_after.clauses);
        json.field("unique_table_hits", r.size_after.unique_hits);
        json.endObject();
    }
    json.endArray();

    double geomean_speedup = core::geomean(speedups);
    double hit_rate = cache_stats.hitRate();
    std::printf("\ncorpus: %llu candidates over %u rounds\n",
                static_cast<unsigned long long>(candidates), kRounds);
    std::printf("baseline:  %10.1f verified candidates/sec\n",
                baseline_cps);
    std::printf("optimized: %10.1f verified candidates/sec\n",
                optimized_cps);
    std::printf("geomean speedup: %.2fx\n", geomean_speedup);
    std::printf("verify cache: %s\n",
                core::cacheSummary(cache_stats.hits, cache_stats.misses)
                    .c_str());
    std::printf("SAT vars reduced on every repeated-subcircuit query: "
                "%s\n",
                all_sat_queries_shrank ? "yes" : "NO");

    json.field("rounds", kRounds);
    json.field("baseline_cands_per_sec", baseline_cps, 1);
    json.field("optimized_cands_per_sec", optimized_cps, 1);
    json.field("cache_hits", cache_stats.hits);
    json.field("cache_misses", cache_stats.misses);
    json.field("cache_hit_rate", hit_rate, 4);
    json.field("sat_vars_reduced_on_all_queries", all_sat_queries_shrank);
    json.field("stream_cases", static_cast<uint64_t>(streams.size()));
    json.field("stream_candidates", stream_candidates);
    json.field("stream_fresh_cands_per_sec", stream_fresh_cps, 1);
    json.field("stream_session_cands_per_sec", stream_session_cps, 1);
    json.field("session_geomean_speedup", session_geomean, 2);
    json.field("geomean_speedup", geomean_speedup, 2);
    json.endObject();

    std::ofstream out("BENCH_verify.json");
    out << json.str() << "\n";
    std::printf("wrote BENCH_verify.json\n");

    if (!all_sat_queries_shrank) {
        std::fprintf(stderr,
                     "FAIL: structural hashing did not shrink every "
                     "SAT query\n");
        return 1;
    }
    if (cache_stats.hits == 0) {
        std::fprintf(stderr, "FAIL: cache hit rate is zero\n");
        return 1;
    }
    if (session_geomean < 1.5) {
        std::fprintf(stderr,
                     "FAIL: incremental sessions delivered only %.2fx "
                     "geomean over the per-candidate path (need 1.5x)\n",
                     session_geomean);
        return 1;
    }
    return 0;
}
