/**
 * @file
 * Module-pipeline throughput: the end-to-end extract -> optimize ->
 * patch-back path over a stream of large, highly-duplicated modules
 * (the paper's module-scale workload: value is measured on whole
 * programs, not isolated kernels).
 *
 * The workload is kModules corpus::largeModule instances sharing one
 * pattern grid (different noise seeds), pushed through a single
 * core::ModuleOptimizer: module 1 pays every verification, later
 * modules repeat its sequences and must be served by the shared
 * verification cache while still getting their own sites patched.
 * Reported throughput is end-to-end sequences/sec — considered
 * sequences (duplicates included, that is what module traffic looks
 * like) over the wall time of the whole optimize() stream, minimum
 * over kReps repetitions.
 *
 * Emits BENCH_module.json; tools/ci.sh gates sequences_per_sec and
 * patched_rewrites against the committed baseline (>20% regression
 * fails). The binary itself fails on broken invariants: no patches,
 * non-decreasing mca cycles, patch failures, invalid patched IR, or a
 * cold cache across duplicate modules.
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/json_writer.h"
#include "core/module_opt.h"
#include "core/report.h"
#include "corpus/generator.h"
#include "llm/mock_model.h"
#include "support/telemetry.h"

using namespace lpo;
using Clock = std::chrono::steady_clock;

namespace {

constexpr unsigned kModules = 4;
constexpr unsigned kFunctions = 48;
constexpr unsigned kBlocks = 3;
constexpr unsigned kReps = 3;

struct RepTotals
{
    double seconds = 0;
    uint64_t considered = 0;
    uint64_t unique = 0;
    uint64_t patched = 0;
    uint64_t failures = 0;
    uint64_t invalid = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    double cycles_before = 0;
    double cycles_after = 0;
    double p99_module_latency_ms = 0;
    uint64_t steals = 0;
};

RepTotals
runOnce()
{
    RepTotals totals;
    // Per-rep histogram window so the reported p99 describes the same
    // run as the reported wall time.
    telemetry::MetricsRegistry::instance().reset();
    // Fresh contexts + modules per rep (optimize mutates them);
    // generation is excluded from the timed section.
    std::vector<std::unique_ptr<ir::Context>> contexts;
    std::vector<std::unique_ptr<ir::Module>> modules;
    for (unsigned m = 0; m < kModules; ++m) {
        contexts.push_back(std::make_unique<ir::Context>());
        corpus::CorpusGenerator generator(*contexts.back());
        modules.push_back(
            generator.largeModule(100 + m, kFunctions, kBlocks));
    }

    llm::MockModel model(llm::modelByName("Gemini2.0T"), 1);
    core::ModuleOptOptions options;
    options.pipeline.proposer = core::ProposerKind::Hybrid;
    core::ModuleOptimizer optimizer(model, options);

    auto start = Clock::now();
    for (unsigned m = 0; m < kModules; ++m) {
        core::ModuleOptResult result =
            optimizer.optimize(*modules[m], 1);
        totals.considered += result.extraction.sequences_considered;
        totals.unique += result.unique_sequences;
        totals.patched += result.patched_rewrites;
        totals.failures += result.patch_failures;
        totals.invalid += result.invalid_functions;
        totals.cycles_before += result.cycles_before;
        totals.cycles_after += result.cycles_after;
    }
    totals.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    totals.cache_hits = optimizer.pipelineStats().verify_cache_hits;
    totals.cache_misses = optimizer.pipelineStats().verify_cache_misses;
    totals.steals = optimizer.pipelineStats().scheduler.steals;
    auto snapshot = telemetry::MetricsRegistry::instance().snapshot();
    if (const auto *latency = snapshot.histogram("module.latency_ns"))
        totals.p99_module_latency_ms = latency->p99() / 1e6;
    return totals;
}

} // namespace

int
main()
{
    RepTotals best;
    for (unsigned rep = 0; rep < kReps; ++rep) {
        RepTotals totals = runOnce();
        if (rep == 0 || totals.seconds < best.seconds)
            best = totals;
        std::printf("rep %u: %.2fs, %llu sequences, %llu patched\n",
                    rep, totals.seconds,
                    static_cast<unsigned long long>(totals.considered),
                    static_cast<unsigned long long>(totals.patched));
    }

    double seq_per_sec = best.considered / best.seconds;
    double hit_rate =
        best.cache_hits + best.cache_misses
            ? double(best.cache_hits) /
                  double(best.cache_hits + best.cache_misses)
            : 0.0;

    std::printf("\nmodule pipeline: %u modules x %u functions x %u "
                "blocks\n"
                "  %llu sequences considered (%llu unique), "
                "%.0f sequences/sec end-to-end\n"
                "  verify cache: %s\n"
                "  %llu rewrites patched, mca cycles %.1f -> %.1f\n",
                kModules, kFunctions, kBlocks,
                static_cast<unsigned long long>(best.considered),
                static_cast<unsigned long long>(best.unique),
                seq_per_sec,
                core::cacheSummary(best.cache_hits, best.cache_misses)
                    .c_str(),
                static_cast<unsigned long long>(best.patched),
                best.cycles_before, best.cycles_after);

    core::JsonWriter json;
    json.beginObject();
    json.field("modules", kModules);
    json.field("functions_per_module", kFunctions);
    json.field("blocks_per_fn", kBlocks);
    json.field("sequences_considered", best.considered);
    json.field("unique_sequences", best.unique);
    json.field("sequences_per_sec", seq_per_sec, 1);
    json.field("cache_hit_rate", hit_rate, 3);
    json.field("patched_rewrites", best.patched);
    json.field("cycles_before", best.cycles_before, 1);
    json.field("cycles_after", best.cycles_after, 1);
    json.field("p99_module_latency_ms", best.p99_module_latency_ms, 3);
    json.field("steals", best.steals);
    json.endObject();
    std::ofstream out("BENCH_module.json");
    out << json.str() << "\n";
    std::printf("wrote BENCH_module.json\n");

    bool fail = false;
    if (best.patched == 0) {
        std::fprintf(stderr, "FAIL: no rewrites patched back\n");
        fail = true;
    }
    if (best.cycles_after >= best.cycles_before) {
        std::fprintf(stderr,
                     "FAIL: mca cycle total did not decrease "
                     "(%.1f -> %.1f)\n",
                     best.cycles_before, best.cycles_after);
        fail = true;
    }
    if (best.failures || best.invalid) {
        std::fprintf(stderr,
                     "FAIL: %llu patch failures, %llu invalid patched "
                     "functions\n",
                     static_cast<unsigned long long>(best.failures),
                     static_cast<unsigned long long>(best.invalid));
        fail = true;
    }
    if (best.cache_hits == 0) {
        std::fprintf(stderr,
                     "FAIL: duplicate modules produced zero verify "
                     "cache hits\n");
        fail = true;
    }
    return fail ? 1 : 0;
}
