/**
 * @file
 * Instruction-sequence extraction (paper §3.2, Algorithm 2).
 *
 * For every basic block of every function in a module, collects all
 * maximal dependent instruction sequences by scanning instructions in
 * reverse order, wraps each sequence as a standalone function whose
 * undefined operands become arguments, discards sequences the
 * in-tree optimizer can still improve (they would be uninteresting by
 * construction), and deduplicates by structural hash.
 */
#ifndef LPO_EXTRACT_EXTRACTOR_H
#define LPO_EXTRACT_EXTRACTOR_H

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "ir/module.h"

namespace lpo::extract {

/** Extraction statistics (paper: 800k unique, 8.7M duplicates). */
struct ExtractionStats
{
    uint64_t sequences_considered = 0;
    uint64_t duplicates_skipped = 0;
    uint64_t still_optimizable_skipped = 0;
    uint64_t extracted = 0;
};

/** Tunables. */
struct ExtractorOptions
{
    /** Skip sequences shorter than this many instructions. */
    unsigned min_length = 2;
    /** Skip sequences longer than this many instructions. */
    unsigned max_length = 24;
    /** Check that opt cannot further optimize the wrapped function. */
    bool reject_optimizable = true;
};

/** Extractor with a persistent dedup set across modules. */
class Extractor
{
  public:
    explicit Extractor(ExtractorOptions options = {})
        : options_(options)
    {}

    /**
     * Extract all unique dependent sequences from @p module, wrapped
     * as functions (named seq<N>).
     */
    std::vector<std::unique_ptr<ir::Function>>
    extractFromModule(const ir::Module &module);

    /** Sequences from one basic block (Algorithm 2's inner helper). */
    static std::vector<std::vector<const ir::Instruction *>>
    extractSeqsFromBB(const ir::BasicBlock &bb);

    /**
     * Wrap an instruction sequence as a standalone function: undefined
     * operands become arguments and the last instruction's value is
     * returned.
     */
    static std::unique_ptr<ir::Function>
    wrapAsFunction(ir::Context &context,
                   const std::vector<const ir::Instruction *> &seq,
                   const std::string &name);

    const ExtractionStats &stats() const { return stats_; }

  private:
    ExtractorOptions options_;
    ExtractionStats stats_;
    std::set<uint64_t> dedup_;
    uint64_t next_id_ = 0;
};

} // namespace lpo::extract

#endif // LPO_EXTRACT_EXTRACTOR_H
