/**
 * @file
 * Instruction-sequence extraction (paper §3.2, Algorithm 2).
 *
 * For every basic block of every function in a module, collects all
 * maximal dependent instruction sequences by scanning instructions in
 * reverse order, wraps each sequence as a standalone function whose
 * undefined operands become arguments, discards sequences the
 * in-tree optimizer can still improve (they would be uninteresting by
 * construction), and deduplicates by structural hash with a
 * structural-equality confirmation (a 64-bit hash collision must
 * never silently drop a distinct sequence).
 *
 * extractDetailed() additionally records every occurrence site of
 * each unique sequence, which is what lets core::ModuleOptimizer
 * patch a verified rewrite back into all the places the sequence came
 * from.
 */
#ifndef LPO_EXTRACT_EXTRACTOR_H
#define LPO_EXTRACT_EXTRACTOR_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace lpo::extract {

/**
 * Extraction statistics (paper: 800k unique, 8.7M duplicates).
 *
 * The outcome counters partition sequences_considered:
 *
 *   sequences_considered == length_filtered + unwrappable_skipped
 *       + duplicates_skipped + still_optimizable_skipped + extracted
 *
 * hash_collisions is an event counter outside the partition: it
 * counts sequences whose 64-bit structural hash matched a previously
 * seen but structurally different sequence (the sequence itself still
 * lands in one of the partition buckets, usually `extracted`).
 */
struct ExtractionStats
{
    uint64_t sequences_considered = 0;
    /** Rejected by the min/max-length window. */
    uint64_t length_filtered = 0;
    /** wrapAsFunction declined (e.g. a void-typed tail). */
    uint64_t unwrappable_skipped = 0;
    /** Structurally identical to an already-processed sequence
     *  (whether that one was extracted or rejected as optimizable). */
    uint64_t duplicates_skipped = 0;
    uint64_t still_optimizable_skipped = 0;
    uint64_t extracted = 0;
    /** Same hash, different structure (see above). */
    uint64_t hash_collisions = 0;
};

/** Tunables. */
struct ExtractorOptions
{
    /** Skip sequences shorter than this many instructions. */
    unsigned min_length = 2;
    /** Skip sequences longer than this many instructions. */
    unsigned max_length = 24;
    /** Check that opt cannot further optimize the wrapped function. */
    bool reject_optimizable = true;
    /**
     * Admit load/gep instructions as sequence members. Off by
     * default: memory-touching wrapped sequences are outside the SAT
     * encoder's fragment, so their verification falls back to the
     * bounded concrete backends — callers that want that behavior opt
     * in explicitly (and the pure subsequences around an excluded
     * load/gep are still extracted, with the memory value as an
     * argument).
     */
    bool allow_memory = false;
    /**
     * Test seam: structural hashes are masked with this before dedup
     * bucketing. Production leaves it at ~0 (full 64-bit hashes);
     * tests set 0 to force every sequence into one bucket and
     * exercise the collision-confirmation path.
     */
    uint64_t hash_mask = ~uint64_t(0);
};

/** One occurrence of a sequence in the scanned module. */
struct SequenceSite
{
    const ir::Function *fn = nullptr;
    const ir::BasicBlock *block = nullptr;
    /** Members in block order; the last one is the sequence tail. */
    std::vector<const ir::Instruction *> insts;
};

/** A unique wrapped sequence plus everywhere it occurred. */
struct ExtractedSequence
{
    std::unique_ptr<ir::Function> wrapped;
    /**
     * All occurrences seen by the extractDetailed call that produced
     * this entry (duplicates dedup'd against *earlier* calls carry no
     * sites here — their unique sequence belongs to that call).
     */
    std::vector<SequenceSite> sites;
};

/** Extractor with a persistent dedup set across modules. */
class Extractor
{
  public:
    explicit Extractor(ExtractorOptions options = {})
        : options_(options)
    {}

    /**
     * Extract all unique dependent sequences from @p module, wrapped
     * as functions (named seq<N>).
     */
    std::vector<std::unique_ptr<ir::Function>>
    extractFromModule(const ir::Module &module);

    /**
     * As extractFromModule, but with every occurrence site recorded
     * (the module-optimizer entry point). Sites are grouped under the
     * unique sequence extracted by THIS call; a sequence dedup'd
     * against an earlier call carries no sites, so patch-back callers
     * must use a fresh Extractor per module (as core::ModuleOptimizer
     * does) — reuse an extractor across modules only for the paper's
     * corpus-wide dedup statistics.
     */
    std::vector<ExtractedSequence>
    extractDetailed(const ir::Module &module);

    /** Sequences from one basic block (Algorithm 2's inner helper). */
    static std::vector<std::vector<const ir::Instruction *>>
    extractSeqsFromBB(const ir::BasicBlock &bb,
                      const ExtractorOptions &options = {});

    /**
     * Wrap an instruction sequence as a standalone function: undefined
     * operands become arguments (in first-use order) and the last
     * instruction's value is returned.
     */
    static std::unique_ptr<ir::Function>
    wrapAsFunction(ir::Context &context,
                   const std::vector<const ir::Instruction *> &seq,
                   const std::string &name);

    /**
     * The ordered operand list wrapAsFunction turns into arguments:
     * every non-constant operand defined outside @p seq, by first
     * use. Exposed so patch-back can map a verified rewrite's
     * arguments to the original values at a site.
     */
    static std::vector<ir::Value *>
    outsideOperands(const std::vector<const ir::Instruction *> &seq);

    const ExtractionStats &stats() const { return stats_; }

  private:
    ExtractorOptions options_;
    ExtractionStats stats_;
    /**
     * hash -> canonical text of every distinct sequence seen with
     * that hash (extracted AND rejected-as-optimizable, so repeats of
     * either skip the optimizer probe). Keeping the full canonical
     * text is what makes the collision confirmation sound; it costs
     * on the order of the printed sequence per unique sequence, which
     * is fine at module scale (the module optimizer runs one
     * extractor per module) — a paper-scale 800k-unique extraction
     * run that must bound memory should shard extractors per corpus
     * slice.
     */
    std::map<uint64_t, std::vector<std::string>> dedup_;
    uint64_t next_id_ = 0;
};

} // namespace lpo::extract

#endif // LPO_EXTRACT_EXTRACTOR_H
