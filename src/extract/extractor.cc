#include "extract/extractor.h"

#include <map>

#include "ir/pattern.h"
#include "opt/opt_driver.h"

namespace lpo::extract {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

namespace {

/** Instructions that can participate in an extracted sequence. */
bool
extractable(const Instruction *inst)
{
    if (inst->isTerminator())
        return false;
    // Phis are block-entry live-ins: their values become arguments of
    // the wrapped function rather than sequence members. Stores have
    // no result and cannot end a returnable sequence, so they are
    // excluded entirely.
    if (inst->op() == Opcode::Phi || inst->op() == Opcode::Store)
        return false;
    return true;
}

bool
dependsOn(const std::vector<const Instruction *> &seq,
          const Instruction *inst)
{
    for (const Instruction *member : seq)
        for (const Value *operand : member->operands())
            if (operand == inst)
                return true;
    return false;
}

} // namespace

std::vector<std::vector<const Instruction *>>
Extractor::extractSeqsFromBB(const BasicBlock &bb)
{
    std::vector<std::vector<const Instruction *>> seq_set;
    for (size_t i = bb.size(); i > 0; --i) {
        const Instruction *inst = bb.at(i - 1);
        if (!extractable(inst))
            continue;
        bool added = false;
        std::vector<std::vector<const Instruction *>> new_set;
        for (std::vector<const Instruction *> &seq : seq_set) {
            if (dependsOn(seq, inst)) {
                std::vector<const Instruction *> extended;
                extended.push_back(inst);
                extended.insert(extended.end(), seq.begin(), seq.end());
                new_set.push_back(std::move(extended));
                added = true;
            } else {
                new_set.push_back(std::move(seq));
            }
        }
        if (!added)
            new_set.push_back({inst});
        seq_set = std::move(new_set);
    }
    return seq_set;
}

std::unique_ptr<ir::Function>
Extractor::wrapAsFunction(ir::Context &context,
                          const std::vector<const Instruction *> &seq,
                          const std::string &name)
{
    if (seq.empty())
        return nullptr;
    const Instruction *last = seq.back();
    if (last->type()->isVoid())
        return nullptr;

    auto fn = std::make_unique<ir::Function>(context, name, last->type());
    ir::BasicBlock *block = fn->addBlock("entry");

    std::map<const Value *, Value *> remap;
    std::set<const Instruction *> members(seq.begin(), seq.end());

    // First pass: arguments for every undefined operand, in use order.
    for (const Instruction *inst : seq) {
        for (const Value *operand : inst->operands()) {
            if (operand->isConstant() || remap.count(operand))
                continue;
            if (operand->kind() == Value::Kind::Instruction &&
                members.count(static_cast<const Instruction *>(operand)))
                continue;
            ir::Argument *arg = fn->addArg(
                operand->type(), "a" + std::to_string(fn->numArgs()));
            remap[operand] = arg;
        }
    }

    // Second pass: clone the instructions.
    for (const Instruction *inst : seq) {
        std::vector<Value *> operands;
        for (Value *operand :
             const_cast<Instruction *>(inst)->operands()) {
            auto it = remap.find(operand);
            operands.push_back(it == remap.end() ? operand : it->second);
        }
        auto copy = std::make_unique<Instruction>(
            inst->op(), inst->type(), std::move(operands));
        copy->flags() = inst->flags();
        copy->setICmpPred(inst->icmpPred());
        copy->setFCmpPred(inst->fcmpPred());
        copy->setIntrinsic(inst->intrinsic());
        copy->setAccessType(inst->accessType());
        copy->setAlign(inst->align());
        remap[inst] = block->append(std::move(copy));
    }

    auto ret = std::make_unique<Instruction>(
        Opcode::Ret, context.types().voidTy(),
        std::vector<Value *>{remap[last]});
    block->append(std::move(ret));
    fn->numberValues();
    return fn;
}

std::vector<std::unique_ptr<ir::Function>>
Extractor::extractFromModule(const ir::Module &module)
{
    std::vector<std::unique_ptr<ir::Function>> result;
    ir::Context &context = module.context();
    for (const auto &fn : module.functions()) {
        for (const auto &bb : fn->blocks()) {
            auto seq_set = extractSeqsFromBB(*bb);
            for (const auto &seq : seq_set) {
                ++stats_.sequences_considered;
                if (seq.size() < options_.min_length ||
                    seq.size() > options_.max_length)
                    continue;
                auto wrapped = wrapAsFunction(
                    context, seq, "seq" + std::to_string(next_id_));
                if (!wrapped)
                    continue;
                if (options_.reject_optimizable) {
                    auto optimized = opt::optimizeFunction(*wrapped);
                    if (!ir::structurallyEqual(*wrapped, *optimized)) {
                        ++stats_.still_optimizable_skipped;
                        continue;
                    }
                }
                uint64_t digest = ir::structuralHash(*wrapped);
                if (dedup_.count(digest)) {
                    ++stats_.duplicates_skipped;
                    continue;
                }
                dedup_.insert(digest);
                ++next_id_;
                ++stats_.extracted;
                result.push_back(std::move(wrapped));
            }
        }
    }
    return result;
}

} // namespace lpo::extract
