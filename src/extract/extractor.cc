#include "extract/extractor.h"

#include <set>

#include "ir/pattern.h"
#include "ir/printer.h"
#include "opt/opt_driver.h"

namespace lpo::extract {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

namespace {

/** Instructions that can participate in an extracted sequence. */
bool
extractable(const Instruction *inst, const ExtractorOptions &options)
{
    if (inst->isTerminator())
        return false;
    // Phis are block-entry live-ins: their values become arguments of
    // the wrapped function rather than sequence members. Stores have
    // no result and cannot end a returnable sequence, so they are
    // excluded entirely.
    if (inst->op() == Opcode::Phi || inst->op() == Opcode::Store)
        return false;
    // Loads and geps are excluded unless the caller opted in: the SAT
    // encoder cannot handle them, so sequences containing them would
    // silently verify through the weaker concrete backends.
    if (!options.allow_memory &&
        (inst->op() == Opcode::Load || inst->op() == Opcode::Gep))
        return false;
    return true;
}

bool
dependsOn(const std::vector<const Instruction *> &seq,
          const Instruction *inst)
{
    for (const Instruction *member : seq)
        for (const Value *operand : member->operands())
            if (operand == inst)
                return true;
    return false;
}

} // namespace

std::vector<std::vector<const Instruction *>>
Extractor::extractSeqsFromBB(const BasicBlock &bb,
                             const ExtractorOptions &options)
{
    std::vector<std::vector<const Instruction *>> seq_set;
    for (size_t i = bb.size(); i > 0; --i) {
        const Instruction *inst = bb.at(i - 1);
        if (!extractable(inst, options))
            continue;
        bool added = false;
        std::vector<std::vector<const Instruction *>> new_set;
        for (std::vector<const Instruction *> &seq : seq_set) {
            if (dependsOn(seq, inst)) {
                std::vector<const Instruction *> extended;
                extended.push_back(inst);
                extended.insert(extended.end(), seq.begin(), seq.end());
                new_set.push_back(std::move(extended));
                added = true;
            } else {
                new_set.push_back(std::move(seq));
            }
        }
        if (!added)
            new_set.push_back({inst});
        seq_set = std::move(new_set);
    }
    return seq_set;
}

std::vector<Value *>
Extractor::outsideOperands(const std::vector<const Instruction *> &seq)
{
    std::vector<Value *> outside;
    std::set<const Value *> seen;
    std::set<const Instruction *> members(seq.begin(), seq.end());
    for (const Instruction *inst : seq) {
        for (Value *operand : inst->operands()) {
            if (operand->isConstant() || seen.count(operand))
                continue;
            if (operand->kind() == Value::Kind::Instruction &&
                members.count(static_cast<const Instruction *>(operand)))
                continue;
            seen.insert(operand);
            outside.push_back(operand);
        }
    }
    return outside;
}

std::unique_ptr<ir::Function>
Extractor::wrapAsFunction(ir::Context &context,
                          const std::vector<const Instruction *> &seq,
                          const std::string &name)
{
    if (seq.empty())
        return nullptr;
    const Instruction *last = seq.back();
    if (last->type()->isVoid())
        return nullptr;

    auto fn = std::make_unique<ir::Function>(context, name, last->type());
    ir::BasicBlock *block = fn->addBlock("entry");

    // Arguments for every undefined operand, in use order.
    std::map<const Value *, Value *> remap;
    for (Value *operand : outsideOperands(seq)) {
        ir::Argument *arg = fn->addArg(
            operand->type(), "a" + std::to_string(fn->numArgs()));
        remap[operand] = arg;
    }

    // Clone the instructions through the shared primitive.
    for (const Instruction *inst : seq)
        remap[inst] = block->append(ir::cloneInstruction(*inst, remap));

    auto ret = std::make_unique<Instruction>(
        Opcode::Ret, context.types().voidTy(),
        std::vector<Value *>{remap[last]});
    block->append(std::move(ret));
    fn->numberValues();
    return fn;
}

std::vector<ExtractedSequence>
Extractor::extractDetailed(const ir::Module &module)
{
    std::vector<ExtractedSequence> result;
    // Canonical text -> index into `result`, for grouping this call's
    // duplicate occurrences under their unique sequence.
    std::map<std::string, size_t> local_index;
    ir::Context &context = module.context();
    for (const auto &fn : module.functions()) {
        for (const auto &bb : fn->blocks()) {
            auto seq_set = extractSeqsFromBB(*bb, options_);
            for (const auto &seq : seq_set) {
                ++stats_.sequences_considered;
                if (seq.size() < options_.min_length ||
                    seq.size() > options_.max_length) {
                    ++stats_.length_filtered;
                    continue;
                }
                auto wrapped = wrapAsFunction(
                    context, seq, "seq" + std::to_string(next_id_));
                if (!wrapped) {
                    ++stats_.unwrappable_skipped;
                    continue;
                }

                // Dedup: bucket by (masked) structural hash, confirm
                // by canonical text — a colliding hash alone must not
                // drop a distinct sequence.
                uint64_t digest =
                    ir::structuralHash(*wrapped) & options_.hash_mask;
                std::string canonical =
                    ir::printFunctionCanonical(*wrapped);
                std::vector<std::string> &bucket = dedup_[digest];
                bool duplicate = false;
                for (const std::string &entry : bucket)
                    if (entry == canonical) {
                        duplicate = true;
                        break;
                    }
                if (duplicate) {
                    ++stats_.duplicates_skipped;
                    auto it = local_index.find(canonical);
                    if (it != local_index.end())
                        result[it->second].sites.push_back(
                            SequenceSite{fn.get(), bb.get(), seq});
                    continue;
                }
                if (!bucket.empty())
                    ++stats_.hash_collisions;

                // A true new sequence. Duplicates are filtered before
                // the optimizer probe, so high-duplication module
                // traffic pays the opt pipeline once per unique
                // sequence (rejected sequences are remembered too, so
                // their repeats skip the probe as well).
                if (options_.reject_optimizable) {
                    auto optimized = opt::optimizeFunction(*wrapped);
                    if (!ir::structurallyEqual(*wrapped, *optimized)) {
                        ++stats_.still_optimizable_skipped;
                        bucket.push_back(std::move(canonical));
                        continue;
                    }
                }
                ++next_id_;
                ++stats_.extracted;
                local_index[canonical] = result.size();
                bucket.push_back(std::move(canonical));
                result.push_back(ExtractedSequence{
                    std::move(wrapped),
                    {SequenceSite{fn.get(), bb.get(), seq}}});
            }
        }
    }
    return result;
}

std::vector<std::unique_ptr<ir::Function>>
Extractor::extractFromModule(const ir::Module &module)
{
    std::vector<std::unique_ptr<ir::Function>> result;
    for (ExtractedSequence &seq : extractDetailed(module))
        result.push_back(std::move(seq.wrapped));
    return result;
}

} // namespace lpo::extract
