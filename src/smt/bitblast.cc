#include "smt/bitblast.h"

#include <algorithm>
#include <cassert>

namespace lpo::smt {

CLit
CircuitBuilder::lookupNode(const NodeKey &key)
{
    if (!hashing_)
        return 0;
    auto it = unique_.find(key);
    if (it == unique_.end())
        return 0;
    ++unique_hits_;
    return it->second;
}

void
CircuitBuilder::insertNode(const NodeKey &key, CLit out)
{
    if (hashing_)
        unique_.emplace(key, out);
}

CLit
CircuitBuilder::freshLit()
{
    return solver_.newVar();
}

BitVec
CircuitBuilder::freshBV(unsigned width)
{
    BitVec out(width);
    for (unsigned i = 0; i < width; ++i)
        out[i] = freshLit();
    return out;
}

BitVec
CircuitBuilder::constBV(const APInt &value)
{
    BitVec out(value.width());
    for (unsigned i = 0; i < value.width(); ++i)
        out[i] = ((value.zext() >> i) & 1) ? kTrue : kFalse;
    return out;
}

CLit
CircuitBuilder::andGate(CLit a, CLit b)
{
    if (a == kFalse || b == kFalse)
        return kFalse;
    if (a == kTrue)
        return b;
    if (b == kTrue)
        return a;
    if (a == b)
        return a;
    if (a == -b)
        return kFalse;
    // Canonical operand order; AND nodes cannot normalize negation
    // (and(a,b) and and(-a,b) are distinct functions), but orGate's
    // De Morgan lowering shares through this table. All
    // canonicalization is gated on hashing_ so disabling the unique
    // table reproduces the pre-hashing encoding exactly (the
    // benchmark's baseline mode).
    if (hashing_ && b < a)
        std::swap(a, b);
    NodeKey key{0, a, b, 0};
    if (CLit hit = lookupNode(key))
        return hit;
    CLit out = freshLit();
    // out <-> a & b
    solver_.addBinary(-out, a);
    solver_.addBinary(-out, b);
    solver_.addTernary(out, -a, -b);
    insertNode(key, out);
    return out;
}

CLit
CircuitBuilder::orGate(CLit a, CLit b)
{
    return -andGate(-a, -b);
}

CLit
CircuitBuilder::xorGate(CLit a, CLit b)
{
    if (a == kFalse)
        return b;
    if (b == kFalse)
        return a;
    if (a == kTrue)
        return -b;
    if (b == kTrue)
        return -a;
    if (a == b)
        return kFalse;
    if (a == -b)
        return kTrue;
    // Negation normalization: xor(-a, b) == -xor(a, b), so the node
    // is stored over positive literals and the phase returned on top.
    // Gated on hashing_ (see andGate).
    bool negate = false;
    if (hashing_) {
        if (a < 0) {
            a = -a;
            negate = !negate;
        }
        if (b < 0) {
            b = -b;
            negate = !negate;
        }
        if (b < a)
            std::swap(a, b);
    }
    NodeKey key{1, a, b, 0};
    CLit out = lookupNode(key);
    if (!out) {
        out = freshLit();
        // out <-> a ^ b
        solver_.addTernary(-out, a, b);
        solver_.addTernary(-out, -a, -b);
        solver_.addTernary(out, -a, b);
        solver_.addTernary(out, a, -b);
        insertNode(key, out);
    }
    return negate ? -out : out;
}

CLit
CircuitBuilder::muxGate(CLit sel, CLit t, CLit f)
{
    if (sel == kTrue)
        return t;
    if (sel == kFalse)
        return f;
    if (t == f)
        return t;
    if (hashing_) {
        // Selector normalization: mux(-s, t, f) == mux(s, f, t).
        if (sel < 0) {
            sel = -sel;
            std::swap(t, f);
        }
        // Constant/complement arms reduce to single (hashed) gates.
        if (t == kTrue)
            return orGate(sel, f);
        if (t == kFalse)
            return andGate(-sel, f);
        if (f == kFalse)
            return andGate(sel, t);
        if (f == kTrue)
            return orGate(-sel, t);
        if (t == -f)
            return xorGate(sel, f);
        if (t == sel)
            return orGate(sel, f);
        if (t == -sel)
            return andGate(-sel, f);
        if (f == sel)
            return andGate(sel, t);
        if (f == -sel)
            return orGate(-sel, t);
        NodeKey key{2, sel, t, f};
        if (CLit hit = lookupNode(key))
            return hit;
        CLit out = orGate(andGate(sel, t), andGate(-sel, f));
        insertNode(key, out);
        return out;
    }
    return orGate(andGate(sel, t), andGate(-sel, f));
}

CLit
CircuitBuilder::andMany(const std::vector<CLit> &lits)
{
    CLit out = kTrue;
    for (CLit lit : lits)
        out = andGate(out, lit);
    return out;
}

CLit
CircuitBuilder::orMany(const std::vector<CLit> &lits)
{
    CLit out = kFalse;
    for (CLit lit : lits)
        out = orGate(out, lit);
    return out;
}

void
CircuitBuilder::require(CLit a)
{
    if (a == kTrue)
        return;
    if (a == kFalse) {
        // Assert an explicit contradiction.
        int v = solver_.newVar();
        solver_.addUnit(v);
        solver_.addUnit(-v);
        return;
    }
    solver_.addUnit(a);
}

void
CircuitBuilder::requireImplies(CLit guard, CLit a)
{
    if (guard == kFalse || a == kTrue)
        return;
    if (guard == kTrue) {
        require(a);
        return;
    }
    if (a == kFalse) {
        require(-guard);
        return;
    }
    solver_.addBinary(-guard, a);
}

BitVec
CircuitBuilder::bvAnd(const BitVec &a, const BitVec &b)
{
    assert(a.size() == b.size());
    BitVec out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = andGate(a[i], b[i]);
    return out;
}

BitVec
CircuitBuilder::bvOr(const BitVec &a, const BitVec &b)
{
    assert(a.size() == b.size());
    BitVec out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = orGate(a[i], b[i]);
    return out;
}

BitVec
CircuitBuilder::bvXor(const BitVec &a, const BitVec &b)
{
    assert(a.size() == b.size());
    BitVec out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = xorGate(a[i], b[i]);
    return out;
}

BitVec
CircuitBuilder::bvNot(const BitVec &a)
{
    BitVec out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = -a[i];
    return out;
}

BitVec
CircuitBuilder::bvMux(CLit sel, const BitVec &t, const BitVec &f)
{
    assert(t.size() == f.size());
    BitVec out(t.size());
    for (size_t i = 0; i < t.size(); ++i)
        out[i] = muxGate(sel, t[i], f[i]);
    return out;
}

BitVec
CircuitBuilder::bvAdd(const BitVec &a, const BitVec &b, CLit *carry_out)
{
    assert(a.size() == b.size());
    BitVec out(a.size());
    CLit carry = kFalse;
    for (size_t i = 0; i < a.size(); ++i) {
        CLit axb = xorGate(a[i], b[i]);
        out[i] = xorGate(axb, carry);
        carry = orGate(andGate(a[i], b[i]), andGate(axb, carry));
    }
    if (carry_out)
        *carry_out = carry;
    return out;
}

BitVec
CircuitBuilder::bvSub(const BitVec &a, const BitVec &b, CLit *borrow_out)
{
    // a - b = a + ~b + 1; borrow = !carry_out.
    BitVec nb = bvNot(b);
    assert(a.size() == b.size());
    BitVec out(a.size());
    CLit carry = kTrue;
    for (size_t i = 0; i < a.size(); ++i) {
        CLit axb = xorGate(a[i], nb[i]);
        out[i] = xorGate(axb, carry);
        carry = orGate(andGate(a[i], nb[i]), andGate(axb, carry));
    }
    if (borrow_out)
        *borrow_out = -carry;
    return out;
}

BitVec
CircuitBuilder::bvNeg(const BitVec &a)
{
    BitVec zero(a.size(), kFalse);
    return bvSub(zero, a);
}

BitVec
CircuitBuilder::bvMul(const BitVec &a, const BitVec &b)
{
    assert(a.size() == b.size());
    size_t width = a.size();
    BitVec acc(width, kFalse);
    for (size_t i = 0; i < width; ++i) {
        // acc += (b[i] ? a << i : 0)
        BitVec partial(width, kFalse);
        for (size_t j = 0; i + j < width; ++j)
            partial[i + j] = andGate(a[j], b[i]);
        acc = bvAdd(acc, partial);
    }
    return acc;
}

BitVec
CircuitBuilder::bvMulFull(const BitVec &a, const BitVec &b)
{
    BitVec wide_a = bvZext(a, a.size() * 2);
    BitVec wide_b = bvZext(b, b.size() * 2);
    return bvMul(wide_a, wide_b);
}

void
CircuitBuilder::bvUDivRem(const BitVec &x, const BitVec &y, CLit guard,
                          BitVec *quotient, BitVec *remainder)
{
    unsigned width = x.size();
    BitVec q = freshBV(width);
    BitVec r = freshBV(width);
    // guard -> (zext(x) == zext(q)*zext(y) + zext(r)), using 2w bits so
    // the product cannot wrap, plus guard -> r < y.
    BitVec prod = bvMul(bvZext(q, width * 2), bvZext(y, width * 2));
    BitVec sum = bvAdd(prod, bvZext(r, width * 2));
    requireImplies(guard, bvEq(sum, bvZext(x, width * 2)));
    requireImplies(guard, bvULt(r, y));
    *quotient = q;
    *remainder = r;
}

void
CircuitBuilder::bvSDivRem(const BitVec &x, const BitVec &y, CLit guard,
                          BitVec *quotient, BitVec *remainder)
{
    unsigned width = x.size();
    BitVec q = freshBV(width);
    BitVec r = freshBV(width);
    // Signed constraints in 2w bits: sext(x) == sext(q)*sext(y)+sext(r),
    // |r| < |y|, and r == 0 or sign(r) == sign(x). This pins down the
    // C-style truncating quotient for every case except INT_MIN / -1,
    // which the caller guards as UB.
    BitVec xs = bvSext(x, width * 2);
    BitVec qs = bvSext(q, width * 2);
    BitVec ys = bvSext(y, width * 2);
    BitVec rs = bvSext(r, width * 2);
    BitVec prod = bvMul(qs, ys);
    BitVec sum = bvAdd(prod, rs);
    requireImplies(guard, bvEq(sum, xs));
    // |r| < |y| via absolute values in 2w bits (no overflow there).
    CLit r_negative = rs.back();
    CLit y_negative = ys.back();
    BitVec abs_r = bvMux(r_negative, bvNeg(rs), rs);
    BitVec abs_y = bvMux(y_negative, bvNeg(ys), ys);
    requireImplies(guard, bvULt(abs_r, abs_y));
    CLit r_zero = -bvNonZero(r);
    CLit x_negative = x.back();
    requireImplies(guard, orGate(r_zero, iffGate(r_negative, x_negative)));
    *quotient = q;
    *remainder = r;
}

BitVec
CircuitBuilder::bvShl(const BitVec &a, const BitVec &amount)
{
    unsigned width = a.size();
    BitVec current = a;
    // Barrel shifter over the meaningful amount bits.
    for (unsigned stage = 0; (1u << stage) < width * 2 &&
                             stage < amount.size(); ++stage) {
        unsigned shift = 1u << stage;
        BitVec shifted(width, kFalse);
        for (unsigned i = shift; i < width; ++i)
            shifted[i] = current[i - shift];
        current = bvMux(amount[stage], shifted, current);
    }
    // Amount >= width (via high bits or accumulated shift) yields 0;
    // the encoder turns that case into poison before using the value,
    // but keep the circuit well-defined regardless.
    std::vector<CLit> high_bits;
    for (size_t i = 0; i < amount.size(); ++i)
        if ((1ull << i) >= width)
            high_bits.push_back(amount[i]);
    CLit oversize = orMany(high_bits);
    BitVec zero(width, kFalse);
    return bvMux(oversize, zero, current);
}

BitVec
CircuitBuilder::bvLShr(const BitVec &a, const BitVec &amount)
{
    unsigned width = a.size();
    BitVec current = a;
    for (unsigned stage = 0; (1u << stage) < width * 2 &&
                             stage < amount.size(); ++stage) {
        unsigned shift = 1u << stage;
        BitVec shifted(width, kFalse);
        for (unsigned i = 0; i + shift < width; ++i)
            shifted[i] = current[i + shift];
        current = bvMux(amount[stage], shifted, current);
    }
    std::vector<CLit> high_bits;
    for (size_t i = 0; i < amount.size(); ++i)
        if ((1ull << i) >= width)
            high_bits.push_back(amount[i]);
    CLit oversize = orMany(high_bits);
    BitVec zero(width, kFalse);
    return bvMux(oversize, zero, current);
}

BitVec
CircuitBuilder::bvAShr(const BitVec &a, const BitVec &amount)
{
    unsigned width = a.size();
    CLit sign = a.back();
    BitVec current = a;
    for (unsigned stage = 0; (1u << stage) < width * 2 &&
                             stage < amount.size(); ++stage) {
        unsigned shift = 1u << stage;
        BitVec shifted(width, sign);
        for (unsigned i = 0; i + shift < width; ++i)
            shifted[i] = current[i + shift];
        current = bvMux(amount[stage], shifted, current);
    }
    std::vector<CLit> high_bits;
    for (size_t i = 0; i < amount.size(); ++i)
        if ((1ull << i) >= width)
            high_bits.push_back(amount[i]);
    CLit oversize = orMany(high_bits);
    BitVec filled(width, sign);
    return bvMux(oversize, filled, current);
}

CLit
CircuitBuilder::bvEq(const BitVec &a, const BitVec &b)
{
    assert(a.size() == b.size());
    std::vector<CLit> bits;
    for (size_t i = 0; i < a.size(); ++i)
        bits.push_back(iffGate(a[i], b[i]));
    return andMany(bits);
}

CLit
CircuitBuilder::bvULt(const BitVec &a, const BitVec &b)
{
    CLit borrow = kFalse;
    bvSub(a, b, &borrow);
    return borrow;
}

CLit
CircuitBuilder::bvULe(const BitVec &a, const BitVec &b)
{
    return -bvULt(b, a);
}

CLit
CircuitBuilder::bvSLt(const BitVec &a, const BitVec &b)
{
    // Flip sign bits and compare unsigned.
    BitVec fa = a;
    BitVec fb = b;
    fa.back() = -fa.back();
    fb.back() = -fb.back();
    return bvULt(fa, fb);
}

CLit
CircuitBuilder::bvSLe(const BitVec &a, const BitVec &b)
{
    return -bvSLt(b, a);
}

CLit
CircuitBuilder::bvNonZero(const BitVec &a)
{
    return orMany(a);
}

BitVec
CircuitBuilder::bvTrunc(const BitVec &a, unsigned width)
{
    assert(width <= a.size());
    return BitVec(a.begin(), a.begin() + width);
}

BitVec
CircuitBuilder::bvZext(const BitVec &a, unsigned width)
{
    assert(width >= a.size());
    BitVec out = a;
    out.resize(width, kFalse);
    return out;
}

BitVec
CircuitBuilder::bvSext(const BitVec &a, unsigned width)
{
    assert(width >= a.size());
    BitVec out = a;
    out.resize(width, a.back());
    return out;
}

CLit
CircuitBuilder::addOverflowsU(const BitVec &a, const BitVec &b)
{
    CLit carry = kFalse;
    bvAdd(a, b, &carry);
    return carry;
}

CLit
CircuitBuilder::addOverflowsS(const BitVec &a, const BitVec &b)
{
    BitVec sum = bvAdd(a, b);
    CLit same_sign = iffGate(a.back(), b.back());
    return andGate(same_sign, xorGate(sum.back(), a.back()));
}

CLit
CircuitBuilder::subOverflowsU(const BitVec &a, const BitVec &b)
{
    return bvULt(a, b);
}

CLit
CircuitBuilder::subOverflowsS(const BitVec &a, const BitVec &b)
{
    BitVec diff = bvSub(a, b);
    CLit diff_sign = xorGate(a.back(), b.back());
    return andGate(diff_sign, xorGate(diff.back(), a.back()));
}

CLit
CircuitBuilder::mulOverflowsU(const BitVec &a, const BitVec &b)
{
    BitVec full = bvMulFull(a, b);
    std::vector<CLit> high(full.begin() + a.size(), full.end());
    return orMany(high);
}

CLit
CircuitBuilder::mulOverflowsS(const BitVec &a, const BitVec &b)
{
    unsigned width = a.size();
    BitVec full = bvMul(bvSext(a, width * 2), bvSext(b, width * 2));
    // Overflow iff the top w+1 bits are not all equal to bit w-1.
    CLit sign = full[width - 1];
    std::vector<CLit> mismatch;
    for (unsigned i = width; i < width * 2; ++i)
        mismatch.push_back(xorGate(full[i], sign));
    return orMany(mismatch);
}

bool
CircuitBuilder::modelLit(CLit a) const
{
    if (a == kTrue)
        return true;
    if (a == kFalse)
        return false;
    bool value = solver_.modelValue(a > 0 ? a : -a);
    return a > 0 ? value : !value;
}

APInt
CircuitBuilder::modelBV(const BitVec &a) const
{
    uint64_t value = 0;
    for (size_t i = 0; i < a.size(); ++i)
        if (modelLit(a[i]))
            value |= uint64_t(1) << i;
    return APInt(static_cast<unsigned>(a.size()), value);
}

} // namespace lpo::smt
