#include "smt/sat.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lpo::smt {

int
SatSolver::newVar()
{
    ++num_vars_;
    assigns_.push_back(Assign::Unassigned);
    levels_.push_back(0);
    reasons_.push_back(-1);
    activities_.push_back(0.0);
    polarity_.push_back(false);
    heap_pos_.push_back(-1);
    watches_.resize((num_vars_ + 1) * 2);
    heapInsert(num_vars_);
    return num_vars_;
}

// ---------------------------------------------------------------------
// Decision-order heap
// ---------------------------------------------------------------------

void
SatSolver::heapSwap(size_t i, size_t j)
{
    std::swap(order_heap_[i], order_heap_[j]);
    heap_pos_[order_heap_[i]] = static_cast<int>(i);
    heap_pos_[order_heap_[j]] = static_cast<int>(j);
}

void
SatSolver::heapUp(size_t i)
{
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!heapLess(order_heap_[i], order_heap_[parent]))
            break;
        heapSwap(i, parent);
        i = parent;
    }
}

void
SatSolver::heapDown(size_t i)
{
    for (;;) {
        size_t left = 2 * i + 1;
        size_t right = 2 * i + 2;
        size_t best = i;
        if (left < order_heap_.size() &&
            heapLess(order_heap_[left], order_heap_[best]))
            best = left;
        if (right < order_heap_.size() &&
            heapLess(order_heap_[right], order_heap_[best]))
            best = right;
        if (best == i)
            break;
        heapSwap(i, best);
        i = best;
    }
}

void
SatSolver::heapInsert(int var)
{
    if (heap_pos_[var] != -1)
        return;
    heap_pos_[var] = static_cast<int>(order_heap_.size());
    order_heap_.push_back(var);
    heapUp(order_heap_.size() - 1);
}

void
SatSolver::attachClause(int index)
{
    const Clause &clause = clauses_[index];
    assert(clause.lits.size() >= 2);
    watches_[litNeg(clause.lits[0])].push_back(index);
    watches_[litNeg(clause.lits[1])].push_back(index);
}

bool
SatSolver::addClause(std::vector<Lit> lits)
{
    if (unsat_)
        return false;
    assert(!lits.empty());
    // Encode, dedup, and drop tautologies.
    std::vector<int> enc;
    enc.reserve(lits.size());
    for (Lit lit : lits) {
        assert(lit != 0 && std::abs(lit) <= num_vars_);
        enc.push_back(encode(lit));
    }
    std::sort(enc.begin(), enc.end());
    enc.erase(std::unique(enc.begin(), enc.end()), enc.end());
    for (size_t i = 0; i + 1 < enc.size(); ++i)
        if (litVar(enc[i]) == litVar(enc[i + 1]))
            return true; // tautology: v OR !v
    // Remove literals already false at level 0; satisfied => drop.
    std::vector<int> pruned;
    for (int e : enc) {
        Assign value = valueOf(e);
        if (value == Assign::True && levels_[litVar(e)] == 0)
            return true;
        if (value == Assign::False && levels_[litVar(e)] == 0)
            continue;
        pruned.push_back(e);
    }
    if (pruned.empty()) {
        unsat_ = true;
        return false;
    }
    if (pruned.size() == 1) {
        ++clauses_added_;
        if (!enqueue(pruned[0], -1)) {
            unsat_ = true;
            return false;
        }
        if (propagate() != -1) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    ++clauses_added_;
    clauses_.push_back(Clause{std::move(pruned), false, 0.0});
    attachClause(static_cast<int>(clauses_.size()) - 1);
    return true;
}

bool
SatSolver::enqueue(int enc, int reason)
{
    Assign value = valueOf(enc);
    if (value != Assign::Unassigned)
        return value == Assign::True;
    int var = litVar(enc);
    assigns_[var] = (enc & 1) ? Assign::False : Assign::True;
    levels_[var] = static_cast<int>(trail_limits_.size());
    reasons_[var] = reason;
    polarity_[var] = !(enc & 1);
    trail_.push_back(enc);
    return true;
}

int
SatSolver::propagate()
{
    while (propagate_head_ < trail_.size()) {
        int enc = trail_[propagate_head_++];
        ++propagations_;
        std::vector<int> &watch_list = watches_[enc];
        size_t keep = 0;
        for (size_t wi = 0; wi < watch_list.size(); ++wi) {
            int ci = watch_list[wi];
            Clause &clause = clauses_[ci];
            // Normalize: watched literals are lits[0] and lits[1];
            // the falsified one must be lits[1].
            int falsified = litNeg(enc);
            if (clause.lits[0] == falsified)
                std::swap(clause.lits[0], clause.lits[1]);
            if (valueOf(clause.lits[0]) == Assign::True) {
                watch_list[keep++] = ci;
                continue;
            }
            // Find a new watch.
            bool moved = false;
            for (size_t k = 2; k < clause.lits.size(); ++k) {
                if (valueOf(clause.lits[k]) != Assign::False) {
                    std::swap(clause.lits[1], clause.lits[k]);
                    watches_[litNeg(clause.lits[1])].push_back(ci);
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Unit or conflict.
            watch_list[keep++] = ci;
            if (!enqueue(clause.lits[0], ci)) {
                // Conflict: keep remaining watches and report.
                for (size_t rest = wi + 1; rest < watch_list.size(); ++rest)
                    watch_list[keep++] = watch_list[rest];
                watch_list.resize(keep);
                propagate_head_ = trail_.size();
                return ci;
            }
        }
        watch_list.resize(keep);
    }
    return -1;
}

void
SatSolver::bumpVar(int var)
{
    activities_[var] += var_inc_;
    if (activities_[var] > 1e100) {
        for (double &activity : activities_)
            activity *= 1e-100;
        var_inc_ *= 1e-100;
        // Uniform rescaling preserves the heap order exactly.
    }
    if (heap_pos_[var] != -1)
        heapUp(static_cast<size_t>(heap_pos_[var]));
}

void
SatSolver::bumpClause(Clause &clause)
{
    clause.activity += cla_inc_;
    if (clause.activity > 1e20) {
        for (Clause &c : clauses_)
            if (c.learnt)
                c.activity *= 1e-20;
        cla_inc_ *= 1e-20;
    }
}

void
SatSolver::decayActivities()
{
    var_inc_ /= 0.95;
    cla_inc_ /= 0.999;
}

int
SatSolver::analyze(int conflict, std::vector<int> &learnt)
{
    // First-UIP conflict analysis.
    learnt.clear();
    learnt.push_back(0); // placeholder for the asserting literal
    std::vector<bool> seen(num_vars_ + 1, false);
    int counter = 0;
    int enc = -1;
    size_t trail_index = trail_.size();
    int current_level = static_cast<int>(trail_limits_.size());

    int reason_clause = conflict;
    do {
        assert(reason_clause != -1);
        Clause &clause = clauses_[reason_clause];
        if (clause.learnt)
            bumpClause(clause);
        size_t start = (enc == -1) ? 0 : 1;
        for (size_t i = start; i < clause.lits.size(); ++i) {
            int q = clause.lits[i];
            if (enc != -1 && clause.lits[0] != litNeg(enc) && i == 0) {
                // shouldn't happen; reason clause has asserting lit first
            }
            int var = litVar(q);
            if (seen[var] || levels_[var] == 0)
                continue;
            seen[var] = true;
            bumpVar(var);
            if (levels_[var] >= current_level) {
                ++counter;
            } else {
                learnt.push_back(q);
            }
        }
        // Pick the next literal from the trail to resolve on.
        do {
            assert(trail_index > 0);
            enc = trail_[--trail_index];
        } while (!seen[litVar(enc)]);
        seen[litVar(enc)] = false;
        reason_clause = reasons_[litVar(enc)];
        --counter;
    } while (counter > 0);
    learnt[0] = litNeg(enc);

    // Compute the backtrack level (second-highest level in clause).
    int bt_level = 0;
    if (learnt.size() > 1) {
        size_t max_i = 1;
        for (size_t i = 2; i < learnt.size(); ++i)
            if (levels_[litVar(learnt[i])] >
                levels_[litVar(learnt[max_i])])
                max_i = i;
        std::swap(learnt[1], learnt[max_i]);
        bt_level = levels_[litVar(learnt[1])];
    }
    return bt_level;
}

void
SatSolver::backtrack(int level)
{
    if (static_cast<int>(trail_limits_.size()) <= level)
        return;
    size_t limit = trail_limits_[level];
    for (size_t i = trail_.size(); i > limit; --i) {
        int var = litVar(trail_[i - 1]);
        assigns_[var] = Assign::Unassigned;
        reasons_[var] = -1;
        heapInsert(var);
    }
    trail_.resize(limit);
    trail_limits_.resize(level);
    propagate_head_ = trail_.size();
}

int
SatSolver::pickBranchVar()
{
    // Pop until an unassigned variable surfaces; assigned entries are
    // discarded (they re-enter the heap when backtracking unassigns
    // them).
    while (!order_heap_.empty()) {
        int var = order_heap_[0];
        heapSwap(0, order_heap_.size() - 1);
        order_heap_.pop_back();
        heap_pos_[var] = -1;
        heapDown(0);
        if (assigns_[var] == Assign::Unassigned)
            return var;
    }
    return -1;
}

void
SatSolver::reduceLearnts()
{
    // Called at decision level 0. Level-0 assignments may still carry
    // clause-index reasons from root propagation; analyze() never
    // dereferences level-0 reasons, so they can be cleared before the
    // indices are invalidated by compaction.
    for (int enc : trail_)
        reasons_[litVar(enc)] = -1;

    // Rank non-binary learnt clauses by activity, ties to the older
    // (lower-index) clause so the reduction is deterministic; drop the
    // less active half. Binary learnt clauses are cheap to keep and
    // high-value, so they are never dropped.
    std::vector<int> candidates;
    for (size_t i = 0; i < clauses_.size(); ++i)
        if (clauses_[i].learnt && clauses_[i].lits.size() > 2)
            candidates.push_back(static_cast<int>(i));
    if (candidates.size() < 2)
        return;
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        if (clauses_[a].activity != clauses_[b].activity)
            return clauses_[a].activity > clauses_[b].activity;
        return a < b;
    });
    std::vector<bool> drop(clauses_.size(), false);
    for (size_t i = candidates.size() / 2; i < candidates.size(); ++i)
        drop[candidates[i]] = true;

    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    for (size_t i = 0; i < clauses_.size(); ++i) {
        if (drop[i])
            continue;
        kept.push_back(std::move(clauses_[i]));
    }
    uint64_t removed = clauses_.size() - kept.size();
    clauses_ = std::move(kept);
    learnts_removed_ += removed;
    num_learnts_ -= removed;

    // Clause indices changed wholesale; rebuild every watch list.
    for (std::vector<int> &watch_list : watches_)
        watch_list.clear();
    for (size_t i = 0; i < clauses_.size(); ++i)
        attachClause(static_cast<int>(i));
}

SatResult
SatSolver::solve(uint64_t conflict_budget)
{
    if (unsat_)
        return SatResult::Unsat;
    if (propagate() != -1) {
        unsat_ = true;
        return SatResult::Unsat;
    }
    uint64_t restart_limit = 100;
    uint64_t conflicts_since_restart = 0;

    for (;;) {
        int conflict = propagate();
        if (conflict != -1) {
            ++conflicts_;
            ++conflicts_since_restart;
            if (trail_limits_.empty()) {
                unsat_ = true;
                return SatResult::Unsat;
            }
            if (conflict_budget && conflicts_ >= conflict_budget)
                return SatResult::Unknown;
            std::vector<int> learnt;
            int bt_level = analyze(conflict, learnt);
            backtrack(bt_level);
            if (learnt.size() == 1) {
                if (!enqueue(learnt[0], -1)) {
                    unsat_ = true;
                    return SatResult::Unsat;
                }
            } else {
                clauses_.push_back(Clause{learnt, true, cla_inc_});
                ++num_learnts_;
                int ci = static_cast<int>(clauses_.size()) - 1;
                attachClause(ci);
                bool ok = enqueue(learnt[0], ci);
                assert(ok && "learnt clause must be asserting");
                (void)ok;
            }
            decayActivities();
        } else {
            if (conflicts_since_restart >= restart_limit) {
                conflicts_since_restart = 0;
                restart_limit = restart_limit * 3 / 2;
                backtrack(0);
                // Restart is the safe point to shed inactive learnt
                // clauses: nothing above level 0 holds a reason.
                if (num_learnts_ > reduce_limit_) {
                    reduceLearnts();
                    reduce_limit_ += reduce_limit_ / 2;
                }
                continue;
            }
            int var = pickBranchVar();
            if (var == -1)
                return SatResult::Sat;
            ++decisions_;
            trail_limits_.push_back(static_cast<int>(trail_.size()));
            enqueue(var * 2 + (polarity_[var] ? 0 : 1), -1);
        }
    }
}

bool
SatSolver::modelValue(int var) const
{
    assert(var >= 1 && var <= num_vars_);
    return assigns_[var] == Assign::True;
}

} // namespace lpo::smt
