#include "smt/sat.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "support/failpoint.h"

namespace lpo::smt {

namespace {

/**
 * The Luby sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,... (0-indexed),
 * the optimal universal restart schedule. Ported from MiniSat's
 * luby() with base 2, returning the power directly.
 */
uint64_t
lubyTerm(uint64_t x)
{
    uint64_t size = 1, seq = 0;
    while (size < x + 1) {
        size = 2 * size + 1;
        ++seq;
    }
    while (size - 1 != x) {
        size = (size - 1) / 2;
        --seq;
        x = x % size;
    }
    return uint64_t(1) << seq;
}

} // namespace

int
SatSolver::newVarImpl(bool decision)
{
    ++num_vars_;
    assigns_.push_back(Assign::Unassigned);
    levels_.push_back(0);
    reasons_.push_back(-1);
    activities_.push_back(0.0);
    polarity_.push_back(false);
    decision_.push_back(decision);
    heap_pos_.push_back(-1);
    seen_.push_back(0);
    watches_.resize((num_vars_ + 1) * 2);
    heapInsert(num_vars_);
    return num_vars_;
}

int
SatSolver::newVar()
{
    return newVarImpl(true);
}

int
SatSolver::newActivationVar()
{
    return newVarImpl(false);
}

// ---------------------------------------------------------------------
// Decision-order heap
// ---------------------------------------------------------------------

void
SatSolver::heapSwap(size_t i, size_t j)
{
    std::swap(order_heap_[i], order_heap_[j]);
    heap_pos_[order_heap_[i]] = static_cast<int>(i);
    heap_pos_[order_heap_[j]] = static_cast<int>(j);
}

void
SatSolver::heapUp(size_t i)
{
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!heapLess(order_heap_[i], order_heap_[parent]))
            break;
        heapSwap(i, parent);
        i = parent;
    }
}

void
SatSolver::heapDown(size_t i)
{
    for (;;) {
        size_t left = 2 * i + 1;
        size_t right = 2 * i + 2;
        size_t best = i;
        if (left < order_heap_.size() &&
            heapLess(order_heap_[left], order_heap_[best]))
            best = left;
        if (right < order_heap_.size() &&
            heapLess(order_heap_[right], order_heap_[best]))
            best = right;
        if (best == i)
            break;
        heapSwap(i, best);
        i = best;
    }
}

void
SatSolver::heapInsert(int var)
{
    // Activation vars never join the decision order; their values come
    // from assumptions or release units only.
    if (!decision_[var])
        return;
    if (heap_pos_[var] != -1)
        return;
    heap_pos_[var] = static_cast<int>(order_heap_.size());
    order_heap_.push_back(var);
    heapUp(order_heap_.size() - 1);
}

int
SatSolver::storeClause(const std::vector<int> &lits, bool learnt,
                       uint32_t lbd, double activity)
{
    Clause clause;
    clause.offset = static_cast<uint32_t>(pool_.size());
    clause.size = static_cast<uint32_t>(lits.size());
    clause.learnt = learnt;
    clause.lbd = lbd;
    clause.activity = activity;
    pool_.insert(pool_.end(), lits.begin(), lits.end());
    clauses_.push_back(clause);
    return static_cast<int>(clauses_.size()) - 1;
}

void
SatSolver::attachClause(int index)
{
    const Clause &clause = clauses_[index];
    assert(clause.size >= 2);
    const int *lits = clauseLits(clause);
    // Binary clauses carry their other literal in the watcher itself
    // (it can never move), so propagation over them touches no clause
    // memory. Longer clauses use the classic two-watch scheme.
    int blocker0 = clause.size == 2 ? lits[1] : -1;
    int blocker1 = clause.size == 2 ? lits[0] : -1;
    watches_[litNeg(lits[0])].push_back(Watcher{index, blocker0});
    watches_[litNeg(lits[1])].push_back(Watcher{index, blocker1});
}

bool
SatSolver::addClause(std::vector<Lit> lits)
{
    if (unsat_)
        return false;
    assert(!lits.empty());
    assert(trail_limits_.empty() &&
           "clauses may only be added at decision level 0");
    // Encode, dedup, and drop tautologies.
    std::vector<int> enc;
    enc.reserve(lits.size());
    for (Lit lit : lits) {
        assert(lit != 0 && std::abs(lit) <= num_vars_);
        enc.push_back(encode(lit));
    }
    std::sort(enc.begin(), enc.end());
    enc.erase(std::unique(enc.begin(), enc.end()), enc.end());
    for (size_t i = 0; i + 1 < enc.size(); ++i)
        if (litVar(enc[i]) == litVar(enc[i + 1]))
            return true; // tautology: v OR !v
    // Remove literals already false at level 0; satisfied => drop.
    std::vector<int> pruned;
    for (int e : enc) {
        Assign value = valueOf(e);
        if (value == Assign::True && levels_[litVar(e)] == 0)
            return true;
        if (value == Assign::False && levels_[litVar(e)] == 0)
            continue;
        pruned.push_back(e);
    }
    if (pruned.empty()) {
        unsat_ = true;
        return false;
    }
    if (pruned.size() == 1) {
        ++clauses_added_;
        if (!enqueue(pruned[0], -1)) {
            unsat_ = true;
            return false;
        }
        if (propagate() != -1) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    ++clauses_added_;
    int ci = storeClause(pruned, false, 0, 0.0);
    attachClause(ci);
    return true;
}

bool
SatSolver::enqueue(int enc, int reason)
{
    Assign value = valueOf(enc);
    if (value != Assign::Unassigned)
        return value == Assign::True;
    int var = litVar(enc);
    assigns_[var] = (enc & 1) ? Assign::False : Assign::True;
    levels_[var] = static_cast<int>(trail_limits_.size());
    reasons_[var] = reason;
    polarity_[var] = !(enc & 1);
    trail_.push_back(enc);
    return true;
}

int
SatSolver::propagate()
{
    while (propagate_head_ < trail_.size()) {
        int enc = trail_[propagate_head_++];
        ++propagations_;
        std::vector<Watcher> &watch_list = watches_[enc];
        size_t keep = 0;
        for (size_t wi = 0; wi < watch_list.size(); ++wi) {
            Watcher w = watch_list[wi];
            int falsified = litNeg(enc);
            if (w.blocker != -1) {
                // Binary fast path: the watcher already names the only
                // other literal, so satisfied and propagating clauses
                // are handled without dereferencing the clause.
                Assign value = valueOf(w.blocker);
                watch_list[keep++] = w;
                if (value == Assign::True)
                    continue;
                if (value == Assign::Unassigned) {
                    enqueue(w.blocker, w.clause);
                    continue;
                }
                // Conflict. Normalize the stored order (other literal
                // first, falsified literal second) exactly as the
                // general path would have left it, so conflict
                // analysis sees the same literal order either way.
                Clause &clause = clauses_[w.clause];
                int *lits = clauseLits(clause);
                if (lits[0] == falsified)
                    std::swap(lits[0], lits[1]);
                for (size_t rest = wi + 1; rest < watch_list.size();
                     ++rest)
                    watch_list[keep++] = watch_list[rest];
                watch_list.resize(keep);
                propagate_head_ = trail_.size();
                return w.clause;
            }
            Clause &clause = clauses_[w.clause];
            int *lits = clauseLits(clause);
            // Normalize: watched literals are lits[0] and lits[1];
            // the falsified one must be lits[1].
            if (lits[0] == falsified)
                std::swap(lits[0], lits[1]);
            if (valueOf(lits[0]) == Assign::True) {
                watch_list[keep++] = w;
                continue;
            }
            // Find a new watch.
            bool moved = false;
            for (uint32_t k = 2; k < clause.size; ++k) {
                if (valueOf(lits[k]) != Assign::False) {
                    std::swap(lits[1], lits[k]);
                    watches_[litNeg(lits[1])].push_back(
                        Watcher{w.clause, -1});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Unit or conflict.
            watch_list[keep++] = w;
            if (!enqueue(lits[0], w.clause)) {
                // Conflict: keep remaining watches and report.
                for (size_t rest = wi + 1; rest < watch_list.size();
                     ++rest)
                    watch_list[keep++] = watch_list[rest];
                watch_list.resize(keep);
                propagate_head_ = trail_.size();
                return w.clause;
            }
        }
        watch_list.resize(keep);
    }
    return -1;
}

void
SatSolver::bumpVar(int var)
{
    activities_[var] += var_inc_;
    if (activities_[var] > 1e100) {
        for (double &activity : activities_)
            activity *= 1e-100;
        var_inc_ *= 1e-100;
        // Uniform rescaling preserves the heap order exactly.
    }
    if (heap_pos_[var] != -1)
        heapUp(static_cast<size_t>(heap_pos_[var]));
}

void
SatSolver::bumpClause(Clause &clause)
{
    clause.activity += cla_inc_;
    if (clause.activity > 1e20) {
        for (Clause &c : clauses_)
            if (c.learnt)
                c.activity *= 1e-20;
        cla_inc_ *= 1e-20;
    }
}

void
SatSolver::decayActivities()
{
    var_inc_ /= 0.95;
    cla_inc_ /= 0.999;
}

bool
SatSolver::litRedundant(int enc, uint32_t abstract_levels,
                        std::vector<int> &to_clear)
{
    // Recursive (MiniSat "deep") minimization: @p enc is redundant if
    // every literal in its reason chain is already in the learnt
    // clause (seen), at level 0, or itself redundant. Decisions and
    // literals whose level is outside the clause's abstract level set
    // end the chain as failures. Marks made during a failed probe are
    // rolled back; marks from successful probes persist as memoized
    // "reachable from the clause" facts for later probes.
    redundant_stack_.clear();
    redundant_stack_.push_back(enc);
    size_t rollback = to_clear.size();
    while (!redundant_stack_.empty()) {
        int p = redundant_stack_.back();
        redundant_stack_.pop_back();
        assert(reasons_[litVar(p)] != -1);
        const Clause &reason = clauses_[reasons_[litVar(p)]];
        const int *lits = clauseLits(reason);
        // Skip the literal the clause propagated (@p p itself) by
        // variable; binary reasons from the watcher fast path are not
        // position-normalized, so positional skipping would be wrong.
        int skip_var = litVar(p);
        for (uint32_t i = 0; i < reason.size; ++i) {
            int q = lits[i];
            int var = litVar(q);
            if (var == skip_var || seen_[var] || levels_[var] == 0)
                continue;
            if (reasons_[var] == -1 ||
                !(abstractLevel(var) & abstract_levels)) {
                for (size_t j = rollback; j < to_clear.size(); ++j)
                    seen_[to_clear[j]] = 0;
                to_clear.resize(rollback);
                return false;
            }
            seen_[var] = 1;
            to_clear.push_back(var);
            redundant_stack_.push_back(q);
        }
    }
    return true;
}

int
SatSolver::analyze(int conflict, std::vector<int> &learnt, uint32_t *lbd)
{
    // First-UIP conflict analysis. The marker array seen_ is a member
    // scratch buffer: it is all-zero on entry and every mark made here
    // is recorded and cleared again on exit, so no per-conflict
    // allocation or O(num_vars) wipe happens.
    learnt.clear();
    learnt.push_back(0); // placeholder for the asserting literal
    seen_clear_.clear();
    minimize_clear_.clear();
    int counter = 0;
    int enc = -1;
    size_t trail_index = trail_.size();
    int current_level = static_cast<int>(trail_limits_.size());

    int reason_clause = conflict;
    do {
        assert(reason_clause != -1);
        Clause &clause = clauses_[reason_clause];
        if (clause.learnt)
            bumpClause(clause);
        const int *lits = clauseLits(clause);
        // For reason clauses, skip the literal that was propagated
        // (var of @p enc); skipping by variable rather than position
        // keeps this correct for watcher-fast-path binary reasons.
        int skip_var = (enc == -1) ? 0 : litVar(enc);
        for (uint32_t i = 0; i < clause.size; ++i) {
            int q = lits[i];
            int var = litVar(q);
            if (var == skip_var || seen_[var] || levels_[var] == 0)
                continue;
            seen_[var] = 1;
            seen_clear_.push_back(var);
            bumpVar(var);
            if (levels_[var] >= current_level) {
                ++counter;
            } else {
                learnt.push_back(q);
            }
        }
        // Pick the next literal from the trail to resolve on.
        do {
            assert(trail_index > 0);
            enc = trail_[--trail_index];
        } while (!seen_[litVar(enc)]);
        seen_[litVar(enc)] = 0;
        reason_clause = reasons_[litVar(enc)];
        --counter;
    } while (counter > 0);
    learnt[0] = litNeg(enc);

    // Recursive clause minimization: drop literals implied by the
    // rest of the clause through their reason chains. seen_ still
    // marks exactly the vars of learnt[1..]; litRedundant extends it.
    if (learnt.size() > 1) {
        uint32_t abstract_levels = 0;
        for (size_t i = 1; i < learnt.size(); ++i)
            abstract_levels |= abstractLevel(litVar(learnt[i]));
        size_t kept = 1;
        for (size_t i = 1; i < learnt.size(); ++i) {
            int var = litVar(learnt[i]);
            if (reasons_[var] == -1 ||
                !litRedundant(learnt[i], abstract_levels,
                              minimize_clear_))
                learnt[kept++] = learnt[i];
        }
        learnt.resize(kept);
    }

    // LBD: number of distinct decision levels in the final clause.
    // Low-LBD ("glue") clauses connect few levels and are the learnt
    // clauses worth keeping forever.
    if (lbd) {
        lbd_levels_.clear();
        for (int q : learnt) {
            int level = levels_[litVar(q)];
            bool found = false;
            for (int s : lbd_levels_)
                found = found || s == level;
            if (!found)
                lbd_levels_.push_back(level);
        }
        *lbd = static_cast<uint32_t>(lbd_levels_.size());
    }

    // Compute the backtrack level (second-highest level in clause).
    int bt_level = 0;
    if (learnt.size() > 1) {
        size_t max_i = 1;
        for (size_t i = 2; i < learnt.size(); ++i)
            if (levels_[litVar(learnt[i])] >
                levels_[litVar(learnt[max_i])])
                max_i = i;
        std::swap(learnt[1], learnt[max_i]);
        bt_level = levels_[litVar(learnt[1])];
    }

    // Restore the all-zero seen_ invariant (both lists may share
    // entries with in-loop clears; clearing twice is harmless).
    for (int var : seen_clear_)
        seen_[var] = 0;
    for (int var : minimize_clear_)
        seen_[var] = 0;
    return bt_level;
}

void
SatSolver::analyzeFinal(int failed_enc)
{
    // Final-conflict analysis (MiniSat analyzeFinal): compute which
    // assumptions imply the negation of the failed assumption
    // @p failed_enc. During the assumption phase every decision on the
    // trail IS an assumption, so reason-less marked vars above level 0
    // are exactly the core members.
    conflict_core_.clear();
    conflict_core_.push_back(decode(failed_enc));
    if (trail_limits_.empty())
        return;
    seen_clear_.clear();
    seen_[litVar(failed_enc)] = 1;
    seen_clear_.push_back(litVar(failed_enc));
    size_t bottom = static_cast<size_t>(trail_limits_[0]);
    for (size_t i = trail_.size(); i > bottom; --i) {
        int enc = trail_[i - 1];
        int var = litVar(enc);
        if (!seen_[var])
            continue;
        if (reasons_[var] == -1) {
            assert(levels_[var] > 0);
            conflict_core_.push_back(decode(enc));
        } else {
            const Clause &reason = clauses_[reasons_[var]];
            const int *lits = clauseLits(reason);
            for (uint32_t j = 0; j < reason.size; ++j) {
                int qvar = litVar(lits[j]);
                if (qvar != var && levels_[qvar] > 0) {
                    seen_[qvar] = 1;
                    seen_clear_.push_back(qvar);
                }
            }
        }
        seen_[var] = 0;
    }
    // Marks below the scanned trail range (e.g. the failed literal
    // when it was falsified at the root) must be wiped explicitly to
    // restore the all-zero invariant.
    for (int var : seen_clear_)
        seen_[var] = 0;
}

void
SatSolver::backtrack(int level)
{
    if (static_cast<int>(trail_limits_.size()) <= level)
        return;
    size_t limit = trail_limits_[level];
    for (size_t i = trail_.size(); i > limit; --i) {
        int var = litVar(trail_[i - 1]);
        assigns_[var] = Assign::Unassigned;
        reasons_[var] = -1;
        heapInsert(var);
    }
    trail_.resize(limit);
    trail_limits_.resize(level);
    propagate_head_ = trail_.size();
}

int
SatSolver::pickBranchVar()
{
    // Pop until an unassigned variable surfaces; assigned entries are
    // discarded (they re-enter the heap when backtracking unassigns
    // them).
    while (!order_heap_.empty()) {
        int var = order_heap_[0];
        heapSwap(0, order_heap_.size() - 1);
        order_heap_.pop_back();
        heap_pos_[var] = -1;
        heapDown(0);
        if (assigns_[var] == Assign::Unassigned)
            return var;
    }
    return -1;
}

void
SatSolver::rebuildWatches()
{
    for (std::vector<Watcher> &watch_list : watches_)
        watch_list.clear();
    for (size_t i = 0; i < clauses_.size(); ++i)
        attachClause(static_cast<int>(i));
}

void
SatSolver::reduceLearnts()
{
    // Called at decision level 0. Level-0 assignments may still carry
    // clause-index reasons from root propagation; analyze() never
    // dereferences level-0 reasons, so they can be cleared before the
    // indices are invalidated by compaction.
    for (int enc : trail_)
        reasons_[litVar(enc)] = -1;

    // Rank reducible learnt clauses by activity, ties to the older
    // (lower-index) clause so the reduction is deterministic; drop the
    // less active half. Binary learnt clauses are cheap to keep and
    // high-value, and glue clauses (LBD <= 2) bridge almost-adjacent
    // decision levels and keep proving useful across incremental
    // calls, so neither is ever dropped.
    std::vector<int> candidates;
    for (size_t i = 0; i < clauses_.size(); ++i)
        if (clauses_[i].learnt && clauses_[i].size > 2 &&
            clauses_[i].lbd > 2)
            candidates.push_back(static_cast<int>(i));
    if (candidates.size() < 2)
        return;
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        if (clauses_[a].activity != clauses_[b].activity)
            return clauses_[a].activity > clauses_[b].activity;
        return a < b;
    });
    std::vector<bool> drop(clauses_.size(), false);
    for (size_t i = candidates.size() / 2; i < candidates.size(); ++i)
        drop[candidates[i]] = true;

    // Compact headers and the literal arena together.
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    std::vector<int> new_pool;
    new_pool.reserve(pool_.size());
    for (size_t i = 0; i < clauses_.size(); ++i) {
        if (drop[i])
            continue;
        Clause clause = clauses_[i];
        const int *lits = clauseLits(clause);
        uint32_t offset = static_cast<uint32_t>(new_pool.size());
        new_pool.insert(new_pool.end(), lits, lits + clause.size);
        clause.offset = offset;
        kept.push_back(clause);
    }
    uint64_t removed = clauses_.size() - kept.size();
    clauses_ = std::move(kept);
    pool_ = std::move(new_pool);
    learnts_removed_ += removed;
    num_learnts_ -= removed;

    // Clause indices changed wholesale; rebuild every watch list.
    rebuildWatches();
}

void
SatSolver::simplifyAtRoot()
{
    assert(trail_limits_.empty());
    if (unsat_)
        return;
    if (propagate() != -1) {
        unsat_ = true;
        return;
    }
    for (int enc : trail_)
        reasons_[litVar(enc)] = -1;

    // Root assignments are permanent, so clauses they satisfy are
    // dead weight (this is how released activation groups and the
    // learnt clauses they tainted get reclaimed) and false literals
    // can be stripped in place. After a clean root propagation no
    // surviving clause can have fewer than two free literals.
    std::vector<Clause> kept;
    kept.reserve(clauses_.size());
    std::vector<int> new_pool;
    new_pool.reserve(pool_.size());
    uint64_t removed_learnts = 0;
    uint64_t removed_total = 0;
    for (const Clause &clause : clauses_) {
        const int *lits = clauseLits(clause);
        bool satisfied = false;
        size_t start = new_pool.size();
        for (uint32_t k = 0; k < clause.size; ++k) {
            Assign value = valueOf(lits[k]);
            if (value == Assign::True) {
                satisfied = true;
                break;
            }
            if (value == Assign::False)
                continue;
            new_pool.push_back(lits[k]);
        }
        if (satisfied) {
            new_pool.resize(start);
            ++removed_total;
            if (clause.learnt)
                ++removed_learnts;
            continue;
        }
        assert(new_pool.size() - start >= 2 &&
               "unit/empty clause survived root propagation");
        Clause stripped = clause;
        stripped.offset = static_cast<uint32_t>(start);
        stripped.size = static_cast<uint32_t>(new_pool.size() - start);
        kept.push_back(stripped);
    }
    clauses_ = std::move(kept);
    pool_ = std::move(new_pool);
    num_learnts_ -= removed_learnts;
    clauses_reclaimed_ += removed_total;
    rebuildWatches();
}

void
SatSolver::releaseVar(int var)
{
    assert(var >= 1 && var <= num_vars_);
    assert(trail_limits_.empty() &&
           "releaseVar must be called between solve calls");
    if (unsat_)
        return;
    // The release unit retires the selector; the root sweep then
    // reclaims its guarded group and every learnt clause that picked
    // the selector up (all satisfied by -var now). Selector-free
    // learnt clauses — the ones derived purely from the shared
    // encoding — survive and keep their watches.
    if (!addUnit(-var))
        return;
    simplifyAtRoot();
}

void
SatSolver::snapshotModel()
{
    model_ = assigns_;
}

SatResult
SatSolver::solve(uint64_t conflict_budget)
{
    return solveAssuming({}, conflict_budget);
}

SatResult
SatSolver::solveAssuming(const std::vector<Lit> &assumptions,
                         uint64_t conflict_budget)
{
    // Chaos-test injection: pretend the conflict budget was exhausted
    // immediately, exactly the answer an adversarial instance forces.
    if (LPO_FAILPOINT("sat.exhaust"))
        return SatResult::Unknown;
    // Encode before clearing the core: callers may legitimately pass
    // unsatCore() itself back in (core-guided retries).
    std::vector<int> assumption_encs;
    assumption_encs.reserve(assumptions.size());
    for (Lit lit : assumptions) {
        assert(lit != 0 && std::abs(lit) <= num_vars_);
        assumption_encs.push_back(encode(lit));
    }
    conflict_core_.clear();
    if (unsat_)
        return SatResult::Unsat;
    assert(trail_limits_.empty() &&
           "solve calls must start at decision level 0");
    if (propagate() != -1) {
        unsat_ = true;
        return SatResult::Unsat;
    }

    const uint64_t conflicts_at_entry = conflicts_;
    uint64_t restart_index = 0;
    uint64_t restart_limit = restart_unit_ * lubyTerm(restart_index);
    uint64_t conflicts_since_restart = 0;

    for (;;) {
        int conflict = propagate();
        if (conflict != -1) {
            ++conflicts_;
            ++conflicts_since_restart;
            if (trail_limits_.empty()) {
                unsat_ = true;
                return SatResult::Unsat;
            }
            if (conflict_budget &&
                conflicts_ - conflicts_at_entry >= conflict_budget) {
                backtrack(0);
                return SatResult::Unknown;
            }
            // Cooperative cancellation answers like an exhausted
            // budget; an unset flag costs one predictable branch per
            // conflict and changes nothing else.
            if (interrupt_ &&
                interrupt_->load(std::memory_order_relaxed)) {
                backtrack(0);
                return SatResult::Unknown;
            }
            uint32_t lbd = 0;
            int bt_level = analyze(conflict, learnt_scratch_, &lbd);
            backtrack(bt_level);
            if (learnt_scratch_.size() == 1) {
                if (!enqueue(learnt_scratch_[0], -1)) {
                    unsat_ = true;
                    return SatResult::Unsat;
                }
            } else {
                int ci = storeClause(learnt_scratch_, true, lbd,
                                     cla_inc_);
                ++num_learnts_;
                attachClause(ci);
                bool ok = enqueue(learnt_scratch_[0], ci);
                assert(ok && "learnt clause must be asserting");
                (void)ok;
            }
            decayActivities();
        } else {
            if (conflicts_since_restart >= restart_limit) {
                conflicts_since_restart = 0;
                ++restarts_;
                ++restart_index;
                restart_limit = restart_unit_ * lubyTerm(restart_index);
                backtrack(0);
                // Restart is the safe point to shed inactive learnt
                // clauses: nothing above level 0 holds a reason.
                if (num_learnts_ > reduce_limit_) {
                    reduceLearnts();
                    reduce_limit_ += reduce_limit_ / 2;
                }
                continue;
            }
            // Assumption phase: every level up to assumptions.size()
            // is pinned to an assumption (re-established after each
            // restart or deep backjump before any free decision).
            int next_assumption = -1;
            while (trail_limits_.size() < assumption_encs.size()) {
                int a = assumption_encs[trail_limits_.size()];
                Assign value = valueOf(a);
                if (value == Assign::True) {
                    // Already implied: open an empty pseudo-level so
                    // assumption index i always lives at level i+1.
                    trail_limits_.push_back(
                        static_cast<int>(trail_.size()));
                    continue;
                }
                if (value == Assign::False) {
                    // The formula refutes this assumption given the
                    // earlier ones: extract the final conflict. The
                    // solver itself stays consistent.
                    analyzeFinal(a);
                    backtrack(0);
                    return SatResult::Unsat;
                }
                next_assumption = a;
                break;
            }
            if (next_assumption != -1) {
                trail_limits_.push_back(static_cast<int>(trail_.size()));
                enqueue(next_assumption, -1);
                continue;
            }
            int var = pickBranchVar();
            if (var == -1) {
                snapshotModel();
                backtrack(0);
                return SatResult::Sat;
            }
            ++decisions_;
            trail_limits_.push_back(static_cast<int>(trail_.size()));
            enqueue(var * 2 + (polarity_[var] ? 0 : 1), -1);
        }
    }
}

bool
SatSolver::modelValue(int var) const
{
    assert(var >= 1 && var <= num_vars_);
    assert(static_cast<size_t>(var) < model_.size() &&
           "modelValue requires a preceding Sat answer");
    return model_[var] == Assign::True;
}

} // namespace lpo::smt
