/**
 * @file
 * Bit-blasting: bit-vector circuits Tseitin-encoded into SAT clauses.
 *
 * Together with SatSolver this forms the SMT(QF_BV) substrate the
 * translation validator runs on. Words are vectors of literals, LSB
 * first. Gate constructors fold constants so that circuits built over
 * constant inputs produce no clauses at all.
 */
#ifndef LPO_SMT_BITBLAST_H
#define LPO_SMT_BITBLAST_H

#include <vector>

#include "smt/sat.h"
#include "support/apint.h"

namespace lpo::smt {

/** A circuit literal: +/-var, or the constant true/false sentinels. */
using CLit = int;

/** A bit-vector as little-endian circuit literals. */
using BitVec = std::vector<CLit>;

/** Builds circuits over a SatSolver. */
class CircuitBuilder
{
  public:
    static constexpr CLit kTrue = 1 << 30;
    static constexpr CLit kFalse = -(1 << 30);

    explicit CircuitBuilder(SatSolver &solver) : solver_(solver) {}

    SatSolver &solver() { return solver_; }

    /** A fresh unconstrained literal. */
    CLit freshLit();
    /** A fresh unconstrained bit-vector of @p width bits. */
    BitVec freshBV(unsigned width);
    /** The constant bit-vector for @p value. */
    static BitVec constBV(const APInt &value);

    static CLit notGate(CLit a) { return -a; }
    CLit andGate(CLit a, CLit b);
    CLit orGate(CLit a, CLit b);
    CLit xorGate(CLit a, CLit b);
    CLit iffGate(CLit a, CLit b) { return -xorGate(a, b); }
    /** sel ? t : f. */
    CLit muxGate(CLit sel, CLit t, CLit f);
    CLit andMany(const std::vector<CLit> &lits);
    CLit orMany(const std::vector<CLit> &lits);

    /** Assert @p a at the top level. */
    void require(CLit a);
    /** Assert (guard -> a). */
    void requireImplies(CLit guard, CLit a);

    // Bit-vector logic.
    BitVec bvAnd(const BitVec &a, const BitVec &b);
    BitVec bvOr(const BitVec &a, const BitVec &b);
    BitVec bvXor(const BitVec &a, const BitVec &b);
    BitVec bvNot(const BitVec &a);
    BitVec bvMux(CLit sel, const BitVec &t, const BitVec &f);

    // Arithmetic.
    /** Sum; if @p carry_out is non-null, receives the final carry. */
    BitVec bvAdd(const BitVec &a, const BitVec &b,
                 CLit *carry_out = nullptr);
    BitVec bvSub(const BitVec &a, const BitVec &b,
                 CLit *borrow_out = nullptr);
    BitVec bvNeg(const BitVec &a);
    /** Low @p a.size() bits of the product. */
    BitVec bvMul(const BitVec &a, const BitVec &b);
    /** Full 2N-bit product. */
    BitVec bvMulFull(const BitVec &a, const BitVec &b);

    /**
     * Unsigned division/remainder via auxiliary variables.
     *
     * The defining constraints (x == q*y + r, r < y) are only asserted
     * under @p guard; callers pass the "divisor is nonzero" condition,
     * matching the IR's UB rules.
     */
    void bvUDivRem(const BitVec &x, const BitVec &y, CLit guard,
                   BitVec *quotient, BitVec *remainder);
    /** Signed division/remainder (C semantics, truncating). */
    void bvSDivRem(const BitVec &x, const BitVec &y, CLit guard,
                   BitVec *quotient, BitVec *remainder);

    // Shifts (barrel shifter for variable amounts).
    BitVec bvShl(const BitVec &a, const BitVec &amount);
    BitVec bvLShr(const BitVec &a, const BitVec &amount);
    BitVec bvAShr(const BitVec &a, const BitVec &amount);

    // Predicates.
    CLit bvEq(const BitVec &a, const BitVec &b);
    CLit bvULt(const BitVec &a, const BitVec &b);
    CLit bvULe(const BitVec &a, const BitVec &b);
    CLit bvSLt(const BitVec &a, const BitVec &b);
    CLit bvSLe(const BitVec &a, const BitVec &b);
    /** True if any bit is set. */
    CLit bvNonZero(const BitVec &a);

    // Width changes.
    static BitVec bvTrunc(const BitVec &a, unsigned width);
    static BitVec bvZext(const BitVec &a, unsigned width);
    static BitVec bvSext(const BitVec &a, unsigned width);

    // Overflow predicates mirroring the APInt ones.
    CLit addOverflowsU(const BitVec &a, const BitVec &b);
    CLit addOverflowsS(const BitVec &a, const BitVec &b);
    CLit subOverflowsU(const BitVec &a, const BitVec &b);
    CLit subOverflowsS(const BitVec &a, const BitVec &b);
    CLit mulOverflowsU(const BitVec &a, const BitVec &b);
    CLit mulOverflowsS(const BitVec &a, const BitVec &b);

    /** Read a literal from the model after Sat. */
    bool modelLit(CLit a) const;
    /** Read a bit-vector value from the model after Sat. */
    APInt modelBV(const BitVec &a) const;

  private:
    SatSolver &solver_;
};

} // namespace lpo::smt

#endif // LPO_SMT_BITBLAST_H
