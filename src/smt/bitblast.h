/**
 * @file
 * Bit-blasting: bit-vector circuits Tseitin-encoded into SAT clauses.
 *
 * Together with SatSolver this forms the SMT(QF_BV) substrate the
 * translation validator runs on. Words are vectors of literals, LSB
 * first. Gate constructors fold constants so that circuits built over
 * constant inputs produce no clauses at all.
 */
#ifndef LPO_SMT_BITBLAST_H
#define LPO_SMT_BITBLAST_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "smt/sat.h"
#include "support/apint.h"

namespace lpo::smt {

/** A circuit literal: +/-var, or the constant true/false sentinels. */
using CLit = int;

/** A bit-vector as little-endian circuit literals. */
using BitVec = std::vector<CLit>;

/**
 * Builds circuits over a SatSolver.
 *
 * Gate construction is structurally hashed (AIG-style unique table):
 * AND/XOR/MUX nodes are canonicalized (commutative operands ordered,
 * XOR negations pulled out of the node, MUX selector made positive)
 * and looked up before any variable or clause is emitted, so an
 * identical subcircuit built twice — e.g. the re-encoded source
 * function shared by every candidate of one extraction site, or the
 * shared prefix of a src/tgt pair — costs one variable and one clause
 * set, not two. See DESIGN.md, "Structural hashing in the circuit
 * builder" for the invariants.
 */
class CircuitBuilder
{
  public:
    static constexpr CLit kTrue = 1 << 30;
    static constexpr CLit kFalse = -(1 << 30);

    /**
     * @param structural_hashing enables the unique table. Disabled
     *        only by the throughput benchmark to measure the pre-PR
     *        encoding cost; production callers leave it on.
     */
    explicit CircuitBuilder(SatSolver &solver,
                            bool structural_hashing = true)
        : solver_(solver), hashing_(structural_hashing)
    {}

    SatSolver &solver() { return solver_; }

    /**
     * Whether the unique table (and with it all canonicalization that
     * is conditioned on it, here and in the encoder) is enabled.
     */
    bool hashing() const { return hashing_; }

    /** Gate constructions answered from the unique table. */
    uint64_t uniqueTableHits() const { return unique_hits_; }
    /** Distinct hashed nodes created so far. */
    uint64_t uniqueTableSize() const { return unique_.size(); }

    /** A fresh unconstrained literal. */
    CLit freshLit();
    /** A fresh unconstrained bit-vector of @p width bits. */
    BitVec freshBV(unsigned width);
    /** The constant bit-vector for @p value. */
    static BitVec constBV(const APInt &value);

    static CLit notGate(CLit a) { return -a; }
    CLit andGate(CLit a, CLit b);
    CLit orGate(CLit a, CLit b);
    CLit xorGate(CLit a, CLit b);
    CLit iffGate(CLit a, CLit b) { return -xorGate(a, b); }
    /** sel ? t : f. */
    CLit muxGate(CLit sel, CLit t, CLit f);
    CLit andMany(const std::vector<CLit> &lits);
    CLit orMany(const std::vector<CLit> &lits);

    /** Assert @p a at the top level. */
    void require(CLit a);
    /** Assert (guard -> a). */
    void requireImplies(CLit guard, CLit a);

    // Bit-vector logic.
    BitVec bvAnd(const BitVec &a, const BitVec &b);
    BitVec bvOr(const BitVec &a, const BitVec &b);
    BitVec bvXor(const BitVec &a, const BitVec &b);
    BitVec bvNot(const BitVec &a);
    BitVec bvMux(CLit sel, const BitVec &t, const BitVec &f);

    // Arithmetic.
    /** Sum; if @p carry_out is non-null, receives the final carry. */
    BitVec bvAdd(const BitVec &a, const BitVec &b,
                 CLit *carry_out = nullptr);
    BitVec bvSub(const BitVec &a, const BitVec &b,
                 CLit *borrow_out = nullptr);
    BitVec bvNeg(const BitVec &a);
    /** Low @p a.size() bits of the product. */
    BitVec bvMul(const BitVec &a, const BitVec &b);
    /** Full 2N-bit product. */
    BitVec bvMulFull(const BitVec &a, const BitVec &b);

    /**
     * Unsigned division/remainder via auxiliary variables.
     *
     * The defining constraints (x == q*y + r, r < y) are only asserted
     * under @p guard; callers pass the "divisor is nonzero" condition,
     * matching the IR's UB rules.
     */
    void bvUDivRem(const BitVec &x, const BitVec &y, CLit guard,
                   BitVec *quotient, BitVec *remainder);
    /** Signed division/remainder (C semantics, truncating). */
    void bvSDivRem(const BitVec &x, const BitVec &y, CLit guard,
                   BitVec *quotient, BitVec *remainder);

    // Shifts (barrel shifter for variable amounts).
    BitVec bvShl(const BitVec &a, const BitVec &amount);
    BitVec bvLShr(const BitVec &a, const BitVec &amount);
    BitVec bvAShr(const BitVec &a, const BitVec &amount);

    // Predicates.
    CLit bvEq(const BitVec &a, const BitVec &b);
    CLit bvULt(const BitVec &a, const BitVec &b);
    CLit bvULe(const BitVec &a, const BitVec &b);
    CLit bvSLt(const BitVec &a, const BitVec &b);
    CLit bvSLe(const BitVec &a, const BitVec &b);
    /** True if any bit is set. */
    CLit bvNonZero(const BitVec &a);

    // Width changes.
    static BitVec bvTrunc(const BitVec &a, unsigned width);
    static BitVec bvZext(const BitVec &a, unsigned width);
    static BitVec bvSext(const BitVec &a, unsigned width);

    // Overflow predicates mirroring the APInt ones.
    CLit addOverflowsU(const BitVec &a, const BitVec &b);
    CLit addOverflowsS(const BitVec &a, const BitVec &b);
    CLit subOverflowsU(const BitVec &a, const BitVec &b);
    CLit subOverflowsS(const BitVec &a, const BitVec &b);
    CLit mulOverflowsU(const BitVec &a, const BitVec &b);
    CLit mulOverflowsS(const BitVec &a, const BitVec &b);

    /** Read a literal from the model after Sat. */
    bool modelLit(CLit a) const;
    /** Read a bit-vector value from the model after Sat. */
    APInt modelBV(const BitVec &a) const;

  private:
    /** Unique-table key: a canonicalized gate application. */
    struct NodeKey
    {
        uint8_t kind; // 0 = and, 1 = xor, 2 = mux
        CLit a = 0;
        CLit b = 0;
        CLit c = 0;

        bool operator==(const NodeKey &o) const
        {
            return kind == o.kind && a == o.a && b == o.b && c == o.c;
        }
    };
    struct NodeKeyHash
    {
        size_t operator()(const NodeKey &k) const
        {
            // FNV-1a over the four fields.
            uint64_t h = 0xcbf29ce484222325ull;
            for (uint64_t v : {uint64_t(k.kind), uint64_t(uint32_t(k.a)),
                               uint64_t(uint32_t(k.b)),
                               uint64_t(uint32_t(k.c))}) {
                h ^= v;
                h *= 0x100000001b3ull;
            }
            return static_cast<size_t>(h);
        }
    };

    /** Table lookup; returns 0 (never a valid CLit) on miss. */
    CLit lookupNode(const NodeKey &key);
    void insertNode(const NodeKey &key, CLit out);

    SatSolver &solver_;
    bool hashing_;
    std::unordered_map<NodeKey, CLit, NodeKeyHash> unique_;
    uint64_t unique_hits_ = 0;
};

} // namespace lpo::smt

#endif // LPO_SMT_BITBLAST_H
