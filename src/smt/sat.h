/**
 * @file
 * A CDCL SAT solver.
 *
 * This is the decision engine under the translation validator (the
 * system's Z3 substitute). It implements the standard conflict-driven
 * clause-learning loop: two-watched-literal propagation, 1UIP conflict
 * analysis with recursive clause minimization, activity-based
 * (VSIDS-style) decision ordering over a binary heap, phase saving,
 * Luby restarts with LBD-aware learnt-clause database reduction, and a
 * per-call conflict budget so callers can bound verification time
 * (Alive2-style timeouts).
 *
 * The solver is *incremental* in the MiniSat sense: clauses may be
 * added between solve calls, @ref solveAssuming solves under a set of
 * assumption literals (with @ref unsatCore final-conflict extraction),
 * and @ref newActivationVar / @ref releaseVar implement the standard
 * selector-literal protocol for retractable clause groups — release
 * permanently falsifies the selector and reclaims every clause the
 * selector guarded, learnt or original, while all selector-free learnt
 * clauses survive into the next call. See DESIGN.md, "Incremental SAT
 * sessions".
 *
 * Storage layout: clause literals live in one flat arena (`pool_`)
 * indexed by small fixed-size headers, and each watch entry carries a
 * blocker slot so binary clauses propagate without touching clause
 * memory at all. Both are pure representation changes — the search
 * trajectory (decisions, conflicts, learnt clauses, models) is
 * bit-identical to the boxed-vector layout, which is what keeps
 * verdicts and counterexamples stable across releases.
 */
#ifndef LPO_SMT_SAT_H
#define LPO_SMT_SAT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpo::smt {

/**
 * A literal: variable index (1-based) with sign.
 *
 * Encoded as var*2 + (negated ? 1 : 0) internally; the public API uses
 * signed ints like DIMACS (+v / -v).
 */
using Lit = int;

/** Solver outcome. */
enum class SatResult { Sat, Unsat, Unknown };

/** CDCL solver over clauses of DIMACS-style literals. */
class SatSolver
{
  public:
    SatSolver()
    {
        // Variables are 1-based; reserve the dummy slot 0.
        assigns_.push_back(Assign::Unassigned);
        levels_.push_back(0);
        reasons_.push_back(-1);
        activities_.push_back(0.0);
        polarity_.push_back(false);
        decision_.push_back(false);
        heap_pos_.push_back(-1);
        seen_.push_back(0);
    }

    /** Allocate and return a fresh variable (1-based). */
    int newVar();
    int numVars() const { return num_vars_; }

    /**
     * Allocate a fresh *activation* (selector) variable. It never
     * enters the decision heap — its value comes only from assumptions
     * or from @ref releaseVar — so stale selectors cannot distract the
     * search. Guard a clause group as (-act OR C...) and pass +act to
     * solveAssuming to activate the group for one call.
     */
    int newActivationVar();

    /**
     * Permanently retire the selector @p var: asserts -var at the root
     * and sweeps the clause database, deleting every clause the
     * selector satisfied (the guarded group plus all learnt clauses
     * that picked up -var during its solves) and reclaiming their
     * watches. Learnt clauses free of the selector are untouched and
     * keep accelerating later calls. Must be called at decision level
     * 0 (i.e. between solve calls).
     */
    void releaseVar(int var);

    /**
     * Add a clause (non-empty literals over existing vars).
     * Returns false if the formula is already trivially unsat.
     */
    bool addClause(std::vector<Lit> lits);
    bool addUnit(Lit a) { return addClause({a}); }
    bool addBinary(Lit a, Lit b) { return addClause({a, b}); }
    bool addTernary(Lit a, Lit b, Lit c) { return addClause({a, b, c}); }

    /**
     * Solve the current formula.
     * @param conflict_budget maximum conflicts for THIS call before
     *        Unknown (0 = unlimited).
     */
    SatResult solve(uint64_t conflict_budget = 0);

    /**
     * Solve under @p assumptions (each forced true for this call
     * only). Unsat answers distinguish two cases: if the formula is
     * unsatisfiable on its own the solver latches permanently unsat;
     * if only the assumptions are refuted, @ref unsatCore holds the
     * failing subset and the solver remains usable — clauses and
     * assumptions may differ on the next call, and every learnt clause
     * (which never depends on assumptions, only on the clause
     * database) carries over.
     */
    SatResult solveAssuming(const std::vector<Lit> &assumptions,
                            uint64_t conflict_budget = 0);

    /**
     * After solveAssuming returns Unsat because of the assumptions:
     * the subset of the assumptions (in as-passed polarity) whose
     * conjunction the formula refutes. Empty when the formula itself
     * is unsat.
     */
    const std::vector<Lit> &unsatCore() const { return conflict_core_; }

    /** After Sat: the value assigned to @p var in the model. */
    bool modelValue(int var) const;

    /** True once the formula is unsatisfiable without assumptions. */
    bool inconsistent() const { return unsat_; }

    /**
     * Cooperative cancellation: when @p flag becomes true, the current
     * (and any later) solve call returns Unknown at the next conflict
     * boundary. The solver stays consistent — exactly as if the
     * conflict budget had been exhausted. A null or never-set flag
     * leaves the search trajectory untouched, so cancellation wiring
     * cannot perturb verdicts that complete normally.
     */
    void setInterrupt(const std::atomic<bool> *flag) { interrupt_ = flag; }

    /** Statistics for the throughput benchmarks. */
    uint64_t conflicts() const { return conflicts_; }
    uint64_t decisions() const { return decisions_; }
    uint64_t propagations() const { return propagations_; }
    /** Completed restarts (Luby schedule). */
    uint64_t restarts() const { return restarts_; }
    /** Learnt clauses currently alive (units excluded). */
    uint64_t learnts() const { return num_learnts_; }
    /** Problem clauses accepted (stored or enqueued as units). */
    uint64_t clausesAdded() const { return clauses_added_; }
    /** Learnt clauses dropped by database reduction. */
    uint64_t learntsRemoved() const { return learnts_removed_; }
    /** Clauses (problem + learnt) reclaimed by releaseVar sweeps. */
    uint64_t clausesReclaimed() const { return clauses_reclaimed_; }
    /**
     * Learnt-clause count that triggers database reduction at the
     * next restart (grows geometrically afterwards). Exposed so tests
     * can force reductions on small instances.
     */
    void setReduceLimit(uint64_t limit) { reduce_limit_ = limit; }
    /**
     * Base conflict count of the Luby restart schedule (restart i
     * fires after unit * luby(i) conflicts). Exposed for tests; the
     * default matches MiniSat's 100.
     */
    void setRestartUnit(uint64_t unit) { restart_unit_ = unit ? unit : 1; }

  private:
    // Internal literal encoding: v*2 (positive) / v*2+1 (negative).
    static int encode(Lit lit)
    {
        int v = lit > 0 ? lit : -lit;
        return v * 2 + (lit < 0 ? 1 : 0);
    }
    static Lit decode(int enc)
    {
        return (enc & 1) ? -(enc / 2) : enc / 2;
    }
    static int litVar(int enc) { return enc / 2; }
    static int litNeg(int enc) { return enc ^ 1; }

    /**
     * Clause header. Literals live in the shared arena @ref pool_ at
     * [offset, offset+size); headers stay contiguous so the propagate
     * loop walks two dense arrays instead of chasing per-clause heap
     * allocations.
     */
    struct Clause
    {
        uint32_t offset = 0;
        uint32_t size = 0;
        bool learnt = false;
        uint32_t lbd = 0; ///< literal-block distance at learning time
        double activity = 0.0;
    };

    /**
     * One watch-list entry. For binary clauses @ref blocker holds the
     * clause's other literal (it can never move, so it is always
     * exact) and propagation reads only the watcher; for longer
     * clauses blocker is -1 and the clause is dereferenced as usual.
     * Valid encoded literals are >= 2, so -1 is a safe sentinel.
     */
    struct Watcher
    {
        int clause;
        int blocker;
    };

    enum class Assign : int8_t { Unassigned = -1, False = 0, True = 1 };

    Assign valueOf(int enc) const
    {
        Assign a = assigns_[litVar(enc)];
        if (a == Assign::Unassigned)
            return a;
        bool val = (a == Assign::True) != (enc & 1);
        return val ? Assign::True : Assign::False;
    }

    int *clauseLits(const Clause &c) { return pool_.data() + c.offset; }
    const int *clauseLits(const Clause &c) const
    {
        return pool_.data() + c.offset;
    }

    int newVarImpl(bool decision);
    bool enqueue(int enc, int reason);
    int propagate(); // returns conflicting clause index or -1
    int analyze(int conflict, std::vector<int> &learnt, uint32_t *lbd);
    bool litRedundant(int enc, uint32_t abstract_levels,
                      std::vector<int> &to_clear);
    void analyzeFinal(int failed_enc);
    void backtrack(int level);
    void bumpVar(int var);
    void bumpClause(Clause &clause);
    void decayActivities();
    int pickBranchVar();
    int storeClause(const std::vector<int> &lits, bool learnt,
                    uint32_t lbd, double activity);
    void attachClause(int index);
    void reduceLearnts();
    /** Root-level clause sweep: drop satisfied clauses, strip false
     *  literals, rebuild watches. Requires decision level 0. */
    void simplifyAtRoot();
    void rebuildWatches();
    void snapshotModel();

    uint32_t abstractLevel(int var) const
    {
        return uint32_t(1) << (levels_[var] & 31);
    }

    // Decision-order heap (max-heap on activity, ties to the lower
    // variable index so the order is fully deterministic).
    bool heapLess(int a, int b) const
    {
        return activities_[a] > activities_[b] ||
               (activities_[a] == activities_[b] && a < b);
    }
    void heapSwap(size_t i, size_t j);
    void heapUp(size_t i);
    void heapDown(size_t i);
    void heapInsert(int var);

    int num_vars_ = 0;
    std::vector<Clause> clauses_;
    std::vector<int> pool_;                  // all clause literals
    std::vector<std::vector<Watcher>> watches_; // enc-lit -> watchers
    std::vector<Assign> assigns_;           // per var
    std::vector<Assign> model_;             // snapshot of the last Sat
    std::vector<int> levels_;               // per var
    std::vector<int> reasons_;              // per var, clause index or -1
    std::vector<double> activities_;        // per var
    std::vector<bool> polarity_;            // per var, phase saving
    std::vector<bool> decision_;            // per var, heap-eligible
    std::vector<int> order_heap_;           // vars, heap-ordered
    std::vector<int> heap_pos_;             // var -> index or -1
    std::vector<int> trail_;                // encoded lits
    std::vector<int> trail_limits_;
    std::vector<Lit> conflict_core_;        // last failing assumptions
    size_t propagate_head_ = 0;
    double var_inc_ = 1.0;
    double cla_inc_ = 1.0;
    uint64_t num_learnts_ = 0;
    uint64_t reduce_limit_ = 2000;
    uint64_t restart_unit_ = 100;
    bool unsat_ = false;
    const std::atomic<bool> *interrupt_ = nullptr;

    // Scratch state reused across conflicts so the hot loop never
    // allocates: the conflict-analysis marker array (cleared back to
    // zero via seen_clear_ after every use — never re-zeroed in bulk),
    // the litRedundant DFS stack, and the learnt-clause buffers.
    std::vector<uint8_t> seen_;             // per var
    std::vector<int> seen_clear_;           // vars with seen_ set
    std::vector<int> redundant_stack_;
    std::vector<int> learnt_scratch_;
    std::vector<int> minimize_clear_;
    std::vector<int> lbd_levels_;

    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
    uint64_t restarts_ = 0;
    uint64_t clauses_added_ = 0;
    uint64_t learnts_removed_ = 0;
    uint64_t clauses_reclaimed_ = 0;
};

} // namespace lpo::smt

#endif // LPO_SMT_SAT_H
