/**
 * @file
 * A CDCL SAT solver.
 *
 * This is the decision engine under the translation validator (the
 * system's Z3 substitute). It implements the standard conflict-driven
 * clause-learning loop: two-watched-literal propagation, 1UIP conflict
 * analysis with clause learning, activity-based (VSIDS-style) decision
 * ordering over a binary heap, phase saving, geometric restarts with
 * activity-based learnt-clause database reduction, and a conflict
 * budget so callers can bound verification time (Alive2-style
 * timeouts).
 */
#ifndef LPO_SMT_SAT_H
#define LPO_SMT_SAT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lpo::smt {

/**
 * A literal: variable index (1-based) with sign.
 *
 * Encoded as var*2 + (negated ? 1 : 0) internally; the public API uses
 * signed ints like DIMACS (+v / -v).
 */
using Lit = int;

/** Solver outcome. */
enum class SatResult { Sat, Unsat, Unknown };

/** CDCL solver over clauses of DIMACS-style literals. */
class SatSolver
{
  public:
    SatSolver()
    {
        // Variables are 1-based; reserve the dummy slot 0.
        assigns_.push_back(Assign::Unassigned);
        levels_.push_back(0);
        reasons_.push_back(-1);
        activities_.push_back(0.0);
        polarity_.push_back(false);
        heap_pos_.push_back(-1);
    }

    /** Allocate and return a fresh variable (1-based). */
    int newVar();
    int numVars() const { return num_vars_; }

    /**
     * Add a clause (non-empty literals over existing vars).
     * Returns false if the formula is already trivially unsat.
     */
    bool addClause(std::vector<Lit> lits);
    bool addUnit(Lit a) { return addClause({a}); }
    bool addBinary(Lit a, Lit b) { return addClause({a, b}); }
    bool addTernary(Lit a, Lit b, Lit c) { return addClause({a, b, c}); }

    /**
     * Solve the current formula.
     * @param conflict_budget maximum conflicts before Unknown
     *        (0 = unlimited).
     */
    SatResult solve(uint64_t conflict_budget = 0);

    /** After Sat: the value assigned to @p var. */
    bool modelValue(int var) const;

    /** Statistics for the throughput benchmarks. */
    uint64_t conflicts() const { return conflicts_; }
    uint64_t decisions() const { return decisions_; }
    uint64_t propagations() const { return propagations_; }
    /** Problem clauses accepted (stored or enqueued as units). */
    uint64_t clausesAdded() const { return clauses_added_; }
    /** Learnt clauses dropped by database reduction. */
    uint64_t learntsRemoved() const { return learnts_removed_; }
    /**
     * Learnt-clause count that triggers database reduction at the
     * next restart (grows geometrically afterwards). Exposed so tests
     * can force reductions on small instances.
     */
    void setReduceLimit(uint64_t limit) { reduce_limit_ = limit; }

  private:
    // Internal literal encoding: v*2 (positive) / v*2+1 (negative).
    static int encode(Lit lit)
    {
        int v = lit > 0 ? lit : -lit;
        return v * 2 + (lit < 0 ? 1 : 0);
    }
    static int litVar(int enc) { return enc / 2; }
    static int litNeg(int enc) { return enc ^ 1; }

    struct Clause
    {
        std::vector<int> lits; // encoded
        bool learnt = false;
        double activity = 0.0;
    };

    enum class Assign : int8_t { Unassigned = -1, False = 0, True = 1 };

    Assign valueOf(int enc) const
    {
        Assign a = assigns_[litVar(enc)];
        if (a == Assign::Unassigned)
            return a;
        bool val = (a == Assign::True) != (enc & 1);
        return val ? Assign::True : Assign::False;
    }

    bool enqueue(int enc, int reason);
    int propagate(); // returns conflicting clause index or -1
    int analyze(int conflict, std::vector<int> &learnt);
    void backtrack(int level);
    void bumpVar(int var);
    void bumpClause(Clause &clause);
    void decayActivities();
    int pickBranchVar();
    void attachClause(int index);
    void reduceLearnts();

    // Decision-order heap (max-heap on activity, ties to the lower
    // variable index so the order is fully deterministic).
    bool heapLess(int a, int b) const
    {
        return activities_[a] > activities_[b] ||
               (activities_[a] == activities_[b] && a < b);
    }
    void heapSwap(size_t i, size_t j);
    void heapUp(size_t i);
    void heapDown(size_t i);
    void heapInsert(int var);

    int num_vars_ = 0;
    std::vector<Clause> clauses_;
    std::vector<std::vector<int>> watches_; // enc-lit -> clause indices
    std::vector<Assign> assigns_;           // per var
    std::vector<int> levels_;               // per var
    std::vector<int> reasons_;              // per var, clause index or -1
    std::vector<double> activities_;        // per var
    std::vector<bool> polarity_;            // per var, phase saving
    std::vector<int> order_heap_;           // vars, heap-ordered
    std::vector<int> heap_pos_;             // var -> index or -1
    std::vector<int> trail_;                // encoded lits
    std::vector<int> trail_limits_;
    size_t propagate_head_ = 0;
    double var_inc_ = 1.0;
    double cla_inc_ = 1.0;
    uint64_t num_learnts_ = 0;
    uint64_t reduce_limit_ = 2000;
    bool unsat_ = false;

    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
    uint64_t clauses_added_ = 0;
    uint64_t learnts_removed_ = 0;
};

} // namespace lpo::smt

#endif // LPO_SMT_SAT_H
