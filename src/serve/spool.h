/**
 * @file
 * Crash-safe request spool for `lpo_serve` (see serve/server.h and
 * DESIGN.md, "Service layer").
 *
 * One spool is one directory with three subdirectories and a status
 * file:
 *
 *   inbox/<id>.ll    requests awaiting the server. Clients submit by
 *                    writing somewhere else on the same filesystem and
 *                    rename(2)-ing in (submit() does exactly that), so
 *                    the server never observes a half-written request.
 *   work/<id>.ll     requests the server has claimed (rename from
 *                    inbox/). A `kill -9` leaves claimed requests
 *                    here; recoverClaimed() moves them back to inbox/
 *                    on the next start — at-least-once semantics, made
 *                    safe by the pipeline's determinism (a replay
 *                    produces byte-identical responses).
 *   outbox/<id>.ll   the response module bytes, written atomically
 *                    (tmp + rename, the KvStore snapshot discipline):
 *                    a reader sees no response or the whole response,
 *                    never a torn one.
 *   outbox/<id>.meta response metadata (`key=value` lines: status,
 *                    counters, diagnostics), also atomic. Written for
 *                    every terminal state — ok, partial, error — and
 *                    for shed notices (status=retry) while the request
 *                    itself stays in inbox/.
 *   status.json      the server's health snapshot (serve/server.h).
 *
 * Request ids are the file name minus the `.ll` suffix and must match
 * [A-Za-z0-9._-]+ without a leading dot; anything else in inbox/ is
 * ignored (dotfiles double as the submit staging area).
 */
#ifndef LPO_SERVE_SPOOL_H
#define LPO_SERVE_SPOOL_H

#include <cstddef>
#include <string>
#include <vector>

namespace lpo::serve {

class Spool
{
  public:
    explicit Spool(std::string root);

    /** Create the directory layout (idempotent). Never deletes
     *  anything — safe for concurrent clients. */
    bool ensureLayout(std::string *error = nullptr);

    /**
     * Unlink stale `*.tmp.*` staging litter out of outbox/ (a crash
     * mid-response). Server-startup only: a client must never sweep,
     * or it would race with — and unlink — the live daemon's
     * in-flight response staging files.
     */
    void sweepLitter();

    const std::string &root() const { return root_; }
    std::string inboxDir() const { return root_ + "/inbox"; }
    std::string workDir() const { return root_ + "/work"; }
    std::string outboxDir() const { return root_ + "/outbox"; }

    std::string requestPath(const std::string &id) const;
    std::string workPath(const std::string &id) const;
    std::string responsePath(const std::string &id) const;
    std::string metaPath(const std::string &id) const;
    std::string statusPath() const { return root_ + "/status.json"; }

    /** True iff @p id is a well-formed request id. */
    static bool validId(const std::string &id);

    /**
     * Write @p bytes to `<path>.tmp.<pid>`, fsync, rename over
     * @p path — the atomic tmp+rename discipline shared with KvStore
     * snapshots. A crash leaves either the old file or the new one.
     */
    static bool atomicWrite(const std::string &path,
                            const std::string &bytes,
                            std::string *error = nullptr);

    /** Client side: atomically drop a request into inbox/. */
    bool submit(const std::string &id, const std::string &bytes,
                std::string *error = nullptr);

    /** Request ids waiting in inbox/, sorted (deterministic claim
     *  order). */
    std::vector<std::string> pendingRequests() const;
    /** Request ids sitting claimed in work/, sorted. */
    std::vector<std::string> claimedRequests() const;

    /** Claim: rename inbox/<id>.ll -> work/<id>.ll. False if the
     *  request vanished (already claimed, or client withdrew it). */
    bool claim(const std::string &id);

    /** Crash recovery: move every claimed request back to inbox/.
     *  Returns how many were recovered. */
    size_t recoverClaimed();

    /** Drop the claimed copy once its response is on disk. */
    bool complete(const std::string &id);

    bool writeResponse(const std::string &id, const std::string &bytes,
                       std::string *error = nullptr);
    bool writeMeta(const std::string &id, const std::string &text,
                   std::string *error = nullptr);

    bool hasResponse(const std::string &id) const;

  private:
    std::vector<std::string> listRequests(const std::string &dir) const;

    std::string root_;
};

} // namespace lpo::serve

#endif // LPO_SERVE_SPOOL_H
