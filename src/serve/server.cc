#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "core/json_writer.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/failpoint.h"
#include "support/telemetry.h"
#include "verify/persist.h"

namespace lpo::serve {

namespace {

bool
readFileBytes(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *out = buffer.str();
    return true;
}

void
sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

const char *
storeHealthName(StoreHealth health)
{
    switch (health) {
    case StoreHealth::None: return "none";
    case StoreHealth::Persistent: return "persistent";
    case StoreHealth::ReadOnly: return "read-only";
    case StoreHealth::Degraded: return "degraded";
    }
    return "?";
}

uint64_t
totalFailpointFires()
{
    FailPoints &failpoints = FailPoints::instance();
    uint64_t total = 0;
    for (const std::string &site : failpoints.siteNames())
        total += failpoints.fires(site);
    return total;
}

Server::Server(ServeOptions options)
    : options_(std::move(options)), spool_(options_.spool_root)
{}

Server::~Server() = default;

core::ModuleOptOptions
Server::optimizerOptions() const
{
    // Mirror lpo_cli's optimize-module construction exactly: adopt the
    // service knobs but keep the module-scale verification budgets, so
    // a served response is byte-identical to a one-shot run of the
    // same module with the same proposer (the replay contract the CI
    // soak asserts).
    core::ModuleOptOptions mod_options;
    core::PipelineConfig config;
    config.proposer = options_.proposer;
    config.num_threads = options_.threads;
    config.store_path = options_.store_path;
    uint64_t module_budget = mod_options.pipeline.refine.conflict_budget;
    std::vector<uint64_t> module_tiers =
        mod_options.pipeline.refine.budget_tiers;
    mod_options.pipeline = config;
    mod_options.pipeline.refine.conflict_budget = module_budget;
    mod_options.pipeline.refine.budget_tiers = std::move(module_tiers);
    mod_options.step_budget = options_.step_budget;
    return mod_options;
}

void
Server::buildOptimizer()
{
    if (!model_)
        model_ = std::make_unique<llm::MockModel>(
            llm::modelByName(options_.model), 1);
    optimizer_ = std::make_unique<core::ModuleOptimizer>(
        *model_, optimizerOptions());
    refreshStoreHealth();
}

void
Server::rebuildOptimizer()
{
    // Pending (unflushed) verdicts and catalog records may be tainted
    // by the injected fault; drop them so the destructor's flush
    // cannot journal them, then reopen from the last durable state.
    if (optimizer_)
        optimizer_->discardPendingStore();
    optimizer_.reset();
    buildOptimizer();
    ++stats_.optimizer_rebuilds;
    telemetry::counter("serve.optimizer_rebuilds").inc();
}

void
Server::refreshStoreHealth()
{
    // A degraded store stays degraded until restart: flushes stopped,
    // so flipping back healthy would misreport what is being persisted.
    if (stats_.store_health == StoreHealth::Degraded &&
        !options_.store_path.empty())
        return;
    if (options_.store_path.empty())
        stats_.store_health = StoreHealth::None;
    else if (!optimizer_ || !optimizer_->store())
        stats_.store_health = StoreHealth::Degraded;
    else if (optimizer_->store()->readOnly())
        stats_.store_health = StoreHealth::ReadOnly;
    else
        stats_.store_health = StoreHealth::Persistent;
}

Server::Attempt
Server::runAttempt(const std::string &bytes)
{
    Attempt attempt;
    try {
        ir::Context ctx;
        auto module = ir::parseModule(ctx, bytes);
        if (!module) {
            attempt.error = module.error().toString();
            return attempt;
        }
        attempt.parsed = true;
        core::ModuleOptResult result = optimizer_->optimize(**module, 1);
        attempt.deadline_skipped = result.deadline_skipped;
        attempt.steps_used = result.steps_used;
        attempt.patched = result.patched_rewrites;
        attempt.response = ir::printModule(**module);
    } catch (const std::exception &e) {
        attempt.exception = true;
        attempt.error = e.what();
    } catch (...) {
        attempt.exception = true;
        attempt.error = "unknown exception";
    }
    return attempt;
}

void
Server::handleRequest(const std::string &id)
{
    static telemetry::Histogram request_hist =
        telemetry::histogram("serve.request_ns");
    telemetry::ScopedTimer timer(request_hist);

    std::string bytes;
    Attempt attempt;
    unsigned attempts_used = 1;
    if (!readFileBytes(spool_.workPath(id), &bytes)) {
        attempt.error = "request file unreadable";
    } else {
        for (unsigned n = 0;; ++n) {
            uint64_t fires_before = totalFailpointFires();
            attempt = runAttempt(bytes);
            attempts_used = n + 1;
            if (totalFailpointFires() == fires_before ||
                n >= options_.fault_retry_limit)
                break;
            // A fault fired during this attempt; its effect on the
            // warm state (and possibly on this result) is not trusted.
            // Quarantine and replay from the original bytes.
            ++stats_.fault_retries;
            telemetry::counter("serve.fault_retries").inc();
            std::fprintf(stderr,
                         "lpo_serve: fault injected during request "
                         "'%s' (attempt %u); rebuilding and retrying\n",
                         id.c_str(), n + 1);
            rebuildOptimizer();
        }
    }

    const char *status = attempt.parsed && !attempt.exception
                             ? (attempt.deadline_skipped ? "partial"
                                                         : "ok")
                             : "error";
    std::ostringstream meta;
    meta << "status=" << status << "\n"
         << "id=" << id << "\n"
         << "attempts=" << attempts_used << "\n";
    if (attempt.parsed && !attempt.exception) {
        meta << "patched=" << attempt.patched << "\n"
             << "steps_used=" << attempt.steps_used << "\n"
             << "deadline_skipped=" << attempt.deadline_skipped << "\n";
    } else {
        meta << "error=" << attempt.error << "\n";
    }

    std::string io_error;
    bool wrote = true;
    if (attempt.parsed && !attempt.exception)
        wrote = spool_.writeResponse(id, attempt.response, &io_error);
    if (wrote)
        wrote = spool_.writeMeta(id, meta.str(), &io_error);
    if (!wrote) {
        // Response not durable: leave the claim in work/ so a restart
        // replays the request instead of losing it.
        std::fprintf(stderr,
                     "lpo_serve: cannot write response for '%s': %s "
                     "(leaving request claimed for replay)\n",
                     id.c_str(), io_error.c_str());
        return;
    }
    spool_.complete(id);
    shed_notified_.erase(id);

    ++stats_.requests;
    telemetry::counter("serve.requests").inc();
    if (!std::strcmp(status, "ok")) {
        ++stats_.ok;
    } else if (!std::strcmp(status, "partial")) {
        ++stats_.partial;
        telemetry::counter("serve.requests_partial").inc();
    } else {
        ++stats_.errors;
        telemetry::counter("serve.requests_error").inc();
        std::fprintf(stderr, "lpo_serve: request '%s' failed: %s\n",
                     id.c_str(), attempt.error.c_str());
    }
}

void
Server::flushStoreWithRetry()
{
    if (stats_.store_health != StoreHealth::Persistent || !optimizer_)
        return;
    unsigned backoff_ms = options_.flush_backoff_ms;
    for (unsigned n = 0; n <= options_.flush_retry_limit; ++n) {
        if (n) {
            ++stats_.flush_retries;
            telemetry::counter("serve.flush_retries").inc();
            sleepMs(backoff_ms);
            backoff_ms *= 2;
        }
        if (optimizer_->flushStore())
            return;
    }
    // Persistently failing flushes: stop paying for them and serve
    // memory-only. Already-journaled state stays intact on disk; the
    // operator sees the transition in status.json.
    ++stats_.flush_failures;
    telemetry::counter("serve.flush_failures").inc();
    stats_.store_health = StoreHealth::Degraded;
    std::fprintf(stderr,
                 "lpo_serve: store flush kept failing after %u "
                 "attempt(s); degrading to memory-only\n",
                 options_.flush_retry_limit + 1);
}

void
Server::maybeCompact()
{
    if (!options_.compact_interval ||
        stats_.store_health != StoreHealth::Persistent || !optimizer_)
        return;
    if (stats_.requests == 0 ||
        stats_.requests % options_.compact_interval != 0)
        return;
    std::string error;
    if (optimizer_->compactStore(&error)) {
        ++stats_.compactions;
        telemetry::counter("serve.compactions").inc();
    } else {
        std::fprintf(stderr, "lpo_serve: compaction failed: %s\n",
                     error.c_str());
    }
}

void
Server::shedExcess(const std::vector<std::string> &pending)
{
    if (pending.size() <= options_.queue_capacity) {
        shed_notified_.clear();
        return;
    }
    for (size_t i = options_.queue_capacity; i < pending.size(); ++i) {
        const std::string &id = pending[i];
        if (!shed_notified_.insert(id).second)
            continue;
        std::ostringstream meta;
        meta << "status=retry\n"
             << "id=" << id << "\n"
             << "retry_after_ms=" << options_.retry_after_ms << "\n"
             << "queue_depth=" << pending.size() << "\n";
        spool_.writeMeta(id, meta.str());
        ++stats_.shed;
        telemetry::counter("serve.requests_shed").inc();
    }
}

void
Server::writeStatus(bool stopping)
{
    double uptime = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_time_)
                        .count();
    size_t queue_depth = spool_.pendingRequests().size();
    telemetry::gauge("serve.queue_depth")
        .set(static_cast<int64_t>(queue_depth));

    core::JsonWriter json;
    json.beginObject();
    json.field("pid", static_cast<int64_t>(::getpid()));
    json.field("stopping", stopping);
    json.field("uptime_seconds", uptime, 3);
    json.field("queue_depth", static_cast<uint64_t>(queue_depth));
    json.field("claimed",
               static_cast<uint64_t>(spool_.claimedRequests().size()));
    json.field("store_health", storeHealthName(stats_.store_health));
    json.field("store_dir", options_.store_path);
    json.field("requests", stats_.requests);
    json.field("ok", stats_.ok);
    json.field("partial", stats_.partial);
    json.field("errors", stats_.errors);
    json.field("shed", stats_.shed);
    json.field("fault_retries", stats_.fault_retries);
    json.field("optimizer_rebuilds", stats_.optimizer_rebuilds);
    json.field("flush_retries", stats_.flush_retries);
    json.field("flush_failures", stats_.flush_failures);
    json.field("compactions", stats_.compactions);
    json.field("recovered", stats_.recovered);
    if (optimizer_ && optimizer_->store()) {
        const verify::StoreStats store = optimizer_->store()->stats();
        json.key("store").beginObject(core::JsonWriter::Layout::Inline);
        json.field("cache_loaded", store.cache_loaded);
        json.field("catalog_loaded", store.catalog_loaded);
        json.field("cache_flushed", store.cache_flushed);
        json.field("catalog_flushed", store.catalog_flushed);
        json.field("flush_failures", store.flush_failures);
        json.field("recoveries", store.recoveries);
        json.field("quarantined", store.quarantined);
        json.endObject();
    }
    json.key("metrics").valueRaw(
        telemetry::MetricsRegistry::instance().snapshot().toJson());
    json.endObject();

    spool_.atomicWrite(spool_.statusPath(), json.str() + "\n");
    last_status_write_ = std::chrono::steady_clock::now();
}

int
Server::run()
{
    start_time_ = std::chrono::steady_clock::now();
    std::string error;
    if (!spool_.ensureLayout(&error)) {
        std::fprintf(stderr, "lpo_serve: unusable spool: %s\n",
                     error.c_str());
        return 1;
    }
    // Startup-only: clients must never sweep (they would unlink a
    // live daemon's in-flight response staging files).
    spool_.sweepLitter();
    stats_.recovered = spool_.recoverClaimed();
    if (stats_.recovered)
        std::fprintf(stderr,
                     "lpo_serve: recovered %llu claimed request(s) "
                     "from a previous run\n",
                     (unsigned long long)stats_.recovered);
    buildOptimizer();
    writeStatus(false);

    bool done = false;
    while (!done && !stopRequested()) {
        std::vector<std::string> pending = spool_.pendingRequests();
        shedExcess(pending);
        if (pending.empty()) {
            if (options_.once)
                break;
            auto since_status = std::chrono::steady_clock::now() -
                                last_status_write_;
            if (since_status >=
                std::chrono::milliseconds(options_.status_interval_ms))
                writeStatus(false);
            // Sleep in small slices so requestStop() stays responsive.
            for (unsigned slept = 0;
                 slept < options_.poll_ms && !stopRequested();
                 slept += 10)
                sleepMs(std::min(10u, options_.poll_ms - slept));
            continue;
        }
        size_t admitted =
            std::min(pending.size(), options_.queue_capacity);
        for (size_t i = 0; i < admitted; ++i) {
            if (stopRequested())
                break;
            if (!spool_.claim(pending[i]))
                continue;
            handleRequest(pending[i]);
            flushStoreWithRetry();
            maybeCompact();
            writeStatus(false);
            if (options_.max_requests &&
                stats_.requests >= options_.max_requests) {
                done = true;
                break;
            }
        }
    }

    // Graceful drain: anything still claimed was interrupted between
    // claim and response — answer it before exiting so SIGTERM never
    // strands an in-flight request.
    for (const std::string &id : spool_.claimedRequests()) {
        handleRequest(id);
        flushStoreWithRetry();
    }
    if (stats_.store_health == StoreHealth::Persistent && optimizer_)
        optimizer_->flushStore();
    writeStatus(true);
    return 0;
}

} // namespace lpo::serve
