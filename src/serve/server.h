/**
 * @file
 * lpo_serve — the always-on optimization service (DESIGN.md, "Service
 * layer").
 *
 * One Server owns one Spool (serve/spool.h) and one long-lived
 * core::ModuleOptimizer sharing one verify::PersistentStore across the
 * whole request stream: the in-memory verify cache and the learned
 * rewrite catalog stay warm, so steady-state requests replay prior
 * proofs instead of re-paying them. The determinism contract makes
 * that safe: optimize() results are byte-identical with the cache
 * warm or cold, so a served response always matches a cold one-shot
 * `lpo optimize-module` run of the same module.
 *
 * Robustness layers, outermost first:
 *
 *  - Request isolation: each request parses in a fresh ir::Context and
 *    runs under a catch-everything guard; a poisoned module produces a
 *    status=error response, never a dead server. The per-request step
 *    budget (ServeOptions::step_budget) is the watchdog: a stuck
 *    request is cut at a deterministic wave boundary and answered with
 *    a valid partial result (status=partial), queued work unaffected.
 *
 *  - Fault-detection replay: around every attempt the server samples
 *    the failpoint registry's total fire count. If a fault was
 *    injected during the attempt, the warm optimizer may hold tainted
 *    state (e.g. a verdict degraded by a forced solver fault), so the
 *    server discards the store's pending records, rebuilds the
 *    optimizer from the last durable state, and re-runs the request
 *    from its original bytes — up to fault_retry_limit times. A
 *    transient injected fault therefore never changes a response.
 *
 *  - Backpressure: the inbox is the queue; only the first
 *    queue_capacity pending requests are admitted per scan. Requests
 *    beyond that get a status=retry meta with retry_after_ms (load
 *    shedding with an explicit retry hint). Nothing is dropped: a shed
 *    request stays spooled and is served once the queue drains.
 *
 *  - Store fault handling: flushes run off the request's result path
 *    with bounded retry + exponential backoff; when every retry of a
 *    flush round fails, the server transitions StoreHealth::Persistent
 *    -> Degraded and continues memory-only. Periodic snapshot
 *    compaction (compact_interval) also runs between requests, never
 *    inside one.
 *
 *  - Crash recovery: requests are claimed by rename into work/ and
 *    unlinked only after their response is durably renamed into
 *    outbox/. kill -9 at any point leaves claimed requests in work/;
 *    the next start re-queues them (at-least-once, byte-identical
 *    replay). SIGTERM/SIGINT (via requestStop()) finishes the request
 *    in flight, flushes the store, writes a final status snapshot, and
 *    exits cleanly.
 *
 *  - Health surface: status.json in the spool root — uptime, queue
 *    depth, store health, request counters, and the full telemetry
 *    metrics snapshot — rewritten atomically while the server runs.
 */
#ifndef LPO_SERVE_SERVER_H
#define LPO_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "core/module_opt.h"
#include "llm/mock_model.h"
#include "serve/spool.h"

namespace lpo::serve {

/** The store attachment's health, reported in status.json. */
enum class StoreHealth {
    None,       ///< no store configured (memory-only by choice)
    Persistent, ///< store open and accepting flushes
    ReadOnly,   ///< store locked by another process; serving from its
                ///< open-time snapshot, nothing persisted
    Degraded,   ///< store unusable or flushes kept failing; memory-only
};

const char *storeHealthName(StoreHealth health);

struct ServeOptions
{
    std::string spool_root;
    /** Persistent store directory (empty = memory-only). */
    std::string store_path;
    std::string model = "Gemini2.0T";
    core::ProposerKind proposer = core::ProposerKind::Hybrid;
    unsigned threads = 0;
    /**
     * Per-request watchdog deadline in deterministic step costs (SAT
     * conflicts + attempts; see core::ModuleOptOptions::step_budget).
     * 0 = off. A request that hits it is answered status=partial.
     */
    uint64_t step_budget = 0;
    /** Admitted requests per scan; the rest are shed. */
    size_t queue_capacity = 64;
    /** Retry hint written with a shed notice. */
    unsigned retry_after_ms = 1000;
    /** Re-runs of one request after an injected fault. */
    unsigned fault_retry_limit = 3;
    /** Flush attempts per round before declaring the store degraded. */
    unsigned flush_retry_limit = 3;
    /** Base backoff between flush retries (doubles per attempt). */
    unsigned flush_backoff_ms = 10;
    /** Snapshot-compact the store every N requests (0 = never). */
    uint64_t compact_interval = 0;
    /** Inbox scan interval when idle. */
    unsigned poll_ms = 50;
    /** Minimum interval between idle status.json rewrites. */
    unsigned status_interval_ms = 1000;
    /** Drain the inbox once, then exit (tests, bench, batch use). */
    bool once = false;
    /** Stop after N processed requests (0 = unlimited; tests). */
    uint64_t max_requests = 0;
};

/** Lifetime counters, mirrored into status.json. */
struct ServeStats
{
    uint64_t requests = 0; ///< requests answered (ok+partial+errors)
    uint64_t ok = 0;
    uint64_t partial = 0;  ///< step-budget watchdog cut the request
    uint64_t errors = 0;   ///< parse failures + contained exceptions
    uint64_t shed = 0;     ///< status=retry notices written
    uint64_t fault_retries = 0;      ///< injected-fault re-runs
    uint64_t optimizer_rebuilds = 0; ///< warm state discarded
    uint64_t flush_retries = 0;      ///< flush attempts past the first
    uint64_t flush_failures = 0;     ///< flush rounds that gave up
    uint64_t compactions = 0;
    uint64_t recovered = 0; ///< work/ requests re-queued at startup
    StoreHealth store_health = StoreHealth::None;
};

class Server
{
  public:
    explicit Server(ServeOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Serve until requestStop() (or, with options.once, until the
     * inbox drains). Returns 0 on clean shutdown, 1 when the spool
     * directory itself is unusable.
     */
    int run();

    /**
     * Begin graceful shutdown: finish the request in flight, flush,
     * write the final status, return from run(). One relaxed atomic
     * store — safe to call from a signal handler.
     */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }
    bool stopRequested() const
    {
        return stop_.load(std::memory_order_relaxed);
    }

    const ServeStats &stats() const { return stats_; }
    Spool &spool() { return spool_; }

    /** Pipeline stats of the live optimizer (null before run();
     *  benchmarks read catalog/cache hit rates from here). */
    const core::PipelineStats *pipelineStats() const
    {
        return optimizer_ ? &optimizer_->pipelineStats() : nullptr;
    }

  private:
    /** Outcome of one attempt at a request's module text. */
    struct Attempt
    {
        bool parsed = false;
        bool exception = false;
        std::string error;
        std::string response;       ///< printed module (parsed only)
        uint64_t deadline_skipped = 0;
        uint64_t steps_used = 0;
        uint64_t patched = 0;
    };

    void buildOptimizer();
    /** Discard fault-tainted warm state and rebuild from durable
     *  state (see the fault-detection replay contract above). */
    void rebuildOptimizer();
    core::ModuleOptOptions optimizerOptions() const;
    void refreshStoreHealth();

    Attempt runAttempt(const std::string &bytes);
    void handleRequest(const std::string &id);
    /** Bounded-retry flush; flips Persistent -> Degraded on a round
     *  that exhausts its retries. */
    void flushStoreWithRetry();
    void maybeCompact();
    void shedExcess(const std::vector<std::string> &pending);
    void writeStatus(bool stopping);

    ServeOptions options_;
    Spool spool_;
    std::atomic<bool> stop_{false};
    ServeStats stats_;
    std::unique_ptr<llm::MockModel> model_;
    std::unique_ptr<core::ModuleOptimizer> optimizer_;
    /** Shed notices already written this congestion episode (avoid
     *  rewriting the meta every poll). */
    std::set<std::string> shed_notified_;
    std::chrono::steady_clock::time_point start_time_;
    std::chrono::steady_clock::time_point last_status_write_;
};

/** Sum of fires() over every registered failpoint site — the fault
 *  detector sampled around request attempts. */
uint64_t totalFailpointFires();

} // namespace lpo::serve

#endif // LPO_SERVE_SERVER_H
