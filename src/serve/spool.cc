#include "serve/spool.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace lpo::serve {

namespace {

bool
ensureDir(const std::string &path, std::string *error)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    if (error)
        *error = path + ": " + std::strerror(errno);
    return false;
}

/** Unlink `*.tmp.*` staging litter left by a crash mid-atomicWrite. */
void
sweepTmpLitter(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    std::vector<std::string> litter;
    while (struct dirent *entry = ::readdir(d)) {
        std::string name = entry->d_name;
        if (name.find(".tmp.") != std::string::npos)
            litter.push_back(dir + "/" + name);
    }
    ::closedir(d);
    for (const std::string &path : litter)
        ::unlink(path.c_str());
}

} // namespace

Spool::Spool(std::string root) : root_(std::move(root)) {}

bool
Spool::ensureLayout(std::string *error)
{
    return ensureDir(root_, error) && ensureDir(inboxDir(), error) &&
           ensureDir(workDir(), error) && ensureDir(outboxDir(), error);
}

void
Spool::sweepLitter()
{
    sweepTmpLitter(outboxDir());
}

std::string
Spool::requestPath(const std::string &id) const
{
    return inboxDir() + "/" + id + ".ll";
}

std::string
Spool::workPath(const std::string &id) const
{
    return workDir() + "/" + id + ".ll";
}

std::string
Spool::responsePath(const std::string &id) const
{
    return outboxDir() + "/" + id + ".ll";
}

std::string
Spool::metaPath(const std::string &id) const
{
    return outboxDir() + "/" + id + ".meta";
}

bool
Spool::validId(const std::string &id)
{
    if (id.empty() || id[0] == '.')
        return false;
    for (char c : id) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

bool
Spool::atomicWrite(const std::string &path, const std::string &bytes,
                   std::string *error)
{
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error)
            *error = tmp + ": " + std::strerror(errno);
        return false;
    }
    size_t off = 0;
    bool ok = true;
    while (ok && off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
            break;
        }
        off += static_cast<size_t>(n);
    }
    ok = ok && ::fsync(fd) == 0;
    int saved_errno = errno;
    ::close(fd);
    if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
        saved_errno = errno;
        ok = false;
    }
    if (!ok) {
        if (error)
            *error = path + ": " + std::strerror(saved_errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

bool
Spool::submit(const std::string &id, const std::string &bytes,
              std::string *error)
{
    if (!validId(id)) {
        if (error)
            *error = "invalid request id '" + id + "'";
        return false;
    }
    return atomicWrite(requestPath(id), bytes, error);
}

std::vector<std::string>
Spool::listRequests(const std::string &dir) const
{
    std::vector<std::string> ids;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return ids;
    while (struct dirent *entry = ::readdir(d)) {
        std::string name = entry->d_name;
        if (name.size() <= 3 || name.compare(name.size() - 3, 3, ".ll") != 0)
            continue;
        std::string id = name.substr(0, name.size() - 3);
        if (validId(id))
            ids.push_back(std::move(id));
    }
    ::closedir(d);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::vector<std::string>
Spool::pendingRequests() const
{
    return listRequests(inboxDir());
}

std::vector<std::string>
Spool::claimedRequests() const
{
    return listRequests(workDir());
}

bool
Spool::claim(const std::string &id)
{
    return ::rename(requestPath(id).c_str(), workPath(id).c_str()) == 0;
}

size_t
Spool::recoverClaimed()
{
    size_t recovered = 0;
    for (const std::string &id : claimedRequests())
        if (::rename(workPath(id).c_str(), requestPath(id).c_str()) == 0)
            ++recovered;
    return recovered;
}

bool
Spool::complete(const std::string &id)
{
    return ::unlink(workPath(id).c_str()) == 0;
}

bool
Spool::writeResponse(const std::string &id, const std::string &bytes,
                     std::string *error)
{
    return atomicWrite(responsePath(id), bytes, error);
}

bool
Spool::writeMeta(const std::string &id, const std::string &text,
                 std::string *error)
{
    return atomicWrite(metaPath(id), text, error);
}

bool
Spool::hasResponse(const std::string &id) const
{
    struct stat st;
    return ::stat(responsePath(id).c_str(), &st) == 0;
}

} // namespace lpo::serve
