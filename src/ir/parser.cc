#include "ir/parser.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "support/failpoint.h"
#include "support/string_utils.h"

namespace lpo::ir {
namespace {

/** A whitespace-insensitive cursor over one line of IR text. */
class LineCursor
{
  public:
    LineCursor(std::string_view text, int line_no)
        : text_(text), line_(line_no)
    {}

    int lineNo() const { return line_; }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    char
    peekChar()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    /** Consume one punctuation character if it matches. */
    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    /**
     * Read a word: identifier characters plus '.', '_', '-'. Also used
     * for numbers (the caller classifies).
     */
    std::string
    word()
    {
        skipSpace();
        size_t start = pos_;
        auto is_word = [](char c) {
            return std::isalnum(static_cast<unsigned char>(c)) ||
                   c == '.' || c == '_' || c == '-' || c == '+';
        };
        while (pos_ < text_.size() && is_word(text_[pos_]))
            ++pos_;
        return std::string(text_.substr(start, pos_ - start));
    }

    /** Peek the next word without consuming it. */
    std::string
    peekWord()
    {
        size_t saved = pos_;
        std::string w = word();
        pos_ = saved;
        return w;
    }

    /** Consume a specific keyword if present. */
    bool
    consumeWord(std::string_view keyword)
    {
        size_t saved = pos_;
        if (word() == keyword)
            return true;
        pos_ = saved;
        return false;
    }

    /** Read a local identifier after '%'. */
    std::optional<std::string>
    localName()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '%')
            return std::nullopt;
        ++pos_;
        return word();
    }

    std::string_view rest() const { return text_.substr(pos_); }

  private:
    std::string_view text_;
    size_t pos_ = 0;
    int line_;
};

bool
isIntegerLiteral(const std::string &w)
{
    if (w.empty())
        return false;
    size_t i = (w[0] == '-') ? 1 : 0;
    if (i == w.size())
        return false;
    for (; i < w.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(w[i])))
            return false;
    return true;
}

bool
isFloatLiteral(const std::string &w)
{
    if (w.empty())
        return false;
    bool has_dot = false;
    for (char c : w)
        if (c == '.' || c == 'e' || c == 'E')
            has_dot = true;
    if (!has_dot)
        return false;
    char *end = nullptr;
    std::strtod(w.c_str(), &end);
    return end && *end == '\0';
}

/** A use of a not-yet-defined local (phi back-edges). */
struct Fixup
{
    Instruction *inst;
    unsigned operand_index;
    std::string name;
    int line;
};

/** Parser state for one function body. */
class FunctionParser
{
  public:
    FunctionParser(Context &context) : context_(context) {}

    Result<std::unique_ptr<Function>>
    run(const std::vector<std::pair<int, std::string>> &lines, size_t &index);

  private:
    Error err(int line, std::string message)
    {
        return Error{std::move(message), line, 0};
    }

    Result<const Type *> parseType(LineCursor &cur);
    Result<Value *> parseValueRef(LineCursor &cur, const Type *type);
    Result<Value *> parseTypedValue(LineCursor &cur, const Type **type_out);
    Result<Instruction *> parseInstruction(LineCursor &cur,
                                           BasicBlock *block);
    Result<bool> resolveFixups();

    Value *
    lookup(const std::string &name)
    {
        auto it = values_.find(name);
        return it == values_.end() ? nullptr : it->second;
    }

    Context &context_;
    std::unique_ptr<Function> fn_;
    std::map<std::string, Value *> values_;
    std::vector<Fixup> fixups_;
    // Operand slots of the instruction currently being parsed that
    // reference still-undefined names.
    std::vector<std::pair<unsigned, std::string>> pending_;
    unsigned current_operand_index_ = 0;
};

Result<const Type *>
FunctionParser::parseType(LineCursor &cur)
{
    if (cur.consume('<')) {
        std::string count = cur.word();
        if (!isIntegerLiteral(count) || count[0] == '-')
            return err(cur.lineNo(), "expected vector lane count");
        if (!cur.consumeWord("x"))
            return err(cur.lineNo(), "expected 'x' in vector type");
        Result<const Type *> elem = parseType(cur);
        if (!elem)
            return elem;
        if (!cur.consume('>'))
            return err(cur.lineNo(), "expected '>' to close vector type");
        unsigned lanes = std::stoul(count);
        if (lanes < 2 || lanes > 64)
            return err(cur.lineNo(), "unsupported vector lane count");
        if (!(*elem)->isInt() && !(*elem)->isFloat())
            return err(cur.lineNo(), "invalid vector element type");
        return context_.types().vectorTy(*elem, lanes);
    }
    std::string w = cur.word();
    if (w == "void")
        return context_.types().voidTy();
    if (w == "ptr")
        return context_.types().ptrTy();
    if (w == "double" || w == "float")
        return context_.types().floatTy();
    if (w.size() >= 2 && w[0] == 'i' && isIntegerLiteral(w.substr(1))) {
        unsigned width = std::stoul(w.substr(1));
        if (width < 1 || width > 64)
            return err(cur.lineNo(),
                       "unsupported integer width 'i" + w.substr(1) + "'");
        return context_.types().intTy(width);
    }
    return err(cur.lineNo(), "expected type, found '" + w + "'");
}

Result<Value *>
FunctionParser::parseValueRef(LineCursor &cur, const Type *type)
{
    int line = cur.lineNo();
    if (cur.peekChar() == '%') {
        std::string name = *cur.localName();
        if (Value *v = lookup(name)) {
            if (v->type() != type) {
                return err(line, "'%" + name + "' defined with type '" +
                                     v->type()->toString() +
                                     "' but expected '" + type->toString() +
                                     "'");
            }
            return v;
        }
        // Forward reference: record a pending slot and emit a
        // placeholder that resolveFixups() replaces.
        pending_.emplace_back(current_operand_index_, name);
        return static_cast<Value *>(context_.getPoison(type));
    }
    if (cur.peekChar() == '<') {
        // Literal vector: < i32 1, i32 2, ... >
        if (!type->isVector())
            return err(line, "vector constant for non-vector type");
        cur.consume('<');
        std::vector<const Value *> elems;
        for (unsigned i = 0; i < type->lanes(); ++i) {
            if (i && !cur.consume(','))
                return err(line, "expected ',' in vector constant");
            Result<const Type *> ety = parseType(cur);
            if (!ety)
                return ety.error();
            if (*ety != type->scalarType())
                return err(line, "vector element type mismatch");
            Result<Value *> ev = parseValueRef(cur, *ety);
            if (!ev)
                return ev;
            elems.push_back(*ev);
        }
        if (!cur.consume('>'))
            return err(line, "expected '>' to close vector constant");
        return static_cast<Value *>(context_.getVector(type, elems));
    }
    std::string w = cur.word();
    if (w == "zeroinitializer") {
        if (!type->isVector())
            return err(line, "zeroinitializer requires a vector type");
        return context_.getNullValue(type);
    }
    if (w == "splat") {
        if (!type->isVector())
            return err(line, "splat requires a vector type");
        if (!cur.consume('('))
            return err(line, "expected '(' after splat");
        Result<const Type *> ety = parseType(cur);
        if (!ety)
            return ety.error();
        if (*ety != type->scalarType())
            return err(line, "splat element type mismatch");
        Result<Value *> ev = parseValueRef(cur, *ety);
        if (!ev)
            return ev;
        if (!cur.consume(')'))
            return err(line, "expected ')' after splat value");
        return static_cast<Value *>(context_.getSplat(type, *ev));
    }
    if (w == "poison" || w == "undef")
        return static_cast<Value *>(context_.getPoison(type));
    if (w == "true" || w == "false") {
        if (!type->isBool())
            return err(line, "boolean constant for non-i1 type");
        return static_cast<Value *>(context_.getBool(w == "true"));
    }
    if (isIntegerLiteral(w)) {
        if (!type->isInt())
            return err(line, "integer constant for non-integer type '" +
                                 type->toString() + "'");
        int64_t v = std::strtoll(w.c_str(), nullptr, 10);
        return static_cast<Value *>(
            context_.getInt(type, APInt::fromSigned(type->intWidth(), v)));
    }
    if (isFloatLiteral(w)) {
        if (!type->isFloat())
            return err(line, "floating-point constant for non-float type");
        return static_cast<Value *>(context_.getFP(std::atof(w.c_str())));
    }
    if (w.empty())
        return err(line, "expected value");
    return err(line, "expected value, found '" + w + "'");
}

Result<Value *>
FunctionParser::parseTypedValue(LineCursor &cur, const Type **type_out)
{
    Result<const Type *> type = parseType(cur);
    if (!type)
        return type.error();
    if (type_out)
        *type_out = *type;
    return parseValueRef(cur, *type);
}

namespace {

std::optional<Opcode>
binaryOpcodeFromName(const std::string &w)
{
    static const std::map<std::string, Opcode> table = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"udiv", Opcode::UDiv},
        {"sdiv", Opcode::SDiv}, {"urem", Opcode::URem},
        {"srem", Opcode::SRem}, {"shl", Opcode::Shl},
        {"lshr", Opcode::LShr}, {"ashr", Opcode::AShr},
        {"and", Opcode::And},   {"or", Opcode::Or},
        {"xor", Opcode::Xor},   {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub}, {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv},
    };
    auto it = table.find(w);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

std::optional<ICmpPred>
icmpPredFromName(const std::string &w)
{
    static const std::map<std::string, ICmpPred> table = {
        {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},
        {"ugt", ICmpPred::UGT}, {"uge", ICmpPred::UGE},
        {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE},
        {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
        {"slt", ICmpPred::SLT}, {"sle", ICmpPred::SLE},
    };
    auto it = table.find(w);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

std::optional<FCmpPred>
fcmpPredFromName(const std::string &w)
{
    static const std::map<std::string, FCmpPred> table = {
        {"false", FCmpPred::False}, {"oeq", FCmpPred::OEQ},
        {"ogt", FCmpPred::OGT},     {"oge", FCmpPred::OGE},
        {"olt", FCmpPred::OLT},     {"ole", FCmpPred::OLE},
        {"one", FCmpPred::ONE},     {"ord", FCmpPred::ORD},
        {"ueq", FCmpPred::UEQ},     {"ugt", FCmpPred::UGT},
        {"uge", FCmpPred::UGE},     {"ult", FCmpPred::ULT},
        {"ule", FCmpPred::ULE},     {"une", FCmpPred::UNE},
        {"uno", FCmpPred::UNO},     {"true", FCmpPred::True},
    };
    auto it = table.find(w);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

std::optional<Intrinsic>
intrinsicFromSymbol(const std::string &symbol)
{
    static const std::vector<std::pair<std::string, Intrinsic>> table = {
        {"llvm.umin.", Intrinsic::UMin},
        {"llvm.umax.", Intrinsic::UMax},
        {"llvm.smin.", Intrinsic::SMin},
        {"llvm.smax.", Intrinsic::SMax},
        {"llvm.abs.", Intrinsic::Abs},
        {"llvm.ctpop.", Intrinsic::CtPop},
        {"llvm.ctlz.", Intrinsic::CtLz},
        {"llvm.cttz.", Intrinsic::CtTz},
        {"llvm.fabs.", Intrinsic::FAbs},
        {"llvm.usub.sat.", Intrinsic::USubSat},
        {"llvm.uadd.sat.", Intrinsic::UAddSat},
        {"llvm.ssub.sat.", Intrinsic::SSubSat},
        {"llvm.sadd.sat.", Intrinsic::SAddSat},
    };
    for (const auto &[prefix, intr] : table)
        if (startsWith(symbol, prefix))
            return intr;
    return std::nullopt;
}

} // namespace

Result<Instruction *>
FunctionParser::parseInstruction(LineCursor &cur, BasicBlock *block)
{
    int line = cur.lineNo();
    pending_.clear();

    std::string result_name;
    bool has_result = false;
    {
        // Look ahead for "%name =".
        LineCursor probe = cur;
        if (probe.peekChar() == '%') {
            std::string name = *probe.localName();
            if (probe.consume('=')) {
                result_name = name;
                has_result = true;
                cur = probe;
            }
        }
    }

    std::string op = cur.word();
    InstFlags flags;

    auto finish = [&](std::unique_ptr<Instruction> inst)
        -> Result<Instruction *> {
        inst->flags().tail = flags.tail || inst->flags().tail;
        if (has_result) {
            if (inst->type()->isVoid())
                return err(line, "cannot name a void instruction");
            inst->setName(result_name);
        } else if (!inst->type()->isVoid() && !inst->isTerminator()) {
            return err(line, "instruction result must be named");
        }
        Instruction *placed = block->append(std::move(inst));
        if (has_result) {
            if (values_.count(result_name))
                return err(line, "multiple definition of local value '%" +
                                     result_name + "'");
            values_[result_name] = placed;
        }
        for (const auto &[index, name] : pending_)
            fixups_.push_back(Fixup{placed, index, name, line});
        return placed;
    };

    // Binary operators (with optional wrap/exact/disjoint flags).
    if (auto bin_op = binaryOpcodeFromName(op)) {
        for (;;) {
            if (cur.consumeWord("nuw")) { flags.nuw = true; continue; }
            if (cur.consumeWord("nsw")) { flags.nsw = true; continue; }
            if (cur.consumeWord("exact")) { flags.exact = true; continue; }
            if (cur.consumeWord("disjoint")) {
                flags.disjoint = true;
                continue;
            }
            break;
        }
        const Type *type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> lhs = parseTypedValue(cur, &type);
        if (!lhs)
            return lhs.error();
        if (!cur.consume(','))
            return err(line, "expected ',' after first operand");
        current_operand_index_ = 1;
        Result<Value *> rhs = parseValueRef(cur, type);
        if (!rhs)
            return rhs.error();
        bool is_fp = *bin_op >= Opcode::FAdd && *bin_op <= Opcode::FDiv;
        if (is_fp && !type->isFPOrFPVector())
            return err(line, "floating-point operation on non-float type");
        if (!is_fp && !type->isIntOrIntVector())
            return err(line, "integer operation on non-integer type");
        auto inst = std::make_unique<Instruction>(
            *bin_op, type, std::vector<Value *>{*lhs, *rhs});
        inst->flags() = flags;
        return finish(std::move(inst));
    }

    if (op == "icmp" || op == "fcmp") {
        std::string pred_word = cur.word();
        const Type *type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> lhs = parseTypedValue(cur, &type);
        if (!lhs)
            return lhs.error();
        if (!cur.consume(','))
            return err(line, "expected ',' after first operand");
        current_operand_index_ = 1;
        Result<Value *> rhs = parseValueRef(cur, type);
        if (!rhs)
            return rhs.error();
        const Type *result = type->isVector()
            ? context_.types().vectorTy(context_.types().boolTy(),
                                        type->lanes())
            : context_.types().boolTy();
        auto inst = std::make_unique<Instruction>(
            op == "icmp" ? Opcode::ICmp : Opcode::FCmp, result,
            std::vector<Value *>{*lhs, *rhs});
        if (op == "icmp") {
            auto pred = icmpPredFromName(pred_word);
            if (!pred)
                return err(line, "invalid icmp predicate '" + pred_word +
                                     "'");
            if (!type->isIntOrIntVector() && !type->isPtr())
                return err(line, "icmp requires integer operands");
            inst->setICmpPred(*pred);
        } else {
            auto pred = fcmpPredFromName(pred_word);
            if (!pred)
                return err(line, "invalid fcmp predicate '" + pred_word +
                                     "'");
            if (!type->isFPOrFPVector())
                return err(line, "fcmp requires floating-point operands");
            inst->setFCmpPred(*pred);
        }
        return finish(std::move(inst));
    }

    if (op == "select") {
        const Type *cond_type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> cond = parseTypedValue(cur, &cond_type);
        if (!cond)
            return cond.error();
        if (!cur.consume(','))
            return err(line, "expected ',' after select condition");
        const Type *val_type = nullptr;
        current_operand_index_ = 1;
        Result<Value *> tval = parseTypedValue(cur, &val_type);
        if (!tval)
            return tval.error();
        if (!cur.consume(','))
            return err(line, "expected ',' after select true value");
        const Type *fval_type = nullptr;
        current_operand_index_ = 2;
        Result<Value *> fval = parseTypedValue(cur, &fval_type);
        if (!fval)
            return fval.error();
        if (val_type != fval_type)
            return err(line, "select operand types differ");
        bool cond_ok = cond_type->isBool() ||
            (cond_type->isVector() && cond_type->scalarType()->isBool() &&
             val_type->isVector() &&
             cond_type->lanes() == val_type->lanes());
        if (!cond_ok)
            return err(line, "select condition must be i1 or matching "
                             "<N x i1>");
        auto inst = std::make_unique<Instruction>(
            Opcode::Select, val_type,
            std::vector<Value *>{*cond, *tval, *fval});
        return finish(std::move(inst));
    }

    if (op == "trunc" || op == "zext" || op == "sext") {
        for (;;) {
            if (op == "trunc" && cur.consumeWord("nuw")) {
                flags.nuw = true;
                continue;
            }
            if (op == "trunc" && cur.consumeWord("nsw")) {
                flags.nsw = true;
                continue;
            }
            if (op == "zext" && cur.consumeWord("nneg")) {
                flags.nneg = true;
                continue;
            }
            break;
        }
        const Type *src_type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> src = parseTypedValue(cur, &src_type);
        if (!src)
            return src.error();
        if (!cur.consumeWord("to"))
            return err(line, "expected 'to' in cast");
        Result<const Type *> dst = parseType(cur);
        if (!dst)
            return dst.error();
        if (!src_type->isIntOrIntVector() || !(*dst)->isIntOrIntVector())
            return err(line, "cast requires integer types");
        if (src_type->isVector() != (*dst)->isVector() ||
            (src_type->isVector() &&
             src_type->lanes() != (*dst)->lanes())) {
            return err(line, "cast lane count mismatch");
        }
        unsigned src_w = src_type->scalarType()->intWidth();
        unsigned dst_w = (*dst)->scalarType()->intWidth();
        if (op == "trunc" && dst_w >= src_w)
            return err(line, "trunc must narrow the type");
        if (op != "trunc" && dst_w <= src_w)
            return err(line, "extension must widen the type");
        Opcode opcode = op == "trunc"
            ? Opcode::Trunc
            : (op == "zext" ? Opcode::ZExt : Opcode::SExt);
        auto inst = std::make_unique<Instruction>(
            opcode, *dst, std::vector<Value *>{*src});
        inst->flags() = flags;
        return finish(std::move(inst));
    }

    if (op == "freeze") {
        const Type *type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> val = parseTypedValue(cur, &type);
        if (!val)
            return val.error();
        auto inst = std::make_unique<Instruction>(
            Opcode::Freeze, type, std::vector<Value *>{*val});
        return finish(std::move(inst));
    }

    if (op == "tail" || op == "call") {
        if (op == "tail") {
            flags.tail = true;
            if (!cur.consumeWord("call"))
                return err(line, "expected 'call' after 'tail'");
        }
        Result<const Type *> ret_type = parseType(cur);
        if (!ret_type)
            return ret_type.error();
        if (!cur.consume('@'))
            return err(line, "expected callee name");
        std::string symbol = cur.word();
        auto intr = intrinsicFromSymbol(symbol);
        if (!intr)
            return err(line, "unknown or unsupported callee '@" + symbol +
                             "'");
        if (!cur.consume('('))
            return err(line, "expected '(' in call");
        std::vector<Value *> args;
        if (!cur.consume(')')) {
            for (;;) {
                current_operand_index_ = args.size();
                Result<Value *> arg = parseTypedValue(cur, nullptr);
                if (!arg)
                    return arg.error();
                args.push_back(*arg);
                if (cur.consume(')'))
                    break;
                if (!cur.consume(','))
                    return err(line, "expected ',' or ')' in call");
            }
        }
        // Arity / type checks per intrinsic.
        auto bad_signature = [&]() {
            return err(line, "invalid signature for '@" + symbol + "'");
        };
        switch (*intr) {
          case Intrinsic::UMin: case Intrinsic::UMax:
          case Intrinsic::SMin: case Intrinsic::SMax:
          case Intrinsic::USubSat: case Intrinsic::UAddSat:
          case Intrinsic::SSubSat: case Intrinsic::SAddSat:
            if (args.size() != 2 || args[0]->type() != *ret_type ||
                args[1]->type() != *ret_type ||
                !(*ret_type)->isIntOrIntVector()) {
                return bad_signature();
            }
            break;
          case Intrinsic::Abs:
          case Intrinsic::CtLz:
          case Intrinsic::CtTz:
            if (args.size() != 2 || args[0]->type() != *ret_type ||
                !args[1]->type()->isBool() ||
                !(*ret_type)->isIntOrIntVector()) {
                return bad_signature();
            }
            break;
          case Intrinsic::CtPop:
            if (args.size() != 1 || args[0]->type() != *ret_type ||
                !(*ret_type)->isIntOrIntVector()) {
                return bad_signature();
            }
            break;
          case Intrinsic::FAbs:
            if (args.size() != 1 || args[0]->type() != *ret_type ||
                !(*ret_type)->isFPOrFPVector()) {
                return bad_signature();
            }
            break;
          case Intrinsic::None:
            return bad_signature();
        }
        auto inst = std::make_unique<Instruction>(
            Opcode::Call, *ret_type, std::move(args));
        inst->setIntrinsic(*intr);
        inst->flags().tail = flags.tail;
        return finish(std::move(inst));
    }

    if (op == "load") {
        Result<const Type *> type = parseType(cur);
        if (!type)
            return type.error();
        if (!cur.consume(','))
            return err(line, "expected ',' after load type");
        const Type *ptr_type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> ptr = parseTypedValue(cur, &ptr_type);
        if (!ptr)
            return ptr.error();
        if (!ptr_type->isPtr())
            return err(line, "load pointer operand must have type 'ptr'");
        auto inst = std::make_unique<Instruction>(
            Opcode::Load, *type, std::vector<Value *>{*ptr});
        inst->setAccessType(*type);
        if (cur.consume(',') && cur.consumeWord("align")) {
            std::string a = cur.word();
            if (isIntegerLiteral(a))
                inst->setAlign(std::stoul(a));
        }
        return finish(std::move(inst));
    }

    if (op == "store") {
        const Type *val_type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> val = parseTypedValue(cur, &val_type);
        if (!val)
            return val.error();
        if (!cur.consume(','))
            return err(line, "expected ',' after store value");
        const Type *ptr_type = nullptr;
        current_operand_index_ = 1;
        Result<Value *> ptr = parseTypedValue(cur, &ptr_type);
        if (!ptr)
            return ptr.error();
        if (!ptr_type->isPtr())
            return err(line, "store pointer operand must have type 'ptr'");
        auto inst = std::make_unique<Instruction>(
            Opcode::Store, context_.types().voidTy(),
            std::vector<Value *>{*val, *ptr});
        inst->setAccessType(val_type);
        if (cur.consume(',') && cur.consumeWord("align")) {
            std::string a = cur.word();
            if (isIntegerLiteral(a))
                inst->setAlign(std::stoul(a));
        }
        return finish(std::move(inst));
    }

    if (op == "getelementptr") {
        for (;;) {
            if (cur.consumeWord("inbounds")) {
                flags.inbounds = true;
                continue;
            }
            if (cur.consumeWord("nuw")) { flags.nuw = true; continue; }
            if (cur.consumeWord("nusw")) { continue; } // accepted, ignored
            break;
        }
        Result<const Type *> elem = parseType(cur);
        if (!elem)
            return elem.error();
        std::vector<Value *> operands;
        while (cur.consume(',')) {
            current_operand_index_ = operands.size();
            Result<Value *> v = parseTypedValue(cur, nullptr);
            if (!v)
                return v.error();
            operands.push_back(*v);
        }
        if (operands.empty() || !operands[0]->type()->isPtr())
            return err(line, "getelementptr requires a pointer base");
        if (operands.size() != 2 ||
            !operands[1]->type()->isInt()) {
            return err(line, "only single-index getelementptr supported");
        }
        auto inst = std::make_unique<Instruction>(
            Opcode::Gep, context_.types().ptrTy(), std::move(operands));
        inst->setAccessType(*elem);
        inst->flags() = flags;
        return finish(std::move(inst));
    }

    if (op == "phi") {
        Result<const Type *> type = parseType(cur);
        if (!type)
            return type.error();
        std::vector<Value *> incoming;
        std::vector<std::string> labels;
        for (;;) {
            if (!cur.consume('['))
                return err(line, "expected '[' in phi");
            current_operand_index_ = incoming.size();
            Result<Value *> v = parseValueRef(cur, *type);
            if (!v)
                return v.error();
            incoming.push_back(*v);
            if (!cur.consume(','))
                return err(line, "expected ',' in phi incoming pair");
            auto label = cur.localName();
            if (!label)
                return err(line, "expected predecessor label in phi");
            labels.push_back(*label);
            if (!cur.consume(']'))
                return err(line, "expected ']' in phi");
            if (!cur.consume(','))
                break;
        }
        auto inst = std::make_unique<Instruction>(
            Opcode::Phi, *type, std::move(incoming));
        inst->setPhiLabels(std::move(labels));
        return finish(std::move(inst));
    }

    if (op == "br") {
        if (cur.consumeWord("label")) {
            auto label = cur.localName();
            if (!label)
                return err(line, "expected label in br");
            auto inst = std::make_unique<Instruction>(
                Opcode::Br, context_.types().voidTy(),
                std::vector<Value *>{});
            inst->setBrLabels({*label});
            return finish(std::move(inst));
        }
        const Type *cond_type = nullptr;
        current_operand_index_ = 0;
        Result<Value *> cond = parseTypedValue(cur, &cond_type);
        if (!cond)
            return cond.error();
        if (!cond_type->isBool())
            return err(line, "br condition must be i1");
        std::vector<std::string> labels;
        for (int i = 0; i < 2; ++i) {
            if (!cur.consume(','))
                return err(line, "expected ',' in br");
            if (!cur.consumeWord("label"))
                return err(line, "expected 'label' in br");
            auto label = cur.localName();
            if (!label)
                return err(line, "expected label in br");
            labels.push_back(*label);
        }
        auto inst = std::make_unique<Instruction>(
            Opcode::Br, context_.types().voidTy(),
            std::vector<Value *>{*cond});
        inst->setBrLabels(std::move(labels));
        return finish(std::move(inst));
    }

    if (op == "ret") {
        if (cur.consumeWord("void")) {
            auto inst = std::make_unique<Instruction>(
                Opcode::Ret, context_.types().voidTy(),
                std::vector<Value *>{});
            return finish(std::move(inst));
        }
        current_operand_index_ = 0;
        Result<Value *> val = parseTypedValue(cur, nullptr);
        if (!val)
            return val.error();
        auto inst = std::make_unique<Instruction>(
            Opcode::Ret, context_.types().voidTy(),
            std::vector<Value *>{*val});
        return finish(std::move(inst));
    }

    // This is the message LLVM's parser produces for a bogus opcode;
    // the LLM feedback loop depends on its wording (paper Fig. 3c).
    return err(line, "expected instruction opcode\n" + std::string(op));
}

Result<bool>
FunctionParser::resolveFixups()
{
    for (const Fixup &fixup : fixups_) {
        Value *v = lookup(fixup.name);
        if (!v) {
            return Error{"use of undefined value '%" + fixup.name + "'",
                         fixup.line, 0};
        }
        fixup.inst->setOperand(fixup.operand_index, v);
    }
    fixups_.clear();
    return true;
}

Result<std::unique_ptr<Function>>
FunctionParser::run(const std::vector<std::pair<int, std::string>> &lines,
                    size_t &index)
{
    // Parse the "define" header.
    LineCursor header(lines[index].second, lines[index].first);
    if (!header.consumeWord("define"))
        return err(header.lineNo(), "expected 'define'");
    // Skip common attribute keywords between define and the type.
    while (header.consumeWord("internal") || header.consumeWord("dso_local")
           || header.consumeWord("noundef") || header.consumeWord("hidden"))
        ;
    Result<const Type *> ret_type = parseType(header);
    if (!ret_type)
        return ret_type.error();
    if (!header.consume('@'))
        return err(header.lineNo(), "expected function name");
    std::string fn_name = header.word();
    if (!header.consume('('))
        return err(header.lineNo(), "expected '(' in function header");

    fn_ = std::make_unique<Function>(context_, fn_name, *ret_type);
    if (!header.consume(')')) {
        for (;;) {
            Result<const Type *> arg_type = parseType(header);
            if (!arg_type)
                return arg_type.error();
            // Skip parameter attributes.
            while (header.consumeWord("noundef") ||
                   header.consumeWord("nonnull") ||
                   header.consumeWord("readonly") ||
                   header.consumeWord("nocapture") ||
                   header.consumeWord("writeonly"))
                ;
            auto arg_name = header.localName();
            std::string name = arg_name ? *arg_name : std::string();
            Argument *arg = fn_->addArg(*arg_type, name);
            if (!name.empty()) {
                if (values_.count(name))
                    return err(header.lineNo(),
                               "duplicate argument name '%" + name + "'");
                values_[name] = arg;
            }
            if (header.consume(')'))
                break;
            if (!header.consume(','))
                return err(header.lineNo(),
                           "expected ',' or ')' in argument list");
        }
    }
    fn_->numberValues();
    // Register auto-assigned numeric argument names.
    for (const auto &arg : fn_->args())
        if (!values_.count(arg->name()))
            values_[arg->name()] = arg.get();
    if (!header.consume('{'))
        return err(header.lineNo(), "expected '{' to begin function body");
    ++index;

    BasicBlock *block = nullptr;
    auto ensure_block = [&]() {
        if (!block)
            block = fn_->addBlock("entry");
        return block;
    };

    for (; index < lines.size(); ++index) {
        const auto &[line_no, text] = lines[index];
        std::string_view body = trim(text);
        if (body == "}") {
            ++index;
            if (!fn_->blocks().empty() && fn_->entry()->terminator() ==
                nullptr && fn_->blocks().size() == 1 &&
                fn_->entry()->empty()) {
                return err(line_no, "empty function body");
            }
            Result<bool> resolved = resolveFixups();
            if (!resolved)
                return resolved.error();
            if (fn_->blocks().empty())
                return err(line_no, "function has no basic blocks");
            for (const auto &bb : fn_->blocks()) {
                if (!bb->terminator()) {
                    return err(line_no, "block '" + bb->label() +
                                            "' lacks a terminator");
                }
            }
            fn_->numberValues();
            return std::move(fn_);
        }
        // Label line: "name:".
        if (!body.empty() && body.back() == ':' &&
            body.find(' ') == std::string_view::npos) {
            std::string label(body.substr(0, body.size() - 1));
            block = fn_->addBlock(label);
            continue;
        }
        LineCursor cur(text, line_no);
        Result<Instruction *> inst = parseInstruction(cur, ensure_block());
        if (!inst)
            return inst.error();
    }
    return err(lines.back().first, "expected '}' to close function body");
}

/** Strip comments/blank lines; keep (original line number, text). */
std::vector<std::pair<int, std::string>>
preprocess(std::string_view text)
{
    std::vector<std::pair<int, std::string>> lines;
    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        std::string stripped = raw;
        size_t comment = stripped.find(';');
        if (comment != std::string::npos)
            stripped = stripped.substr(0, comment);
        if (trim(stripped).empty())
            continue;
        lines.emplace_back(line_no, stripped);
    }
    return lines;
}

} // namespace

Result<std::unique_ptr<Module>>
parseModule(Context &context, std::string_view text, std::string module_name)
{
    // Chaos-test injection: well-formed input rejected at the front
    // door, the same shape as a truncated or corrupt .ll file.
    if (LPO_FAILPOINT("parser.fail"))
        return Error{"injected parse failure (failpoint parser.fail)",
                     0, 0};
    auto module = std::make_unique<Module>(context, std::move(module_name));
    auto lines = preprocess(text);
    size_t index = 0;
    while (index < lines.size()) {
        std::string_view body = trim(lines[index].second);
        if (!startsWith(body, "define")) {
            ++index; // tolerate declarations/attributes/metadata
            continue;
        }
        FunctionParser fp(context);
        Result<std::unique_ptr<Function>> fn = fp.run(lines, index);
        if (!fn)
            return fn.error();
        module->addFunction(fn.take());
    }
    if (module->functions().empty())
        return Error{"no function definitions found", 0, 0};
    return module;
}

Result<std::unique_ptr<Function>>
parseFunction(Context &context, std::string_view text)
{
    if (LPO_FAILPOINT("parser.fail"))
        return Error{"injected parse failure (failpoint parser.fail)",
                     0, 0};
    auto lines = preprocess(text);
    for (size_t index = 0; index < lines.size(); ++index) {
        if (startsWith(trim(lines[index].second), "define")) {
            FunctionParser fp(context);
            return fp.run(lines, index);
        }
    }
    return Error{"no function definition found", 0, 0};
}

} // namespace lpo::ir
