/**
 * @file
 * SSA values: arguments, constants, and the Context that interns them.
 *
 * Instructions (the remaining Value kind) live in instruction.h.
 * Constants are interned per Context so they can be shared freely
 * between functions and modules without cloning.
 */
#ifndef LPO_IR_VALUE_H
#define LPO_IR_VALUE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/apint.h"

namespace lpo::ir {

/** Base class of everything an instruction operand can be. */
class Value
{
  public:
    enum class Kind { Argument, ConstInt, ConstFP, ConstVector, Poison,
                      Instruction };

    virtual ~Value() = default;

    Kind kind() const { return kind_; }
    const Type *type() const { return type_; }

    bool isConstant() const
    {
        return kind_ == Kind::ConstInt || kind_ == Kind::ConstFP ||
               kind_ == Kind::ConstVector || kind_ == Kind::Poison;
    }

    /** SSA name without the leading '%' (may be empty for constants). */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

  protected:
    Value(Kind kind, const Type *type) : kind_(kind), type_(type) {}

    Kind kind_;
    const Type *type_;
    std::string name_;
};

/** A formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(const Type *type, unsigned index)
        : Value(Kind::Argument, type), index_(index)
    {}

    unsigned index() const { return index_; }

  private:
    unsigned index_;
};

/** A scalar integer constant. */
class ConstantInt : public Value
{
  public:
    ConstantInt(const Type *type, APInt value)
        : Value(Kind::ConstInt, type), value_(value)
    {}

    const APInt &value() const { return value_; }

  private:
    APInt value_;
};

/** A scalar double-precision constant. */
class ConstantFP : public Value
{
  public:
    ConstantFP(const Type *type, double value)
        : Value(Kind::ConstFP, type), value_(value)
    {}

    double value() const { return value_; }

  private:
    double value_;
};

/**
 * A vector constant.
 *
 * Elements reference interned scalar constants. A splat is a vector
 * constant whose elements are all identical; zeroinitializer is a
 * splat of zero.
 */
class ConstantVector : public Value
{
  public:
    ConstantVector(const Type *type, std::vector<const Value *> elements)
        : Value(Kind::ConstVector, type), elements_(std::move(elements))
    {}

    const std::vector<const Value *> &elements() const { return elements_; }
    bool isSplat() const;
    /** The common element when isSplat(). */
    const Value *splatValue() const { return elements_.front(); }

  private:
    std::vector<const Value *> elements_;
};

/** The poison constant of a given type (undef is folded into poison). */
class PoisonValue : public Value
{
  public:
    explicit PoisonValue(const Type *type) : Value(Kind::Poison, type) {}
};

/**
 * Owner of types and interned constants.
 *
 * A Context outlives every Module / Function built against it; all IR
 * objects hold plain pointers into it.
 */
class Context
{
  public:
    Context() = default;
    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    TypeContext &types() { return types_; }

    /** The iN constant @p value (interned). */
    ConstantInt *getInt(unsigned width, uint64_t value);
    ConstantInt *getInt(const Type *type, const APInt &value);
    ConstantInt *getBool(bool value) { return getInt(1, value); }
    /** The double constant @p value (interned on the bit pattern). */
    ConstantFP *getFP(double value);
    /** A vector constant from per-lane scalars. */
    ConstantVector *getVector(const Type *type,
                                    std::vector<const Value *> elements);
    /** The splat vector whose lanes all equal @p scalar. */
    ConstantVector *getSplat(const Type *vec_type,
                                   const Value *scalar);
    /** The all-zero constant of @p type (scalar or vector). */
    Value *getNullValue(const Type *type);
    /** The poison constant of @p type. */
    PoisonValue *getPoison(const Type *type);

  private:
    TypeContext types_;
    std::vector<std::unique_ptr<Value>> pool_;
    std::map<std::pair<const Type *, uint64_t>, ConstantInt *> ints_;
    std::map<uint64_t, ConstantFP *> fps_;
    std::map<const Type *, PoisonValue *> poisons_;
    std::map<std::pair<const Type *, std::vector<const Value *>>,
             ConstantVector *> vectors_;
};

/** True if @p v is an integer constant (scalar) equal to @p value. */
bool isConstIntValue(const Value *v, uint64_t value);
/** If @p v is a scalar int constant or an int splat, return it. */
const ConstantInt *asConstIntOrSplat(const Value *v);
/** The constant @p value as @p type: scalar iN, or a splat for
 *  vector types. The one shared materialization helper (rewrite
 *  library, e-graph folds and rules). */
Value *typedConst(Context &ctx, const Type *type, const APInt &value);

} // namespace lpo::ir

#endif // LPO_IR_VALUE_H
