/**
 * @file
 * Textual IR emission in LLVM-like syntax.
 *
 * The printer and parser are inverses: print(parse(text)) is stable,
 * which the extractor's dedup hashing and the LLM feedback loop rely
 * on.
 */
#ifndef LPO_IR_PRINTER_H
#define LPO_IR_PRINTER_H

#include <string>

#include "ir/module.h"

namespace lpo::ir {

/** Render a constant/argument/instruction reference (no type). */
std::string printValueRef(const Value *v);

/** Render a single instruction line (no leading indentation). */
std::string printInstruction(const Instruction *inst);

/** Render a full function definition. */
std::string printFunction(const Function &fn);

/** Render a module (all functions, in order). */
std::string printModule(const Module &module);

} // namespace lpo::ir

#endif // LPO_IR_PRINTER_H
