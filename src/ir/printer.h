/**
 * @file
 * Textual IR emission in LLVM-like syntax.
 *
 * The printer and parser are inverses: print(parse(text)) is stable,
 * which the extractor's dedup hashing and the LLM feedback loop rely
 * on.
 */
#ifndef LPO_IR_PRINTER_H
#define LPO_IR_PRINTER_H

#include <string>

#include "ir/module.h"

namespace lpo::ir {

/** Render a constant/argument/instruction reference (no type). */
std::string printValueRef(const Value *v);

/** Render a single instruction line (no leading indentation). */
std::string printInstruction(const Instruction *inst);

/** Render a full function definition. */
std::string printFunction(const Function &fn);

/**
 * Render @p fn in canonical alpha-renamed form: the function prints as
 * @f, values (arguments, then instruction results in block order) as
 * %0, %1, ..., labels as b0, b1, ... Two structurally identical
 * functions — same types, opcodes, flags, constants, and dataflow —
 * produce byte-identical canonical text regardless of how the LLM or
 * extractor named things. The verification cache keys on this form
 * (see verify/cache.h); it is NOT guaranteed to re-parse (labels may
 * collide with value names), so use printFunction for round-trips.
 */
std::string printFunctionCanonical(const Function &fn);

/** Render a module (all functions, in order). */
std::string printModule(const Module &module);

} // namespace lpo::ir

#endif // LPO_IR_PRINTER_H
