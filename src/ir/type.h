/**
 * @file
 * The IR type system.
 *
 * Mirrors the LLVM IR types used by peephole optimization workloads:
 * iN integers (1..64 bits), double-precision floats, opaque pointers,
 * fixed vectors of integers or floats, and void. Types are interned in
 * a TypeContext, so equality is pointer identity.
 */
#ifndef LPO_IR_TYPE_H
#define LPO_IR_TYPE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lpo::ir {

class TypeContext;

/** An interned IR type. */
class Type
{
  public:
    enum class Kind { Void, Int, Float, Ptr, Vector };

    Kind kind() const { return kind_; }

    bool isVoid() const { return kind_ == Kind::Void; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isFloat() const { return kind_ == Kind::Float; }
    bool isPtr() const { return kind_ == Kind::Ptr; }
    bool isVector() const { return kind_ == Kind::Vector; }

    /** For Int types: the bit width. */
    unsigned intWidth() const { return width_; }
    /** For Vector types: the number of lanes. */
    unsigned lanes() const { return lanes_; }
    /** For Vector types: the element type; otherwise this type. */
    const Type *scalarType() const { return elem_ ? elem_ : this; }

    /** True if this is iN or a vector of iN. */
    bool isIntOrIntVector() const;
    /** True if this is float or a vector of float. */
    bool isFPOrFPVector() const;
    /** True for i1 exactly. */
    bool isBool() const { return isInt() && width_ == 1; }

    /** Byte size used by load/store/gep (vectors are packed). */
    unsigned storeSizeBytes() const;

    /** LLVM-style spelling, e.g. "i32", "<4 x i8>", "ptr". */
    std::string toString() const;

  private:
    friend class TypeContext;
    Type(Kind kind, unsigned width, unsigned lanes, const Type *elem)
        : kind_(kind), width_(width), lanes_(lanes), elem_(elem)
    {}

    Kind kind_;
    unsigned width_;      // int bit width (scalar only)
    unsigned lanes_;      // vector lane count
    const Type *elem_;    // vector element type
};

/** Owner and intern table for Type instances. */
class TypeContext
{
  public:
    TypeContext();
    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    const Type *voidTy() const { return void_; }
    const Type *floatTy() const { return float_; }
    const Type *ptrTy() const { return ptr_; }
    /** The iN type; @p width must be in [1, 64]. */
    const Type *intTy(unsigned width);
    const Type *boolTy() { return intTy(1); }
    /** A fixed vector of @p lanes scalars of type @p elem. */
    const Type *vectorTy(const Type *elem, unsigned lanes);

  private:
    std::vector<std::unique_ptr<Type>> pool_;
    const Type *void_;
    const Type *float_;
    const Type *ptr_;
    std::map<unsigned, const Type *> ints_;
    std::map<std::pair<const Type *, unsigned>, const Type *> vectors_;
};

} // namespace lpo::ir

#endif // LPO_IR_TYPE_H
