#include "ir/printer.h"

#include <cassert>
#include <cstdio>

namespace lpo::ir {
namespace {

std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%e", value);
    return buffer;
}

bool
isZeroConstant(const Value *v)
{
    switch (v->kind()) {
      case Value::Kind::ConstInt:
        return static_cast<const ConstantInt *>(v)->value().isZero();
      case Value::Kind::ConstFP:
        return static_cast<const ConstantFP *>(v)->value() == 0.0;
      case Value::Kind::ConstVector: {
        for (const Value *e :
             static_cast<const ConstantVector *>(v)->elements()) {
            if (!isZeroConstant(e))
                return false;
        }
        return true;
      }
      default:
        return false;
    }
}

/** "i32 255" for a splat payload or vector element. */
std::string
typedRef(const Value *v)
{
    return v->type()->toString() + " " + printValueRef(v);
}

std::string
intrinsicSuffix(const Type *type)
{
    if (type->isVector()) {
        return ".v" + std::to_string(type->lanes()) +
               type->scalarType()->toString();
    }
    if (type->isFloat())
        return ".f64";
    return "." + type->toString();
}

} // namespace

std::string
printValueRef(const Value *v)
{
    switch (v->kind()) {
      case Value::Kind::Argument:
      case Value::Kind::Instruction:
        return "%" + v->name();
      case Value::Kind::ConstInt: {
        const auto *ci = static_cast<const ConstantInt *>(v);
        if (ci->type()->isBool())
            return ci->value().isZero() ? "false" : "true";
        return ci->value().toString();
      }
      case Value::Kind::ConstFP:
        return formatDouble(static_cast<const ConstantFP *>(v)->value());
      case Value::Kind::Poison:
        return "poison";
      case Value::Kind::ConstVector: {
        const auto *cv = static_cast<const ConstantVector *>(v);
        if (isZeroConstant(cv))
            return "zeroinitializer";
        if (cv->isSplat())
            return "splat (" + typedRef(cv->splatValue()) + ")";
        std::string out = "<";
        for (size_t i = 0; i < cv->elements().size(); ++i) {
            if (i)
                out += ", ";
            out += typedRef(cv->elements()[i]);
        }
        return out + ">";
      }
    }
    return "?";
}

std::string
printInstruction(const Instruction *inst)
{
    std::string out;
    if (!inst->type()->isVoid() && !inst->isTerminator())
        out += "%" + inst->name() + " = ";

    const InstFlags &flags = inst->flags();
    auto operand_ref = [&](unsigned i) {
        return printValueRef(inst->operand(i));
    };
    auto typed_operand = [&](unsigned i) {
        return inst->operand(i)->type()->toString() + " " + operand_ref(i);
    };

    switch (inst->op()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Shl: {
        out += opcodeName(inst->op());
        if (flags.nuw)
            out += " nuw";
        if (flags.nsw)
            out += " nsw";
        out += " " + typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::UDiv: case Opcode::SDiv:
      case Opcode::LShr: case Opcode::AShr: {
        out += opcodeName(inst->op());
        if (flags.exact)
            out += " exact";
        out += " " + typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::URem: case Opcode::SRem:
      case Opcode::And: case Opcode::Xor:
      case Opcode::FAdd: case Opcode::FSub:
      case Opcode::FMul: case Opcode::FDiv: {
        out += std::string(opcodeName(inst->op())) + " " +
               typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::Or: {
        out += "or";
        if (flags.disjoint)
            out += " disjoint";
        out += " " + typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::ICmp: {
        out += std::string("icmp ") + icmpPredName(inst->icmpPred()) + " " +
               typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::FCmp: {
        out += std::string("fcmp ") + fcmpPredName(inst->fcmpPred()) + " " +
               typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::Select: {
        out += "select " + typed_operand(0) + ", " + typed_operand(1) +
               ", " + typed_operand(2);
        return out;
      }
      case Opcode::Trunc: {
        out += "trunc";
        if (flags.nuw)
            out += " nuw";
        if (flags.nsw)
            out += " nsw";
        out += " " + typed_operand(0) + " to " + inst->type()->toString();
        return out;
      }
      case Opcode::ZExt: {
        out += "zext";
        if (flags.nneg)
            out += " nneg";
        out += " " + typed_operand(0) + " to " + inst->type()->toString();
        return out;
      }
      case Opcode::SExt: {
        out += "sext " + typed_operand(0) + " to " +
               inst->type()->toString();
        return out;
      }
      case Opcode::Freeze: {
        out += "freeze " + typed_operand(0);
        return out;
      }
      case Opcode::Call: {
        if (flags.tail)
            out += "tail ";
        out += "call " + inst->type()->toString() + " @";
        out += intrinsicName(inst->intrinsic());
        // The type suffix follows the leading argument's type (fabs is
        // keyed on the return type, same thing for our fragment).
        out += intrinsicSuffix(inst->operand(0)->type());
        out += "(";
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
            if (i)
                out += ", ";
            out += typed_operand(i);
        }
        out += ")";
        return out;
      }
      case Opcode::Load: {
        out += "load " + inst->type()->toString() + ", " + typed_operand(0);
        if (inst->align())
            out += ", align " + std::to_string(inst->align());
        return out;
      }
      case Opcode::Store: {
        out += "store " + typed_operand(0) + ", " + typed_operand(1);
        if (inst->align())
            out += ", align " + std::to_string(inst->align());
        return out;
      }
      case Opcode::Gep: {
        out += "getelementptr";
        if (flags.inbounds)
            out += " inbounds";
        if (flags.nuw)
            out += " nuw";
        out += " " + inst->accessType()->toString();
        for (unsigned i = 0; i < inst->numOperands(); ++i)
            out += ", " + typed_operand(i);
        return out;
      }
      case Opcode::Phi: {
        out += "phi " + inst->type()->toString() + " ";
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
            if (i)
                out += ", ";
            out += "[ " + operand_ref(i) + ", %" + inst->phiLabels()[i] +
                   " ]";
        }
        return out;
      }
      case Opcode::Br: {
        if (inst->numOperands() == 0)
            return "br label %" + inst->brLabels()[0];
        return "br " + typed_operand(0) + ", label %" +
               inst->brLabels()[0] + ", label %" + inst->brLabels()[1];
      }
      case Opcode::Ret: {
        if (inst->numOperands() == 0)
            return "ret void";
        return "ret " + typed_operand(0);
      }
    }
    assert(false && "unhandled opcode in printer");
    return out;
}

std::string
printFunction(const Function &fn)
{
    std::string out = "define " + fn.returnType()->toString() + " @" +
                      fn.name() + "(";
    for (unsigned i = 0; i < fn.numArgs(); ++i) {
        if (i)
            out += ", ";
        out += fn.arg(i)->type()->toString() + " %" + fn.arg(i)->name();
    }
    out += ") {\n";
    bool first = true;
    for (const auto &bb : fn.blocks()) {
        if (!first || fn.blocks().size() > 1)
            out += bb->label() + ":\n";
        first = false;
        for (const auto &inst : bb->instructions())
            out += "  " + printInstruction(inst.get()) + "\n";
    }
    out += "}\n";
    return out;
}

std::string
printModule(const Module &module)
{
    std::string out;
    out += "; ModuleID = '" + module.name() + "'\n";
    for (const auto &fn : module.functions()) {
        out += "\n";
        out += printFunction(*fn);
    }
    return out;
}

} // namespace lpo::ir
