#include "ir/printer.h"

#include <cassert>
#include <cstdio>
#include <map>

namespace lpo::ir {
namespace {

/**
 * Optional renaming applied while printing. When null, values and
 * labels print under their own names (the default, parser-stable
 * syntax); printFunctionCanonical supplies maps that alpha-rename
 * values to %0,%1,... and labels to b0,b1,... so structurally
 * identical functions print identically.
 */
struct PrintNames
{
    std::map<const Value *, std::string> values;
    std::map<std::string, std::string> labels;
    std::string function_name;
};

std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%e", value);
    return buffer;
}

bool
isZeroConstant(const Value *v)
{
    switch (v->kind()) {
      case Value::Kind::ConstInt:
        return static_cast<const ConstantInt *>(v)->value().isZero();
      case Value::Kind::ConstFP:
        return static_cast<const ConstantFP *>(v)->value() == 0.0;
      case Value::Kind::ConstVector: {
        for (const Value *e :
             static_cast<const ConstantVector *>(v)->elements()) {
            if (!isZeroConstant(e))
                return false;
        }
        return true;
      }
      default:
        return false;
    }
}

std::string valueRefImpl(const Value *v, const PrintNames *names);

/** "i32 255" for a splat payload or vector element. */
std::string
typedRef(const Value *v, const PrintNames *names)
{
    return v->type()->toString() + " " + valueRefImpl(v, names);
}

std::string
intrinsicSuffix(const Type *type)
{
    if (type->isVector()) {
        return ".v" + std::to_string(type->lanes()) +
               type->scalarType()->toString();
    }
    if (type->isFloat())
        return ".f64";
    return "." + type->toString();
}

std::string
labelRef(const std::string &label, const PrintNames *names)
{
    if (names) {
        auto it = names->labels.find(label);
        assert(it != names->labels.end());
        return it->second;
    }
    return label;
}

std::string
valueRefImpl(const Value *v, const PrintNames *names)
{
    switch (v->kind()) {
      case Value::Kind::Argument:
      case Value::Kind::Instruction: {
        if (names) {
            auto it = names->values.find(v);
            assert(it != names->values.end());
            return "%" + it->second;
        }
        return "%" + v->name();
      }
      case Value::Kind::ConstInt: {
        const auto *ci = static_cast<const ConstantInt *>(v);
        if (ci->type()->isBool())
            return ci->value().isZero() ? "false" : "true";
        return ci->value().toString();
      }
      case Value::Kind::ConstFP:
        return formatDouble(static_cast<const ConstantFP *>(v)->value());
      case Value::Kind::Poison:
        return "poison";
      case Value::Kind::ConstVector: {
        const auto *cv = static_cast<const ConstantVector *>(v);
        if (isZeroConstant(cv))
            return "zeroinitializer";
        if (cv->isSplat())
            return "splat (" + typedRef(cv->splatValue(), names) + ")";
        std::string out = "<";
        for (size_t i = 0; i < cv->elements().size(); ++i) {
            if (i)
                out += ", ";
            out += typedRef(cv->elements()[i], names);
        }
        return out + ">";
      }
    }
    return "?";
}

std::string
instructionImpl(const Instruction *inst, const PrintNames *names)
{
    std::string out;
    if (!inst->type()->isVoid() && !inst->isTerminator())
        out += valueRefImpl(inst, names) + " = ";

    const InstFlags &flags = inst->flags();
    auto operand_ref = [&](unsigned i) {
        return valueRefImpl(inst->operand(i), names);
    };
    auto typed_operand = [&](unsigned i) {
        return inst->operand(i)->type()->toString() + " " + operand_ref(i);
    };

    switch (inst->op()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Shl: {
        out += opcodeName(inst->op());
        if (flags.nuw)
            out += " nuw";
        if (flags.nsw)
            out += " nsw";
        out += " " + typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::UDiv: case Opcode::SDiv:
      case Opcode::LShr: case Opcode::AShr: {
        out += opcodeName(inst->op());
        if (flags.exact)
            out += " exact";
        out += " " + typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::URem: case Opcode::SRem:
      case Opcode::And: case Opcode::Xor:
      case Opcode::FAdd: case Opcode::FSub:
      case Opcode::FMul: case Opcode::FDiv: {
        out += std::string(opcodeName(inst->op())) + " " +
               typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::Or: {
        out += "or";
        if (flags.disjoint)
            out += " disjoint";
        out += " " + typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::ICmp: {
        out += std::string("icmp ") + icmpPredName(inst->icmpPred()) + " " +
               typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::FCmp: {
        out += std::string("fcmp ") + fcmpPredName(inst->fcmpPred()) + " " +
               typed_operand(0) + ", " + operand_ref(1);
        return out;
      }
      case Opcode::Select: {
        out += "select " + typed_operand(0) + ", " + typed_operand(1) +
               ", " + typed_operand(2);
        return out;
      }
      case Opcode::Trunc: {
        out += "trunc";
        if (flags.nuw)
            out += " nuw";
        if (flags.nsw)
            out += " nsw";
        out += " " + typed_operand(0) + " to " + inst->type()->toString();
        return out;
      }
      case Opcode::ZExt: {
        out += "zext";
        if (flags.nneg)
            out += " nneg";
        out += " " + typed_operand(0) + " to " + inst->type()->toString();
        return out;
      }
      case Opcode::SExt: {
        out += "sext " + typed_operand(0) + " to " +
               inst->type()->toString();
        return out;
      }
      case Opcode::Freeze: {
        out += "freeze " + typed_operand(0);
        return out;
      }
      case Opcode::Call: {
        if (flags.tail)
            out += "tail ";
        out += "call " + inst->type()->toString() + " @";
        out += intrinsicName(inst->intrinsic());
        // The type suffix follows the leading argument's type (fabs is
        // keyed on the return type, same thing for our fragment).
        out += intrinsicSuffix(inst->operand(0)->type());
        out += "(";
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
            if (i)
                out += ", ";
            out += typed_operand(i);
        }
        out += ")";
        return out;
      }
      case Opcode::Load: {
        out += "load " + inst->type()->toString() + ", " + typed_operand(0);
        if (inst->align())
            out += ", align " + std::to_string(inst->align());
        return out;
      }
      case Opcode::Store: {
        out += "store " + typed_operand(0) + ", " + typed_operand(1);
        if (inst->align())
            out += ", align " + std::to_string(inst->align());
        return out;
      }
      case Opcode::Gep: {
        out += "getelementptr";
        if (flags.inbounds)
            out += " inbounds";
        if (flags.nuw)
            out += " nuw";
        out += " " + inst->accessType()->toString();
        for (unsigned i = 0; i < inst->numOperands(); ++i)
            out += ", " + typed_operand(i);
        return out;
      }
      case Opcode::Phi: {
        out += "phi " + inst->type()->toString() + " ";
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
            if (i)
                out += ", ";
            out += "[ " + operand_ref(i) + ", %" +
                   labelRef(inst->phiLabels()[i], names) + " ]";
        }
        return out;
      }
      case Opcode::Br: {
        if (inst->numOperands() == 0)
            return "br label %" + labelRef(inst->brLabels()[0], names);
        return "br " + typed_operand(0) + ", label %" +
               labelRef(inst->brLabels()[0], names) + ", label %" +
               labelRef(inst->brLabels()[1], names);
      }
      case Opcode::Ret: {
        if (inst->numOperands() == 0)
            return "ret void";
        return "ret " + typed_operand(0);
      }
    }
    assert(false && "unhandled opcode in printer");
    return out;
}

std::string
functionImpl(const Function &fn, const PrintNames *names)
{
    std::string fn_name = names ? names->function_name : fn.name();
    std::string out = "define " + fn.returnType()->toString() + " @" +
                      fn_name + "(";
    for (unsigned i = 0; i < fn.numArgs(); ++i) {
        if (i)
            out += ", ";
        out += fn.arg(i)->type()->toString() + " " +
               valueRefImpl(fn.arg(i), names);
    }
    out += ") {\n";
    bool first = true;
    for (const auto &bb : fn.blocks()) {
        if (!first || fn.blocks().size() > 1)
            out += labelRef(bb->label(), names) + ":\n";
        first = false;
        for (const auto &inst : bb->instructions())
            out += "  " + instructionImpl(inst.get(), names) + "\n";
    }
    out += "}\n";
    return out;
}

} // namespace

std::string
printValueRef(const Value *v)
{
    return valueRefImpl(v, nullptr);
}

std::string
printInstruction(const Instruction *inst)
{
    return instructionImpl(inst, nullptr);
}

std::string
printFunction(const Function &fn)
{
    return functionImpl(fn, nullptr);
}

std::string
printFunctionCanonical(const Function &fn)
{
    PrintNames names;
    names.function_name = "f";
    unsigned next_value = 0;
    for (unsigned i = 0; i < fn.numArgs(); ++i)
        names.values.emplace(fn.arg(i), std::to_string(next_value++));
    unsigned next_label = 0;
    for (const auto &bb : fn.blocks()) {
        names.labels.emplace(bb->label(), "b" + std::to_string(next_label++));
        for (const auto &inst : bb->instructions()) {
            if (!inst->type()->isVoid() && !inst->isTerminator())
                names.values.emplace(inst.get(),
                                     std::to_string(next_value++));
        }
    }
    return functionImpl(fn, &names);
}

std::string
printModule(const Module &module)
{
    std::string out;
    out += "; ModuleID = '" + module.name() + "'\n";
    for (const auto &fn : module.functions()) {
        out += "\n";
        out += printFunction(*fn);
    }
    return out;
}

} // namespace lpo::ir
