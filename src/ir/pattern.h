/**
 * @file
 * Pattern-matching helpers and structural hashing / equality.
 *
 * The matchers keep InstCombine rules and the rewrite library terse;
 * the structural hash implements Algorithm 2's dedup digest, and
 * structural equality backs the interestingness checker's "differs
 * syntactically" test.
 */
#ifndef LPO_IR_PATTERN_H
#define LPO_IR_PATTERN_H

#include <cstdint>

#include "ir/function.h"

namespace lpo::ir {

/** If @p v is an instruction with opcode @p op, bind its operands. */
bool matchBinary(Value *v, Opcode op, Value **lhs, Value **rhs);

/** Match an icmp, binding predicate and operands. */
bool matchICmp(Value *v, ICmpPred *pred, Value **lhs, Value **rhs);

/** Match a select, binding condition and both arms. */
bool matchSelect(Value *v, Value **cond, Value **tval, Value **fval);

/** Match an intrinsic call with two data operands (min/max family). */
bool matchIntrinsic2(Value *v, Intrinsic intr, Value **lhs, Value **rhs);

/** Match a cast of the given opcode, binding the source. */
bool matchCast(Value *v, Opcode op, Value **src);

/**
 * If @p v is a scalar integer constant or an integer splat, bind its
 * per-lane value.
 */
bool matchConstInt(const Value *v, APInt *out);

/** True if @p v is the all-zero integer (scalar or splat). */
bool isZeroInt(const Value *v);
/** True if @p v is the all-ones integer (scalar or splat). */
bool isAllOnesInt(const Value *v);

/**
 * Structural digest of a function.
 *
 * Hashes opcodes, types, flags, predicates, and operand shape
 * (argument index, constant payload, or defining-instruction
 * position), so alpha-equivalent sequences collide and anything else
 * almost surely does not.
 */
uint64_t structuralHash(const Function &fn);

/** Alpha-equivalence of two functions (exact, not hash-based). */
bool structurallyEqual(const Function &a, const Function &b);

} // namespace lpo::ir

#endif // LPO_IR_PATTERN_H
