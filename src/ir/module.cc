#include "ir/module.h"

namespace lpo::ir {

Function *
Module::addFunction(std::unique_ptr<Function> fn)
{
    functions_.push_back(std::move(fn));
    return functions_.back().get();
}

Function *
Module::createFunction(std::string fn_name, const Type *return_type)
{
    return addFunction(std::make_unique<Function>(
        context_, std::move(fn_name), return_type));
}

std::unique_ptr<Function>
Module::replaceFunction(size_t index, std::unique_ptr<Function> fn)
{
    std::unique_ptr<Function> old = std::move(functions_[index]);
    functions_[index] = std::move(fn);
    return old;
}

Function *
Module::findFunction(const std::string &fn_name) const
{
    for (const auto &fn : functions_)
        if (fn->name() == fn_name)
            return fn.get();
    return nullptr;
}

unsigned
Module::instructionCount() const
{
    unsigned count = 0;
    for (const auto &fn : functions_)
        count += fn->instructionCount();
    return count;
}

} // namespace lpo::ir
