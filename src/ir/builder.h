/**
 * @file
 * Convenience builder for constructing IR programmatically.
 *
 * Used by the rewrite library (mock-LLM knowledge base), the
 * synthesizing superoptimizers, and the corpus generator.
 */
#ifndef LPO_IR_BUILDER_H
#define LPO_IR_BUILDER_H

#include <string>

#include "ir/module.h"

namespace lpo::ir {

/** Appends instructions to a basic block, assigning fresh names. */
class Builder
{
  public:
    Builder(Function &fn, BasicBlock *block)
        : fn_(fn), block_(block)
    {}

    Context &context() const { return fn_.context(); }
    Function &function() const { return fn_; }
    BasicBlock *block() const { return block_; }

    /** Generic creation entry point. */
    Instruction *create(Opcode op, const Type *type,
                        std::vector<Value *> operands,
                        const std::string &name_hint = "t");

    Instruction *binary(Opcode op, Value *lhs, Value *rhs,
                        InstFlags flags = {});
    Instruction *add(Value *l, Value *r) { return binary(Opcode::Add, l, r); }
    Instruction *sub(Value *l, Value *r) { return binary(Opcode::Sub, l, r); }
    Instruction *mul(Value *l, Value *r) { return binary(Opcode::Mul, l, r); }
    Instruction *andOp(Value *l, Value *r)
    {
        return binary(Opcode::And, l, r);
    }
    Instruction *orOp(Value *l, Value *r) { return binary(Opcode::Or, l, r); }
    Instruction *xorOp(Value *l, Value *r)
    {
        return binary(Opcode::Xor, l, r);
    }
    Instruction *shl(Value *l, Value *r, InstFlags flags = {})
    {
        return binary(Opcode::Shl, l, r, flags);
    }
    Instruction *lshr(Value *l, Value *r)
    {
        return binary(Opcode::LShr, l, r);
    }
    Instruction *ashr(Value *l, Value *r)
    {
        return binary(Opcode::AShr, l, r);
    }

    Instruction *icmp(ICmpPred pred, Value *lhs, Value *rhs);
    Instruction *fcmp(FCmpPred pred, Value *lhs, Value *rhs);
    Instruction *select(Value *cond, Value *tval, Value *fval);
    Instruction *cast(Opcode op, Value *v, const Type *to,
                      InstFlags flags = {});
    Instruction *trunc(Value *v, const Type *to) {
        return cast(Opcode::Trunc, v, to);
    }
    Instruction *zext(Value *v, const Type *to) {
        return cast(Opcode::ZExt, v, to);
    }
    Instruction *sext(Value *v, const Type *to) {
        return cast(Opcode::SExt, v, to);
    }
    Instruction *freeze(Value *v);
    /** Min/max and other intrinsic calls. */
    Instruction *intrinsic(Intrinsic intr, std::vector<Value *> args);
    Instruction *umin(Value *l, Value *r)
    {
        return intrinsic(Intrinsic::UMin, {l, r});
    }
    Instruction *umax(Value *l, Value *r)
    {
        return intrinsic(Intrinsic::UMax, {l, r});
    }
    Instruction *smin(Value *l, Value *r)
    {
        return intrinsic(Intrinsic::SMin, {l, r});
    }
    Instruction *smax(Value *l, Value *r)
    {
        return intrinsic(Intrinsic::SMax, {l, r});
    }

    Instruction *load(const Type *type, Value *ptr, unsigned align = 0);
    Instruction *store(Value *val, Value *ptr, unsigned align = 0);
    Instruction *gep(const Type *elem, Value *base, Value *index,
                     InstFlags flags = {});
    Instruction *ret(Value *v);
    Instruction *retVoid();
    Instruction *br(const std::string &label);
    Instruction *condBr(Value *cond, const std::string &if_true,
                        const std::string &if_false);
    Instruction *phi(const Type *type, std::vector<Value *> incoming,
                     std::vector<std::string> labels);

  private:
    Function &fn_;
    BasicBlock *block_;
    unsigned next_temp_ = 0;
};

} // namespace lpo::ir

#endif // LPO_IR_BUILDER_H
