/**
 * @file
 * Structural well-formedness checks for IR built programmatically.
 *
 * The parser establishes most invariants for text input; the verifier
 * re-checks them for IR produced by the builder, the rewrite engines,
 * and the synthesizers before it reaches the interpreter or encoder.
 */
#ifndef LPO_IR_IR_VERIFIER_H
#define LPO_IR_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/module.h"

namespace lpo::ir {

/** One verifier finding. */
struct VerifierIssue
{
    std::string message;
    const Instruction *inst = nullptr;
};

/** Check @p fn; returns all problems found (empty means valid). */
std::vector<VerifierIssue> verifyFunction(const Function &fn);

/** Convenience: true when verifyFunction reports no issues. */
bool isValid(const Function &fn);

} // namespace lpo::ir

#endif // LPO_IR_IR_VERIFIER_H
