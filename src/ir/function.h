/**
 * @file
 * Basic blocks, functions, and cloning utilities.
 */
#ifndef LPO_IR_FUNCTION_H
#define LPO_IR_FUNCTION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace lpo::ir {

class Function;

/** A labelled straight-line sequence of instructions. */
class BasicBlock
{
  public:
    explicit BasicBlock(std::string label) : label_(std::move(label)) {}

    const std::string &label() const { return label_; }

    const std::vector<std::unique_ptr<Instruction>> &
    instructions() const
    {
        return instructions_;
    }

    Instruction *append(std::unique_ptr<Instruction> inst);
    /** Insert @p inst before position @p index. */
    Instruction *insert(size_t index, std::unique_ptr<Instruction> inst);
    /** Remove the instruction at @p index. */
    void erase(size_t index);
    /** Remove a specific instruction (must be present). */
    void erase(const Instruction *inst);

    size_t size() const { return instructions_.size(); }
    bool empty() const { return instructions_.empty(); }
    Instruction *at(size_t index) const { return instructions_[index].get(); }
    /** The terminator, or nullptr if the block is not yet terminated. */
    Instruction *terminator() const;

  private:
    std::string label_;
    std::vector<std::unique_ptr<Instruction>> instructions_;
};

/**
 * A function: arguments plus an ordered list of basic blocks.
 *
 * The first block is the entry block. Most functions handled by the
 * pipeline are single-block wrappers produced by the extractor.
 */
class Function
{
  public:
    Function(Context &context, std::string name, const Type *return_type);

    Context &context() const { return context_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    const Type *returnType() const { return return_type_; }

    Argument *addArg(const Type *type, std::string name);
    const std::vector<std::unique_ptr<Argument>> &args() const
    {
        return args_;
    }
    Argument *arg(unsigned i) const { return args_[i].get(); }
    unsigned numArgs() const { return args_.size(); }

    BasicBlock *addBlock(std::string label);
    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    BasicBlock *entry() const { return blocks_.front().get(); }
    BasicBlock *findBlock(const std::string &label) const;

    /** Number of instructions excluding ret/br (the paper's metric). */
    unsigned instructionCount() const;

    /** Count of uses of each value across all instructions. */
    std::map<const Value *, unsigned> computeUseCounts() const;
    /** True if @p v has exactly one use inside this function. */
    bool hasOneUse(const Value *v) const;

    /** Replace every operand use of @p from with @p to. */
    void replaceAllUses(const Value *from, Value *to);

    /** Deep copy (constants stay shared via the Context). */
    std::unique_ptr<Function> clone(const std::string &new_name) const;

    /** Assign names %0, %1, ... to unnamed values (LLVM-style). */
    void numberValues();

  private:
    Context &context_;
    std::string name_;
    const Type *return_type_;
    std::vector<std::unique_ptr<Argument>> args_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

/**
 * Copy @p inst — opcode, type, flags, predicates, intrinsic, access
 * type, alignment, phi/br labels — rewriting each operand through
 * @p remap (operands absent from the map are kept as-is, which is
 * what constants and values that stay in scope want). The one clone
 * primitive shared by Function::clone, the extractor's sequence
 * wrapping, the corpus stitcher, and the module optimizer's
 * patch-back; the copy is unnamed and not yet attached to a block.
 */
std::unique_ptr<Instruction>
cloneInstruction(const Instruction &inst,
                 const std::map<const Value *, Value *> &remap);

} // namespace lpo::ir

#endif // LPO_IR_FUNCTION_H
