#include "ir/instruction.h"

namespace lpo::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::UDiv: return "udiv";
      case Opcode::SDiv: return "sdiv";
      case Opcode::URem: return "urem";
      case Opcode::SRem: return "srem";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::ICmp: return "icmp";
      case Opcode::FCmp: return "fcmp";
      case Opcode::Select: return "select";
      case Opcode::Trunc: return "trunc";
      case Opcode::ZExt: return "zext";
      case Opcode::SExt: return "sext";
      case Opcode::Freeze: return "freeze";
      case Opcode::Call: return "call";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Gep: return "getelementptr";
      case Opcode::Phi: return "phi";
      case Opcode::Br: return "br";
      case Opcode::Ret: return "ret";
    }
    return "?";
}

const char *
icmpPredName(ICmpPred pred)
{
    switch (pred) {
      case ICmpPred::EQ: return "eq";
      case ICmpPred::NE: return "ne";
      case ICmpPred::UGT: return "ugt";
      case ICmpPred::UGE: return "uge";
      case ICmpPred::ULT: return "ult";
      case ICmpPred::ULE: return "ule";
      case ICmpPred::SGT: return "sgt";
      case ICmpPred::SGE: return "sge";
      case ICmpPred::SLT: return "slt";
      case ICmpPred::SLE: return "sle";
    }
    return "?";
}

const char *
fcmpPredName(FCmpPred pred)
{
    switch (pred) {
      case FCmpPred::False: return "false";
      case FCmpPred::OEQ: return "oeq";
      case FCmpPred::OGT: return "ogt";
      case FCmpPred::OGE: return "oge";
      case FCmpPred::OLT: return "olt";
      case FCmpPred::OLE: return "ole";
      case FCmpPred::ONE: return "one";
      case FCmpPred::ORD: return "ord";
      case FCmpPred::UEQ: return "ueq";
      case FCmpPred::UGT: return "ugt";
      case FCmpPred::UGE: return "uge";
      case FCmpPred::ULT: return "ult";
      case FCmpPred::ULE: return "ule";
      case FCmpPred::UNE: return "une";
      case FCmpPred::UNO: return "uno";
      case FCmpPred::True: return "true";
    }
    return "?";
}

const char *
intrinsicName(Intrinsic intr)
{
    switch (intr) {
      case Intrinsic::None: return "";
      case Intrinsic::UMin: return "llvm.umin";
      case Intrinsic::UMax: return "llvm.umax";
      case Intrinsic::SMin: return "llvm.smin";
      case Intrinsic::SMax: return "llvm.smax";
      case Intrinsic::Abs: return "llvm.abs";
      case Intrinsic::CtPop: return "llvm.ctpop";
      case Intrinsic::CtLz: return "llvm.ctlz";
      case Intrinsic::CtTz: return "llvm.cttz";
      case Intrinsic::FAbs: return "llvm.fabs";
      case Intrinsic::USubSat: return "llvm.usub.sat";
      case Intrinsic::UAddSat: return "llvm.uadd.sat";
      case Intrinsic::SSubSat: return "llvm.ssub.sat";
      case Intrinsic::SAddSat: return "llvm.sadd.sat";
    }
    return "";
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::Ret;
}

bool
isIntDivRem(Opcode op)
{
    return op == Opcode::UDiv || op == Opcode::SDiv ||
           op == Opcode::URem || op == Opcode::SRem;
}

bool
isCommutativeOpcode(Opcode op, Intrinsic intr)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::FAdd:
      case Opcode::FMul:
        return true;
      case Opcode::Call:
        switch (intr) {
          case Intrinsic::UMin:
          case Intrinsic::UMax:
          case Intrinsic::SMin:
          case Intrinsic::SMax:
          case Intrinsic::UAddSat:
          case Intrinsic::SAddSat:
            return true;
          default:
            return false;
        }
      default:
        return false;
    }
}

bool
Instruction::isCommutative() const
{
    return isCommutativeOpcode(op_, intrinsic_);
}

} // namespace lpo::ir
