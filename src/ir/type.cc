#include "ir/type.h"

#include <cassert>

namespace lpo::ir {

bool
Type::isIntOrIntVector() const
{
    return isInt() || (isVector() && elem_->isInt());
}

bool
Type::isFPOrFPVector() const
{
    return isFloat() || (isVector() && elem_->isFloat());
}

unsigned
Type::storeSizeBytes() const
{
    switch (kind_) {
      case Kind::Int:
        return (width_ + 7) / 8;
      case Kind::Float:
        return 8;
      case Kind::Ptr:
        return 8;
      case Kind::Vector:
        return lanes_ * elem_->storeSizeBytes();
      case Kind::Void:
        return 0;
    }
    return 0;
}

std::string
Type::toString() const
{
    switch (kind_) {
      case Kind::Void:
        return "void";
      case Kind::Int:
        return "i" + std::to_string(width_);
      case Kind::Float:
        return "double";
      case Kind::Ptr:
        return "ptr";
      case Kind::Vector:
        return "<" + std::to_string(lanes_) + " x " + elem_->toString() +
               ">";
    }
    return "?";
}

TypeContext::TypeContext()
{
    auto make = [this](Type::Kind k) {
        pool_.emplace_back(new Type(k, 0, 0, nullptr));
        return pool_.back().get();
    };
    void_ = make(Type::Kind::Void);
    float_ = make(Type::Kind::Float);
    ptr_ = make(Type::Kind::Ptr);
}

const Type *
TypeContext::intTy(unsigned width)
{
    assert(width >= 1 && width <= 64 && "unsupported integer width");
    auto it = ints_.find(width);
    if (it != ints_.end())
        return it->second;
    pool_.emplace_back(new Type(Type::Kind::Int, width, 0, nullptr));
    const Type *ty = pool_.back().get();
    ints_[width] = ty;
    return ty;
}

const Type *
TypeContext::vectorTy(const Type *elem, unsigned lanes)
{
    assert((elem->isInt() || elem->isFloat()) && lanes >= 2 &&
           "invalid vector type");
    auto key = std::make_pair(elem, lanes);
    auto it = vectors_.find(key);
    if (it != vectors_.end())
        return it->second;
    pool_.emplace_back(new Type(Type::Kind::Vector, 0, lanes, elem));
    const Type *ty = pool_.back().get();
    vectors_[key] = ty;
    return ty;
}

} // namespace lpo::ir
