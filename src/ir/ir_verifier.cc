#include "ir/ir_verifier.h"

#include <set>

namespace lpo::ir {
namespace {

void
checkTypes(const Instruction *inst, std::vector<VerifierIssue> &issues)
{
    auto complain = [&](std::string message) {
        issues.push_back({std::move(message), inst});
    };
    const Type *type = inst->type();
    switch (inst->op()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::UDiv: case Opcode::SDiv: case Opcode::URem:
      case Opcode::SRem: case Opcode::Shl: case Opcode::LShr:
      case Opcode::AShr: case Opcode::And: case Opcode::Or:
      case Opcode::Xor:
        if (inst->numOperands() != 2 ||
            inst->operand(0)->type() != type ||
            inst->operand(1)->type() != type || !type->isIntOrIntVector())
            complain("malformed integer binary operation");
        break;
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv:
        if (inst->numOperands() != 2 ||
            inst->operand(0)->type() != type ||
            inst->operand(1)->type() != type || !type->isFPOrFPVector())
            complain("malformed floating-point binary operation");
        break;
      case Opcode::ICmp:
        if (inst->numOperands() != 2 ||
            inst->operand(0)->type() != inst->operand(1)->type() ||
            !type->isIntOrIntVector() ||
            type->scalarType()->intWidth() != 1)
            complain("malformed icmp");
        break;
      case Opcode::FCmp:
        if (inst->numOperands() != 2 ||
            inst->operand(0)->type() != inst->operand(1)->type() ||
            !inst->operand(0)->type()->isFPOrFPVector())
            complain("malformed fcmp");
        break;
      case Opcode::Select: {
        if (inst->numOperands() != 3 ||
            inst->operand(1)->type() != type ||
            inst->operand(2)->type() != type) {
            complain("malformed select");
            break;
        }
        const Type *cond = inst->operand(0)->type();
        bool ok = cond->isBool() ||
            (cond->isVector() && cond->scalarType()->isBool() &&
             type->isVector() && cond->lanes() == type->lanes());
        if (!ok)
            complain("select condition has wrong type");
        break;
      }
      case Opcode::Trunc:
        if (inst->numOperands() != 1 ||
            !inst->operand(0)->type()->isIntOrIntVector() ||
            type->scalarType()->intWidth() >=
                inst->operand(0)->type()->scalarType()->intWidth())
            complain("malformed trunc");
        break;
      case Opcode::ZExt: case Opcode::SExt:
        if (inst->numOperands() != 1 ||
            !inst->operand(0)->type()->isIntOrIntVector() ||
            type->scalarType()->intWidth() <=
                inst->operand(0)->type()->scalarType()->intWidth())
            complain("malformed extension");
        break;
      case Opcode::Freeze:
        if (inst->numOperands() != 1 ||
            inst->operand(0)->type() != type)
            complain("malformed freeze");
        break;
      case Opcode::Call:
        if (inst->intrinsic() == Intrinsic::None)
            complain("call without an intrinsic");
        break;
      case Opcode::Load:
        if (inst->numOperands() != 1 ||
            !inst->operand(0)->type()->isPtr())
            complain("malformed load");
        break;
      case Opcode::Store:
        if (inst->numOperands() != 2 ||
            !inst->operand(1)->type()->isPtr() || !type->isVoid())
            complain("malformed store");
        break;
      case Opcode::Gep:
        if (inst->numOperands() != 2 ||
            !inst->operand(0)->type()->isPtr() ||
            !inst->operand(1)->type()->isInt() || !type->isPtr() ||
            !inst->accessType())
            complain("malformed getelementptr");
        break;
      case Opcode::Phi:
        if (inst->numOperands() == 0 ||
            inst->phiLabels().size() != inst->numOperands())
            complain("malformed phi");
        break;
      case Opcode::Br:
        if (!(inst->numOperands() == 0 && inst->brLabels().size() == 1) &&
            !(inst->numOperands() == 1 && inst->brLabels().size() == 2 &&
              inst->operand(0)->type()->isBool()))
            complain("malformed br");
        break;
      case Opcode::Ret:
        break;
    }
}

} // namespace

std::vector<VerifierIssue>
verifyFunction(const Function &fn)
{
    std::vector<VerifierIssue> issues;
    std::set<const Value *> defined;
    for (const auto &arg : fn.args())
        defined.insert(arg.get());

    if (fn.blocks().empty()) {
        issues.push_back({"function has no basic blocks", nullptr});
        return issues;
    }

    // First pass: collect all definitions (phis may refer forward).
    std::set<const Value *> all_defs = defined;
    for (const auto &bb : fn.blocks())
        for (const auto &inst : bb->instructions())
            all_defs.insert(inst.get());

    for (const auto &bb : fn.blocks()) {
        if (!bb->terminator())
            issues.push_back({"block '" + bb->label() +
                              "' lacks a terminator", nullptr});
        for (size_t i = 0; i < bb->size(); ++i) {
            const Instruction *inst = bb->at(i);
            if (inst->isTerminator() && i + 1 != bb->size())
                issues.push_back({"terminator not at end of block", inst});
            checkTypes(inst, issues);
            for (const Value *operand : inst->operands()) {
                if (operand->kind() == Value::Kind::Instruction ||
                    operand->kind() == Value::Kind::Argument) {
                    const std::set<const Value *> &scope =
                        inst->op() == Opcode::Phi ? all_defs : defined;
                    if (!scope.count(operand)) {
                        issues.push_back(
                            {"use of value '%" + operand->name() +
                             "' before definition", inst});
                    }
                }
            }
            defined.insert(inst);
        }
    }

    // Return type consistency.
    for (const auto &bb : fn.blocks()) {
        const Instruction *term = bb->terminator();
        if (term && term->op() == Opcode::Ret) {
            if (fn.returnType()->isVoid()) {
                if (term->numOperands() != 0)
                    issues.push_back({"ret with value in void function",
                                      term});
            } else if (term->numOperands() != 1 ||
                       term->operand(0)->type() != fn.returnType()) {
                issues.push_back({"ret type does not match function type",
                                  term});
            }
        }
    }
    return issues;
}

bool
isValid(const Function &fn)
{
    return verifyFunction(fn).empty();
}

} // namespace lpo::ir
