#include "ir/value.h"

#include <cassert>
#include <cstring>

namespace lpo::ir {

bool
ConstantVector::isSplat() const
{
    for (const Value *e : elements_)
        if (e != elements_.front())
            return false;
    return true;
}

ConstantInt *
Context::getInt(unsigned width, uint64_t value)
{
    return getInt(types_.intTy(width), APInt(width, value));
}

ConstantInt *
Context::getInt(const Type *type, const APInt &value)
{
    assert(type->isInt() && type->intWidth() == value.width());
    auto key = std::make_pair(type, value.zext());
    auto it = ints_.find(key);
    if (it != ints_.end())
        return it->second;
    auto owned = std::make_unique<ConstantInt>(type, value);
    ConstantInt *c = owned.get();
    pool_.push_back(std::move(owned));
    ints_[key] = c;
    return c;
}

ConstantFP *
Context::getFP(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    auto it = fps_.find(bits);
    if (it != fps_.end())
        return it->second;
    auto owned = std::make_unique<ConstantFP>(types_.floatTy(), value);
    ConstantFP *c = owned.get();
    pool_.push_back(std::move(owned));
    fps_[bits] = c;
    return c;
}

ConstantVector *
Context::getVector(const Type *type, std::vector<const Value *> elements)
{
    assert(type->isVector() && elements.size() == type->lanes());
    auto key = std::make_pair(type, elements);
    auto it = vectors_.find(key);
    if (it != vectors_.end())
        return it->second;
    auto owned = std::make_unique<ConstantVector>(type, std::move(elements));
    ConstantVector *c = owned.get();
    pool_.push_back(std::move(owned));
    vectors_[key] = c;
    return c;
}

ConstantVector *
Context::getSplat(const Type *vec_type, const Value *scalar)
{
    assert(vec_type->isVector());
    std::vector<const Value *> elems(vec_type->lanes(), scalar);
    return getVector(vec_type, std::move(elems));
}

Value *
Context::getNullValue(const Type *type)
{
    if (type->isInt())
        return getInt(type, APInt::zero(type->intWidth()));
    if (type->isFloat())
        return getFP(0.0);
    if (type->isVector())
        return getSplat(type, getNullValue(type->scalarType()));
    assert(false && "no null value for this type");
    return nullptr;
}

PoisonValue *
Context::getPoison(const Type *type)
{
    auto it = poisons_.find(type);
    if (it != poisons_.end())
        return it->second;
    auto owned = std::make_unique<PoisonValue>(type);
    PoisonValue *c = owned.get();
    pool_.push_back(std::move(owned));
    poisons_[type] = c;
    return c;
}

bool
isConstIntValue(const Value *v, uint64_t value)
{
    if (const auto *ci = asConstIntOrSplat(v))
        return ci->value().zext() == APInt(ci->value().width(), value).zext();
    return false;
}

const ConstantInt *
asConstIntOrSplat(const Value *v)
{
    if (v->kind() == Value::Kind::ConstInt)
        return static_cast<const ConstantInt *>(v);
    if (v->kind() == Value::Kind::ConstVector) {
        const auto *cv = static_cast<const ConstantVector *>(v);
        if (cv->isSplat() &&
            cv->splatValue()->kind() == Value::Kind::ConstInt) {
            return static_cast<const ConstantInt *>(cv->splatValue());
        }
    }
    return nullptr;
}

Value *
typedConst(Context &ctx, const Type *type, const APInt &value)
{
    ConstantInt *scalar = ctx.getInt(type->scalarType(), value);
    if (type->isVector())
        return ctx.getSplat(type, scalar);
    return scalar;
}

} // namespace lpo::ir
