#include "ir/function.h"

#include <cassert>

namespace lpo::ir {

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> inst)
{
    instructions_.push_back(std::move(inst));
    return instructions_.back().get();
}

Instruction *
BasicBlock::insert(size_t index, std::unique_ptr<Instruction> inst)
{
    assert(index <= instructions_.size());
    auto it = instructions_.insert(instructions_.begin() + index,
                                   std::move(inst));
    return it->get();
}

void
BasicBlock::erase(size_t index)
{
    assert(index < instructions_.size());
    instructions_.erase(instructions_.begin() + index);
}

void
BasicBlock::erase(const Instruction *inst)
{
    for (size_t i = 0; i < instructions_.size(); ++i) {
        if (instructions_[i].get() == inst) {
            erase(i);
            return;
        }
    }
    assert(false && "instruction not in block");
}

Instruction *
BasicBlock::terminator() const
{
    if (instructions_.empty())
        return nullptr;
    Instruction *last = instructions_.back().get();
    return last->isTerminator() ? last : nullptr;
}

Function::Function(Context &context, std::string name,
                   const Type *return_type)
    : context_(context), name_(std::move(name)), return_type_(return_type)
{
}

Argument *
Function::addArg(const Type *type, std::string name)
{
    args_.push_back(std::make_unique<Argument>(type, args_.size()));
    args_.back()->setName(std::move(name));
    return args_.back().get();
}

BasicBlock *
Function::addBlock(std::string label)
{
    blocks_.push_back(std::make_unique<BasicBlock>(std::move(label)));
    return blocks_.back().get();
}

BasicBlock *
Function::findBlock(const std::string &label) const
{
    for (const auto &bb : blocks_)
        if (bb->label() == label)
            return bb.get();
    return nullptr;
}

unsigned
Function::instructionCount() const
{
    unsigned count = 0;
    for (const auto &bb : blocks_)
        for (const auto &inst : bb->instructions())
            if (!inst->isTerminator())
                ++count;
    return count;
}

std::map<const Value *, unsigned>
Function::computeUseCounts() const
{
    std::map<const Value *, unsigned> counts;
    for (const auto &bb : blocks_)
        for (const auto &inst : bb->instructions())
            for (const Value *operand : inst->operands())
                ++counts[operand];
    return counts;
}

bool
Function::hasOneUse(const Value *v) const
{
    unsigned count = 0;
    for (const auto &bb : blocks_)
        for (const auto &inst : bb->instructions())
            for (const Value *operand : inst->operands())
                if (operand == v && ++count > 1)
                    return false;
    return count == 1;
}

void
Function::replaceAllUses(const Value *from, Value *to)
{
    for (const auto &bb : blocks_)
        for (const auto &inst : bb->instructions())
            for (unsigned i = 0; i < inst->numOperands(); ++i)
                if (inst->operand(i) == from)
                    inst->setOperand(i, to);
}

std::unique_ptr<Instruction>
cloneInstruction(const Instruction &inst,
                 const std::map<const Value *, Value *> &remap)
{
    std::vector<Value *> operands;
    operands.reserve(inst.numOperands());
    for (Value *operand : inst.operands()) {
        auto it = remap.find(operand);
        operands.push_back(it == remap.end() ? operand : it->second);
    }
    auto copy = std::make_unique<Instruction>(inst.op(), inst.type(),
                                              std::move(operands));
    copy->flags() = inst.flags();
    copy->setICmpPred(inst.icmpPred());
    copy->setFCmpPred(inst.fcmpPred());
    copy->setIntrinsic(inst.intrinsic());
    copy->setAccessType(inst.accessType());
    copy->setAlign(inst.align());
    copy->setPhiLabels(inst.phiLabels());
    copy->setBrLabels(inst.brLabels());
    return copy;
}

std::unique_ptr<Function>
Function::clone(const std::string &new_name) const
{
    auto copy = std::make_unique<Function>(context_, new_name, return_type_);
    std::map<const Value *, Value *> remap;
    for (const auto &arg : args_) {
        Argument *new_arg = copy->addArg(arg->type(), arg->name());
        remap[arg.get()] = new_arg;
    }
    // First pass: clone instructions with original operands so that
    // phi back-edges (forward references) have something to map to.
    for (const auto &bb : blocks_) {
        BasicBlock *new_bb = copy->addBlock(bb->label());
        for (const auto &inst : bb->instructions()) {
            auto new_inst = cloneInstruction(*inst, {});
            new_inst->setName(inst->name());
            remap[inst.get()] = new_bb->append(std::move(new_inst));
        }
    }
    // Second pass: rewrite operands through the completed map.
    for (const auto &bb : copy->blocks()) {
        for (const auto &inst : bb->instructions()) {
            for (unsigned i = 0; i < inst->numOperands(); ++i) {
                auto it = remap.find(inst->operand(i));
                if (it != remap.end())
                    inst->setOperand(i, it->second);
            }
        }
    }
    return copy;
}

void
Function::numberValues()
{
    unsigned next = 0;
    for (const auto &arg : args_) {
        if (arg->name().empty())
            arg->setName(std::to_string(next));
        ++next;
    }
    for (const auto &bb : blocks_) {
        for (const auto &inst : bb->instructions()) {
            if (inst->type()->isVoid() || inst->isTerminator())
                continue;
            if (inst->name().empty())
                inst->setName(std::to_string(next));
            ++next;
        }
    }
}

} // namespace lpo::ir
