/**
 * @file
 * IR instructions.
 *
 * Covers the LLVM IR fragment exercised by peephole-optimization
 * workloads: integer/float arithmetic with poison-generating flags,
 * comparisons, select, casts, min/max-style intrinsics, freeze, and a
 * small memory subset (load, store, getelementptr). Control flow is
 * limited to ret/br/phi, which is all the corpus modules need; the
 * extractor only harvests straight-line dependent sequences.
 */
#ifndef LPO_IR_INSTRUCTION_H
#define LPO_IR_INSTRUCTION_H

#include <string>
#include <vector>

#include "ir/value.h"

namespace lpo::ir {

class BasicBlock;

/** Instruction opcodes. */
enum class Opcode {
    // Integer binary ops.
    Add, Sub, Mul, UDiv, SDiv, URem, SRem,
    Shl, LShr, AShr, And, Or, Xor,
    // Floating-point binary ops.
    FAdd, FSub, FMul, FDiv,
    // Comparisons and selection.
    ICmp, FCmp, Select,
    // Casts.
    Trunc, ZExt, SExt,
    // Other scalar ops.
    Freeze,
    // Intrinsic call (which intrinsic is in intrinsic()).
    Call,
    // Memory.
    Load, Store, Gep,
    // Control flow.
    Phi, Br, Ret,
};

/** Integer comparison predicates (icmp). */
enum class ICmpPred { EQ, NE, UGT, UGE, ULT, ULE, SGT, SGE, SLT, SLE };

/** Floating-point comparison predicates (fcmp). */
enum class FCmpPred {
    False, OEQ, OGT, OGE, OLT, OLE, ONE, ORD,
    UEQ, UGT, UGE, ULT, ULE, UNE, UNO, True,
};

/** Supported intrinsics (all are element-wise for vectors). */
enum class Intrinsic {
    None, UMin, UMax, SMin, SMax, Abs, CtPop, CtLz, CtTz, FAbs,
    USubSat, UAddSat, SSubSat, SAddSat,
};

/** Poison-generating / behaviour flags attached to instructions. */
struct InstFlags
{
    bool nuw = false;      ///< no unsigned wrap (add/sub/mul/shl/trunc)
    bool nsw = false;      ///< no signed wrap (add/sub/mul/shl/trunc)
    bool exact = false;    ///< exact division / shift
    bool disjoint = false; ///< disjoint or
    bool nneg = false;     ///< non-negative zext
    bool inbounds = false; ///< gep inbounds
    bool tail = false;     ///< cosmetic 'tail call' marker

    bool operator==(const InstFlags &) const = default;
};

const char *opcodeName(Opcode op);
const char *icmpPredName(ICmpPred pred);
const char *fcmpPredName(FCmpPred pred);
/** Intrinsic base name, e.g. "llvm.umin". */
const char *intrinsicName(Intrinsic intr);
/** True for br/ret. */
bool isTerminator(Opcode op);
/** True for integer division/remainder (immediate UB on bad divisor). */
bool isIntDivRem(Opcode op);
/**
 * Operand-order insensitivity at the opcode level (the e-graph's
 * canonicalization predicate; Instruction::isCommutative wraps it).
 */
bool isCommutativeOpcode(Opcode op, Intrinsic intr);

/**
 * An SSA instruction.
 *
 * Owned by its BasicBlock. Operands are plain Value pointers into the
 * same Function / Context.
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, const Type *type, std::vector<Value *> operands)
        : Value(Kind::Instruction, type), op_(op),
          operands_(std::move(operands))
    {}

    Opcode op() const { return op_; }

    const std::vector<Value *> &operands() const { return operands_; }
    Value *operand(unsigned i) const { return operands_[i]; }
    unsigned numOperands() const { return operands_.size(); }
    void setOperand(unsigned i, Value *v) { operands_[i] = v; }

    InstFlags &flags() { return flags_; }
    const InstFlags &flags() const { return flags_; }

    ICmpPred icmpPred() const { return icmp_pred_; }
    void setICmpPred(ICmpPred pred) { icmp_pred_ = pred; }
    FCmpPred fcmpPred() const { return fcmp_pred_; }
    void setFCmpPred(FCmpPred pred) { fcmp_pred_ = pred; }

    Intrinsic intrinsic() const { return intrinsic_; }
    void setIntrinsic(Intrinsic intr) { intrinsic_ = intr; }

    /** Source element type of a gep; value type of a load/store. */
    const Type *accessType() const { return access_type_; }
    void setAccessType(const Type *ty) { access_type_ = ty; }

    /** Alignment recorded for load/store (cosmetic, for printing). */
    unsigned align() const { return align_; }
    void setAlign(unsigned align) { align_ = align; }

    /** Phi: label of the predecessor for the i-th incoming value. */
    const std::vector<std::string> &phiLabels() const { return phi_labels_; }
    void setPhiLabels(std::vector<std::string> labels)
    {
        phi_labels_ = std::move(labels);
    }

    /** Br: target labels (one for unconditional, two for conditional). */
    const std::vector<std::string> &brLabels() const { return br_labels_; }
    void setBrLabels(std::vector<std::string> labels)
    {
        br_labels_ = std::move(labels);
    }

    bool isTerminator() const { return ir::isTerminator(op_); }
    bool isBinaryOp() const
    {
        return op_ >= Opcode::Add && op_ <= Opcode::FDiv;
    }
    bool isIntBinaryOp() const
    {
        return op_ >= Opcode::Add && op_ <= Opcode::Xor;
    }
    bool isCast() const
    {
        return op_ == Opcode::Trunc || op_ == Opcode::ZExt ||
               op_ == Opcode::SExt;
    }
    /** Commutative integer/FP binary ops and min/max intrinsics. */
    bool isCommutative() const;
    /** True if the instruction may read or write memory. */
    bool touchesMemory() const
    {
        return op_ == Opcode::Load || op_ == Opcode::Store;
    }
    /** True if removing the instruction is unsafe (stores, terminators). */
    bool hasSideEffects() const
    {
        return op_ == Opcode::Store || isTerminator();
    }

  private:
    Opcode op_;
    std::vector<Value *> operands_;
    InstFlags flags_;
    ICmpPred icmp_pred_ = ICmpPred::EQ;
    FCmpPred fcmp_pred_ = FCmpPred::OEQ;
    Intrinsic intrinsic_ = Intrinsic::None;
    const Type *access_type_ = nullptr;
    unsigned align_ = 0;
    std::vector<std::string> phi_labels_;
    std::vector<std::string> br_labels_;
};

} // namespace lpo::ir

#endif // LPO_IR_INSTRUCTION_H
