/**
 * @file
 * Parser for the textual IR (LLVM-like syntax).
 *
 * This is the front half of the "opt" substitute: LLM candidates come
 * back as text and re-enter the system through this parser, whose
 * error messages (e.g. "expected instruction opcode") double as the
 * syntax feedback LPO sends back to the model (paper Fig. 3c).
 */
#ifndef LPO_IR_PARSER_H
#define LPO_IR_PARSER_H

#include <memory>
#include <string>
#include <string_view>

#include "ir/module.h"
#include "support/error.h"

namespace lpo::ir {

/** Parse a whole module (one or more "define" blocks). */
Result<std::unique_ptr<Module>> parseModule(Context &context,
                                            std::string_view text,
                                            std::string module_name = "m");

/**
 * Parse a single function definition.
 *
 * Leading/trailing text outside the define block is ignored, which
 * lets the pipeline accept LLM output that wraps code in prose or
 * markdown fences.
 */
Result<std::unique_ptr<Function>> parseFunction(Context &context,
                                                std::string_view text);

} // namespace lpo::ir

#endif // LPO_IR_PARSER_H
