#include "ir/builder.h"

#include <cassert>

namespace lpo::ir {

Instruction *
Builder::create(Opcode op, const Type *type, std::vector<Value *> operands,
                const std::string &name_hint)
{
    auto inst = std::make_unique<Instruction>(op, type, std::move(operands));
    if (!type->isVoid() && !inst->isTerminator())
        inst->setName(name_hint + std::to_string(next_temp_++));
    return block_->append(std::move(inst));
}

Instruction *
Builder::binary(Opcode op, Value *lhs, Value *rhs, InstFlags flags)
{
    assert(lhs->type() == rhs->type());
    Instruction *inst = create(op, lhs->type(), {lhs, rhs});
    inst->flags() = flags;
    return inst;
}

Instruction *
Builder::icmp(ICmpPred pred, Value *lhs, Value *rhs)
{
    assert(lhs->type() == rhs->type());
    const Type *bool_ty = context().types().boolTy();
    const Type *result = lhs->type()->isVector()
        ? context().types().vectorTy(bool_ty, lhs->type()->lanes())
        : bool_ty;
    Instruction *inst = create(Opcode::ICmp, result, {lhs, rhs});
    inst->setICmpPred(pred);
    return inst;
}

Instruction *
Builder::fcmp(FCmpPred pred, Value *lhs, Value *rhs)
{
    assert(lhs->type() == rhs->type());
    const Type *bool_ty = context().types().boolTy();
    const Type *result = lhs->type()->isVector()
        ? context().types().vectorTy(bool_ty, lhs->type()->lanes())
        : bool_ty;
    Instruction *inst = create(Opcode::FCmp, result, {lhs, rhs});
    inst->setFCmpPred(pred);
    return inst;
}

Instruction *
Builder::select(Value *cond, Value *tval, Value *fval)
{
    assert(tval->type() == fval->type());
    return create(Opcode::Select, tval->type(), {cond, tval, fval});
}

Instruction *
Builder::cast(Opcode op, Value *v, const Type *to, InstFlags flags)
{
    Instruction *inst = create(op, to, {v});
    inst->flags() = flags;
    return inst;
}

Instruction *
Builder::freeze(Value *v)
{
    return create(Opcode::Freeze, v->type(), {v});
}

Instruction *
Builder::intrinsic(Intrinsic intr, std::vector<Value *> args)
{
    assert(!args.empty());
    const Type *type = args[0]->type();
    Instruction *inst = create(Opcode::Call, type, std::move(args));
    inst->setIntrinsic(intr);
    return inst;
}

Instruction *
Builder::load(const Type *type, Value *ptr, unsigned align)
{
    Instruction *inst = create(Opcode::Load, type, {ptr});
    inst->setAccessType(type);
    inst->setAlign(align);
    return inst;
}

Instruction *
Builder::store(Value *val, Value *ptr, unsigned align)
{
    Instruction *inst = create(Opcode::Store, context().types().voidTy(),
                               {val, ptr});
    inst->setAccessType(val->type());
    inst->setAlign(align);
    return inst;
}

Instruction *
Builder::gep(const Type *elem, Value *base, Value *index, InstFlags flags)
{
    Instruction *inst = create(Opcode::Gep, context().types().ptrTy(),
                               {base, index});
    inst->setAccessType(elem);
    inst->flags() = flags;
    return inst;
}

Instruction *
Builder::ret(Value *v)
{
    return create(Opcode::Ret, context().types().voidTy(), {v});
}

Instruction *
Builder::retVoid()
{
    return create(Opcode::Ret, context().types().voidTy(), {});
}

Instruction *
Builder::br(const std::string &label)
{
    Instruction *inst = create(Opcode::Br, context().types().voidTy(), {});
    inst->setBrLabels({label});
    return inst;
}

Instruction *
Builder::condBr(Value *cond, const std::string &if_true,
                const std::string &if_false)
{
    Instruction *inst = create(Opcode::Br, context().types().voidTy(),
                               {cond});
    inst->setBrLabels({if_true, if_false});
    return inst;
}

Instruction *
Builder::phi(const Type *type, std::vector<Value *> incoming,
             std::vector<std::string> labels)
{
    assert(incoming.size() == labels.size());
    Instruction *inst = create(Opcode::Phi, type, std::move(incoming));
    inst->setPhiLabels(std::move(labels));
    return inst;
}

} // namespace lpo::ir
