/**
 * @file
 * A module: a named collection of functions sharing one Context.
 */
#ifndef LPO_IR_MODULE_H
#define LPO_IR_MODULE_H

#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"

namespace lpo::ir {

/** Top-level container corresponding to one translation unit. */
class Module
{
  public:
    Module(Context &context, std::string name)
        : context_(context), name_(std::move(name))
    {}

    Context &context() const { return context_; }
    const std::string &name() const { return name_; }

    Function *addFunction(std::unique_ptr<Function> fn);
    Function *createFunction(std::string fn_name, const Type *return_type);
    /** Swap the function at @p index for @p fn (same Context); the
     *  module optimizer's rollback path. Returns the old function. */
    std::unique_ptr<Function> replaceFunction(size_t index,
                                              std::unique_ptr<Function> fn);

    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }
    Function *findFunction(const std::string &fn_name) const;

    /** Total instruction count across all functions. */
    unsigned instructionCount() const;

  private:
    Context &context_;
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
};

} // namespace lpo::ir

#endif // LPO_IR_MODULE_H
