#include "ir/pattern.h"

#include <cstring>
#include <map>

#include "support/string_utils.h"

namespace lpo::ir {

bool
matchBinary(Value *v, Opcode op, Value **lhs, Value **rhs)
{
    if (v->kind() != Value::Kind::Instruction)
        return false;
    auto *inst = static_cast<Instruction *>(v);
    if (inst->op() != op || inst->numOperands() != 2)
        return false;
    *lhs = inst->operand(0);
    *rhs = inst->operand(1);
    return true;
}

bool
matchICmp(Value *v, ICmpPred *pred, Value **lhs, Value **rhs)
{
    if (v->kind() != Value::Kind::Instruction)
        return false;
    auto *inst = static_cast<Instruction *>(v);
    if (inst->op() != Opcode::ICmp)
        return false;
    *pred = inst->icmpPred();
    *lhs = inst->operand(0);
    *rhs = inst->operand(1);
    return true;
}

bool
matchSelect(Value *v, Value **cond, Value **tval, Value **fval)
{
    if (v->kind() != Value::Kind::Instruction)
        return false;
    auto *inst = static_cast<Instruction *>(v);
    if (inst->op() != Opcode::Select)
        return false;
    *cond = inst->operand(0);
    *tval = inst->operand(1);
    *fval = inst->operand(2);
    return true;
}

bool
matchIntrinsic2(Value *v, Intrinsic intr, Value **lhs, Value **rhs)
{
    if (v->kind() != Value::Kind::Instruction)
        return false;
    auto *inst = static_cast<Instruction *>(v);
    if (inst->op() != Opcode::Call || inst->intrinsic() != intr ||
        inst->numOperands() != 2)
        return false;
    *lhs = inst->operand(0);
    *rhs = inst->operand(1);
    return true;
}

bool
matchCast(Value *v, Opcode op, Value **src)
{
    if (v->kind() != Value::Kind::Instruction)
        return false;
    auto *inst = static_cast<Instruction *>(v);
    if (inst->op() != op || inst->numOperands() != 1)
        return false;
    *src = inst->operand(0);
    return true;
}

bool
matchConstInt(const Value *v, APInt *out)
{
    if (const ConstantInt *ci = asConstIntOrSplat(v)) {
        *out = ci->value();
        return true;
    }
    return false;
}

bool
isZeroInt(const Value *v)
{
    APInt value;
    return matchConstInt(v, &value) && value.isZero();
}

bool
isAllOnesInt(const Value *v)
{
    APInt value;
    return matchConstInt(v, &value) && value.isAllOnes();
}

namespace {

/** Hash a single operand reference relative to the numbering map. */
uint64_t
operandDigest(const Value *operand,
              const std::map<const Value *, uint64_t> &numbering)
{
    auto it = numbering.find(operand);
    if (it != numbering.end())
        return hashCombine(1, it->second);
    switch (operand->kind()) {
      case Value::Kind::ConstInt: {
        const auto *ci = static_cast<const ConstantInt *>(operand);
        return hashCombine(2, hashCombine(ci->value().width(),
                                          ci->value().zext()));
      }
      case Value::Kind::ConstFP: {
        double d = static_cast<const ConstantFP *>(operand)->value();
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        return hashCombine(3, bits);
      }
      case Value::Kind::ConstVector: {
        const auto *cv = static_cast<const ConstantVector *>(operand);
        uint64_t h = 4;
        for (const Value *e : cv->elements())
            h = hashCombine(h, operandDigest(e, numbering));
        return h;
      }
      case Value::Kind::Poison:
        return 5;
      default:
        return 6; // unmapped argument/instruction (shouldn't happen)
    }
}

uint64_t
instructionDigest(const Instruction *inst,
                  const std::map<const Value *, uint64_t> &numbering)
{
    uint64_t h = fnv1a64(opcodeName(inst->op()));
    h = hashCombine(h, fnv1a64(inst->type()->toString()));
    const InstFlags &flags = inst->flags();
    h = hashCombine(h, (uint64_t(flags.nuw) << 0) |
                           (uint64_t(flags.nsw) << 1) |
                           (uint64_t(flags.exact) << 2) |
                           (uint64_t(flags.disjoint) << 3) |
                           (uint64_t(flags.nneg) << 4) |
                           (uint64_t(flags.inbounds) << 5));
    if (inst->op() == Opcode::ICmp)
        h = hashCombine(h, static_cast<uint64_t>(inst->icmpPred()));
    if (inst->op() == Opcode::FCmp)
        h = hashCombine(h, static_cast<uint64_t>(inst->fcmpPred()));
    if (inst->op() == Opcode::Call)
        h = hashCombine(h, static_cast<uint64_t>(inst->intrinsic()));
    if (inst->accessType())
        h = hashCombine(h, fnv1a64(inst->accessType()->toString()));
    for (const Value *operand : inst->operands())
        h = hashCombine(h, operandDigest(operand, numbering));
    return h;
}

} // namespace

uint64_t
structuralHash(const Function &fn)
{
    std::map<const Value *, uint64_t> numbering;
    uint64_t next = 0;
    for (const auto &arg : fn.args()) {
        numbering[arg.get()] = next++;
    }
    uint64_t h = fnv1a64(fn.returnType()->toString());
    h = hashCombine(h, fn.numArgs());
    // Argument types must be part of the digest: operandDigest maps
    // an argument to its position only, so without this two chains
    // differing solely in argument width (zext i8 vs zext i32 of %0)
    // would collide systematically.
    for (const auto &arg : fn.args())
        h = hashCombine(h, fnv1a64(arg->type()->toString()));
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->instructions()) {
            h = hashCombine(h, instructionDigest(inst.get(), numbering));
            numbering[inst.get()] = next++;
        }
    }
    return h;
}

bool
structurallyEqual(const Function &a, const Function &b)
{
    if (a.returnType() != b.returnType() || a.numArgs() != b.numArgs() ||
        a.blocks().size() != b.blocks().size())
        return false;
    for (unsigned i = 0; i < a.numArgs(); ++i)
        if (a.arg(i)->type() != b.arg(i)->type())
            return false;

    std::map<const Value *, const Value *> map; // a-value -> b-value
    for (unsigned i = 0; i < a.numArgs(); ++i)
        map[a.arg(i)] = b.arg(i);

    // Pre-map instructions by position so phi back-edges (forward
    // references) resolve during the operand comparison below.
    for (size_t bi = 0; bi < a.blocks().size(); ++bi) {
        const BasicBlock *ba = a.blocks()[bi].get();
        const BasicBlock *bb = b.blocks()[bi].get();
        if (ba->size() != bb->size())
            return false;
        for (size_t i = 0; i < ba->size(); ++i)
            map[ba->at(i)] = bb->at(i);
    }

    for (size_t bi = 0; bi < a.blocks().size(); ++bi) {
        const BasicBlock *ba = a.blocks()[bi].get();
        const BasicBlock *bb = b.blocks()[bi].get();
        if (ba->size() != bb->size())
            return false;
        for (size_t i = 0; i < ba->size(); ++i) {
            const Instruction *ia = ba->at(i);
            const Instruction *ib = bb->at(i);
            if (ia->op() != ib->op() || ia->type() != ib->type() ||
                !(ia->flags() == ib->flags()) ||
                ia->numOperands() != ib->numOperands() ||
                ia->icmpPred() != ib->icmpPred() ||
                ia->fcmpPred() != ib->fcmpPred() ||
                ia->intrinsic() != ib->intrinsic() ||
                ia->accessType() != ib->accessType() ||
                ia->brLabels() != ib->brLabels() ||
                ia->phiLabels() != ib->phiLabels())
                return false;
            for (unsigned oi = 0; oi < ia->numOperands(); ++oi) {
                const Value *oa = ia->operand(oi);
                const Value *ob = ib->operand(oi);
                auto it = map.find(oa);
                if (it != map.end()) {
                    if (it->second != ob)
                        return false;
                } else if (oa != ob) {
                    // Interned constants compare by identity.
                    return false;
                }
            }
        }
    }
    return true;
}

} // namespace lpo::ir
