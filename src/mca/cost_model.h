/**
 * @file
 * Static performance model (the llvm-mca substitute).
 *
 * Estimates the cycle cost of a straight-line function on a
 * btver2-like x86 core: each opcode has a latency and a reciprocal
 * throughput drawn from published scheduling models; the estimate is
 * the maximum of the dependence-chain critical path and the issue
 * bandwidth bound. This provides the "total cycles" metric used by the
 * interestingness checker (paper §3.3) alongside instruction count.
 */
#ifndef LPO_MCA_COST_MODEL_H
#define LPO_MCA_COST_MODEL_H

#include <string>

#include "ir/function.h"

namespace lpo::mca {

/** A target CPU description. */
struct CpuModel
{
    std::string name;
    double issue_width = 2.0;     ///< instructions decoded per cycle
    double vector_penalty = 1.3;  ///< per-lane-op slowdown factor
};

/** The default evaluation target (paper: x86-64 btver2). */
CpuModel btver2();

/** Per-instruction latency in cycles on @p cpu. */
double instructionLatency(const ir::Instruction &inst, const CpuModel &cpu);

/** Cost summary for a function. */
struct CostSummary
{
    unsigned instruction_count = 0;
    double total_cycles = 0.0;   ///< max(critical path, issue bound)
    double critical_path = 0.0;
    double issue_bound = 0.0;
};

/** Analyze a (straight-line) function. */
CostSummary analyzeFunction(const ir::Function &fn,
                            const CpuModel &cpu = btver2());

} // namespace lpo::mca

#endif // LPO_MCA_COST_MODEL_H
