/**
 * @file
 * Static performance model (the llvm-mca substitute).
 *
 * Estimates the cycle cost of a straight-line function on a
 * btver2-like x86 core: each opcode has a latency and a reciprocal
 * throughput drawn from published scheduling models; the estimate is
 * the maximum of the dependence-chain critical path and the issue
 * bandwidth bound. This provides the "total cycles" metric used by the
 * interestingness checker (paper §3.3) alongside instruction count.
 */
#ifndef LPO_MCA_COST_MODEL_H
#define LPO_MCA_COST_MODEL_H

#include <string>

#include "ir/function.h"

namespace lpo::mca {

/** A target CPU description. */
struct CpuModel
{
    std::string name;
    double issue_width = 2.0;     ///< instructions decoded per cycle
    double vector_penalty = 1.3;  ///< per-lane-op slowdown factor
};

/** The default evaluation target (paper: x86-64 btver2). */
CpuModel btver2();

/** Per-instruction latency in cycles on @p cpu. */
double instructionLatency(const ir::Instruction &inst, const CpuModel &cpu);

/**
 * Latency of an operation described structurally, without an
 * ir::Instruction — the incremental cost hook the e-graph extractor
 * uses to price e-nodes before any IR is materialized.
 * instructionLatency is a thin wrapper over this. @p operand_type is
 * the first operand's type (the vector penalty applies when either it
 * or @p result_type is a vector); pass nullptr for operand-less ops.
 */
double operationLatency(ir::Opcode op, ir::Intrinsic intr,
                        const ir::Type *result_type,
                        const ir::Type *operand_type,
                        const CpuModel &cpu);

/**
 * Incrementally-composable function cost, combined exactly the way
 * analyzeFunction combines per-instruction latencies: the critical
 * path is max-plus over operands, the issue bound comes from the
 * instruction count, and total cycles is the max of the two. Lets the
 * e-graph extractor score a candidate term one operation at a time.
 */
struct IncrementalCost
{
    double critical_path = 0.0;
    unsigned instruction_count = 0;

    /** Fold one operand's subtree cost into this node's inputs. */
    void addOperand(const IncrementalCost &operand);
    /** Account this node itself (call after all addOperand calls). */
    void addOperation(double latency);
    /** CostSummary::total_cycles for the accumulated subtree. */
    double totalCycles(const CpuModel &cpu) const;
};

/** Cost summary for a function. */
struct CostSummary
{
    unsigned instruction_count = 0;
    double total_cycles = 0.0;   ///< max(critical path, issue bound)
    double critical_path = 0.0;
    double issue_bound = 0.0;
};

/** Analyze a (straight-line) function. */
CostSummary analyzeFunction(const ir::Function &fn,
                            const CpuModel &cpu = btver2());

} // namespace lpo::mca

#endif // LPO_MCA_COST_MODEL_H
