#include "mca/cost_model.h"

#include <algorithm>
#include <map>

namespace lpo::mca {

using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;

CpuModel
btver2()
{
    return CpuModel{"btver2", 2.0, 1.3};
}

double
operationLatency(Opcode op, Intrinsic intr, const ir::Type *result_type,
                 const ir::Type *operand_type, const CpuModel &cpu)
{
    double base;
    switch (op) {
      case Opcode::Add: case Opcode::Sub:
      case Opcode::And: case Opcode::Or: case Opcode::Xor:
        base = 1.0;
        break;
      case Opcode::Shl: case Opcode::LShr: case Opcode::AShr:
        base = 1.0;
        break;
      case Opcode::Mul:
        base = 3.0;
        break;
      case Opcode::UDiv: case Opcode::SDiv:
      case Opcode::URem: case Opcode::SRem:
        base = 25.0; // integer division is microcoded
        break;
      case Opcode::FAdd: case Opcode::FSub:
        base = 3.0;
        break;
      case Opcode::FMul:
        base = 5.0;
        break;
      case Opcode::FDiv:
        base = 19.0;
        break;
      case Opcode::ICmp:
        base = 1.0;
        break;
      case Opcode::FCmp:
        base = 2.0;
        break;
      case Opcode::Select:
        base = 1.0; // cmov
        break;
      case Opcode::Trunc:
        base = 0.5; // usually free (register aliasing)
        break;
      case Opcode::ZExt: case Opcode::SExt:
        base = 1.0;
        break;
      case Opcode::Freeze:
        base = 0.0;
        break;
      case Opcode::Call:
        switch (intr) {
          case Intrinsic::UMin: case Intrinsic::UMax:
          case Intrinsic::SMin: case Intrinsic::SMax:
            base = 1.0; // cmp+cmov or pmin/pmax
            break;
          case Intrinsic::Abs:
            base = 1.0;
            break;
          case Intrinsic::CtPop:
            base = 3.0;
            break;
          case Intrinsic::CtLz: case Intrinsic::CtTz:
            base = 2.0;
            break;
          case Intrinsic::FAbs:
            base = 1.0;
            break;
          default:
            base = 2.0;
            break;
        }
        break;
      case Opcode::Load:
        base = 4.0; // L1 hit
        break;
      case Opcode::Store:
        base = 1.0;
        break;
      case Opcode::Gep:
        base = 1.0; // folds into addressing most of the time
        break;
      case Opcode::Phi: case Opcode::Br: case Opcode::Ret:
        base = 0.0;
        break;
      default:
        base = 1.0;
        break;
    }
    // SIMD ops on this narrow core pay a modest penalty but are far
    // cheaper than lane-by-lane scalar execution.
    if (result_type->isVector() ||
        (operand_type && operand_type->isVector()))
        base *= cpu.vector_penalty;
    return base;
}

double
instructionLatency(const Instruction &inst, const CpuModel &cpu)
{
    const ir::Type *operand_type =
        inst.numOperands() > 0 ? inst.operand(0)->type() : nullptr;
    return operationLatency(inst.op(), inst.intrinsic(), inst.type(),
                            operand_type, cpu);
}

void
IncrementalCost::addOperand(const IncrementalCost &operand)
{
    critical_path = std::max(critical_path, operand.critical_path);
    instruction_count += operand.instruction_count;
}

void
IncrementalCost::addOperation(double latency)
{
    critical_path += latency;
    ++instruction_count;
}

double
IncrementalCost::totalCycles(const CpuModel &cpu) const
{
    return std::max(critical_path, instruction_count / cpu.issue_width);
}

CostSummary
analyzeFunction(const ir::Function &fn, const CpuModel &cpu)
{
    CostSummary summary;
    std::map<const ir::Value *, double> ready_at;
    double total_latency = 0.0;
    double max_path = 0.0;

    for (const auto &bb : fn.blocks()) {
        for (const auto &inst : bb->instructions()) {
            if (inst->isTerminator())
                continue;
            ++summary.instruction_count;
            double start = 0.0;
            for (const ir::Value *operand : inst->operands()) {
                auto it = ready_at.find(operand);
                if (it != ready_at.end())
                    start = std::max(start, it->second);
            }
            double latency = instructionLatency(*inst, cpu);
            total_latency += latency;
            double done = start + latency;
            ready_at[inst.get()] = done;
            max_path = std::max(max_path, done);
        }
    }
    summary.critical_path = max_path;
    summary.issue_bound = summary.instruction_count / cpu.issue_width;
    summary.total_cycles = std::max(summary.critical_path,
                                    summary.issue_bound);
    return summary;
}

} // namespace lpo::mca
