#include "corpus/generator.h"

#include <cassert>

#include "corpus/benchmarks.h"
#include "ir/builder.h"
#include "ir/parser.h"

namespace lpo::corpus {

using ir::Builder;
using ir::InstFlags;
using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Type;
using ir::Value;

const std::vector<ProjectProfile> &
paperProjects()
{
    static const std::vector<ProjectProfile> projects = {
        {"cpython", "C"},   {"ffmpeg", "C"},   {"linux", "C"},
        {"openssl", "C"},   {"redis", "C"},    {"node", "C++"},
        {"protobuf", "C++"},{"opencv", "C++"}, {"z3", "C++"},
        {"pingora", "Rust"},{"ripgrep", "Rust"},{"typst", "Rust"},
        {"uv", "Rust"},     {"zed", "Rust"},
    };
    return projects;
}

CorpusGenerator::CorpusGenerator(ir::Context &context,
                                 CorpusOptions options)
    : context_(context), options_(options)
{
}

void
CorpusGenerator::addNoiseFunction(ir::Module &module, Rng &rng,
                                  const std::string &name)
{
    // A straight-line integer function over 2-4 arguments with a chain
    // of 4-12 operations. Operand choices bias toward recent values so
    // dependence chains look like real optimized IR.
    static const unsigned widths[] = {8, 16, 32, 32, 64};
    unsigned width = widths[rng.nextBelow(5)];
    const Type *type = context_.types().intTy(width);

    unsigned num_args = 2 + rng.nextBelow(3);
    ir::Function *fn = module.createFunction(name, type);
    for (unsigned i = 0; i < num_args; ++i)
        fn->addArg(type, "a" + std::to_string(i));
    ir::BasicBlock *block = fn->addBlock("entry");
    Builder b(*fn, block);

    std::vector<Value *> values;
    for (unsigned i = 0; i < num_args; ++i)
        values.push_back(fn->arg(i));

    auto pick = [&]() -> Value * {
        // Prefer the most recent few values.
        size_t n = values.size();
        if (n > 3 && rng.chance(0.6))
            return values[n - 1 - rng.nextBelow(3)];
        return values[rng.nextBelow(n)];
    };

    unsigned chain = 4 + rng.nextBelow(9);
    for (unsigned i = 0; i < chain; ++i) {
        Value *result = nullptr;
        switch (rng.nextBelow(8)) {
          case 0:
            result = b.add(pick(), pick());
            break;
          case 1:
            result = b.sub(pick(), pick());
            break;
          case 2:
            result = b.xorOp(pick(), pick());
            break;
          case 3: {
            // Non-identity odd constant keeps InstCombine quiet.
            uint64_t c = 2 * rng.nextBelow(40) + 3;
            result = b.mul(pick(), context_.getInt(type, APInt(width, c)));
            break;
          }
          case 4:
            result = b.andOp(pick(), pick());
            break;
          case 5:
            result = b.umin(pick(), pick());
            break;
          case 6:
            result = b.umax(pick(), pick());
            break;
          default: {
            Value *cond = b.icmp(ir::ICmpPred::SLT, pick(), pick());
            result = b.select(cond, pick(), pick());
            break;
          }
        }
        values.push_back(result);
    }
    b.ret(values.back());
    fn->numberValues();
}

std::unique_ptr<ir::Module>
CorpusGenerator::generateFile(const ProjectProfile &project,
                              unsigned file_index)
{
    Rng rng = Rng(options_.seed)
                  .fork(project.name)
                  .fork("file" + std::to_string(file_index));
    auto module = std::make_unique<ir::Module>(
        context_, project.name + "/ir/file" +
                      std::to_string(file_index) + ".ll");

    const auto &patterns = rq2Benchmarks();
    for (unsigned f = 0; f < options_.functions_per_file; ++f) {
        std::string fn_name = "fn_" + std::to_string(file_index) + "_" +
                              std::to_string(f);
        if (rng.chance(options_.pattern_density)) {
            const MissedOptBenchmark &bench =
                patterns[rng.nextBelow(patterns.size())];
            auto parsed = ir::parseFunction(context_, bench.src_text);
            assert(parsed && "catalog entry must parse");
            std::unique_ptr<ir::Function> fn =
                (*parsed)->clone(fn_name + "_" + bench.issue_id);
            embeddings_.push_back(EmbeddedPattern{
                bench.issue_id, project.name, file_index, fn->name()});
            module->addFunction(std::move(fn));
        } else {
            addNoiseFunction(*module, rng, fn_name);
        }
    }

    // One loop-shaped function per file for structural realism (the
    // extractor must cope with phi/br).
    {
        const Type *i64 = context_.types().intTy(64);
        const Type *i32 = context_.types().intTy(32);
        ir::Function *fn = module->createFunction(
            "loop_" + std::to_string(file_index), i32);
        fn->addArg(i64, "n");
        fn->addArg(i32, "seed");
        ir::BasicBlock *entry = fn->addBlock("entry");
        ir::BasicBlock *body = fn->addBlock("loop.body");
        ir::BasicBlock *exit = fn->addBlock("loop.exit");
        Builder be(*fn, entry);
        be.br("loop.body");
        Builder bb(*fn, body);
        Instruction *iv = bb.phi(i64, {context_.getInt(i64, APInt(64, 0)),
                                       nullptr},
                                 {"entry", "loop.body"});
        Instruction *acc = bb.phi(i32, {fn->arg(1), nullptr},
                                  {"entry", "loop.body"});
        Value *mixed = bb.xorOp(
            acc, bb.mul(acc, context_.getInt(i32, APInt(32, 2654435761u)
                                                      .truncTo(32))));
        InstFlags nuw;
        nuw.nuw = true;
        Instruction *next = bb.binary(Opcode::Add, iv,
                                      context_.getInt(i64, APInt(64, 1)),
                                      nuw);
        iv->setOperand(1, next);
        acc->setOperand(1, mixed);
        Value *done = bb.icmp(ir::ICmpPred::UGE, next, fn->arg(0));
        bb.condBr(done, "loop.exit", "loop.body");
        Builder bx(*fn, exit);
        bx.ret(acc);
        fn->numberValues();
    }
    return module;
}

std::vector<std::unique_ptr<ir::Module>>
CorpusGenerator::generateAll()
{
    std::vector<std::unique_ptr<ir::Module>> modules;
    for (const ProjectProfile &project : paperProjects())
        for (unsigned f = 0; f < options_.files_per_project; ++f)
            modules.push_back(generateFile(project, f));
    return modules;
}

} // namespace lpo::corpus
