#include "corpus/generator.h"

#include <cassert>

#include "corpus/benchmarks.h"
#include "ir/builder.h"
#include "ir/parser.h"

namespace lpo::corpus {

using ir::Builder;
using ir::InstFlags;
using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Type;
using ir::Value;

const std::vector<ProjectProfile> &
paperProjects()
{
    static const std::vector<ProjectProfile> projects = {
        {"cpython", "C"},   {"ffmpeg", "C"},   {"linux", "C"},
        {"openssl", "C"},   {"redis", "C"},    {"node", "C++"},
        {"protobuf", "C++"},{"opencv", "C++"}, {"z3", "C++"},
        {"pingora", "Rust"},{"ripgrep", "Rust"},{"typst", "Rust"},
        {"uv", "Rust"},     {"zed", "Rust"},
    };
    return projects;
}

CorpusGenerator::CorpusGenerator(ir::Context &context,
                                 CorpusOptions options)
    : context_(context), options_(options)
{
}

void
CorpusGenerator::addNoiseFunction(ir::Module &module, Rng &rng,
                                  const std::string &name)
{
    // A straight-line integer function over 2-4 arguments with a chain
    // of 4-12 operations. Operand choices bias toward recent values so
    // dependence chains look like real optimized IR.
    static const unsigned widths[] = {8, 16, 32, 32, 64};
    unsigned width = widths[rng.nextBelow(5)];
    const Type *type = context_.types().intTy(width);

    unsigned num_args = 2 + rng.nextBelow(3);
    ir::Function *fn = module.createFunction(name, type);
    for (unsigned i = 0; i < num_args; ++i)
        fn->addArg(type, "a" + std::to_string(i));
    ir::BasicBlock *block = fn->addBlock("entry");
    Builder b(*fn, block);

    std::vector<Value *> values;
    for (unsigned i = 0; i < num_args; ++i)
        values.push_back(fn->arg(i));

    auto pick = [&]() -> Value * {
        // Prefer the most recent few values.
        size_t n = values.size();
        if (n > 3 && rng.chance(0.6))
            return values[n - 1 - rng.nextBelow(3)];
        return values[rng.nextBelow(n)];
    };

    unsigned chain = 4 + rng.nextBelow(9);
    for (unsigned i = 0; i < chain; ++i) {
        Value *result = nullptr;
        switch (rng.nextBelow(8)) {
          case 0:
            result = b.add(pick(), pick());
            break;
          case 1:
            result = b.sub(pick(), pick());
            break;
          case 2:
            result = b.xorOp(pick(), pick());
            break;
          case 3: {
            // Non-identity odd constant keeps InstCombine quiet.
            uint64_t c = 2 * rng.nextBelow(40) + 3;
            result = b.mul(pick(), context_.getInt(type, APInt(width, c)));
            break;
          }
          case 4:
            result = b.andOp(pick(), pick());
            break;
          case 5:
            result = b.umin(pick(), pick());
            break;
          case 6:
            result = b.umax(pick(), pick());
            break;
          default: {
            Value *cond = b.icmp(ir::ICmpPred::SLT, pick(), pick());
            result = b.select(cond, pick(), pick());
            break;
          }
        }
        values.push_back(result);
    }
    b.ret(values.back());
    fn->numberValues();
}

std::unique_ptr<ir::Module>
CorpusGenerator::generateFile(const ProjectProfile &project,
                              unsigned file_index)
{
    Rng rng = Rng(options_.seed)
                  .fork(project.name)
                  .fork("file" + std::to_string(file_index));
    auto module = std::make_unique<ir::Module>(
        context_, project.name + "/ir/file" +
                      std::to_string(file_index) + ".ll");

    const auto &patterns = rq2Benchmarks();
    for (unsigned f = 0; f < options_.functions_per_file; ++f) {
        std::string fn_name = "fn_" + std::to_string(file_index) + "_" +
                              std::to_string(f);
        if (rng.chance(options_.pattern_density)) {
            const MissedOptBenchmark &bench =
                patterns[rng.nextBelow(patterns.size())];
            auto parsed = ir::parseFunction(context_, bench.src_text);
            assert(parsed && "catalog entry must parse");
            std::unique_ptr<ir::Function> fn =
                (*parsed)->clone(fn_name + "_" + bench.issue_id);
            embeddings_.push_back(EmbeddedPattern{
                bench.issue_id, project.name, file_index, fn->name()});
            module->addFunction(std::move(fn));
        } else {
            addNoiseFunction(*module, rng, fn_name);
        }
    }

    // One loop-shaped function per file for structural realism (the
    // extractor must cope with phi/br).
    {
        const Type *i64 = context_.types().intTy(64);
        const Type *i32 = context_.types().intTy(32);
        ir::Function *fn = module->createFunction(
            "loop_" + std::to_string(file_index), i32);
        fn->addArg(i64, "n");
        fn->addArg(i32, "seed");
        ir::BasicBlock *entry = fn->addBlock("entry");
        ir::BasicBlock *body = fn->addBlock("loop.body");
        ir::BasicBlock *exit = fn->addBlock("loop.exit");
        Builder be(*fn, entry);
        be.br("loop.body");
        Builder bb(*fn, body);
        Instruction *iv = bb.phi(i64, {context_.getInt(i64, APInt(64, 0)),
                                       nullptr},
                                 {"entry", "loop.body"});
        Instruction *acc = bb.phi(i32, {fn->arg(1), nullptr},
                                  {"entry", "loop.body"});
        Value *mixed = bb.xorOp(
            acc, bb.mul(acc, context_.getInt(i32, APInt(32, 2654435761u)
                                                      .truncTo(32))));
        InstFlags nuw;
        nuw.nuw = true;
        Instruction *next = bb.binary(Opcode::Add, iv,
                                      context_.getInt(i64, APInt(64, 1)),
                                      nuw);
        iv->setOperand(1, next);
        acc->setOperand(1, mixed);
        Value *done = bb.icmp(ir::ICmpPred::UGE, next, fn->arg(0));
        bb.condBr(done, "loop.exit", "loop.body");
        Builder bx(*fn, exit);
        bx.ret(acc);
        fn->numberValues();
    }
    return module;
}

const std::vector<const MissedOptBenchmark *> &
stitchableBenchmarks()
{
    static const std::vector<const MissedOptBenchmark *> pool = [] {
        auto eligible = [](const ir::Function &fn) {
            if (fn.blocks().size() != 1 || !fn.returnType()->isInt() ||
                fn.instructionCount() < 2)
                return false;
            for (const auto &arg : fn.args())
                if (!arg->type()->isInt())
                    return false;
            for (const auto &inst : fn.entry()->instructions()) {
                switch (inst->op()) {
                  case Opcode::Load:
                  case Opcode::Store:
                  case Opcode::Gep:
                  case Opcode::Phi:
                  case Opcode::FAdd:
                  case Opcode::FSub:
                  case Opcode::FMul:
                  case Opcode::FDiv:
                  case Opcode::FCmp:
                    return false;
                  default:
                    break;
                }
                if (!inst->isTerminator() && !inst->type()->isInt())
                    return false;
                for (const Value *operand : inst->operands())
                    if (!operand->type()->isInt())
                        return false;
            }
            return true;
        };
        std::vector<const MissedOptBenchmark *> v;
        for (const auto *catalog : {&rq1Benchmarks(), &rq2Benchmarks()}) {
            for (const MissedOptBenchmark &bench : *catalog) {
                ir::Context probe;
                auto parsed = ir::parseFunction(probe, bench.src_text);
                if (parsed.ok() && eligible(**parsed))
                    v.push_back(&bench);
            }
        }
        return v;
    }();
    return pool;
}

std::unique_ptr<ir::Module>
CorpusGenerator::largeModule(uint64_t seed, unsigned num_functions,
                             unsigned blocks_per_fn)
{
    const auto &pool = stitchableBenchmarks();
    assert(!pool.empty() && blocks_per_fn > 0);

    // Parse each pool entry once, into the module's own context so
    // the stitched clones share its interned constants.
    std::vector<std::unique_ptr<ir::Function>> prototypes;
    prototypes.reserve(pool.size());
    for (const MissedOptBenchmark *bench : pool)
        prototypes.push_back(
            ir::parseFunction(context_, bench->src_text).take());

    auto module = std::make_unique<ir::Module>(
        context_, "large/seed" + std::to_string(seed) + ".ll");
    const Type *i64 = context_.types().intTy(64);

    for (unsigned i = 0; i < num_functions; ++i) {
        Rng rng = Rng(seed).fork("large").fork("fn" + std::to_string(i));
        ir::Function *fn =
            module->createFunction("f" + std::to_string(i), i64);

        // Block labels carry the embedded family so patch records can
        // be folded per family downstream.
        std::vector<size_t> picks(blocks_per_fn);
        std::vector<std::string> labels(blocks_per_fn);
        for (unsigned j = 0; j < blocks_per_fn; ++j) {
            picks[j] = (size_t(i) * blocks_per_fn + j) % pool.size();
            labels[j] =
                "s" + std::to_string(j) + "." + pool[picks[j]]->family;
        }

        // Results waiting to be folded into the accumulator; folding
        // happens one block downstream of the producer so per-block
        // sequence extraction sees each pattern body on its own.
        std::vector<Value *> pending;
        Value *acc = nullptr;
        auto fold_pending = [&](Builder &b) {
            for (Value *v : pending) {
                Value *wide = v->type() == i64 ? v : b.zext(v, i64);
                acc = acc ? b.xorOp(acc, wide) : wide;
            }
            pending.clear();
        };

        for (unsigned j = 0; j < blocks_per_fn; ++j) {
            ir::BasicBlock *block = fn->addBlock(labels[j]);
            Builder b(*fn, block);
            fold_pending(b);

            // Stitch the pattern body: fresh function arguments stand
            // in for the prototype's, instructions are cloned.
            const ir::Function &proto = *prototypes[picks[j]];
            std::map<const ir::Value *, Value *> remap;
            for (const auto &arg : proto.args())
                remap[arg.get()] = fn->addArg(
                    arg->type(), "a" + std::to_string(fn->numArgs()));
            Value *tail = nullptr;
            for (const auto &inst : proto.entry()->instructions()) {
                if (inst->isTerminator()) {
                    Value *r = inst->operand(0);
                    auto it = remap.find(r);
                    tail = it == remap.end() ? r : it->second;
                    continue;
                }
                remap[inst.get()] =
                    block->append(ir::cloneInstruction(*inst, remap));
            }
            pending.push_back(tail);

            // Occasional noise chain over its own fresh arguments
            // (isolated from the pattern, so it forms independent
            // sequences in the same block — realistic clutter).
            if (rng.chance(0.35)) {
                static const unsigned widths[] = {8, 16, 32, 64};
                const Type *nt =
                    context_.types().intTy(widths[rng.nextBelow(4)]);
                Value *x = fn->addArg(
                    nt, "a" + std::to_string(fn->numArgs()));
                Value *y = fn->addArg(
                    nt, "a" + std::to_string(fn->numArgs()));
                Value *cur = x;
                bool was_mul = false;
                unsigned chain = 3 + rng.nextBelow(4);
                for (unsigned k = 0; k < chain; ++k) {
                    unsigned op = rng.nextBelow(5);
                    // Never stack constant multiplies at wide widths:
                    // the e-graph folds them, and proving the fold is
                    // a worst-case SAT query (64-bit carry chains) —
                    // not the workload this module models.
                    if (op == 4 && (was_mul || nt->intWidth() > 16))
                        op = 2;
                    was_mul = op == 4;
                    switch (op) {
                      case 0: cur = b.add(cur, y); break;
                      case 1: cur = b.sub(cur, y); break;
                      case 2: cur = b.xorOp(cur, y); break;
                      case 3: cur = b.umin(cur, y); break;
                      default:
                        cur = b.mul(cur,
                                    context_.getInt(
                                        nt, APInt(nt->intWidth(),
                                                  2 * rng.nextBelow(40) +
                                                      3)));
                        break;
                    }
                }
                pending.push_back(cur);
            }

            b.br(j + 1 < blocks_per_fn ? labels[j + 1] : "fin");
        }

        ir::BasicBlock *fin = fn->addBlock("fin");
        Builder bf(*fn, fin);
        fold_pending(bf);
        bf.ret(acc);

        // Builder temp names restart per block; renumber the whole
        // function so every value name is unique and round-trips.
        for (const auto &bb : fn->blocks())
            for (const auto &inst : bb->instructions())
                inst->setName("");
        fn->numberValues();
    }
    return module;
}

std::vector<std::unique_ptr<ir::Module>>
CorpusGenerator::generateAll()
{
    std::vector<std::unique_ptr<ir::Module>> modules;
    for (const ProjectProfile &project : paperProjects())
        for (unsigned f = 0; f < options_.files_per_project; ++f)
            modules.push_back(generateFile(project, f));
    return modules;
}

} // namespace lpo::corpus
