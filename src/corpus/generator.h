/**
 * @file
 * Synthetic corpus generation (llvm-opt-benchmark substitute).
 *
 * The paper's RQ2 corpus is optimized IR from 14 real projects
 * (cpython, ffmpeg, linux, openssl, redis, node, protobuf, opencv,
 * z3, pingora, ripgrep, typst, uv, zed). Offline we synthesize
 * per-project module sets from a seeded RNG: mostly straight-line
 * integer/vector compute with realistic shapes (including loops with
 * phi), into which instances of the RQ2 missed-optimization patterns
 * are embedded at a configurable density. Embedding locations are
 * recorded so Table 5's prevalence counts (#IR files / #projects per
 * pattern) can be reproduced.
 */
#ifndef LPO_CORPUS_GENERATOR_H
#define LPO_CORPUS_GENERATOR_H

#include <memory>
#include <string>
#include <vector>

#include "corpus/benchmarks.h"
#include "ir/module.h"
#include "support/rng.h"

namespace lpo::corpus {

/** One source project of the corpus. */
struct ProjectProfile
{
    std::string name;
    std::string language; ///< "C", "C++", or "Rust"
};

/** The 14 projects the paper selected. */
const std::vector<ProjectProfile> &paperProjects();

/** Generator configuration. */
struct CorpusOptions
{
    unsigned files_per_project = 6;
    unsigned functions_per_file = 5;
    /** Probability a generated function embeds a missed-opt pattern. */
    double pattern_density = 0.3;
    uint64_t seed = 42;
};

/** Where a pattern instance was planted. */
struct EmbeddedPattern
{
    std::string issue_id;
    std::string project;
    unsigned file_index;
    std::string function_name;
};

/** Seeded corpus generator. */
class CorpusGenerator
{
  public:
    CorpusGenerator(ir::Context &context, CorpusOptions options = {});

    /** One IR file (module) of @p project. */
    std::unique_ptr<ir::Module> generateFile(const ProjectProfile &project,
                                             unsigned file_index);

    /** All files of all paper projects. */
    std::vector<std::unique_ptr<ir::Module>> generateAll();

    /** A noise-only function appended to @p module (no patterns). */
    void addNoiseFunction(ir::Module &module, Rng &rng,
                          const std::string &name);

    /**
     * A module-pipeline workload: @p num_functions functions of
     * @p blocks_per_fn pattern blocks each (plus one epilogue block),
     * stitched from the stitchable benchmark families. Block j of
     * function i embeds pool entry (i * blocks_per_fn + j) mod
     * pool-size — deliberate cross-function duplication, so extractor
     * dedup and verification-cache hits are measurable — and is
     * labelled "s<j>.<family>" so patch-back reports can be folded
     * per family. Every pattern result flows into the returned i64
     * accumulator through next-block zext/xor adapters (adapters live
     * one block downstream, so per-block sequence extraction sees the
     * pattern bodies exactly as the standalone catalog functions);
     * nothing in the module is dead. Fully deterministic in @p seed.
     */
    std::unique_ptr<ir::Module> largeModule(uint64_t seed,
                                            unsigned num_functions,
                                            unsigned blocks_per_fn);

    /** Embedding log for prevalence accounting (Table 5). */
    const std::vector<EmbeddedPattern> &embeddings() const
    {
        return embeddings_;
    }

  private:
    ir::Context &context_;
    CorpusOptions options_;
    std::vector<EmbeddedPattern> embeddings_;
};

/**
 * The catalog entries largeModule can stitch: single-block sources
 * with a scalar-integer result, at least two instructions, and no
 * memory / floating-point / vector operations (so extracted wrapped
 * copies stay inside the SAT backend's fragment and fold into the
 * accumulator with a plain zext). These are the "supported benchmark
 * families" of the module pipeline's acceptance bar.
 */
const std::vector<const MissedOptBenchmark *> &stitchableBenchmarks();

} // namespace lpo::corpus

#endif // LPO_CORPUS_GENERATOR_H
