/**
 * @file
 * Synthetic corpus generation (llvm-opt-benchmark substitute).
 *
 * The paper's RQ2 corpus is optimized IR from 14 real projects
 * (cpython, ffmpeg, linux, openssl, redis, node, protobuf, opencv,
 * z3, pingora, ripgrep, typst, uv, zed). Offline we synthesize
 * per-project module sets from a seeded RNG: mostly straight-line
 * integer/vector compute with realistic shapes (including loops with
 * phi), into which instances of the RQ2 missed-optimization patterns
 * are embedded at a configurable density. Embedding locations are
 * recorded so Table 5's prevalence counts (#IR files / #projects per
 * pattern) can be reproduced.
 */
#ifndef LPO_CORPUS_GENERATOR_H
#define LPO_CORPUS_GENERATOR_H

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "support/rng.h"

namespace lpo::corpus {

/** One source project of the corpus. */
struct ProjectProfile
{
    std::string name;
    std::string language; ///< "C", "C++", or "Rust"
};

/** The 14 projects the paper selected. */
const std::vector<ProjectProfile> &paperProjects();

/** Generator configuration. */
struct CorpusOptions
{
    unsigned files_per_project = 6;
    unsigned functions_per_file = 5;
    /** Probability a generated function embeds a missed-opt pattern. */
    double pattern_density = 0.3;
    uint64_t seed = 42;
};

/** Where a pattern instance was planted. */
struct EmbeddedPattern
{
    std::string issue_id;
    std::string project;
    unsigned file_index;
    std::string function_name;
};

/** Seeded corpus generator. */
class CorpusGenerator
{
  public:
    CorpusGenerator(ir::Context &context, CorpusOptions options = {});

    /** One IR file (module) of @p project. */
    std::unique_ptr<ir::Module> generateFile(const ProjectProfile &project,
                                             unsigned file_index);

    /** All files of all paper projects. */
    std::vector<std::unique_ptr<ir::Module>> generateAll();

    /** A noise-only function appended to @p module (no patterns). */
    void addNoiseFunction(ir::Module &module, Rng &rng,
                          const std::string &name);

    /** Embedding log for prevalence accounting (Table 5). */
    const std::vector<EmbeddedPattern> &embeddings() const
    {
        return embeddings_;
    }

  private:
    ir::Context &context_;
    CorpusOptions options_;
    std::vector<EmbeddedPattern> embeddings_;
};

} // namespace lpo::corpus

#endif // LPO_CORPUS_GENERATOR_H
