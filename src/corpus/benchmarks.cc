#include "corpus/benchmarks.h"

#include <map>

#include "support/apint.h"

namespace lpo::corpus {

namespace {

/** A (src, tgt) pair of IR texts. */
struct Pair
{
    std::string src;
    std::string tgt;
};

std::string
W(unsigned width)
{
    return "i" + std::to_string(width);
}

// -------------------------------------------------------------------
// Pattern families. Each returns a verified (src, tgt) pair; the test
// suite re-proves refinement for every instantiation.
// -------------------------------------------------------------------

/** F clamp_umin: x < 0 ? 0 : umin(x, C)  ==>  umin(smax(x, 0), C). */
Pair
clampUMin(unsigned width, unsigned narrow, uint64_t limit)
{
    std::string w = W(width), n = W(narrow);
    std::string c = std::to_string(limit);
    Pair p;
    p.src = "define " + n + " @src(" + w + " %x) {\n"
        "  %c = icmp slt " + w + " %x, 0\n"
        "  %m = tail call " + w + " @llvm.umin." + w + "(" + w + " %x, " +
        w + " " + c + ")\n"
        "  %t = trunc nuw " + w + " %m to " + n + "\n"
        "  %r = select i1 %c, " + n + " 0, " + n + " %t\n"
        "  ret " + n + " %r\n}\n";
    p.tgt = "define " + n + " @tgt(" + w + " %x) {\n"
        "  %s = tail call " + w + " @llvm.smax." + w + "(" + w + " %x, " +
        w + " 0)\n"
        "  %m = tail call " + w + " @llvm.umin." + w + "(" + w + " %s, " +
        w + " " + c + ")\n"
        "  %t = trunc nuw " + w + " %m to " + n + "\n"
        "  ret " + n + " %t\n}\n";
    return p;
}

/** F clamp_umin_vec: the vectorized Fig. 1 form. */
Pair
clampUMinVec()
{
    Pair p;
    p.src =
        "define <4 x i8> @src(<4 x i32> %x) {\n"
        "  %c = icmp slt <4 x i32> %x, zeroinitializer\n"
        "  %m = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %x, "
        "<4 x i32> splat (i32 255))\n"
        "  %t = trunc nuw <4 x i32> %m to <4 x i8>\n"
        "  %r = select <4 x i1> %c, <4 x i8> zeroinitializer, "
        "<4 x i8> %t\n"
        "  ret <4 x i8> %r\n}\n";
    p.tgt =
        "define <4 x i8> @tgt(<4 x i32> %x) {\n"
        "  %s = tail call <4 x i32> @llvm.smax.v4i32(<4 x i32> %x, "
        "<4 x i32> zeroinitializer)\n"
        "  %m = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %s, "
        "<4 x i32> splat (i32 255))\n"
        "  %t = trunc nuw <4 x i32> %m to <4 x i8>\n"
        "  ret <4 x i8> %t\n}\n";
    return p;
}

/** F load_merge: two adjacent narrow loads combined into one load. */
Pair
loadMerge(unsigned half_width)
{
    unsigned full = half_width * 2;
    unsigned byte_off = half_width / 8;
    std::string h = W(half_width), f = W(full);
    Pair p;
    p.src = "define " + f + " @src(ptr %p) {\n"
        "  %lo = load " + h + ", ptr %p, align 2\n"
        "  %q = getelementptr i8, ptr %p, i64 " +
        std::to_string(byte_off) + "\n"
        "  %hi = load " + h + ", ptr %q, align 1\n"
        "  %zhi = zext " + h + " %hi to " + f + "\n"
        "  %shl = shl nuw " + f + " %zhi, " +
        std::to_string(half_width) + "\n"
        "  %zlo = zext " + h + " %lo to " + f + "\n"
        "  %r = or disjoint " + f + " %shl, %zlo\n"
        "  ret " + f + " %r\n}\n";
    p.tgt = "define " + f + " @tgt(ptr %p) {\n"
        "  %r = load " + f + ", ptr %p, align 2\n"
        "  ret " + f + " %r\n}\n";
    return p;
}

/** F umax_shl: umax(shl nuw (umax(x, C1), k), C2) with C1<<k <= C2. */
Pair
umaxShl(unsigned width, uint64_t c1, unsigned k, uint64_t c2)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x) {\n"
        "  %a = call " + w + " @llvm.umax." + w + "(" + w + " %x, " + w +
        " " + std::to_string(c1) + ")\n"
        "  %b = shl nuw " + w + " %a, " + std::to_string(k) + "\n"
        "  %r = call " + w + " @llvm.umax." + w + "(" + w + " %b, " + w +
        " " + std::to_string(c2) + ")\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x) {\n"
        "  %b = shl nuw " + w + " %x, " + std::to_string(k) + "\n"
        "  %r = call " + w + " @llvm.umax." + w + "(" + w + " %b, " + w +
        " " + std::to_string(c2) + ")\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F fcmp_ord_select: NaN-guard select before an ordered compare. */
Pair
fcmpOrdSelect(const std::string &cmp_const)
{
    Pair p;
    p.src = "define i1 @src(double %x) {\n"
        "  %o = fcmp ord double %x, 0.000000e+00\n"
        "  %s = select i1 %o, double %x, double 0.000000e+00\n"
        "  %r = fcmp oeq double %s, " + cmp_const + "\n"
        "  ret i1 %r\n}\n";
    p.tgt = "define i1 @tgt(double %x) {\n"
        "  %r = fcmp oeq double %x, " + cmp_const + "\n"
        "  ret i1 %r\n}\n";
    return p;
}

/** F sub_add_cmp: (a - b > a + b) with nsw  ==>  b < 0. */
Pair
subAddCmp(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define i1 @src(" + w + " %a, " + w + " %b) {\n"
        "  %s = sub nsw " + w + " %a, %b\n"
        "  %t = add nsw " + w + " %a, %b\n"
        "  %c = icmp sgt " + w + " %s, %t\n"
        "  ret i1 %c\n}\n";
    p.tgt = "define i1 @tgt(" + w + " %a, " + w + " %b) {\n"
        "  %c = icmp slt " + w + " %b, 0\n"
        "  ret i1 %c\n}\n";
    return p;
}

/** F add_signbit: add x, SIGN_MIN  ==>  xor x, SIGN_MIN. */
Pair
addSignbit(unsigned width)
{
    std::string w = W(width);
    std::string min = lpo::APInt::signedMin(width).toString();
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x) {\n"
        "  %r = add " + w + " %x, " + min + "\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x) {\n"
        "  %r = xor " + w + " %x, " + min + "\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F icmp_lshr: (x >> k) == 0  ==>  x < 2^k. */
Pair
icmpLshr(unsigned width, unsigned k)
{
    std::string w = W(width);
    Pair p;
    p.src = "define i1 @src(" + w + " %x) {\n"
        "  %s = lshr " + w + " %x, " + std::to_string(k) + "\n"
        "  %r = icmp eq " + w + " %s, 0\n"
        "  ret i1 %r\n}\n";
    p.tgt = "define i1 @tgt(" + w + " %x) {\n"
        "  %r = icmp ult " + w + " %x, " +
        std::to_string(uint64_t(1) << k) + "\n"
        "  ret i1 %r\n}\n";
    return p;
}

/** F umin_zext: umin(zext(x), C) with C >= narrow max  ==>  zext(x). */
Pair
uminZext(unsigned narrow, unsigned wide, uint64_t limit)
{
    std::string n = W(narrow), w = W(wide);
    Pair p;
    p.src = "define " + w + " @src(" + n + " %x) {\n"
        "  %z = zext " + n + " %x to " + w + "\n"
        "  %r = call " + w + " @llvm.umin." + w + "(" + w + " %z, " + w +
        " " + std::to_string(limit) + ")\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + n + " %x) {\n"
        "  %z = zext " + n + " %x to " + w + "\n"
        "  ret " + w + " %z\n}\n";
    return p;
}

/** F usub_sat: x > y ? x - y : 0  ==>  usub.sat(x, y). */
Pair
usubSat(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x, " + w + " %y) {\n"
        "  %c = icmp ugt " + w + " %x, %y\n"
        "  %s = sub " + w + " %x, %y\n"
        "  %r = select i1 %c, " + w + " %s, " + w + " 0\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x, " + w + " %y) {\n"
        "  %r = call " + w + " @llvm.usub.sat." + w + "(" + w + " %x, " +
        w + " %y)\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F umax_sub: umax(x, y) - y  ==>  usub.sat(x, y). */
Pair
umaxSub(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x, " + w + " %y) {\n"
        "  %m = call " + w + " @llvm.umax." + w + "(" + w + " %x, " + w +
        " %y)\n"
        "  %r = sub " + w + " %m, %y\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x, " + w + " %y) {\n"
        "  %r = call " + w + " @llvm.usub.sat." + w + "(" + w + " %x, " +
        w + " %y)\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F umin_idem: umin(umin(x, y), x)  ==>  umin(x, y). */
Pair
uminIdem(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x, " + w + " %y) {\n"
        "  %a = call " + w + " @llvm.umin." + w + "(" + w + " %x, " + w +
        " %y)\n"
        "  %r = call " + w + " @llvm.umin." + w + "(" + w + " %a, " + w +
        " %x)\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x, " + w + " %y) {\n"
        "  %r = call " + w + " @llvm.umin." + w + "(" + w + " %x, " + w +
        " %y)\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F trunc_and: trunc(x & M) where M covers the narrow type. */
Pair
truncAnd(unsigned wide, unsigned narrow)
{
    std::string w = W(wide), n = W(narrow);
    uint64_t mask = (uint64_t(1) << narrow) - 1;
    Pair p;
    p.src = "define " + n + " @src(" + w + " %x) {\n"
        "  %a = and " + w + " %x, " + std::to_string(mask) + "\n"
        "  %r = trunc " + w + " %a to " + n + "\n"
        "  ret " + n + " %r\n}\n";
    p.tgt = "define " + n + " @tgt(" + w + " %x) {\n"
        "  %r = trunc " + w + " %x to " + n + "\n"
        "  ret " + n + " %r\n}\n";
    return p;
}

/** F neg_sub: 0 - (x - y)  ==>  y - x. */
Pair
negSub(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x, " + w + " %y) {\n"
        "  %s = sub " + w + " %x, %y\n"
        "  %r = sub " + w + " 0, %s\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x, " + w + " %y) {\n"
        "  %r = sub " + w + " %y, %x\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F smax_abs: smax(x, 0 - x)  ==>  abs(x). */
Pair
smaxAbs(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x) {\n"
        "  %n = sub " + w + " 0, %x\n"
        "  %r = call " + w + " @llvm.smax." + w + "(" + w + " %x, " + w +
        " %n)\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x) {\n"
        "  %r = call " + w + " @llvm.abs." + w + "(" + w + " %x, i1 "
        "false)\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F or_zext: or(zext(a), zext(b))  ==>  zext(or(a, b)). */
Pair
orZext(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(i1 %a, i1 %b) {\n"
        "  %za = zext i1 %a to " + w + "\n"
        "  %zb = zext i1 %b to " + w + "\n"
        "  %r = or " + w + " %za, %zb\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(i1 %a, i1 %b) {\n"
        "  %o = or i1 %a, %b\n"
        "  %r = zext i1 %o to " + w + "\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F add_and_or: (x & y) + (x | y)  ==>  x + y. */
Pair
addAndOr(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x, " + w + " %y) {\n"
        "  %a = and " + w + " %x, %y\n"
        "  %o = or " + w + " %x, %y\n"
        "  %r = add " + w + " %a, %o\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x, " + w + " %y) {\n"
        "  %r = add " + w + " %x, %y\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F and1_trunc: (x & 1) != 0  ==>  trunc x to i1. */
Pair
and1Trunc(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define i1 @src(" + w + " %x) {\n"
        "  %a = and " + w + " %x, 1\n"
        "  %r = icmp ne " + w + " %a, 0\n"
        "  ret i1 %r\n}\n";
    p.tgt = "define i1 @tgt(" + w + " %x) {\n"
        "  %r = trunc " + w + " %x to i1\n"
        "  ret i1 %r\n}\n";
    return p;
}

/** F mul_parity: (x * x) & 1  ==>  x & 1. */
Pair
mulParity(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x) {\n"
        "  %m = mul " + w + " %x, %x\n"
        "  %r = and " + w + " %m, 1\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x) {\n"
        "  %r = and " + w + " %x, 1\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F sdiv_exact: sdiv exact x, 2^k  ==>  ashr exact x, k. */
Pair
sdivExact(unsigned width, unsigned k)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x) {\n"
        "  %r = sdiv exact " + w + " %x, " +
        std::to_string(uint64_t(1) << k) + "\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x) {\n"
        "  %r = ashr exact " + w + " %x, " + std::to_string(k) + "\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F fabs_olt: fabs(x) < 0.0  ==>  false. */
Pair
fabsOlt()
{
    Pair p;
    p.src = "define i1 @src(double %x) {\n"
        "  %a = call double @llvm.fabs.f64(double %x)\n"
        "  %r = fcmp olt double %a, 0.000000e+00\n"
        "  ret i1 %r\n}\n";
    p.tgt = "define i1 @tgt(double %x) {\n"
        "  %r = fcmp uno double %x, %x\n"
        "  ret i1 %r\n}\n";
    // fabs(x) < 0 is always false, including NaN; false == (x uno x)?
    // No: x uno x is true for NaN. Return the constant-false compare
    // instead.
    p.tgt = "define i1 @tgt(double %x) {\n"
        "  %r = fcmp false double %x, %x\n"
        "  ret i1 %r\n}\n";
    return p;
}

/** F uadd_sat: overflow-checked add  ==>  uadd.sat. */
Pair
uaddSat(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x, " + w + " %y) {\n"
        "  %s = add " + w + " %x, %y\n"
        "  %c = icmp ult " + w + " %s, %x\n"
        "  %r = select i1 %c, " + w + " -1, " + w + " %s\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x, " + w + " %y) {\n"
        "  %r = call " + w + " @llvm.uadd.sat." + w + "(" + w + " %x, " +
        w + " %y)\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

/** F clz_cmp: ctlz(x) == width  ==>  x == 0. */
Pair
clzCmp(unsigned width)
{
    std::string w = W(width);
    Pair p;
    p.src = "define i1 @src(" + w + " %x) {\n"
        "  %z = call " + w + " @llvm.ctlz." + w + "(" + w + " %x, i1 "
        "false)\n"
        "  %r = icmp eq " + w + " %z, " + std::to_string(width) + "\n"
        "  ret i1 %r\n}\n";
    p.tgt = "define i1 @tgt(" + w + " %x) {\n"
        "  %r = icmp eq " + w + " %x, 0\n"
        "  ret i1 %r\n}\n";
    return p;
}

/** F cttz_and: cttz(x) > k-1  ==>  (x & (2^k - 1)) == 0. The source
 *  uses the canonical strict form InstCombine produces. */
Pair
cttzAnd(unsigned width, unsigned k)
{
    std::string w = W(width);
    Pair p;
    p.src = "define i1 @src(" + w + " %x) {\n"
        "  %z = call " + w + " @llvm.cttz." + w + "(" + w + " %x, i1 "
        "false)\n"
        "  %r = icmp ugt " + w + " %z, " + std::to_string(k - 1) + "\n"
        "  ret i1 %r\n}\n";
    p.tgt = "define i1 @tgt(" + w + " %x) {\n"
        "  %a = and " + w + " %x, " +
        std::to_string((uint64_t(1) << k) - 1) + "\n"
        "  %r = icmp eq " + w + " %a, 0\n"
        "  ret i1 %r\n}\n";
    return p;
}

/** F sat_chain: uadd.sat(uadd.sat(x, C1), C2)  ==>  uadd.sat(x, C1+C2). */
Pair
satChain(unsigned width, uint64_t c1, uint64_t c2)
{
    std::string w = W(width);
    Pair p;
    p.src = "define " + w + " @src(" + w + " %x) {\n"
        "  %a = call " + w + " @llvm.uadd.sat." + w + "(" + w + " %x, " +
        w + " " + std::to_string(c1) + ")\n"
        "  %r = call " + w + " @llvm.uadd.sat." + w + "(" + w + " %a, " +
        w + " " + std::to_string(c2) + ")\n"
        "  ret " + w + " %r\n}\n";
    p.tgt = "define " + w + " @tgt(" + w + " %x) {\n"
        "  %r = call " + w + " @llvm.uadd.sat." + w + "(" + w + " %x, " +
        w + " " + std::to_string(c1 + c2) + ")\n"
        "  ret " + w + " %r\n}\n";
    return p;
}

MissedOptBenchmark
make(const std::string &issue, IssueStatus status,
     const std::string &family, Pair pair, double difficulty)
{
    return MissedOptBenchmark{issue, status, family, std::move(pair.src),
                              std::move(pair.tgt), difficulty};
}

std::vector<MissedOptBenchmark>
buildRQ1()
{
    using S = IssueStatus;
    std::vector<MissedOptBenchmark> v;
    // Easy tier: detected by most models, often without feedback.
    v.push_back(make("108451", S::Reported, "add_signbit",
                     addSignbit(8), 0.30));
    v.push_back(make("108559", S::Reported, "trunc_and",
                     truncAnd(32, 8), 0.32));
    v.push_back(make("110591", S::Reported, "neg_sub", negSub(32), 0.35));
    v.push_back(make("115466", S::Reported, "add_and_or",
                     addAndOr(32), 0.38));
    v.push_back(make("141930", S::Reported, "umin_idem",
                     uminIdem(16), 0.36));
    // Medium tier.
    v.push_back(make("107228", S::Reported, "icmp_lshr",
                     icmpLshr(32, 4), 0.52));
    v.push_back(make("122388", S::Reported, "umin_zext",
                     uminZext(8, 32, 300), 0.55));
    v.push_back(make("126056", S::Reported, "mul_parity",
                     mulParity(8), 0.58));
    v.push_back(make("128778", S::Reported, "or_zext", orZext(8), 0.60));
    v.push_back(make("132508", S::Reported, "sub_add_cmp",
                     subAddCmp(8), 0.55));
    v.push_back(make("135411", S::Reported, "and1_trunc",
                     and1Trunc(8), 0.57));
    v.push_back(make("141479", S::Reported, "sdiv_exact",
                     sdivExact(32, 2), 0.54));
    // Hard tier: reasoning models mostly, feedback often needed.
    v.push_back(make("104875", S::Reported, "load_merge",
                     loadMerge(16), 0.88));
    v.push_back(make("118155", S::Reported, "umax_shl",
                     umaxShl(8, 1, 1, 16), 0.80));
    v.push_back(make("122235", S::Reported, "clamp_umin",
                     clampUMin(32, 8, 255), 0.72));
    v.push_back(make("128475", S::Reported, "usub_sat",
                     usubSat(16), 0.78));
    v.push_back(make("131824", S::Reported, "fcmp_ord_select",
                     fcmpOrdSelect("1.000000e+00"), 0.80));
    v.push_back(make("141753", S::Reported, "uadd_sat",
                     uaddSat(16), 0.82));
    v.push_back(make("142497", S::Reported, "smax_abs",
                     smaxAbs(32), 0.80));
    v.push_back(make("142593", S::Reported, "umax_sub",
                     umaxSub(32), 0.76));
    // Very hard tier.
    v.push_back(make("129947", S::Reported, "clamp_umin_vec",
                     clampUMinVec(), 0.93));
    v.push_back(make("137161", S::Reported, "fabs_olt", fabsOlt(), 0.90));
    // Beyond every evaluated model (empty rows in Table 2).
    v.push_back(make("131444", S::Reported, "clz_cmp",
                     clzCmp(8), 2.0));
    v.push_back(make("134318", S::Reported, "cttz_and",
                     cttzAnd(16, 3), 2.0));
    v.push_back(make("143259", S::Reported, "sat_chain",
                     satChain(8, 10, 20), 2.0));
    return v;
}

std::vector<MissedOptBenchmark>
buildRQ2()
{
    using S = IssueStatus;
    std::vector<MissedOptBenchmark> v;
    // Table 3's 62 findings, instantiated across the pattern families
    // at varying widths/constants. Status follows the paper's table:
    // 28 confirmed, 13 fixed, 4 duplicates, 3 wontfix, 14 unconfirmed.
    v.push_back(make("128134", S::Fixed, "add_signbit",
                     addSignbit(16), 0.4));
    v.push_back(make("128460", S::Confirmed, "clamp_umin",
                     clampUMin(32, 16, 1023), 0.7));
    v.push_back(make("130954", S::Wontfix, "neg_sub", negSub(8), 0.4));
    v.push_back(make("132628", S::Wontfix, "umax_shl",
                     umaxShl(16, 1, 2, 64), 0.8));
    v.push_back(make("133367", S::Fixed, "trunc_and",
                     truncAnd(64, 16), 0.4));
    v.push_back(make("139641", S::Confirmed, "icmp_lshr",
                     icmpLshr(64, 8), 0.5));
    v.push_back(make("139786", S::Confirmed, "fcmp_ord_select",
                     fcmpOrdSelect("2.000000e+00"), 0.8));
    v.push_back(make("142674", S::Fixed, "add_and_or",
                     addAndOr(64), 0.4));
    v.push_back(make("142711", S::Fixed, "or_zext", orZext(32), 0.6));
    v.push_back(make("143030", S::Unconfirmed, "umin_idem",
                     uminIdem(64), 0.4));
    v.push_back(make("143211", S::Fixed, "mul_parity",
                     mulParity(32), 0.6));
    v.push_back(make("143630", S::Unconfirmed, "sub_add_cmp",
                     subAddCmp(16), 0.6));
    v.push_back(make("143636", S::Fixed, "umin_zext",
                     uminZext(16, 32, 70000), 0.5));
    v.push_back(make("143649", S::Unconfirmed, "smax_abs",
                     smaxAbs(16), 0.8));
    v.push_back(make("143957", S::Confirmed, "usub_sat",
                     usubSat(32), 0.8));
    v.push_back(make("144020", S::Confirmed, "sdiv_exact",
                     sdivExact(64, 3), 0.5));
    v.push_back(make("152237", S::Confirmed, "and1_trunc",
                     and1Trunc(32), 0.6));
    v.push_back(make("152788", S::Unconfirmed, "neg_sub",
                     negSub(64), 0.4));
    v.push_back(make("152797", S::Confirmed, "clamp_umin",
                     clampUMin(16, 8, 200), 0.7));
    v.push_back(make("152804", S::Confirmed, "icmp_lshr",
                     icmpLshr(16, 2), 0.5));
    v.push_back(make("153991", S::Confirmed, "fabs_olt", fabsOlt(), 0.9));
    v.push_back(make("153999", S::Duplicate, "add_signbit",
                     addSignbit(32), 0.4));
    v.push_back(make("154000", S::Duplicate, "add_and_or",
                     addAndOr(16), 0.4));
    v.push_back(make("154025", S::Unconfirmed, "trunc_and",
                     truncAnd(32, 16), 0.4));
    v.push_back(make("154035", S::Unconfirmed, "fcmp_ord_select",
                     fcmpOrdSelect("5.000000e-01"), 0.8));
    v.push_back(make("154238", S::Fixed, "umax_sub", umaxSub(16), 0.7));
    v.push_back(make("154242", S::Confirmed, "icmp_lshr",
                     icmpLshr(32, 12), 0.5));
    v.push_back(make("154246", S::Confirmed, "uadd_sat",
                     uaddSat(32), 0.8));
    v.push_back(make("154258", S::Unconfirmed, "mul_parity",
                     mulParity(64), 0.6));
    v.push_back(make("157315", S::Fixed, "umin_idem", uminIdem(8), 0.4));
    v.push_back(make("157370", S::Fixed, "sdiv_exact",
                     sdivExact(32, 4), 0.5));
    v.push_back(make("157371", S::Fixed, "or_zext", orZext(16), 0.6));
    v.push_back(make("157372", S::Duplicate, "or_zext", orZext(64), 0.6));
    v.push_back(make("157486", S::Confirmed, "clamp_umin_vec",
                     clampUMinVec(), 0.9));
    v.push_back(make("157524", S::Fixed, "trunc_and",
                     truncAnd(64, 32), 0.4));
    v.push_back(make("163084", S::Confirmed, "sub_add_cmp",
                     subAddCmp(32), 0.6));
    v.push_back(make("163093", S::Unconfirmed, "smax_abs",
                     smaxAbs(64), 0.8));
    v.push_back(make("163108", S::Fixed, "umin_zext",
                     uminZext(8, 16, 400), 0.5));
    v.push_back(make("163109", S::Confirmed, "usub_sat",
                     usubSat(8), 0.8));
    v.push_back(make("163110", S::Confirmed, "add_signbit",
                     addSignbit(64), 0.4));
    v.push_back(make("163112", S::Confirmed, "load_merge",
                     loadMerge(8), 0.9));
    v.push_back(make("163115", S::Confirmed, "umax_shl",
                     umaxShl(8, 2, 2, 32), 0.8));
    v.push_back(make("166878", S::Confirmed, "fcmp_ord_select",
                     fcmpOrdSelect("3.000000e+00"), 0.8));
    v.push_back(make("166885", S::Confirmed, "clamp_umin",
                     clampUMin(64, 32, 100000), 0.7));
    v.push_back(make("166887", S::Unconfirmed, "and1_trunc",
                     and1Trunc(16), 0.6));
    v.push_back(make("166890", S::Unconfirmed, "icmp_lshr",
                     icmpLshr(8, 3), 0.5));
    v.push_back(make("166973", S::Fixed, "add_and_or",
                     addAndOr(8), 0.4));
    v.push_back(make("167003", S::Confirmed, "neg_sub", negSub(16), 0.4));
    v.push_back(make("167014", S::Confirmed, "uadd_sat",
                     uaddSat(8), 0.8));
    v.push_back(make("167055", S::Confirmed, "load_merge",
                     loadMerge(16), 0.9));
    v.push_back(make("167059", S::Unconfirmed, "fabs_olt",
                     fabsOlt(), 0.9));
    v.push_back(make("167079", S::Unconfirmed, "umax_sub",
                     umaxSub(64), 0.7));
    v.push_back(make("167090", S::Unconfirmed, "sub_add_cmp",
                     subAddCmp(64), 0.6));
    v.push_back(make("167094", S::Duplicate, "umin_idem",
                     uminIdem(32), 0.4));
    v.push_back(make("167096", S::Confirmed, "smax_abs",
                     smaxAbs(8), 0.8));
    v.push_back(make("167173", S::Confirmed, "umin_zext",
                     uminZext(16, 64, 100000), 0.5));
    v.push_back(make("167178", S::Unconfirmed, "usub_sat",
                     usubSat(64), 0.8));
    v.push_back(make("167183", S::Confirmed, "sdiv_exact",
                     sdivExact(16, 1), 0.5));
    v.push_back(make("167190", S::Confirmed, "umax_shl",
                     umaxShl(32, 1, 3, 256), 0.8));
    v.push_back(make("167199", S::Wontfix, "mul_parity",
                     mulParity(16), 0.6));
    v.push_back(make("170020", S::Confirmed, "and1_trunc",
                     and1Trunc(64), 0.6));
    v.push_back(make("170071", S::Confirmed, "clamp_umin",
                     clampUMin(32, 8, 127), 0.7));
    return v;
}

} // namespace

const char *
issueStatusName(IssueStatus status)
{
    switch (status) {
      case IssueStatus::Reported: return "Reported";
      case IssueStatus::Confirmed: return "Confirmed";
      case IssueStatus::Fixed: return "Fixed";
      case IssueStatus::Unconfirmed: return "Unconfirmed";
      case IssueStatus::Duplicate: return "Duplicate";
      case IssueStatus::Wontfix: return "Wontfix";
    }
    return "?";
}

const std::vector<MissedOptBenchmark> &
rq1Benchmarks()
{
    static const std::vector<MissedOptBenchmark> benchmarks = buildRQ1();
    return benchmarks;
}

const std::vector<MissedOptBenchmark> &
rq2Benchmarks()
{
    static const std::vector<MissedOptBenchmark> benchmarks = buildRQ2();
    return benchmarks;
}

const MissedOptBenchmark *
findBenchmark(const std::string &issue_id)
{
    for (const auto &b : rq1Benchmarks())
        if (b.issue_id == issue_id)
            return &b;
    for (const auto &b : rq2Benchmarks())
        if (b.issue_id == issue_id)
            return &b;
    return nullptr;
}

} // namespace lpo::corpus
