/**
 * @file
 * The curated missed-optimization catalogs.
 *
 * RQ1: 25 previously-reported missed peephole optimizations (paper
 * Table 2, LLVM issue IDs). RQ2: the 62 missed optimizations LPO
 * found and reported (paper Table 3, with status).
 *
 * Each benchmark is a (src, tgt) pair of IR texts instantiated from a
 * pattern family. Invariants enforced by the test suite:
 *  - tgt refines src (checked by the translation validator);
 *  - tgt is strictly better under the interestingness metrics;
 *  - the in-tree InstCombine does NOT already perform the rewrite
 *    (i.e. each benchmark is genuinely missed by "rule set A").
 */
#ifndef LPO_CORPUS_BENCHMARKS_H
#define LPO_CORPUS_BENCHMARKS_H

#include <string>
#include <vector>

namespace lpo::corpus {

/** Resolution status of a reported missed optimization (Table 3). */
enum class IssueStatus {
    Reported,    // RQ1 benchmark (pre-existing issue)
    Confirmed,
    Fixed,
    Unconfirmed,
    Duplicate,
    Wontfix,
};

const char *issueStatusName(IssueStatus status);

/** One catalog entry. */
struct MissedOptBenchmark
{
    std::string issue_id;   ///< LLVM issue number (paper tables)
    IssueStatus status;
    std::string family;     ///< pattern family id (rewrite rule key)
    std::string src_text;   ///< suboptimal function (@src)
    std::string tgt_text;   ///< expected optimal function (@tgt)
    /**
     * How hard the optimization is for an LLM to spot, in [0,1].
     * 2.0 marks patterns absent from every model's knowledge (the
     * benchmarks nothing detects in Table 2).
     */
    double difficulty;
};

/** The 25 RQ1 benchmarks (paper Table 2 rows). */
const std::vector<MissedOptBenchmark> &rq1Benchmarks();

/** The 62 RQ2 findings (paper Table 3 rows). */
const std::vector<MissedOptBenchmark> &rq2Benchmarks();

/** Look up any benchmark by issue id (both catalogs). */
const MissedOptBenchmark *findBenchmark(const std::string &issue_id);

} // namespace lpo::corpus

#endif // LPO_CORPUS_BENCHMARKS_H
