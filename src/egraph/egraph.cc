#include "egraph/egraph.h"

#include <algorithm>
#include <map>

#include "support/string_utils.h"

namespace lpo::egraph {

using ir::Instruction;
using ir::Opcode;
using ir::Value;

bool
ENode::operator==(const ENode &other) const
{
    return tag == other.tag && type == other.type && op == other.op &&
           flags == other.flags && icmp_pred == other.icmp_pred &&
           fcmp_pred == other.fcmp_pred &&
           intrinsic == other.intrinsic &&
           access_type == other.access_type && align == other.align &&
           arg_index == other.arg_index && constant == other.constant &&
           children == other.children;
}

size_t
EGraph::ENodeHash::operator()(const ENode &node) const
{
    uint64_t h = hashCombine(static_cast<uint64_t>(node.tag),
                             reinterpret_cast<uintptr_t>(node.type));
    h = hashCombine(h, static_cast<uint64_t>(node.op));
    const ir::InstFlags &f = node.flags;
    h = hashCombine(h, (uint64_t(f.nuw) << 0) | (uint64_t(f.nsw) << 1) |
                           (uint64_t(f.exact) << 2) |
                           (uint64_t(f.disjoint) << 3) |
                           (uint64_t(f.nneg) << 4) |
                           (uint64_t(f.inbounds) << 5));
    h = hashCombine(h, static_cast<uint64_t>(node.icmp_pred));
    h = hashCombine(h, static_cast<uint64_t>(node.fcmp_pred));
    h = hashCombine(h, static_cast<uint64_t>(node.intrinsic));
    h = hashCombine(h, reinterpret_cast<uintptr_t>(node.access_type));
    h = hashCombine(h, node.align);
    h = hashCombine(h, node.arg_index);
    h = hashCombine(h, reinterpret_cast<uintptr_t>(node.constant));
    for (ClassId child : node.children)
        h = hashCombine(h, child);
    return static_cast<size_t>(h);
}

bool
EGraph::supports(const ir::Function &fn)
{
    if (fn.blocks().size() != 1)
        return false;
    const Instruction *term = fn.entry()->terminator();
    if (!term || term->op() != Opcode::Ret || term->numOperands() != 1)
        return false;
    for (const auto &inst : fn.entry()->instructions()) {
        switch (inst->op()) {
          case Opcode::Store: // would break load-purity
          case Opcode::Phi:
          case Opcode::Br:
            return false;
          default:
            break;
        }
    }
    return true;
}

size_t
EGraph::insertionUpperBound(const ir::Function &fn)
{
    size_t bound = fn.numArgs();
    for (const auto &bb : fn.blocks())
        for (const auto &inst : bb->instructions())
            bound += 1 + inst->numOperands(); // node + constant leaves
    return bound;
}

ClassId
EGraph::find(ClassId id) const
{
    while (parent_[id] != id)
        id = parent_[id];
    return id;
}

void
EGraph::canonicalize(ENode &node) const
{
    for (ClassId &child : node.children)
        child = find(child);
    if (node.tag != ENode::Tag::Inst || node.children.size() != 2)
        return;
    if (node.op == Opcode::ICmp) {
        // Mirror gt/ge to lt/le (same value, swapped operands), then
        // order the symmetric predicates — one node per comparison.
        switch (node.icmp_pred) {
          case ir::ICmpPred::UGT:
            node.icmp_pred = ir::ICmpPred::ULT;
            std::swap(node.children[0], node.children[1]);
            break;
          case ir::ICmpPred::UGE:
            node.icmp_pred = ir::ICmpPred::ULE;
            std::swap(node.children[0], node.children[1]);
            break;
          case ir::ICmpPred::SGT:
            node.icmp_pred = ir::ICmpPred::SLT;
            std::swap(node.children[0], node.children[1]);
            break;
          case ir::ICmpPred::SGE:
            node.icmp_pred = ir::ICmpPred::SLE;
            std::swap(node.children[0], node.children[1]);
            break;
          case ir::ICmpPred::EQ:
          case ir::ICmpPred::NE:
            if (node.children[0] > node.children[1])
                std::swap(node.children[0], node.children[1]);
            break;
          default:
            break;
        }
        return;
    }
    if (ir::isCommutativeOpcode(node.op, node.intrinsic) &&
        node.children[0] > node.children[1])
        std::swap(node.children[0], node.children[1]);
}

const Value *
EGraph::foldNode(const ENode &node) const
{
    if (node.tag != ENode::Tag::Inst)
        return nullptr;
    // Integer scalar/splat operands only; everything else is opaque.
    std::vector<APInt> ops;
    ops.reserve(node.children.size());
    for (ClassId child : node.children) {
        const Value *c = constantOf(child);
        const ir::ConstantInt *ci = c ? ir::asConstIntOrSplat(c) : nullptr;
        if (!ci)
            return nullptr;
        ops.push_back(ci->value());
    }
    auto materialize = [&](const APInt &value) -> const Value * {
        return ir::typedConst(context_, node.type, value);
    };
    // Folds ignore poison flags: the folded constant only ever makes
    // the value more defined, and extraction always prefers the
    // constant (see DESIGN.md, "Refinement-oriented merges").
    switch (node.op) {
      case Opcode::Add: return materialize(ops[0].add(ops[1]));
      case Opcode::Sub: return materialize(ops[0].sub(ops[1]));
      case Opcode::Mul: return materialize(ops[0].mul(ops[1]));
      case Opcode::And: return materialize(ops[0].andOp(ops[1]));
      case Opcode::Or: return materialize(ops[0].orOp(ops[1]));
      case Opcode::Xor: return materialize(ops[0].xorOp(ops[1]));
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr: {
        uint64_t amount = ops[1].zext();
        if (amount >= ops[0].width())
            return nullptr; // poison; leave symbolic
        unsigned k = static_cast<unsigned>(amount);
        if (node.op == Opcode::Shl)
            return materialize(ops[0].shl(k));
        if (node.op == Opcode::LShr)
            return materialize(ops[0].lshr(k));
        return materialize(ops[0].ashr(k));
      }
      case Opcode::Trunc:
        return materialize(
            ops[0].truncTo(node.type->scalarType()->intWidth()));
      case Opcode::ZExt:
        return materialize(
            ops[0].zextTo(node.type->scalarType()->intWidth()));
      case Opcode::SExt:
        return materialize(
            ops[0].sextTo(node.type->scalarType()->intWidth()));
      case Opcode::ICmp: {
        bool bit;
        switch (node.icmp_pred) {
          case ir::ICmpPred::EQ: bit = ops[0].eq(ops[1]); break;
          case ir::ICmpPred::NE: bit = ops[0].ne(ops[1]); break;
          case ir::ICmpPred::ULT: bit = ops[0].ult(ops[1]); break;
          case ir::ICmpPred::ULE: bit = ops[0].ule(ops[1]); break;
          case ir::ICmpPred::UGT: bit = ops[0].ugt(ops[1]); break;
          case ir::ICmpPred::UGE: bit = ops[0].uge(ops[1]); break;
          case ir::ICmpPred::SLT: bit = ops[0].slt(ops[1]); break;
          case ir::ICmpPred::SLE: bit = ops[0].sle(ops[1]); break;
          case ir::ICmpPred::SGT: bit = ops[0].sgt(ops[1]); break;
          case ir::ICmpPred::SGE: bit = ops[0].sge(ops[1]); break;
          default: return nullptr;
        }
        return materialize(APInt(1, bit));
      }
      case Opcode::Call:
        if (node.children.size() != 2)
            return nullptr;
        switch (node.intrinsic) {
          case ir::Intrinsic::UMin:
            return materialize(ops[0].umin(ops[1]));
          case ir::Intrinsic::UMax:
            return materialize(ops[0].umax(ops[1]));
          case ir::Intrinsic::SMin:
            return materialize(ops[0].smin(ops[1]));
          case ir::Intrinsic::SMax:
            return materialize(ops[0].smax(ops[1]));
          default:
            return nullptr;
        }
      default:
        // div/rem (UB on bad divisors), FP, memory: never folded.
        return nullptr;
    }
}

ClassId
EGraph::freshClass(const ENode &node)
{
    ClassId id = static_cast<ClassId>(classes_.size());
    parent_.push_back(id);
    EClass cls;
    cls.nodes.push_back(node);
    cls.type = node.type;
    if (node.tag == ENode::Tag::Const)
        cls.constant = node.constant;
    classes_.push_back(std::move(cls));
    for (ClassId child : node.children)
        classes_[child].parents.push_back({node, id});
    ++nodes_created_;
    return id;
}

ClassId
EGraph::add(ENode node)
{
    canonicalize(node);
    auto it = unique_.find(node);
    if (it != unique_.end()) {
        ++unique_hits_;
        return find(it->second);
    }
    if (node.tag == ENode::Tag::Inst) {
        if (const Value *folded = foldNode(node)) {
            ClassId cc = addConstant(folded);
            unique_.emplace(std::move(node), cc);
            return cc;
        }
    }
    ClassId id = freshClass(node);
    unique_.emplace(std::move(node), id);
    return id;
}

ClassId
EGraph::addArg(unsigned index, const ir::Type *type)
{
    ENode node;
    node.tag = ENode::Tag::Arg;
    node.type = type;
    node.arg_index = index;
    return add(std::move(node));
}

ClassId
EGraph::addConstant(const Value *constant)
{
    ENode node;
    node.tag = ENode::Tag::Const;
    node.type = constant->type();
    node.constant = constant;
    return add(std::move(node));
}

std::optional<ClassId>
EGraph::addFunction(const ir::Function &fn)
{
    if (!supports(fn))
        return std::nullopt;
    std::map<const Value *, ClassId> memo;
    for (unsigned i = 0; i < fn.numArgs(); ++i)
        memo[fn.arg(i)] = addArg(i, fn.arg(i)->type());

    auto operandClass = [&](Value *v) -> std::optional<ClassId> {
        auto it = memo.find(v);
        if (it != memo.end())
            return it->second;
        if (v->isConstant()) {
            ClassId id = addConstant(v);
            memo[v] = id;
            return id;
        }
        return std::nullopt; // use before def: malformed input
    };

    for (const auto &inst : fn.entry()->instructions()) {
        if (inst->isTerminator())
            break;
        ENode node;
        node.tag = ENode::Tag::Inst;
        node.type = inst->type();
        node.op = inst->op();
        node.flags = inst->flags();
        node.icmp_pred = inst->icmpPred();
        node.fcmp_pred = inst->fcmpPred();
        node.intrinsic = inst->intrinsic();
        node.access_type = inst->accessType();
        node.align = inst->align();
        node.children.reserve(inst->numOperands());
        for (Value *operand : inst->operands()) {
            auto child = operandClass(operand);
            if (!child)
                return std::nullopt;
            node.children.push_back(*child);
        }
        memo[inst.get()] = add(std::move(node));
    }
    return operandClass(fn.entry()->terminator()->operand(0));
}

ClassId
EGraph::merge(ClassId a, ClassId b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return a;
    // Smaller id wins: fully deterministic representative choice.
    ClassId root = std::min(a, b);
    ClassId child = std::max(a, b);
    parent_[child] = root;
    EClass &rc = classes_[root];
    EClass &cc = classes_[child];
    rc.nodes.insert(rc.nodes.end(),
                    std::make_move_iterator(cc.nodes.begin()),
                    std::make_move_iterator(cc.nodes.end()));
    rc.parents.insert(rc.parents.end(),
                      std::make_move_iterator(cc.parents.begin()),
                      std::make_move_iterator(cc.parents.end()));
    if (!rc.constant)
        rc.constant = cc.constant;
    cc = EClass{};
    rebuild_worklist_.push_back(root);
    ++merge_count_;
    return root;
}

void
EGraph::rebuild()
{
    while (!rebuild_worklist_.empty()) {
        std::vector<ClassId> todo;
        todo.reserve(rebuild_worklist_.size());
        for (ClassId id : rebuild_worklist_)
            todo.push_back(find(id));
        rebuild_worklist_.clear();
        std::sort(todo.begin(), todo.end());
        todo.erase(std::unique(todo.begin(), todo.end()), todo.end());

        for (ClassId id : todo) {
            ClassId c = find(id);
            auto parents = std::move(classes_[c].parents);
            classes_[c].parents.clear();
            std::vector<std::pair<ENode, ClassId>> repaired;
            repaired.reserve(parents.size());
            for (auto &[pnode, pclass] : parents) {
                canonicalize(pnode);
                ClassId pc = find(pclass);
                auto it = unique_.find(pnode);
                if (it != unique_.end()) {
                    ClassId existing = find(it->second);
                    if (existing != pc)
                        pc = merge(existing, pc); // congruence
                    it->second = pc;
                } else {
                    unique_.emplace(pnode, pc);
                }
                // Children may have just become constant.
                if (!classes_[find(pc)].constant) {
                    if (const Value *folded = foldNode(pnode)) {
                        ClassId cc = addConstant(folded);
                        pc = merge(cc, pc);
                    }
                }
                repaired.push_back({std::move(pnode), find(pc)});
            }
            EClass &home = classes_[find(c)];
            home.parents.insert(
                home.parents.end(),
                std::make_move_iterator(repaired.begin()),
                std::make_move_iterator(repaired.end()));
        }
    }
}

std::vector<ClassId>
EGraph::canonicalClasses() const
{
    std::vector<ClassId> out;
    for (ClassId id = 0; id < classes_.size(); ++id)
        if (find(id) == id)
            out.push_back(id);
    return out;
}

size_t
EGraph::numClasses() const
{
    size_t n = 0;
    for (ClassId id = 0; id < classes_.size(); ++id)
        if (find(id) == id)
            ++n;
    return n;
}

const Value *
EGraph::constantOf(ClassId id) const
{
    return classes_[find(id)].constant;
}

const ir::Type *
EGraph::typeOf(ClassId id) const
{
    return classes_[find(id)].type;
}

} // namespace lpo::egraph
