#include "egraph/extract.h"

#include <functional>
#include <map>
#include <string>

#include "ir/builder.h"
#include "ir/printer.h"

namespace lpo::egraph {

namespace {

/** One class's current cheapest representative. */
struct Best
{
    bool valid = false;
    mca::IncrementalCost cost;
    double total_cycles = 0.0;
    ENode node;
    /** Cached nodeOrderKey(node); tie-breaks are common in a
     *  saturated graph, so don't re-render it per comparison. */
    std::string order_key;
};

/**
 * Address-free deterministic total order over candidate nodes — the
 * final extraction tie-break, so equal-cost classes pick the same
 * representative in every run and process.
 */
std::string
nodeOrderKey(const ENode &node)
{
    std::string key;
    key += std::to_string(static_cast<int>(node.tag));
    key += '|';
    key += ir::opcodeName(node.op);
    key += '|';
    key += std::to_string(static_cast<int>(node.intrinsic));
    key += '|';
    key += std::to_string(static_cast<int>(node.icmp_pred));
    key += '|';
    key += std::to_string(static_cast<int>(node.fcmp_pred));
    const ir::InstFlags &f = node.flags;
    key += '|';
    key += std::to_string((int(f.nuw) << 0) | (int(f.nsw) << 1) |
                          (int(f.exact) << 2) | (int(f.disjoint) << 3) |
                          (int(f.nneg) << 4) | (int(f.inbounds) << 5));
    key += '|';
    key += std::to_string(node.align);
    key += '|';
    key += std::to_string(node.arg_index);
    key += '|';
    key += node.type ? node.type->toString() : "";
    key += '|';
    key += node.access_type ? node.access_type->toString() : "";
    key += '|';
    if (node.constant)
        key += ir::printValueRef(node.constant);
    for (ClassId child : node.children) {
        key += ',';
        key += std::to_string(child);
    }
    return key;
}

} // namespace

std::unique_ptr<ir::Function>
extractFunction(const EGraph &graph, ClassId root,
                const ir::Function &signature, const mca::CpuModel &cpu)
{
    root = graph.find(root);
    std::vector<ClassId> class_ids = graph.canonicalClasses();
    std::map<ClassId, Best> best;

    // Bellman-style relaxation to a fixpoint. Candidate costs are
    // recomputed from the children's current bests each pass, so
    // improvements propagate upward; cycles through a class can never
    // win (a term through itself always costs strictly more).
    bool changed = true;
    while (changed) {
        changed = false;
        for (ClassId id : class_ids) {
            for (const ENode &raw : graph.cls(id).nodes) {
                ENode node = raw;
                for (ClassId &child : node.children)
                    child = graph.find(child);

                mca::IncrementalCost cost;
                bool ready = true;
                for (ClassId child : node.children) {
                    auto it = best.find(child);
                    if (it == best.end() || !it->second.valid) {
                        ready = false;
                        break;
                    }
                    cost.addOperand(it->second.cost);
                }
                if (!ready)
                    continue;
                if (node.tag == ENode::Tag::Inst) {
                    const ir::Type *operand_type =
                        node.children.empty()
                            ? nullptr
                            : graph.typeOf(node.children.front());
                    cost.addOperation(mca::operationLatency(
                        node.op, node.intrinsic, node.type, operand_type,
                        cpu));
                }
                double total = cost.totalCycles(cpu);

                Best &cur = best[id];
                bool better;
                std::string key; // computed only on a cost tie
                if (!cur.valid) {
                    better = true;
                } else if (total != cur.total_cycles) {
                    better = total < cur.total_cycles;
                } else if (cost.instruction_count !=
                           cur.cost.instruction_count) {
                    better = cost.instruction_count <
                             cur.cost.instruction_count;
                } else {
                    key = nodeOrderKey(node);
                    better = key < cur.order_key;
                }
                if (better) {
                    cur.valid = true;
                    cur.cost = cost;
                    cur.total_cycles = total;
                    cur.order_key =
                        key.empty() ? nodeOrderKey(node) : std::move(key);
                    cur.node = std::move(node);
                    changed = true;
                }
            }
        }
    }

    auto root_it = best.find(root);
    if (root_it == best.end() || !root_it->second.valid)
        return nullptr;

    auto out = std::make_unique<ir::Function>(
        graph.context(), signature.name(), signature.returnType());
    for (const auto &arg : signature.args())
        out->addArg(arg->type(), arg->name());
    ir::BasicBlock *block = out->addBlock("entry");

    // Materialize best choices; shared classes are emitted once.
    std::map<ClassId, ir::Value *> emitted;
    unsigned next_name = 0;
    bool failed = false;
    std::function<ir::Value *(ClassId)> emit =
        [&](ClassId id) -> ir::Value * {
        id = graph.find(id);
        auto hit = emitted.find(id);
        if (hit != emitted.end())
            return hit->second;
        const Best &b = best.at(id);
        ir::Value *value = nullptr;
        switch (b.node.tag) {
          case ENode::Tag::Arg:
            if (b.node.arg_index >= out->numArgs()) {
                failed = true;
                return nullptr;
            }
            value = out->arg(b.node.arg_index);
            break;
          case ENode::Tag::Const:
            // Constants are interned and immutable; operand lists
            // just carry them non-const.
            value = const_cast<ir::Value *>(b.node.constant);
            break;
          case ENode::Tag::Inst: {
            std::vector<ir::Value *> operands;
            operands.reserve(b.node.children.size());
            for (ClassId child : b.node.children) {
                ir::Value *operand = emit(child);
                if (!operand) {
                    failed = true;
                    return nullptr;
                }
                operands.push_back(operand);
            }
            auto inst = std::make_unique<ir::Instruction>(
                b.node.op, b.node.type, std::move(operands));
            inst->flags() = b.node.flags;
            inst->setICmpPred(b.node.icmp_pred);
            inst->setFCmpPred(b.node.fcmp_pred);
            inst->setIntrinsic(b.node.intrinsic);
            inst->setAccessType(b.node.access_type);
            inst->setAlign(b.node.align);
            inst->setName("e" + std::to_string(next_name++));
            value = block->append(std::move(inst));
            break;
          }
        }
        emitted[id] = value;
        return value;
    };

    ir::Value *result = emit(root);
    if (failed || !result || result->type() != signature.returnType())
        return nullptr;
    ir::Builder builder(*out, block);
    builder.ret(result);
    out->numberValues();
    return out;
}

} // namespace lpo::egraph
