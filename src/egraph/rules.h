/**
 * @file
 * Rule-driven equality saturation.
 *
 * Two rule sources feed the e-graph:
 *  - native rewrites, matched directly on e-nodes (associativity,
 *    identities, absorption, icmp/select/min-max folds; commutativity
 *    is free via the unique table's canonical operand order);
 *  - directed function-level rewrites, replayed by applying them to
 *    the original sequence and to the current best extraction and
 *    inserting the rewritten function unioned with the root: the new
 *    algebraic rule set (algebraicRules, written against the
 *    ir/pattern.h matchers) and the full llm::rewriteLibrary().
 *
 * The loop runs under explicit budgets; see DESIGN.md, "Budget
 * semantics": no rewrite is applied unless the node count stays
 * within the budget, so `EGraph::numNodes() <= max_nodes` holds
 * throughout saturation whenever the initial function fit.
 */
#ifndef LPO_EGRAPH_RULES_H
#define LPO_EGRAPH_RULES_H

#include "egraph/egraph.h"
#include "llm/rewrite_library.h"

namespace lpo::egraph {

/** Saturation budgets. */
struct SaturationLimits
{
    /** Max passes of (native rules + directed replay). */
    unsigned max_iterations = 8;
    /**
     * Ceiling on EGraph::numNodes(). Rewrites that could push the
     * graph past it are skipped (the budget must exceed the seed
     * function's own node count to allow any rewriting at all).
     */
    size_t max_nodes = 2048;
};

/** What the saturation loop did. */
struct SaturationStats
{
    unsigned iterations = 0;
    uint64_t native_applications = 0;   ///< native rewrites applied
    uint64_t replay_applications = 0;   ///< directed rewrites unioned
    bool node_budget_hit = false;       ///< a rewrite was skipped
    bool saturated = false;             ///< fixpoint before budgets
};

/**
 * The new algebraic rule set (directed, function-level, written
 * against the ir/pattern.h matchers). Sound refinements usable by any
 * directed-rewrite client; the e-graph replays them during
 * saturation.
 */
const std::vector<llm::RewriteRule> &algebraicRules();

/**
 * Saturate @p graph around @p root (the class of @p seq's returned
 * value) under @p limits. @p seq is the original sequence: directed
 * rules are replayed against it verbatim on the first pass, then
 * against the best extraction on later passes.
 */
SaturationStats saturate(EGraph &graph, ClassId root,
                         const ir::Function &seq,
                         const SaturationLimits &limits = {});

} // namespace lpo::egraph

#endif // LPO_EGRAPH_RULES_H
