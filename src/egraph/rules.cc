#include "egraph/rules.h"

#include <functional>
#include <map>
#include <optional>

#include "egraph/extract.h"
#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/pattern.h"
#include "ir/printer.h"

namespace lpo::egraph {

using ir::ICmpPred;
using ir::InstFlags;
using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

// ---------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------

const ir::ConstantInt *
classInt(const EGraph &graph, ClassId id)
{
    const Value *constant = graph.constantOf(id);
    return constant ? ir::asConstIntOrSplat(constant) : nullptr;
}

bool
isZeroClass(const EGraph &graph, ClassId id)
{
    const ir::ConstantInt *ci = classInt(graph, id);
    return ci && ci->value().isZero();
}

bool
isOneClass(const EGraph &graph, ClassId id)
{
    const ir::ConstantInt *ci = classInt(graph, id);
    return ci && ci->value().isOne();
}

bool
isAllOnesClass(const EGraph &graph, ClassId id)
{
    const ir::ConstantInt *ci = classInt(graph, id);
    return ci && ci->value().isAllOnes();
}

bool
flagless(const ENode &node)
{
    return node.flags == InstFlags{};
}

/** The class of the scalar-or-splat constant @p value of @p type. */
ClassId
typedConstClass(EGraph &graph, const Type *type, const APInt &value)
{
    return graph.addConstant(
        ir::typedConst(graph.context(), type, value));
}

ENode
binNode(Opcode op, const Type *type, ClassId a, ClassId b,
        InstFlags flags = {})
{
    ENode node;
    node.tag = ENode::Tag::Inst;
    node.op = op;
    node.type = type;
    node.flags = flags;
    node.children = {a, b};
    return node;
}

// ---------------------------------------------------------------
// Native rewrites, matched directly on e-nodes
// ---------------------------------------------------------------

/** One pending rewrite: union @p cls with the class @p rhs builds. */
struct Pending
{
    ClassId cls;
    std::function<std::optional<ClassId>(EGraph &)> rhs;
};

/** Largest number of e-nodes a native rewrite's RHS can create. */
constexpr size_t kNativeRhsSlack = 4;

void
matchNode(const EGraph &graph, ClassId c, const ENode &node,
          std::vector<Pending> &out)
{
    if (node.tag != ENode::Tag::Inst)
        return;
    auto emit = [&](std::function<std::optional<ClassId>(EGraph &)> rhs) {
        out.push_back({c, std::move(rhs)});
    };
    auto emitClass = [&](ClassId rhs) {
        emit([rhs](EGraph &) { return rhs; });
    };
    auto emitConst = [&](const Type *type, APInt value) {
        emit([type, value](EGraph &g) {
            return typedConstClass(g, type, value);
        });
    };

    const Type *type = node.type;
    const bool binary = node.children.size() == 2;
    ClassId a = binary ? node.children[0] : 0;
    ClassId b = binary ? node.children[1] : 0;

    switch (node.op) {
      case Opcode::Add: {
        if (!binary)
            break;
        // x + 0 = x (adding zero can never wrap, any flags).
        if (isZeroClass(graph, b))
            emitClass(a);
        if (isZeroClass(graph, a))
            emitClass(b);
        // (x - y) + y = x and y + (x - y) = x, flagless only.
        if (flagless(node)) {
            for (auto [lhs, rhs] : {std::pair{a, b}, std::pair{b, a}}) {
                for (const ENode &m : graph.cls(lhs).nodes) {
                    if (m.tag != ENode::Tag::Inst ||
                        m.op != Opcode::Sub || !flagless(m))
                        continue;
                    if (graph.find(m.children[1]) == graph.find(rhs))
                        emitClass(m.children[0]);
                }
            }
        }
        break;
      }
      case Opcode::Sub: {
        if (!binary)
            break;
        if (isZeroClass(graph, b))
            emitClass(a);
        if (graph.find(a) == graph.find(b) && type->isIntOrIntVector())
            emitConst(type, APInt::zero(type->scalarType()->intWidth()));
        // x - C = x + (-C): the canonical add form, feeding the
        // add-associativity chains. Flagless only (C = INT_MIN aside,
        // nsw/nuw do not translate).
        if (flagless(node)) {
            if (const ir::ConstantInt *ci = classInt(graph, b)) {
                APInt negated = ci->value().neg();
                emit([type, a, negated](EGraph &g) {
                    ClassId cc = typedConstClass(g, type, negated);
                    return g.add(binNode(Opcode::Add, type, a, cc));
                });
            }
        }
        break;
      }
      case Opcode::Mul: {
        if (!binary)
            break;
        if (isOneClass(graph, b))
            emitClass(a);
        if (isOneClass(graph, a))
            emitClass(b);
        if (isZeroClass(graph, a) || isZeroClass(graph, b))
            emitConst(type, APInt::zero(type->scalarType()->intWidth()));
        for (auto [x, cid] : {std::pair{a, b}, std::pair{b, a}}) {
            const ir::ConstantInt *ci = classInt(graph, cid);
            if (!ci)
                continue;
            const APInt &cv = ci->value();
            // x * 2^k = x << k; the wrap conditions of mul nuw/nsw and
            // shl nuw/nsw coincide — except for 2^(w-1), where the
            // constant is INT_MIN: mul nsw x, INT_MIN is defined at
            // x=1 but shl nsw x, w-1 is poison, so nsw must drop
            // there (nuw's conditions still match).
            if (cv.isPowerOf2() && !cv.isOne()) {
                unsigned k = cv.countTrailingZeros();
                InstFlags flags = node.flags;
                if (cv.isSignedMin())
                    flags.nsw = false;
                emit([type, x, k, flags](EGraph &g) {
                    ClassId kc = typedConstClass(
                        g, type,
                        APInt(type->scalarType()->intWidth(), k));
                    return g.add(
                        binNode(Opcode::Shl, type, x, kc, flags));
                });
            }
            // x * -1 = 0 - x (flagless; the overflow cases differ
            // under nuw).
            if (cv.isAllOnes() && flagless(node)) {
                emit([type, x](EGraph &g) {
                    ClassId zc = typedConstClass(
                        g, type,
                        APInt::zero(type->scalarType()->intWidth()));
                    return g.add(binNode(Opcode::Sub, type, zc, x));
                });
            }
        }
        break;
      }
      case Opcode::And: {
        if (!binary)
            break;
        if (isAllOnesClass(graph, b))
            emitClass(a);
        if (isAllOnesClass(graph, a))
            emitClass(b);
        if (isZeroClass(graph, a) || isZeroClass(graph, b))
            emitConst(type, APInt::zero(type->scalarType()->intWidth()));
        if (graph.find(a) == graph.find(b))
            emitClass(a);
        break;
      }
      case Opcode::Or: {
        if (!binary)
            break;
        if (isZeroClass(graph, b))
            emitClass(a);
        if (isZeroClass(graph, a))
            emitClass(b);
        if (isAllOnesClass(graph, a) || isAllOnesClass(graph, b))
            emitConst(type,
                      APInt::allOnes(type->scalarType()->intWidth()));
        if (graph.find(a) == graph.find(b))
            emitClass(a);
        break;
      }
      case Opcode::Xor: {
        if (!binary)
            break;
        if (isZeroClass(graph, b))
            emitClass(a);
        if (isZeroClass(graph, a))
            emitClass(b);
        if (graph.find(a) == graph.find(b) && type->isIntOrIntVector())
            emitConst(type, APInt::zero(type->scalarType()->intWidth()));
        break;
      }
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        if (binary && isZeroClass(graph, b))
            emitClass(a);
        break;
      case Opcode::UDiv:
      case Opcode::SDiv:
        if (binary && isOneClass(graph, b))
            emitClass(a);
        break;
      case Opcode::URem:
      case Opcode::SRem:
        if (binary && isOneClass(graph, b))
            emitConst(type, APInt::zero(type->scalarType()->intWidth()));
        break;
      case Opcode::ICmp: {
        if (!binary)
            break;
        // Predicates are canonicalized to eq/ne/ult/ule/slt/sle.
        std::optional<bool> bit;
        if (graph.find(a) == graph.find(b)) {
            switch (node.icmp_pred) {
              case ICmpPred::EQ: case ICmpPred::ULE: case ICmpPred::SLE:
                bit = true;
                break;
              case ICmpPred::NE: case ICmpPred::ULT: case ICmpPred::SLT:
                bit = false;
                break;
              default:
                break;
            }
        } else if (node.icmp_pred == ICmpPred::ULT) {
            if (isZeroClass(graph, b))
                bit = false; // x <u 0
            if (isAllOnesClass(graph, a))
                bit = false; // ~0 <u x
        } else if (node.icmp_pred == ICmpPred::ULE) {
            if (isAllOnesClass(graph, b))
                bit = true; // x <=u ~0
            if (isZeroClass(graph, a))
                bit = true; // 0 <=u x
        }
        if (bit)
            emitConst(type, APInt(1, *bit));
        break;
      }
      case Opcode::Select: {
        if (node.children.size() != 3)
            break;
        ClassId cond = node.children[0];
        ClassId tval = node.children[1];
        ClassId fval = node.children[2];
        if (graph.find(tval) == graph.find(fval))
            emitClass(tval);
        if (const ir::ConstantInt *ci = classInt(graph, cond))
            emitClass(ci->value().isOne() ? tval : fval);
        break;
      }
      case Opcode::Call: {
        if (!binary)
            break;
        switch (node.intrinsic) {
          case Intrinsic::UMin:
          case Intrinsic::UMax:
          case Intrinsic::SMin:
          case Intrinsic::SMax: {
            if (graph.find(a) == graph.find(b))
                emitClass(a);
            unsigned width = type->scalarType()->intWidth();
            for (auto [x, cid] : {std::pair{a, b}, std::pair{b, a}}) {
                const ir::ConstantInt *ci = classInt(graph, cid);
                if (!ci)
                    continue;
                const APInt &cv = ci->value();
                // Identity / absorbing elements of each lattice.
                switch (node.intrinsic) {
                  case Intrinsic::UMin:
                    if (cv.isAllOnes())
                        emitClass(x);
                    if (cv.isZero())
                        emitConst(type, APInt::zero(width));
                    break;
                  case Intrinsic::UMax:
                    if (cv.isZero())
                        emitClass(x);
                    if (cv.isAllOnes())
                        emitConst(type, APInt::allOnes(width));
                    break;
                  case Intrinsic::SMin:
                    if (cv == APInt::signedMax(width))
                        emitClass(x);
                    if (cv.isSignedMin())
                        emitConst(type, APInt::signedMin(width));
                    break;
                  case Intrinsic::SMax:
                    if (cv.isSignedMin())
                        emitClass(x);
                    if (cv == APInt::signedMax(width))
                        emitConst(type, APInt::signedMax(width));
                    break;
                  default:
                    break;
                }
            }
            break;
          }
          default:
            break;
        }
        break;
      }
      case Opcode::Trunc: {
        if (node.children.size() != 1 || !flagless(node))
            break;
        for (const ENode &m : graph.cls(node.children[0]).nodes) {
            if (m.tag != ENode::Tag::Inst || m.children.size() != 1)
                continue;
            // trunc(zext/sext(x)) = x when x already has the target
            // type (the extension only added bits the trunc removes).
            if ((m.op == Opcode::ZExt || m.op == Opcode::SExt) &&
                graph.typeOf(m.children[0]) == type)
                emitClass(m.children[0]);
            // trunc(trunc(x)) = trunc(x) straight to the final width.
            if (m.op == Opcode::Trunc && flagless(m)) {
                ClassId inner = m.children[0];
                emit([type, inner](EGraph &g) {
                    ENode t;
                    t.tag = ENode::Tag::Inst;
                    t.op = Opcode::Trunc;
                    t.type = type;
                    t.children = {inner};
                    return g.add(std::move(t));
                });
            }
        }
        break;
      }
      default:
        break;
    }

    // Associativity for the flagless int bitwise/arith group, both
    // rotations. (Commutativity is free via canonical operand order.)
    if (binary && flagless(node) &&
        (node.op == Opcode::Add || node.op == Opcode::Mul ||
         node.op == Opcode::And || node.op == Opcode::Or ||
         node.op == Opcode::Xor)) {
        Opcode op = node.op;
        for (const ENode &m : graph.cls(a).nodes) {
            if (m.tag != ENode::Tag::Inst || m.op != op || !flagless(m))
                continue;
            ClassId x = m.children[0], y = m.children[1];
            emit([op, type, x, y, b](EGraph &g) {
                ClassId yb = g.add(binNode(op, type, y, b));
                return g.add(binNode(op, type, x, yb));
            });
        }
        for (const ENode &m : graph.cls(b).nodes) {
            if (m.tag != ENode::Tag::Inst || m.op != op || !flagless(m))
                continue;
            ClassId x = m.children[0], y = m.children[1];
            emit([op, type, a, x, y](EGraph &g) {
                ClassId ax = g.add(binNode(op, type, a, x));
                return g.add(binNode(op, type, ax, y));
            });
        }
    }
}

/** One batch: match everywhere, then apply under the node budget. */
void
applyNativeRules(EGraph &graph, const SaturationLimits &limits,
                 SaturationStats &stats)
{
    std::vector<Pending> pending;
    for (ClassId c : graph.canonicalClasses()) {
        // Snapshot: applying rewrites invalidates node iterators.
        std::vector<ENode> nodes = graph.cls(c).nodes;
        for (ENode &node : nodes) {
            for (ClassId &child : node.children)
                child = graph.find(child);
            matchNode(graph, c, node, pending);
        }
    }
    for (Pending &p : pending) {
        if (graph.numNodes() + kNativeRhsSlack > limits.max_nodes) {
            stats.node_budget_hit = true;
            break;
        }
        std::optional<ClassId> rhs = p.rhs(graph);
        if (!rhs)
            continue;
        if (graph.find(p.cls) != graph.find(*rhs)) {
            graph.merge(p.cls, *rhs);
            ++stats.native_applications;
        }
    }
    graph.rebuild();
}

// ---------------------------------------------------------------
// The algebraic function-level rule set (ir/pattern.h matchers)
// ---------------------------------------------------------------

using ir::typedConst;
using llm::Rewriter;

ICmpPred
invertedICmpPred(ICmpPred pred)
{
    switch (pred) {
      case ICmpPred::EQ: return ICmpPred::NE;
      case ICmpPred::NE: return ICmpPred::EQ;
      case ICmpPred::ULT: return ICmpPred::UGE;
      case ICmpPred::ULE: return ICmpPred::UGT;
      case ICmpPred::UGT: return ICmpPred::ULE;
      case ICmpPred::UGE: return ICmpPred::ULT;
      case ICmpPred::SLT: return ICmpPred::SGE;
      case ICmpPred::SLE: return ICmpPred::SGT;
      case ICmpPred::SGT: return ICmpPred::SLE;
      case ICmpPred::SGE: return ICmpPred::SLT;
    }
    return ICmpPred::EQ;
}

/** xor(icmp p a b, true) -> icmp !p a b. */
std::optional<std::string>
rwXorNotCmp(const ir::Function &fn)
{
    Value *ret = llm::returnedValue(fn);
    Value *a, *b;
    if (!ret || !ir::matchBinary(ret, Opcode::Xor, &a, &b))
        return std::nullopt;
    if (!ir::isAllOnesInt(b))
        std::swap(a, b);
    if (!ir::isAllOnesInt(b))
        return std::nullopt;
    ICmpPred pred;
    Value *cx, *cy;
    if (!ir::matchICmp(a, &pred, &cx, &cy))
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().icmp(invertedICmpPred(pred), rw.take(cx),
                                rw.take(cy));
    return rw.finish(result);
}

/** lshr(shl(x, k), k) -> and(x, ~0 >> k), flagless shifts only. */
std::optional<std::string>
rwShlLshrMask(const ir::Function &fn)
{
    Value *ret = llm::returnedValue(fn);
    Value *shl_v, *k1_v;
    if (!ret || !ir::matchBinary(ret, Opcode::LShr, &shl_v, &k1_v))
        return std::nullopt;
    if (static_cast<Instruction *>(ret)->flags().exact)
        return std::nullopt;
    Value *x, *k2_v;
    if (!ir::matchBinary(shl_v, Opcode::Shl, &x, &k2_v))
        return std::nullopt;
    auto *shl = static_cast<Instruction *>(shl_v);
    if (shl->flags().nuw || shl->flags().nsw)
        return std::nullopt;
    APInt k1, k2;
    if (!ir::matchConstInt(k1_v, &k1) || !ir::matchConstInt(k2_v, &k2) ||
        !k1.eq(k2) || k1.zext() >= k1.width())
        return std::nullopt;

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    APInt mask = APInt::allOnes(k1.width())
                     .lshr(static_cast<unsigned>(k1.zext()));
    Value *result =
        rw.b().andOp(xx, typedConst(rw.ctx(), xx->type(), mask));
    return rw.finish(result);
}

/** select(icmp eq a b, a, b) -> b; select(icmp ne a b, a, b) -> a. */
std::optional<std::string>
rwSelectEqArms(const ir::Function &fn)
{
    Value *ret = llm::returnedValue(fn);
    Value *cond, *tval, *fval;
    if (!ret || !ir::matchSelect(ret, &cond, &tval, &fval))
        return std::nullopt;
    ICmpPred pred;
    Value *cx, *cy;
    if (!ir::matchICmp(cond, &pred, &cx, &cy) ||
        (pred != ICmpPred::EQ && pred != ICmpPred::NE))
        return std::nullopt;
    bool arms_match = (cx == tval && cy == fval) ||
                      (cx == fval && cy == tval);
    if (!arms_match)
        return std::nullopt;

    Rewriter rw(fn);
    // eq: both branches equal the false arm; ne: the true arm.
    Value *result = rw.take(pred == ICmpPred::EQ ? fval : tval);
    return rw.finish(result);
}

/** Absorption: or(x, and(x, y)) -> x and and(x, or(x, y)) -> x. */
std::optional<std::string>
rwAbsorb(const ir::Function &fn)
{
    Value *ret = llm::returnedValue(fn);
    if (!ret)
        return std::nullopt;
    for (auto [outer, inner] : {std::pair{Opcode::Or, Opcode::And},
                                std::pair{Opcode::And, Opcode::Or}}) {
        Value *a, *b;
        if (!ir::matchBinary(ret, outer, &a, &b))
            continue;
        for (auto [x, composite] : {std::pair{a, b}, std::pair{b, a}}) {
            Value *p, *q;
            if (!ir::matchBinary(composite, inner, &p, &q))
                continue;
            if (p != x && q != x)
                continue;
            Rewriter rw(fn);
            return rw.finish(rw.take(x));
        }
    }
    return std::nullopt;
}

/** sub(x, C) -> add(x, -C): canonical add form, flagless only. */
std::optional<std::string>
rwSubConstToAdd(const ir::Function &fn)
{
    Value *ret = llm::returnedValue(fn);
    Value *x, *c_v;
    if (!ret || !ir::matchBinary(ret, Opcode::Sub, &x, &c_v))
        return std::nullopt;
    auto *sub = static_cast<Instruction *>(ret);
    if (sub->flags().nuw || sub->flags().nsw)
        return std::nullopt;
    APInt c;
    if (!ir::matchConstInt(c_v, &c) || c.isZero())
        return std::nullopt;

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    Value *result =
        rw.b().add(xx, typedConst(rw.ctx(), xx->type(), c.neg()));
    return rw.finish(result);
}

/** zext(trunc(x)) back to x's own type -> and(x, narrow mask). */
std::optional<std::string>
rwZextTruncMask(const ir::Function &fn)
{
    Value *ret = llm::returnedValue(fn);
    Value *t_v;
    if (!ret || !ir::matchCast(ret, Opcode::ZExt, &t_v))
        return std::nullopt;
    Value *x;
    if (!ir::matchCast(t_v, Opcode::Trunc, &x))
        return std::nullopt;
    auto *trunc = static_cast<Instruction *>(t_v);
    if (trunc->flags().nuw || trunc->flags().nsw)
        return std::nullopt;
    if (ret->type() != x->type())
        return std::nullopt;
    unsigned narrow = t_v->type()->scalarType()->intWidth();
    unsigned wide = x->type()->scalarType()->intWidth();

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    APInt mask = APInt::allOnes(narrow).zextTo(wide);
    Value *result =
        rw.b().andOp(xx, typedConst(rw.ctx(), xx->type(), mask));
    return rw.finish(result);
}

// ---------------------------------------------------------------
// Directed replay + saturation loop
// ---------------------------------------------------------------

bool
sameSignature(const ir::Function &a, const ir::Function &b)
{
    if (a.returnType() != b.returnType() || a.numArgs() != b.numArgs())
        return false;
    for (unsigned i = 0; i < a.numArgs(); ++i)
        if (a.arg(i)->type() != b.arg(i)->type())
            return false;
    return true;
}

/** Apply every directed rule (algebraic set + rewrite library) to
 *  @p fn and union each parseable same-signature result with the
 *  root. Skips insertions that would exceed the node budget. */
unsigned
replayDirectedRules(EGraph &graph, ClassId root, const ir::Function &fn,
                    const SaturationLimits &limits,
                    SaturationStats &stats)
{
    unsigned applied = 0;
    auto tryRule = [&](const llm::RewriteRule &rule) {
        std::optional<std::string> text = rule.apply(fn);
        if (!text)
            return;
        auto parsed = ir::parseFunction(graph.context(), *text);
        if (!parsed.ok())
            return;
        const ir::Function &candidate = **parsed;
        if (!sameSignature(candidate, fn))
            return;
        if (graph.numNodes() + EGraph::insertionUpperBound(candidate) >
            limits.max_nodes) {
            stats.node_budget_hit = true;
            return;
        }
        std::optional<ClassId> cls = graph.addFunction(candidate);
        if (!cls)
            return;
        if (graph.find(*cls) != graph.find(root)) {
            graph.merge(*cls, root);
            ++applied;
        }
    };
    for (const llm::RewriteRule &rule : algebraicRules())
        tryRule(rule);
    for (const llm::RewriteRule &rule : llm::rewriteLibrary())
        tryRule(rule);
    graph.rebuild();
    return applied;
}

} // namespace

const std::vector<llm::RewriteRule> &
algebraicRules()
{
    static const std::vector<llm::RewriteRule> rules = [] {
        std::vector<llm::RewriteRule> out;
        out.push_back({"alg_xor_not_cmp", 0.0, rwXorNotCmp});
        out.push_back({"alg_shl_lshr_mask", 0.0, rwShlLshrMask});
        out.push_back({"alg_select_eq_arms", 0.0, rwSelectEqArms});
        out.push_back({"alg_absorb", 0.0, rwAbsorb});
        out.push_back({"alg_sub_const_add", 0.0, rwSubConstToAdd});
        out.push_back({"alg_zext_trunc_mask", 0.0, rwZextTruncMask});
        return out;
    }();
    return rules;
}

SaturationStats
saturate(EGraph &graph, ClassId root, const ir::Function &seq,
         const SaturationLimits &limits)
{
    SaturationStats stats;
    // Pass 0: replay the directed rules against the verbatim input,
    // so library patterns match the source's exact spelling before
    // any canonicalization reshapes it.
    stats.replay_applications +=
        replayDirectedRules(graph, root, seq, limits, stats);

    for (unsigned iter = 1; iter <= limits.max_iterations; ++iter) {
        stats.iterations = iter;
        uint64_t before = graph.mergeCount() + graph.numNodes();
        applyNativeRules(graph, limits, stats);
        if (auto best = extractFunction(graph, root, seq))
            stats.replay_applications +=
                replayDirectedRules(graph, root, *best, limits, stats);
        uint64_t after = graph.mergeCount() + graph.numNodes();
        if (after == before) {
            stats.saturated = !stats.node_budget_hit;
            break;
        }
        if (stats.node_budget_hit)
            break;
    }
    return stats;
}

} // namespace lpo::egraph
