/**
 * @file
 * Deterministic cost-based extraction from an e-graph.
 *
 * Selects, for every e-class reachable from the root, the cheapest
 * representative term under the mca cost model — minimizing
 * CostSummary::total_cycles, tie-breaking on instruction count and
 * then on a canonical node ordering so the result is bit-identical
 * across runs — and materializes the choice as an ir::Function with
 * the signature of the original sequence. Shared subterms are emitted
 * once (materialization memoizes per class).
 */
#ifndef LPO_EGRAPH_EXTRACT_H
#define LPO_EGRAPH_EXTRACT_H

#include <memory>

#include "egraph/egraph.h"
#include "mca/cost_model.h"

namespace lpo::egraph {

/**
 * Extract the cheapest function computing @p root.
 *
 * @p signature supplies the name, return type, and argument list of
 * the output (the original extracted sequence). Returns nullptr when
 * @p root has no finite-cost term (cannot happen for a class built
 * from a real function) or when its best term's type does not match
 * the signature's return type.
 */
std::unique_ptr<ir::Function>
extractFunction(const EGraph &graph, ClassId root,
                const ir::Function &signature,
                const mca::CpuModel &cpu = mca::btver2());

} // namespace lpo::egraph

#endif // LPO_EGRAPH_EXTRACT_H
