/**
 * @file
 * E-graph: hash-consed e-nodes over equivalence classes of terms.
 *
 * The equality-saturation proposer's data structure. An e-class is a
 * set of e-nodes proven equal; an e-node is one operator application
 * whose children are e-classes. Construction is hash-consed through a
 * unique table (the same canonicalization conventions as the
 * smt/bitblast circuit builder: commutative operand ordering, plus
 * icmp gt/ge mirrored to lt/le), merges go through a union-find, and
 * `rebuild` restores congruence closure after a batch of merges. See
 * DESIGN.md, "The e-graph" for the invariants.
 */
#ifndef LPO_EGRAPH_EGRAPH_H
#define LPO_EGRAPH_EGRAPH_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace lpo::egraph {

/** Identifier of an e-class (stable; resolve via EGraph::find). */
using ClassId = uint32_t;

/**
 * One operator application over e-class children.
 *
 * Leaves (arguments and constants) carry their own tags so a node is
 * self-contained; instruction nodes carry the full opcode payload an
 * ir::Instruction would (flags, predicates, intrinsic, access type),
 * because all of it is semantically significant.
 */
struct ENode
{
    enum class Tag : uint8_t { Arg, Const, Inst };

    Tag tag = Tag::Inst;
    /** Result type (interned; identity comparison is safe in-run). */
    const ir::Type *type = nullptr;

    // Tag::Inst payload.
    ir::Opcode op = ir::Opcode::Add;
    ir::InstFlags flags;
    ir::ICmpPred icmp_pred = ir::ICmpPred::EQ;
    ir::FCmpPred fcmp_pred = ir::FCmpPred::OEQ;
    ir::Intrinsic intrinsic = ir::Intrinsic::None;
    const ir::Type *access_type = nullptr;
    unsigned align = 0;
    std::vector<ClassId> children;

    // Tag::Arg payload.
    unsigned arg_index = 0;

    // Tag::Const payload: the interned constant (per ir::Context, so
    // pointer identity holds for hash-consing within one graph).
    const ir::Value *constant = nullptr;

    bool operator==(const ENode &other) const;
};

/** An equivalence class of e-nodes. */
struct EClass
{
    /** Member nodes in deterministic insertion order. Children may be
     *  stale (non-canonical) between rebuilds; readers canonicalize. */
    std::vector<ENode> nodes;
    /** (parent node as inserted, parent class) pairs for rebuild. */
    std::vector<std::pair<ENode, ClassId>> parents;
    /** Constant analysis: the interned constant this class is known
     *  to equal, or nullptr. */
    const ir::Value *constant = nullptr;
    /** The class's value type (all members agree). */
    const ir::Type *type = nullptr;
};

/**
 * The e-graph.
 *
 * Determinism contract: class ids are assigned in insertion order,
 * merges pick the smaller root, and no operation's result depends on
 * unordered-container iteration order — so identical add/merge
 * sequences produce identical graphs across runs and processes.
 */
class EGraph
{
  public:
    explicit EGraph(ir::Context &context) : context_(context) {}

    ir::Context &context() const { return context_; }

    /**
     * True if @p fn is representable: a single block ending in a
     * one-operand ret, with no stores (loads are pure here because
     * nothing can clobber them) and no phi/br.
     */
    static bool supports(const ir::Function &fn);

    /**
     * Insert @p fn's body, returning the class of its returned value.
     * Arguments are keyed by index, so inserting a second function
     * with the same signature shares the argument leaves (this is how
     * directed-rewrite results are unioned in). Returns nullopt when
     * the function is unsupported.
     */
    std::optional<ClassId> addFunction(const ir::Function &fn);

    /**
     * Canonicalize and hash-cons @p node. Constant-foldable nodes
     * collapse to their constant's class without creating an
     * operator node. Every call creates at most one node.
     */
    ClassId add(ENode node);

    /** The class of argument leaf @p index of type @p type. */
    ClassId addArg(unsigned index, const ir::Type *type);
    /** The class of constant leaf @p constant. */
    ClassId addConstant(const ir::Value *constant);

    /** Union two classes; returns the surviving root. Congruence is
     *  restored lazily by the next rebuild(). */
    ClassId merge(ClassId a, ClassId b);

    /** Restore congruence closure and re-canonicalize the unique
     *  table after a batch of merges. */
    void rebuild();

    /** Canonical representative of @p id. */
    ClassId find(ClassId id) const;

    /** Canonical class ids in ascending order (deterministic). */
    std::vector<ClassId> canonicalClasses() const;

    const EClass &cls(ClassId id) const { return classes_[find(id)]; }
    /** Constant the class is known to equal, or nullptr. */
    const ir::Value *constantOf(ClassId id) const;
    const ir::Type *typeOf(ClassId id) const;

    /** Total e-nodes ever created (monotone; the budget metric). */
    size_t numNodes() const { return nodes_created_; }
    /** Number of canonical classes. */
    size_t numClasses() const;
    /** Monotone merge counter (fixpoint detection for saturation). */
    uint64_t mergeCount() const { return merge_count_; }
    /** Unique-table hits (node constructions answered from the table). */
    uint64_t uniqueTableHits() const { return unique_hits_; }

    /**
     * Upper bound on the nodes addFunction(@p fn) can create — used
     * by the saturation loop to skip insertions that would blow the
     * node budget (see DESIGN.md, "Budget semantics").
     */
    static size_t insertionUpperBound(const ir::Function &fn);

  private:
    struct ENodeHash
    {
        size_t operator()(const ENode &node) const;
    };

    /** Resolve children through the union-find and apply the
     *  commutative / icmp-mirror normalizations. */
    void canonicalize(ENode &node) const;
    /** Try to fold @p node (canonical) to an interned constant. */
    const ir::Value *foldNode(const ENode &node) const;
    ClassId freshClass(const ENode &node);

    ir::Context &context_;
    std::vector<EClass> classes_;
    std::vector<ClassId> parent_;          // union-find
    std::unordered_map<ENode, ClassId, ENodeHash> unique_;
    std::vector<ClassId> rebuild_worklist_;
    size_t nodes_created_ = 0;
    uint64_t merge_count_ = 0;
    uint64_t unique_hits_ = 0;
};

} // namespace lpo::egraph

#endif // LPO_EGRAPH_EGRAPH_H
