/**
 * @file
 * Known-bits dataflow analysis over scalar integer SSA values.
 *
 * Tracks, per bit, whether it is known zero or known one, following
 * LLVM's computeKnownBits. InstCombine uses it for mask
 * simplifications and for inferring comparison results.
 */
#ifndef LPO_OPT_KNOWN_BITS_H
#define LPO_OPT_KNOWN_BITS_H

#include "ir/function.h"

namespace lpo::opt {

/** Bit-level knowledge about a value. */
struct KnownBits
{
    APInt zeros; ///< bits known to be 0
    APInt ones;  ///< bits known to be 1

    explicit KnownBits(unsigned width = 1)
        : zeros(APInt::zero(width)), ones(APInt::zero(width))
    {}

    unsigned width() const { return zeros.width(); }
    bool isConstant() const
    {
        return zeros.orOp(ones).isAllOnes();
    }
    const APInt &constant() const { return ones; }
    /** True if this knowledge proves the value nonnegative (signed). */
    bool nonNegative() const
    {
        return zeros.isSignBitSet();
    }
    bool negative() const { return ones.isSignBitSet(); }
    /** Largest unsigned value consistent with the knowledge. */
    APInt umax() const { return zeros.notOp(); }
    /** Smallest unsigned value consistent with the knowledge. */
    APInt umin() const { return ones; }
};

/**
 * Compute known bits for @p v within @p fn.
 *
 * Only scalar integers produce information; everything else returns
 * the no-knowledge element. @p depth bounds recursion.
 */
KnownBits computeKnownBits(const ir::Value *v, unsigned depth = 6);

} // namespace lpo::opt

#endif // LPO_OPT_KNOWN_BITS_H
