#include "opt/instcombine.h"

#include <cassert>
#include <memory>

#include "ir/pattern.h"
#include "opt/const_fold.h"
#include "opt/dce.h"
#include "opt/known_bits.h"

namespace lpo::opt {

using ir::Argument;
using ir::BasicBlock;
using ir::Context;
using ir::ICmpPred;
using ir::InstFlags;
using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

/** Working state for one InstCombine run. */
class Combiner
{
  public:
    Combiner(ir::Function &fn, InstCombineStats &stats)
        : fn_(fn), ctx_(fn.context()), stats_(stats)
    {}

    bool runOnce();

  private:
    /** Return a replacement for @p inst, or nullptr. May insert new
     *  instructions before position @p index in @p bb. */
    Value *simplify(Instruction *inst, BasicBlock *bb, size_t index);
    /** Mutate @p inst in place (canonicalization); true if changed. */
    bool canonicalize(Instruction *inst);

    Value *simplifyBinary(Instruction *inst, BasicBlock *bb, size_t index);
    Value *simplifyICmp(Instruction *inst);
    Value *simplifySelect(Instruction *inst, BasicBlock *bb, size_t index);
    Value *simplifyCast(Instruction *inst, BasicBlock *bb, size_t index);
    Value *simplifyIntrinsic(Instruction *inst);

    /** The matching constant (scalar or splat) for @p v's type. */
    Value *
    typedConst(const Type *type, const APInt &value)
    {
        ir::ConstantInt *scalar =
            ctx_.getInt(type->scalarType(), value);
        if (type->isVector())
            return ctx_.getSplat(type, scalar);
        return scalar;
    }

    Value *
    zeroOf(const Type *type)
    {
        return typedConst(type, APInt::zero(type->scalarType()->intWidth()));
    }

    Instruction *
    insertBefore(BasicBlock *bb, size_t index,
                 std::unique_ptr<Instruction> inst)
    {
        inst->setName("ic" + std::to_string(fresh_++));
        return bb->insert(index, std::move(inst));
    }

    Instruction *
    makeBinary(Opcode op, Value *lhs, Value *rhs, InstFlags flags = {})
    {
        auto inst = std::make_unique<Instruction>(
            op, lhs->type(), std::vector<Value *>{lhs, rhs});
        inst->flags() = flags;
        pending_ = std::move(inst);
        return pending_.get();
    }

    Instruction *
    makeIntrinsic(Intrinsic intr, Value *lhs, Value *rhs)
    {
        auto inst = std::make_unique<Instruction>(
            Opcode::Call, lhs->type(), std::vector<Value *>{lhs, rhs});
        inst->setIntrinsic(intr);
        pending_ = std::move(inst);
        return pending_.get();
    }

    ir::Function &fn_;
    Context &ctx_;
    InstCombineStats &stats_;
    unsigned fresh_ = 0;
    std::unique_ptr<Instruction> pending_;
};

bool
Combiner::canonicalize(Instruction *inst)
{
    ++stats_.pattern_checks;
    APInt c;

    // Commutative ops: constant goes right.
    if (inst->isCommutative() && inst->numOperands() == 2 &&
        inst->operand(0)->isConstant() &&
        !inst->operand(1)->isConstant()) {
        Value *tmp = inst->operand(0);
        inst->setOperand(0, inst->operand(1));
        inst->setOperand(1, tmp);
        return true;
    }

    // icmp with constant on the left: swap operands and predicate.
    if (inst->op() == Opcode::ICmp && inst->operand(0)->isConstant() &&
        !inst->operand(1)->isConstant()) {
        static const ICmpPred swapped[] = {
            ICmpPred::EQ, ICmpPred::NE, ICmpPred::ULT, ICmpPred::ULE,
            ICmpPred::UGT, ICmpPred::UGE, ICmpPred::SLT, ICmpPred::SLE,
            ICmpPred::SGT, ICmpPred::SGE,
        };
        Value *tmp = inst->operand(0);
        inst->setOperand(0, inst->operand(1));
        inst->setOperand(1, tmp);
        inst->setICmpPred(swapped[static_cast<int>(inst->icmpPred())]);
        return true;
    }

    // (sub x, C and mul x, 2^k rewrites create new instructions and
    // therefore live in simplifyBinary, not here.)

    // icmp ult x, 1 -> icmp eq x, 0 ; icmp ugt x, 0 -> icmp ne x, 0.
    if (inst->op() == Opcode::ICmp &&
        ir::matchConstInt(inst->operand(1), &c)) {
        if (inst->icmpPred() == ICmpPred::ULT && c.isOne()) {
            inst->setICmpPred(ICmpPred::EQ);
            inst->setOperand(1, zeroOf(inst->operand(0)->type()));
            return true;
        }
        if (inst->icmpPred() == ICmpPred::UGT && c.isZero()) {
            inst->setICmpPred(ICmpPred::NE);
            return true;
        }
        // Canonicalize sle/sge with constants to slt/sgt.
        unsigned width = c.width();
        if (inst->icmpPred() == ICmpPred::SLE &&
            !c.eq(APInt::signedMax(width))) {
            inst->setICmpPred(ICmpPred::SLT);
            inst->setOperand(1, typedConst(inst->operand(0)->type(),
                                           c.add(APInt::one(width))));
            return true;
        }
        if (inst->icmpPred() == ICmpPred::SGE &&
            !c.eq(APInt::signedMin(width))) {
            inst->setICmpPred(ICmpPred::SGT);
            inst->setOperand(1, typedConst(inst->operand(0)->type(),
                                           c.sub(APInt::one(width))));
            return true;
        }
        if (inst->icmpPred() == ICmpPred::ULE && !c.isAllOnes()) {
            inst->setICmpPred(ICmpPred::ULT);
            inst->setOperand(1, typedConst(inst->operand(0)->type(),
                                           c.add(APInt::one(width))));
            return true;
        }
        if (inst->icmpPred() == ICmpPred::UGE && !c.isZero()) {
            inst->setICmpPred(ICmpPred::UGT);
            inst->setOperand(1, typedConst(inst->operand(0)->type(),
                                           c.sub(APInt::one(width))));
            return true;
        }
    }
    return false;
}

Value *
Combiner::simplifyBinary(Instruction *inst, BasicBlock *bb, size_t index)
{
    Value *x = inst->operand(0);
    Value *y = inst->operand(1);
    const Type *type = inst->type();
    unsigned width = type->scalarType()->intWidth();
    APInt c;

    switch (inst->op()) {
      case Opcode::Add:
        if (ir::isZeroInt(y))
            return x;
        if (x == y && !inst->flags().nuw && !inst->flags().nsw) {
            // add x, x -> shl x, 1
            makeBinary(Opcode::Shl, x, typedConst(type, APInt::one(width)));
            return insertBefore(bb, index, std::move(pending_));
        }
        break;
      case Opcode::Sub:
        if (ir::isZeroInt(y))
            return x;
        if (x == y)
            return zeroOf(type);
        // sub x, C -> add x, -C.
        if (ir::matchConstInt(y, &c)) {
            InstFlags flags;
            flags.nuw = false;
            flags.nsw = inst->flags().nsw && !c.isSignedMin();
            makeBinary(Opcode::Add, x, typedConst(type, c.neg()), flags);
            return insertBefore(bb, index, std::move(pending_));
        }
        // sub 0, (sub 0, x) -> x.
        if (ir::isZeroInt(x)) {
            Value *ix, *iy;
            if (ir::matchBinary(y, Opcode::Sub, &ix, &iy) &&
                ir::isZeroInt(ix))
                return iy;
        }
        break;
      case Opcode::Mul:
        if (ir::isZeroInt(y))
            return zeroOf(type);
        if (ir::matchConstInt(y, &c)) {
            if (c.isOne())
                return x;
            if (c.isPowerOf2()) {
                unsigned k = c.countTrailingZeros();
                InstFlags flags;
                flags.nuw = inst->flags().nuw;
                flags.nsw = inst->flags().nsw && k + 1 < width;
                makeBinary(Opcode::Shl, x,
                           typedConst(type, APInt(width, k)), flags);
                return insertBefore(bb, index, std::move(pending_));
            }
        }
        break;
      case Opcode::UDiv:
        if (ir::matchConstInt(y, &c)) {
            if (c.isOne())
                return x;
            if (c.isPowerOf2()) {
                unsigned k = c.countTrailingZeros();
                InstFlags flags;
                flags.exact = inst->flags().exact;
                makeBinary(Opcode::LShr, x,
                           typedConst(type, APInt(width, k)), flags);
                return insertBefore(bb, index, std::move(pending_));
            }
        }
        if (x == y) // x == 0 is UB, so the quotient is always 1
            return typedConst(type, APInt::one(width));
        break;
      case Opcode::SDiv:
        if (ir::matchConstInt(y, &c) && c.isOne())
            return x;
        if (x == y)
            return typedConst(type, APInt::one(width));
        break;
      case Opcode::URem:
        if (ir::matchConstInt(y, &c)) {
            if (c.isOne())
                return zeroOf(type);
            if (c.isPowerOf2()) {
                makeBinary(Opcode::And, x,
                           typedConst(type, c.sub(APInt::one(width))));
                return insertBefore(bb, index, std::move(pending_));
            }
        }
        if (x == y)
            return zeroOf(type);
        break;
      case Opcode::SRem:
        if (ir::matchConstInt(y, &c) && c.isOne())
            return zeroOf(type);
        if (x == y)
            return zeroOf(type);
        break;
      case Opcode::And: {
        if (ir::isZeroInt(y))
            return zeroOf(type);
        if (ir::isAllOnesInt(y) || x == y)
            return x;
        // x & ~x -> 0.
        Value *nx, *nc;
        if (ir::matchBinary(y, Opcode::Xor, &nx, &nc) &&
            ir::isAllOnesInt(nc) && nx == x)
            return zeroOf(type);
        // Known-bits: mask already satisfied.
        if (ir::matchConstInt(y, &c) && type->isInt()) {
            KnownBits kb = computeKnownBits(x);
            if (kb.zeros.orOp(c).isAllOnes())
                return x; // all bits outside mask already zero
            if (c.andOp(kb.zeros.notOp()).isZero() && !c.isZero()) {
                // mask only covers known-zero bits -> result 0
                return zeroOf(type);
            }
        }
        break;
      }
      case Opcode::Or: {
        if (ir::isZeroInt(y))
            return x;
        if (ir::isAllOnesInt(y))
            return typedConst(type, APInt::allOnes(width));
        if (x == y)
            return x;
        Value *nx, *nc;
        if (ir::matchBinary(y, Opcode::Xor, &nx, &nc) &&
            ir::isAllOnesInt(nc) && nx == x)
            return typedConst(type, APInt::allOnes(width));
        break;
      }
      case Opcode::Xor: {
        if (ir::isZeroInt(y))
            return x;
        if (x == y)
            return zeroOf(type);
        // ~~x -> x.
        Value *ix, *ic;
        if (ir::isAllOnesInt(y) &&
            ir::matchBinary(x, Opcode::Xor, &ix, &ic) &&
            ir::isAllOnesInt(ic))
            return ix;
        break;
      }
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr: {
        if (ir::isZeroInt(y))
            return x;
        if (ir::isZeroInt(x))
            return zeroOf(type);
        if (ir::matchConstInt(y, &c) && c.zext() >= width)
            return ctx_.getPoison(type);
        // (lshr (shl x, C), C) -> and x, (-1 >> C) without nuw.
        Value *ix, *ic;
        if (inst->op() == Opcode::LShr && ir::matchConstInt(y, &c) &&
            ir::matchBinary(x, Opcode::Shl, &ix, &ic)) {
            APInt inner;
            if (ir::matchConstInt(ic, &inner) && inner.zext() == c.zext() &&
                c.zext() < width) {
                const auto *shl = static_cast<const Instruction *>(x);
                if (shl->flags().nuw)
                    return ix; // shl nuw round-trips exactly
                makeBinary(
                    Opcode::And, ix,
                    typedConst(type, APInt::allOnes(width).lshr(
                                         static_cast<unsigned>(c.zext()))));
                return insertBefore(bb, index, std::move(pending_));
            }
        }
        break;
      }
      default:
        break;
    }
    return nullptr;
}

Value *
Combiner::simplifyICmp(Instruction *inst)
{
    Value *x = inst->operand(0);
    Value *y = inst->operand(1);
    const Type *type = inst->type(); // i1 or <N x i1>
    unsigned width = x->type()->scalarType()->intWidth();
    APInt c;

    auto boolConst = [&](bool b) -> Value * {
        ir::ConstantInt *scalar = ctx_.getBool(b);
        if (type->isVector())
            return ctx_.getSplat(type, scalar);
        return scalar;
    };

    if (x == y) {
        switch (inst->icmpPred()) {
          case ICmpPred::EQ: case ICmpPred::ULE: case ICmpPred::UGE:
          case ICmpPred::SLE: case ICmpPred::SGE:
            return boolConst(true);
          default:
            return boolConst(false);
        }
    }
    if (ir::matchConstInt(y, &c)) {
        switch (inst->icmpPred()) {
          case ICmpPred::ULT:
            if (c.isZero())
                return boolConst(false);
            break;
          case ICmpPred::UGT:
            if (c.isAllOnes())
                return boolConst(false);
            break;
          case ICmpPred::ULE:
            if (c.isAllOnes())
                return boolConst(true);
            break;
          case ICmpPred::UGE:
            if (c.isZero())
                return boolConst(true);
            break;
          case ICmpPred::SLT:
            if (c.eq(APInt::signedMin(width)))
                return boolConst(false);
            break;
          case ICmpPred::SGT:
            if (c.eq(APInt::signedMax(width)))
                return boolConst(false);
            break;
          case ICmpPred::SLE:
            if (c.eq(APInt::signedMax(width)))
                return boolConst(true);
            break;
          case ICmpPred::SGE:
            if (c.eq(APInt::signedMin(width)))
                return boolConst(true);
            break;
          default:
            break;
        }
        // Known-bits based comparison folding (scalars only).
        if (x->type()->isInt()) {
            KnownBits kb = computeKnownBits(x);
            if (kb.isConstant()) {
                // Fully known: fold exactly.
                APInt k = kb.constant();
                bool r = false;
                switch (inst->icmpPred()) {
                  case ICmpPred::EQ: r = k.eq(c); break;
                  case ICmpPred::NE: r = k.ne(c); break;
                  case ICmpPred::UGT: r = k.ugt(c); break;
                  case ICmpPred::UGE: r = k.uge(c); break;
                  case ICmpPred::ULT: r = k.ult(c); break;
                  case ICmpPred::ULE: r = k.ule(c); break;
                  case ICmpPred::SGT: r = k.sgt(c); break;
                  case ICmpPred::SGE: r = k.sge(c); break;
                  case ICmpPred::SLT: r = k.slt(c); break;
                  case ICmpPred::SLE: r = k.sle(c); break;
                }
                return boolConst(r);
            }
            if (inst->icmpPred() == ICmpPred::ULT && kb.umax().ult(c))
                return boolConst(true);
            if (inst->icmpPred() == ICmpPred::UGT && kb.umax().ule(c))
                return boolConst(false);
            if (inst->icmpPred() == ICmpPred::EQ &&
                !c.andOp(kb.zeros).isZero())
                return boolConst(false); // constant sets a known-0 bit
            if (inst->icmpPred() == ICmpPred::NE &&
                !c.andOp(kb.zeros).isZero())
                return boolConst(true);
            if (inst->icmpPred() == ICmpPred::SLT && c.isZero() &&
                kb.nonNegative())
                return boolConst(false);
            if (inst->icmpPred() == ICmpPred::SGT && c.isAllOnes() &&
                kb.nonNegative())
                return boolConst(true);
        }
    }
    return nullptr;
}

Value *
Combiner::simplifySelect(Instruction *inst, BasicBlock *bb, size_t index)
{
    Value *cond = inst->operand(0);
    Value *tval = inst->operand(1);
    Value *fval = inst->operand(2);
    APInt c;

    if (tval == fval)
        return tval;
    if (cond->type()->isBool() && ir::matchConstInt(cond, &c))
        return c.isZero() ? fval : tval;
    if (inst->type()->isBool()) {
        APInt tc, fc;
        if (ir::matchConstInt(tval, &tc) && ir::matchConstInt(fval, &fc)) {
            if (tc.isOne() && fc.isZero())
                return cond;
            if (tc.isZero() && fc.isOne()) {
                makeBinary(Opcode::Xor, cond, ctx_.getBool(true));
                return insertBefore(bb, index, std::move(pending_));
            }
        }
    }

    // select (icmp eq x, C), C, x -> x ; select (icmp ne x, C), x, C -> x.
    ICmpPred pred;
    Value *cx, *cy;
    if (cond->type()->isBool() && ir::matchICmp(cond, &pred, &cx, &cy)) {
        if (pred == ICmpPred::EQ && cx == fval && cy == tval)
            return fval;
        if (pred == ICmpPred::NE && cx == tval && cy == fval)
            return tval;

        // Select-of-compare to min/max canonicalization (SPF):
        // select (icmp pred x, y), x, y.
        if (cx == tval && cy == fval) {
            switch (pred) {
              case ICmpPred::ULT: case ICmpPred::ULE:
                makeIntrinsic(Intrinsic::UMin, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              case ICmpPred::UGT: case ICmpPred::UGE:
                makeIntrinsic(Intrinsic::UMax, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              case ICmpPred::SLT: case ICmpPred::SLE:
                makeIntrinsic(Intrinsic::SMin, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              case ICmpPred::SGT: case ICmpPred::SGE:
                makeIntrinsic(Intrinsic::SMax, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              default:
                break;
            }
        }
        // Mirrored arms: select (icmp pred x, y), y, x.
        if (cx == fval && cy == tval) {
            switch (pred) {
              case ICmpPred::ULT: case ICmpPred::ULE:
                makeIntrinsic(Intrinsic::UMax, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              case ICmpPred::UGT: case ICmpPred::UGE:
                makeIntrinsic(Intrinsic::UMin, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              case ICmpPred::SLT: case ICmpPred::SLE:
                makeIntrinsic(Intrinsic::SMax, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              case ICmpPred::SGT: case ICmpPred::SGE:
                makeIntrinsic(Intrinsic::SMin, tval, fval);
                return insertBefore(bb, index, std::move(pending_));
              default:
                break;
            }
        }
    }
    return nullptr;
}

Value *
Combiner::simplifyCast(Instruction *inst, BasicBlock *bb, size_t index)
{
    Value *src = inst->operand(0);
    const Type *dst_type = inst->type();
    unsigned dst = dst_type->scalarType()->intWidth();

    Value *inner;
    // trunc (zext x) / trunc (sext x).
    if (inst->op() == Opcode::Trunc) {
        for (Opcode ext : {Opcode::ZExt, Opcode::SExt}) {
            if (ir::matchCast(src, ext, &inner)) {
                unsigned inner_width =
                    inner->type()->scalarType()->intWidth();
                if (dst == inner_width)
                    return inner;
                if (dst < inner_width) {
                    auto cast = std::make_unique<Instruction>(
                        Opcode::Trunc, dst_type,
                        std::vector<Value *>{inner});
                    pending_ = std::move(cast);
                    return insertBefore(bb, index, std::move(pending_));
                }
                auto cast = std::make_unique<Instruction>(
                    ext, dst_type, std::vector<Value *>{inner});
                pending_ = std::move(cast);
                return insertBefore(bb, index, std::move(pending_));
            }
        }
    }
    // zext (zext x) -> zext x ; sext (sext x) -> sext x;
    // sext (zext x) -> zext x.
    if (inst->op() == Opcode::ZExt || inst->op() == Opcode::SExt) {
        if (ir::matchCast(src, Opcode::ZExt, &inner)) {
            auto cast = std::make_unique<Instruction>(
                Opcode::ZExt, dst_type, std::vector<Value *>{inner});
            pending_ = std::move(cast);
            return insertBefore(bb, index, std::move(pending_));
        }
        if (inst->op() == Opcode::SExt &&
            ir::matchCast(src, Opcode::SExt, &inner)) {
            auto cast = std::make_unique<Instruction>(
                Opcode::SExt, dst_type, std::vector<Value *>{inner});
            pending_ = std::move(cast);
            return insertBefore(bb, index, std::move(pending_));
        }
        // sext x -> zext nneg x when x is known nonnegative.
        if (inst->op() == Opcode::SExt && src->type()->isInt()) {
            KnownBits kb = computeKnownBits(src);
            if (kb.nonNegative()) {
                auto cast = std::make_unique<Instruction>(
                    Opcode::ZExt, dst_type, std::vector<Value *>{src});
                cast->flags().nneg = true;
                pending_ = std::move(cast);
                return insertBefore(bb, index, std::move(pending_));
            }
        }
    }
    return nullptr;
}

Value *
Combiner::simplifyIntrinsic(Instruction *inst)
{
    if (inst->numOperands() < 1)
        return nullptr;
    Value *x = inst->operand(0);
    Value *y = inst->numOperands() > 1 ? inst->operand(1) : nullptr;
    const Type *type = inst->type();
    if (!type->isIntOrIntVector())
        return nullptr;
    unsigned width = type->scalarType()->intWidth();
    APInt c;

    switch (inst->intrinsic()) {
      case Intrinsic::UMin:
        if (x == y)
            return x;
        if (ir::matchConstInt(y, &c)) {
            if (c.isZero())
                return zeroOf(type);
            if (c.isAllOnes())
                return x;
            // umin(umin(x, C1), C2) -> umin(x, min(C1, C2)).
            Value *ix, *iy;
            if (ir::matchIntrinsic2(x, Intrinsic::UMin, &ix, &iy)) {
                APInt inner;
                if (ir::matchConstInt(iy, &inner)) {
                    static_cast<Instruction *>(inst)->setOperand(0, ix);
                    inst->setOperand(1,
                                     typedConst(type, inner.umin(c)));
                    // handled as in-place mutation; report via pointer
                    return inst;
                }
            }
        }
        break;
      case Intrinsic::UMax:
        if (x == y)
            return x;
        if (ir::matchConstInt(y, &c)) {
            if (c.isZero())
                return x;
            if (c.isAllOnes())
                return typedConst(type, APInt::allOnes(width));
            Value *ix, *iy;
            if (ir::matchIntrinsic2(x, Intrinsic::UMax, &ix, &iy)) {
                APInt inner;
                if (ir::matchConstInt(iy, &inner)) {
                    inst->setOperand(0, ix);
                    inst->setOperand(1,
                                     typedConst(type, inner.umax(c)));
                    return inst;
                }
            }
        }
        break;
      case Intrinsic::SMin:
        if (x == y)
            return x;
        if (ir::matchConstInt(y, &c)) {
            if (c.eq(APInt::signedMin(width)))
                return typedConst(type, c);
            if (c.eq(APInt::signedMax(width)))
                return x;
        }
        break;
      case Intrinsic::SMax:
        if (x == y)
            return x;
        if (ir::matchConstInt(y, &c)) {
            if (c.eq(APInt::signedMin(width)))
                return x;
            if (c.eq(APInt::signedMax(width)))
                return typedConst(type, c);
        }
        break;
      case Intrinsic::Abs: {
        // abs(abs x) -> abs x ; abs of known-nonnegative -> x.
        Value *ix, *iy;
        if (ir::matchIntrinsic2(x, Intrinsic::Abs, &ix, &iy))
            return x;
        if (x->type()->isInt()) {
            KnownBits kb = computeKnownBits(x);
            if (kb.nonNegative())
                return x;
        }
        break;
      }
      default:
        break;
    }
    return nullptr;
}

Value *
Combiner::simplify(Instruction *inst, BasicBlock *bb, size_t index)
{
    ++stats_.pattern_checks;
    if (Value *folded = foldConstant(inst, ctx_))
        return folded;
    if (inst->isIntBinaryOp())
        return simplifyBinary(inst, bb, index);
    switch (inst->op()) {
      case Opcode::ICmp:
        return simplifyICmp(inst);
      case Opcode::Select:
        return simplifySelect(inst, bb, index);
      case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt:
        return simplifyCast(inst, bb, index);
      case Opcode::Call:
        return simplifyIntrinsic(inst);
      case Opcode::Freeze: {
        Value *src = inst->operand(0);
        if (src->isConstant() &&
            src->kind() != Value::Kind::Poison)
            return src;
        Value *ix;
        if (ir::matchCast(src, Opcode::Trunc, &ix))
            return nullptr;
        if (src->kind() == Value::Kind::Instruction &&
            static_cast<Instruction *>(src)->op() == Opcode::Freeze)
            return src;
        return nullptr;
      }
      default:
        return nullptr;
    }
}

bool
Combiner::runOnce()
{
    bool changed = false;
    for (const auto &bb : fn_.blocks()) {
        for (size_t i = 0; i < bb->size(); ++i) {
            Instruction *inst = bb->at(i);
            if (inst->isTerminator() || inst->op() == Opcode::Phi)
                continue;
            if (canonicalize(inst)) {
                changed = true;
                ++stats_.rewrites;
            }
            size_t size_before = bb->size();
            Value *replacement = simplify(inst, bb.get(), i);
            if (!replacement)
                continue;
            ++stats_.rewrites;
            changed = true;
            if (replacement == inst)
                continue; // in-place mutation
            // Inserted instructions shift the current index.
            size_t shift = bb->size() - size_before;
            fn_.replaceAllUses(inst, replacement);
            bb->erase(i + shift);
            // Re-examine from the same index next iteration.
            --i;
        }
    }
    return changed;
}

} // namespace

bool
runInstCombine(ir::Function &fn, InstCombineStats *stats)
{
    InstCombineStats local;
    InstCombineStats &s = stats ? *stats : local;
    bool any = false;
    for (unsigned iter = 0; iter < 32; ++iter) {
        ++s.iterations;
        bool changed = Combiner(fn, s).runOnce();
        changed |= removeDeadInstructions(fn) > 0;
        if (!changed)
            break;
        any = true;
    }
    return any;
}

} // namespace lpo::opt
