#include "opt/opt_driver.h"

#include "ir/ir_verifier.h"
#include "ir/parser.h"
#include "opt/pass_manager.h"

namespace lpo::opt {

OptResult
runOpt(ir::Context &context, const std::string &text)
{
    OptResult result;
    auto parsed = ir::parseFunction(context, text);
    if (!parsed) {
        result.failed = true;
        result.error_message = "error: " + parsed.error().toString();
        return result;
    }
    result.function = parsed.take();
    auto issues = ir::verifyFunction(*result.function);
    if (!issues.empty()) {
        result.failed = true;
        result.error_message = "error: " + issues.front().message;
        result.function.reset();
        return result;
    }
    PassManager pipeline = PassManager::standardPipeline();
    result.changed = pipeline.run(*result.function);
    result.function->numberValues();
    return result;
}

std::unique_ptr<ir::Function>
optimizeFunction(const ir::Function &fn)
{
    std::unique_ptr<ir::Function> copy = fn.clone(fn.name());
    PassManager::standardPipeline().run(*copy);
    copy->numberValues();
    return copy;
}

} // namespace lpo::opt
