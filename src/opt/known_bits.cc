#include "opt/known_bits.h"

#include "ir/pattern.h"

namespace lpo::opt {

using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Value;

namespace {

KnownBits
addKnownBits(const KnownBits &a, const KnownBits &b)
{
    // Bitwise carry propagation: a bit of the sum is known when both
    // operand bits and the incoming carry are known.
    unsigned width = a.width();
    KnownBits out(width);
    int carry = 0; // 0 = known 0, 1 = known 1, -1 = unknown
    for (unsigned i = 0; i < width; ++i) {
        uint64_t mask = uint64_t(1) << i;
        bool az = a.zeros.zext() & mask;
        bool ao = a.ones.zext() & mask;
        bool bz = b.zeros.zext() & mask;
        bool bo = b.ones.zext() & mask;
        if ((az || ao) && (bz || bo) && carry != -1) {
            int abit = ao ? 1 : 0;
            int bbit = bo ? 1 : 0;
            int sum = abit + bbit + carry;
            if (sum & 1)
                out.ones = out.ones.orOp(APInt(width, mask));
            else
                out.zeros = out.zeros.orOp(APInt(width, mask));
            carry = sum >> 1;
        } else {
            // Carry may still be known zero: if both bits and carry
            // are known zero-ish... conservatively unknown from here.
            carry = -1;
        }
    }
    return out;
}

} // namespace

KnownBits
computeKnownBits(const Value *v, unsigned depth)
{
    const ir::Type *type = v->type();
    if (!type->isInt())
        return KnownBits(1);
    unsigned width = type->intWidth();
    KnownBits out(width);

    APInt c;
    if (ir::matchConstInt(v, &c) && !type->isVector()) {
        out.ones = c;
        out.zeros = c.notOp();
        return out;
    }
    if (v->kind() != Value::Kind::Instruction || depth == 0)
        return out;

    const auto *inst = static_cast<const Instruction *>(v);
    auto known = [&](unsigned i) {
        return computeKnownBits(inst->operand(i), depth - 1);
    };

    switch (inst->op()) {
      case Opcode::And: {
        KnownBits a = known(0), b = known(1);
        out.ones = a.ones.andOp(b.ones);
        out.zeros = a.zeros.orOp(b.zeros);
        return out;
      }
      case Opcode::Or: {
        KnownBits a = known(0), b = known(1);
        out.ones = a.ones.orOp(b.ones);
        out.zeros = a.zeros.andOp(b.zeros);
        return out;
      }
      case Opcode::Xor: {
        KnownBits a = known(0), b = known(1);
        out.ones = a.ones.andOp(b.zeros).orOp(a.zeros.andOp(b.ones));
        out.zeros = a.zeros.andOp(b.zeros).orOp(a.ones.andOp(b.ones));
        return out;
      }
      case Opcode::Add:
        return addKnownBits(known(0), known(1));
      case Opcode::Shl: {
        APInt amount;
        if (ir::matchConstInt(inst->operand(1), &amount) &&
            amount.zext() < width) {
            KnownBits a = known(0);
            unsigned s = static_cast<unsigned>(amount.zext());
            out.ones = a.ones.shl(s);
            // Shifted-in low bits are known zero.
            out.zeros = a.zeros.shl(s);
            if (s > 0)
                out.zeros = out.zeros.orOp(
                    APInt(width, (uint64_t(1) << s) - 1));
            return out;
        }
        return out;
      }
      case Opcode::LShr: {
        APInt amount;
        if (ir::matchConstInt(inst->operand(1), &amount) &&
            amount.zext() < width) {
            KnownBits a = known(0);
            unsigned s = static_cast<unsigned>(amount.zext());
            out.ones = a.ones.lshr(s);
            out.zeros = a.zeros.lshr(s);
            // High s bits become zero.
            if (s > 0)
                out.zeros = out.zeros.orOp(
                    APInt::allOnes(width).shl(width - s));
            return out;
        }
        return out;
      }
      case Opcode::AShr: {
        APInt amount;
        if (ir::matchConstInt(inst->operand(1), &amount) &&
            amount.zext() < width) {
            KnownBits a = known(0);
            unsigned s = static_cast<unsigned>(amount.zext());
            out.ones = a.ones.ashr(s);
            out.zeros = a.zeros.ashr(s);
            return out;
        }
        return out;
      }
      case Opcode::ZExt: {
        KnownBits a = computeKnownBits(inst->operand(0), depth - 1);
        unsigned src_width = a.width();
        out.ones = a.ones.zextTo(width);
        out.zeros = a.zeros.zextTo(width).orOp(
            APInt::allOnes(width).shl(src_width));
        return out;
      }
      case Opcode::SExt: {
        KnownBits a = computeKnownBits(inst->operand(0), depth - 1);
        out.ones = a.ones.sextTo(width);
        out.zeros = a.zeros.sextTo(width);
        return out;
      }
      case Opcode::Trunc: {
        KnownBits a = computeKnownBits(inst->operand(0), depth - 1);
        out.ones = a.ones.truncTo(width);
        out.zeros = a.zeros.truncTo(width);
        return out;
      }
      case Opcode::URem: {
        APInt divisor;
        if (ir::matchConstInt(inst->operand(1), &divisor) &&
            divisor.isPowerOf2()) {
            // x % 2^k keeps only the low k bits.
            out.zeros = APInt(width, ~(divisor.zext() - 1));
            return out;
        }
        return out;
      }
      case Opcode::Select: {
        KnownBits a = computeKnownBits(inst->operand(1), depth - 1);
        KnownBits b = computeKnownBits(inst->operand(2), depth - 1);
        out.ones = a.ones.andOp(b.ones);
        out.zeros = a.zeros.andOp(b.zeros);
        return out;
      }
      case Opcode::Call: {
        switch (inst->intrinsic()) {
          case Intrinsic::UMin: {
            // Result <= min of operand umaxes: high zero bits union.
            KnownBits a = known(0), b = known(1);
            out.zeros = a.zeros.andOp(b.zeros);
            // Leading zeros: result has at least as many as the
            // operand with more known leading zeros... conservative:
            unsigned lz = std::max(a.umax().countLeadingZeros(),
                                   b.umax().countLeadingZeros());
            if (lz > 0 && lz < width)
                out.zeros = out.zeros.orOp(
                    APInt::allOnes(width).shl(width - lz));
            else if (lz >= width)
                out.zeros = APInt::allOnes(width);
            return out;
          }
          case Intrinsic::CtPop:
          case Intrinsic::CtLz:
          case Intrinsic::CtTz: {
            // Result <= width: all bits above log2(width) are zero.
            unsigned meaningful = 1;
            while ((1u << meaningful) < width + 1)
                ++meaningful;
            if (meaningful < width)
                out.zeros = APInt::allOnes(width).shl(meaningful);
            return out;
          }
          default:
            return out;
        }
      }
      default:
        return out;
    }
}

} // namespace lpo::opt
