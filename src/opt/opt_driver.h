/**
 * @file
 * The "opt" front end: text in, optimized text (or error message) out.
 *
 * This is the component LPO invokes at step 3 of the workflow: it
 * syntax-checks the LLM candidate, and canonicalizes / further
 * optimizes syntactically valid functions with the -O3-style pipeline
 * (paper §3.3, "Preprocessing with opt").
 */
#ifndef LPO_OPT_OPT_DRIVER_H
#define LPO_OPT_OPT_DRIVER_H

#include <memory>
#include <string>

#include "ir/module.h"

namespace lpo::opt {

/** Result of running the opt driver on a candidate text. */
struct OptResult
{
    bool failed = false;
    /** opt-style error message (only when failed). */
    std::string error_message;
    /** The optimized function (only when !failed). */
    std::unique_ptr<ir::Function> function;
    /** Whether the pipeline changed the input at all. */
    bool changed = false;
};

/** Parse @p text as a single function and run the standard pipeline. */
OptResult runOpt(ir::Context &context, const std::string &text);

/** Run the standard pipeline on an already-parsed function (clones). */
std::unique_ptr<ir::Function> optimizeFunction(const ir::Function &fn);

} // namespace lpo::opt

#endif // LPO_OPT_OPT_DRIVER_H
