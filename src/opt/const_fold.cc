#include "opt/const_fold.h"

#include "interp/interp.h"

namespace lpo::opt {

using ir::Instruction;
using ir::Opcode;
using ir::Value;

ir::Value *
foldConstant(const Instruction *inst, ir::Context &context)
{
    switch (inst->op()) {
      case Opcode::Load: case Opcode::Store: case Opcode::Gep:
      case Opcode::Phi: case Opcode::Br: case Opcode::Ret:
        return nullptr;
      default:
        break;
    }
    for (const Value *operand : inst->operands())
        if (!operand->isConstant())
            return nullptr;

    // Evaluate by wrapping the instruction in a zero-argument function
    // and running the interpreter; this keeps folding semantics
    // identical to execution semantics by construction.
    ir::Function probe(context, "const.fold", inst->type());
    ir::BasicBlock *block = probe.addBlock("entry");
    auto copy = std::make_unique<Instruction>(
        inst->op(), inst->type(),
        std::vector<Value *>(inst->operands()));
    copy->flags() = inst->flags();
    copy->setICmpPred(inst->icmpPred());
    copy->setFCmpPred(inst->fcmpPred());
    copy->setIntrinsic(inst->intrinsic());
    copy->setAccessType(inst->accessType());
    copy->setName("v");
    Instruction *placed = block->append(std::move(copy));
    auto ret = std::make_unique<Instruction>(
        Opcode::Ret, context.types().voidTy(),
        std::vector<Value *>{placed});
    block->append(std::move(ret));

    interp::ExecutionResult run = interp::execute(probe, {});
    if (run.ub || !run.ret)
        return nullptr; // do not fold immediate UB away

    const ir::Type *type = inst->type();
    const ir::Type *scalar = type->scalarType();
    auto lane_constant = [&](const interp::LaneValue &lane) -> Value * {
        if (lane.poison)
            return context.getPoison(scalar);
        if (lane.is_fp)
            return context.getFP(lane.fp);
        return context.getInt(scalar, lane.bits);
    };

    if (!type->isVector())
        return lane_constant(run.ret->lanes[0]);

    std::vector<const Value *> elems;
    for (const interp::LaneValue &lane : run.ret->lanes)
        elems.push_back(lane_constant(lane));
    return context.getVector(type, std::move(elems));
}

} // namespace lpo::opt
