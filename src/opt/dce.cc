#include "opt/dce.h"

namespace lpo::opt {

unsigned
removeDeadInstructions(ir::Function &fn)
{
    unsigned removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        auto uses = fn.computeUseCounts();
        for (const auto &bb : fn.blocks()) {
            for (size_t i = bb->size(); i > 0; --i) {
                ir::Instruction *inst = bb->at(i - 1);
                if (inst->hasSideEffects() || inst->type()->isVoid())
                    continue;
                if (uses[inst] == 0) {
                    bb->erase(i - 1);
                    ++removed;
                    changed = true;
                }
            }
            if (changed)
                break; // recompute use counts
        }
    }
    return removed;
}

} // namespace lpo::opt
