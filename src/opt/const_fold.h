/**
 * @file
 * Constant folding for instructions whose operands are all constant.
 */
#ifndef LPO_OPT_CONST_FOLD_H
#define LPO_OPT_CONST_FOLD_H

#include "ir/function.h"

namespace lpo::opt {

/**
 * Fold @p inst if every operand is constant.
 *
 * @returns the folded constant (possibly poison), or nullptr when the
 * instruction cannot be folded (non-constant operands, memory ops, or
 * folds that would hide immediate UB such as division by zero).
 */
ir::Value *foldConstant(const ir::Instruction *inst, ir::Context &context);

} // namespace lpo::opt

#endif // LPO_OPT_CONST_FOLD_H
