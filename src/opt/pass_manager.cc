#include "opt/pass_manager.h"

#include "opt/dce.h"
#include "opt/instcombine.h"

namespace lpo::opt {

bool
PassManager::run(ir::Function &fn, bool fixpoint) const
{
    bool any = false;
    for (unsigned round = 0; round < (fixpoint ? 16u : 1u); ++round) {
        bool changed = false;
        for (const FunctionPass &pass : passes_)
            changed |= pass.run(fn);
        any |= changed;
        if (!changed)
            break;
    }
    return any;
}

PassManager
PassManager::standardPipeline()
{
    PassManager pm;
    pm.addPass({"instcombine",
                [](ir::Function &fn) { return runInstCombine(fn); }});
    pm.addPass({"dce", [](ir::Function &fn) {
                    return removeDeadInstructions(fn) > 0;
                }});
    return pm;
}

} // namespace lpo::opt
