/**
 * @file
 * Dead code elimination.
 */
#ifndef LPO_OPT_DCE_H
#define LPO_OPT_DCE_H

#include "ir/function.h"

namespace lpo::opt {

/**
 * Remove instructions whose results are unused and that have no side
 * effects. Iterates to a fixpoint. @returns number of removals.
 */
unsigned removeDeadInstructions(ir::Function &fn);

} // namespace lpo::opt

#endif // LPO_OPT_DCE_H
