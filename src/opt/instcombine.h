/**
 * @file
 * InstCombine: the peephole optimization pass ("rule set A").
 *
 * A worklist-driven pattern rewriter modeled on LLVM's InstCombine.
 * It canonicalizes (constants to the right-hand side, multiplies by
 * powers of two to shifts, strict comparisons against adjacent
 * constants to eq/ne, select-of-compare to min/max intrinsics) and
 * simplifies (identities, absorbing elements, known-bits masks,
 * cast/shift/min-max folds, constant folding).
 *
 * Deliberately absent are the "rule set B" patterns catalogued in
 * corpus/benchmarks.cc: those are the missed optimizations the LPO
 * pipeline is expected to discover, exactly as the 25 GitHub issues
 * are missed by LLVM's InstCombine.
 */
#ifndef LPO_OPT_INSTCOMBINE_H
#define LPO_OPT_INSTCOMBINE_H

#include "ir/function.h"

namespace lpo::opt {

/** Counters reported by the pass (used by Table 5's cost model). */
struct InstCombineStats
{
    unsigned iterations = 0;    ///< fixpoint sweeps executed
    unsigned pattern_checks = 0; ///< rule match attempts (compile cost)
    unsigned rewrites = 0;       ///< successful replacements
};

/**
 * Run InstCombine on @p fn to a fixpoint.
 * @returns true if the function changed.
 */
bool runInstCombine(ir::Function &fn, InstCombineStats *stats = nullptr);

} // namespace lpo::opt

#endif // LPO_OPT_INSTCOMBINE_H
