/**
 * @file
 * A minimal pass manager composing function passes into pipelines.
 */
#ifndef LPO_OPT_PASS_MANAGER_H
#define LPO_OPT_PASS_MANAGER_H

#include <functional>
#include <string>
#include <vector>

#include "ir/function.h"

namespace lpo::opt {

/** A named function transformation; returns true if it changed IR. */
struct FunctionPass
{
    std::string name;
    std::function<bool(ir::Function &)> run;
};

/** Runs a sequence of passes, optionally to a fixpoint. */
class PassManager
{
  public:
    void addPass(FunctionPass pass) { passes_.push_back(std::move(pass)); }

    /**
     * Run all passes over @p fn.
     * @param fixpoint repeat the pipeline until nothing changes
     *        (bounded at 16 rounds).
     * @returns true if any pass changed the function.
     */
    bool run(ir::Function &fn, bool fixpoint = true) const;

    /** The standard -O3-style pipeline: instcombine + dce. */
    static PassManager standardPipeline();

  private:
    std::vector<FunctionPass> passes_;
};

} // namespace lpo::opt

#endif // LPO_OPT_PASS_MANAGER_H
