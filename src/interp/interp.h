/**
 * @file
 * Concrete IR interpreter with poison / immediate-UB semantics.
 *
 * This is the executable semantics of the IR: the bounded
 * translation-validation backend runs it on concrete inputs, and the
 * SAT encoder's correctness tests cross-check against it. The rules
 * follow the LLVM LangRef:
 *
 *  - arithmetic is modular; nsw/nuw/exact/disjoint/nneg and
 *    trunc nuw/nsw produce poison when violated;
 *  - shift amounts >= bit width produce poison;
 *  - division by zero (or by poison), and signed-overflow division,
 *    are immediate UB;
 *  - loads out of bounds or through poison pointers are immediate UB;
 *  - poison propagates element-wise through vector operations;
 *  - freeze pins poison lanes to zero (a fixed choice of the
 *    nondeterminism, documented in DESIGN.md);
 *  - undef is conflated with poison throughout the system.
 */
#ifndef LPO_INTERP_INTERP_H
#define LPO_INTERP_INTERP_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/module.h"

namespace lpo::interp {

/** One scalar lane of a runtime value. */
struct LaneValue
{
    bool poison = false;
    bool is_fp = false;
    lpo::APInt bits;   ///< integer / bool payload (also ptr offset)
    double fp = 0.0;   ///< floating-point payload
    int object_id = -1; ///< pointer provenance (-1 = not a pointer)

    static LaneValue ofInt(lpo::APInt v)
    {
        LaneValue lane;
        lane.bits = v;
        return lane;
    }
    static LaneValue ofFP(double v)
    {
        LaneValue lane;
        lane.is_fp = true;
        lane.fp = v;
        return lane;
    }
    static LaneValue ofPoison()
    {
        LaneValue lane;
        lane.poison = true;
        return lane;
    }
    static LaneValue ofPtr(int object, uint64_t offset)
    {
        LaneValue lane;
        lane.bits = lpo::APInt(64, offset);
        lane.object_id = object;
        return lane;
    }
};

/** A runtime value: one lane for scalars, N lanes for vectors. */
struct RtValue
{
    std::vector<LaneValue> lanes;

    bool isScalar() const { return lanes.size() == 1; }
    const LaneValue &scalar() const { return lanes.front(); }
    bool anyPoison() const
    {
        for (const LaneValue &lane : lanes)
            if (lane.poison)
                return true;
        return false;
    }

    static RtValue scalarInt(lpo::APInt v)
    {
        return RtValue{{LaneValue::ofInt(v)}};
    }
    static RtValue scalarFP(double v) { return RtValue{{LaneValue::ofFP(v)}}; }
    static RtValue poison(unsigned lanes = 1)
    {
        return RtValue{std::vector<LaneValue>(lanes, LaneValue::ofPoison())};
    }
};

/** A memory object backing one pointer argument. */
struct MemoryObject
{
    std::vector<uint8_t> bytes;
};

/** Everything a single execution consumes. */
struct ExecutionInput
{
    std::vector<RtValue> args;
    /** Objects referenced by pointer-typed args via object_id. */
    std::vector<MemoryObject> memory;
};

/** Outcome of one execution. */
struct ExecutionResult
{
    bool ub = false;               ///< immediate undefined behaviour hit
    std::string ub_reason;         ///< human-readable cause when ub
    std::optional<RtValue> ret;    ///< return value (absent for void/ub)
    /** Final memory (after stores), for functions with side effects. */
    std::vector<MemoryObject> memory;
};

/**
 * Execute @p fn on @p input.
 *
 * Since the ExecPlan engine landed this is a thin wrapper that
 * compiles @p fn once and runs the plan (see interp/exec_plan.h), so
 * every caller — including the encoder cross-check tests — exercises
 * the production evaluation path. Batch callers should compile a plan
 * themselves and reuse an ExecFrame across inputs.
 *
 * @param step_limit aborts looping functions; exceeding it is
 *        reported as UB with reason "step limit".
 */
ExecutionResult execute(const ir::Function &fn, const ExecutionInput &input,
                        unsigned step_limit = 100000);

/**
 * The original tree-walking interpreter (map-based operand lookup,
 * per-run allocations). Retained as the reference implementation for
 * the ExecPlan differential suite and the throughput benchmark; new
 * code should call execute() or use ExecPlan directly.
 */
ExecutionResult executeLegacy(const ir::Function &fn,
                              const ExecutionInput &input,
                              unsigned step_limit = 100000);

/**
 * Render a counterexample input in the style Alive2 uses for feedback
 * ("i32 %x = 7, ..."), used verbatim in LLM prompts.
 */
std::string describeInput(const ir::Function &fn,
                          const ExecutionInput &input);

/** Render an execution result for counterexample feedback. */
std::string describeResult(const ExecutionResult &result);

} // namespace lpo::interp

#endif // LPO_INTERP_INTERP_H
