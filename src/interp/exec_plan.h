/**
 * @file
 * Pre-compiled batch evaluation engine for the interpreter.
 *
 * The legacy interpreter (interp.cc) re-walks the ir::Function for
 * every input, resolving each operand through a std::map and
 * allocating a fresh RtValue per operand read. On the verification
 * sweep — up to 2^16 exhaustive or 20,000 sampled inputs per
 * candidate — that per-input overhead dominates the whole LPO loop.
 *
 * ExecPlan compiles a function ONCE into a flat program:
 *
 *  - every SSA value (argument, constant, instruction result) gets a
 *    dense slot in a single lane arena; constants are evaluated at
 *    compile time and baked into the arena image;
 *  - every instruction is decoded into a PlanInst with pre-resolved
 *    operand lane offsets, copied flags/predicates, pre-computed lane
 *    counts, cast widths, and element sizes;
 *  - basic blocks become contiguous ranges addressed by index, so
 *    branches and phis never touch labels at run time.
 *
 * Per-input execution is then an index-addressed loop over a reusable
 * ExecFrame: zero map lookups, zero steady-state allocation (the only
 * exception is copying input memory objects for functions that touch
 * memory). Semantics are identical to the legacy interpreter — the
 * test_exec_plan differential suite pins the two engines against each
 * other over the whole benchmark corpus.
 */
#ifndef LPO_INTERP_EXEC_PLAN_H
#define LPO_INTERP_EXEC_PLAN_H

#include <cstdint>
#include <vector>

#include "interp/interp.h"

namespace lpo::interp {

class ExecPlan;

/**
 * Reusable execution arena shaped for one ExecPlan.
 *
 * Holds one LaneValue per lane of every slot plus the working copy of
 * the memory objects. Create with ExecPlan::makeFrame() and reuse it
 * across runs; results returned by run()/runExhaustive() point into
 * the frame and stay valid until it is reused or destroyed.
 */
class ExecFrame
{
  private:
    friend class ExecPlan;
    std::vector<LaneValue> lanes_;
    std::vector<MemoryObject> memory_;
};

/**
 * Non-owning view of one run's outcome.
 *
 * @c ret points into the frame's lane arena; materialize with
 * ExecPlan::materialize() when an owning ExecutionResult is needed
 * (e.g. for counterexample rendering).
 */
struct PlanResult
{
    bool ub = false;
    bool has_ret = false;
    const char *ub_reason = "";
    const LaneValue *ret = nullptr;
    uint32_t ret_lanes = 0;
};

/** A function compiled for repeated concrete execution. */
class ExecPlan
{
  public:
    /** Compile @p fn. The plan holds no reference to @p fn afterwards. */
    static ExecPlan compile(const ir::Function &fn,
                            unsigned step_limit = 100000);

    /** A fresh frame with constants baked in. */
    ExecFrame makeFrame() const;

    /** Execute with explicit inputs (copied into the frame). */
    PlanResult run(ExecFrame &frame, const ExecutionInput &input) const;

    /**
     * Integer-only fast path for exhaustive sweeps: decode @p index
     * over the flattened argument bits (same layout the refinement
     * checker's decodeExhaustive uses) directly into the frame and
     * execute. Only valid when exhaustiveCapable().
     */
    PlanResult runExhaustive(ExecFrame &frame, uint64_t index) const;

    /** Convert a PlanResult into an owning ExecutionResult. */
    ExecutionResult materialize(const ExecFrame &frame,
                                const PlanResult &result) const;

    /** True when every argument is an integer scalar or vector. */
    bool exhaustiveCapable() const { return exhaustive_ok_; }
    /** Total integer input bits (valid when exhaustiveCapable()). */
    unsigned inputBits() const { return input_bits_; }
    unsigned numArgs() const { return num_args_; }

    // ----- internal representation (public for the implementation) --
    struct SlotInfo
    {
        uint32_t offset = 0; ///< first lane in the arena
        uint32_t lanes = 0;
    };

    /** One decoded instruction. */
    struct PlanInst
    {
        ir::Opcode op;
        ir::ICmpPred icmp_pred = ir::ICmpPred::EQ;
        ir::FCmpPred fcmp_pred = ir::FCmpPred::OEQ;
        ir::Intrinsic intrinsic = ir::Intrinsic::None;
        ir::InstFlags flags;
        uint8_t num_operands = 0;
        uint32_t op_off[3] = {0, 0, 0};   ///< operand lane offsets
        uint32_t op_lanes[3] = {0, 0, 0}; ///< operand lane counts
        uint32_t dest_off = 0;
        uint32_t dest_lanes = 0;
        // Pre-decoded per-opcode data.
        uint8_t cast_width = 0;     ///< trunc/zext/sext destination width
        bool scalar_cond = false;   ///< select with scalar i1 condition
        bool is_signed_divrem = false;
        LaneValue freeze_fill;      ///< freeze: replacement for poison
        int64_t elem_size = 0;      ///< gep element size (bytes)
        uint32_t access_bytes = 0;  ///< load/store total byte size
        uint32_t elem_bytes = 0;    ///< load/store per-lane byte size
        bool elem_is_fp = false;    ///< load: lanes are doubles
        uint8_t elem_width = 0;     ///< load: integer lane width
        uint32_t br_true = 0;       ///< branch targets (block indices)
        uint32_t br_false = 0;
        /** Phi: (predecessor block index, incoming lane offset). */
        std::vector<std::pair<uint32_t, uint32_t>> phi_incoming;
    };

  private:
    struct BlockRange
    {
        uint32_t begin = 0;
        uint32_t end = 0;
    };

    /** Exhaustive decode step: one argument lane's width and offset. */
    struct ArgLane
    {
        uint32_t offset;
        uint8_t width;
    };

    PlanResult exec(ExecFrame &frame) const;

    std::vector<SlotInfo> slots_;
    std::vector<LaneValue> init_lanes_; ///< arena image, constants baked
    std::vector<PlanInst> insts_;
    std::vector<BlockRange> blocks_;
    std::vector<SlotInfo> arg_slots_;   ///< per-argument slot info
    std::vector<ArgLane> arg_lanes_;    ///< flattened exhaustive layout
    unsigned num_args_ = 0;
    unsigned step_limit_ = 100000;
    unsigned input_bits_ = 0;
    bool exhaustive_ok_ = true;
    bool touches_memory_ = false;
};

} // namespace lpo::interp

#endif // LPO_INTERP_EXEC_PLAN_H
