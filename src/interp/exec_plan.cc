#include "interp/exec_plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <map>

namespace lpo::interp {

using ir::FCmpPred;
using ir::ICmpPred;
using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

unsigned
laneCount(const Type *type)
{
    return type->isVector() ? type->lanes() : 1;
}

// ---------------------------------------------------------------------
// Lane evaluators. These mirror the legacy interpreter's semantics
// exactly; the differential suite in test_exec_plan.cc pins the two
// implementations against each other.
// ---------------------------------------------------------------------

LaneValue
evalIntBinary(const ExecPlan::PlanInst &inst, const LaneValue &a,
              const LaneValue &b)
{
    const ir::InstFlags &flags = inst.flags;
    if (a.poison || b.poison)
        return LaneValue::ofPoison();

    const APInt &x = a.bits;
    const APInt &y = b.bits;
    unsigned width = x.width();

    switch (inst.op) {
      case Opcode::Add:
        if ((flags.nuw && x.addOverflowsUnsigned(y)) ||
            (flags.nsw && x.addOverflowsSigned(y)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.add(y));
      case Opcode::Sub:
        if ((flags.nuw && x.subOverflowsUnsigned(y)) ||
            (flags.nsw && x.subOverflowsSigned(y)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.sub(y));
      case Opcode::Mul:
        if ((flags.nuw && x.mulOverflowsUnsigned(y)) ||
            (flags.nsw && x.mulOverflowsSigned(y)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.mul(y));
      case Opcode::UDiv:
        if (flags.exact && !x.urem(y).isZero())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.udiv(y));
      case Opcode::SDiv:
        if (flags.exact && !x.srem(y).isZero())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.sdiv(y));
      case Opcode::URem:
        return LaneValue::ofInt(x.urem(y));
      case Opcode::SRem:
        return LaneValue::ofInt(x.srem(y));
      case Opcode::Shl: {
        if (y.zext() >= width)
            return LaneValue::ofPoison();
        unsigned amount = static_cast<unsigned>(y.zext());
        if ((flags.nuw && x.shlOverflowsUnsigned(amount)) ||
            (flags.nsw && x.shlOverflowsSigned(amount)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.shl(amount));
      }
      case Opcode::LShr: {
        if (y.zext() >= width)
            return LaneValue::ofPoison();
        unsigned amount = static_cast<unsigned>(y.zext());
        if (flags.exact && x.lshr(amount).shl(amount).zext() != x.zext())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.lshr(amount));
      }
      case Opcode::AShr: {
        if (y.zext() >= width)
            return LaneValue::ofPoison();
        unsigned amount = static_cast<unsigned>(y.zext());
        if (flags.exact && x.ashr(amount).shl(amount).zext() != x.zext())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.ashr(amount));
      }
      case Opcode::And:
        return LaneValue::ofInt(x.andOp(y));
      case Opcode::Or:
        if (flags.disjoint && !x.andOp(y).isZero())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.orOp(y));
      case Opcode::Xor:
        return LaneValue::ofInt(x.xorOp(y));
      default:
        assert(false && "not an integer binary op");
        return LaneValue::ofPoison();
    }
}

LaneValue
evalFPBinary(Opcode op, const LaneValue &a, const LaneValue &b)
{
    if (a.poison || b.poison)
        return LaneValue::ofPoison();
    switch (op) {
      case Opcode::FAdd: return LaneValue::ofFP(a.fp + b.fp);
      case Opcode::FSub: return LaneValue::ofFP(a.fp - b.fp);
      case Opcode::FMul: return LaneValue::ofFP(a.fp * b.fp);
      case Opcode::FDiv: return LaneValue::ofFP(a.fp / b.fp);
      default:
        assert(false);
        return LaneValue::ofPoison();
    }
}

LaneValue
evalICmpLane(ICmpPred pred, const LaneValue &a, const LaneValue &b)
{
    if (a.poison || b.poison)
        return LaneValue::ofPoison();
    const APInt &x = a.bits;
    const APInt &y = b.bits;
    bool r = false;
    switch (pred) {
      case ICmpPred::EQ: r = x.eq(y); break;
      case ICmpPred::NE: r = x.ne(y); break;
      case ICmpPred::UGT: r = x.ugt(y); break;
      case ICmpPred::UGE: r = x.uge(y); break;
      case ICmpPred::ULT: r = x.ult(y); break;
      case ICmpPred::ULE: r = x.ule(y); break;
      case ICmpPred::SGT: r = x.sgt(y); break;
      case ICmpPred::SGE: r = x.sge(y); break;
      case ICmpPred::SLT: r = x.slt(y); break;
      case ICmpPred::SLE: r = x.sle(y); break;
    }
    return LaneValue::ofInt(APInt(1, r));
}

LaneValue
evalFCmpLane(FCmpPred pred, const LaneValue &a, const LaneValue &b)
{
    if (a.poison || b.poison)
        return LaneValue::ofPoison();
    double x = a.fp;
    double y = b.fp;
    bool unordered = std::isnan(x) || std::isnan(y);
    bool r = false;
    switch (pred) {
      case FCmpPred::False: r = false; break;
      case FCmpPred::OEQ: r = !unordered && x == y; break;
      case FCmpPred::OGT: r = !unordered && x > y; break;
      case FCmpPred::OGE: r = !unordered && x >= y; break;
      case FCmpPred::OLT: r = !unordered && x < y; break;
      case FCmpPred::OLE: r = !unordered && x <= y; break;
      case FCmpPred::ONE: r = !unordered && x != y; break;
      case FCmpPred::ORD: r = !unordered; break;
      case FCmpPred::UEQ: r = unordered || x == y; break;
      case FCmpPred::UGT: r = unordered || x > y; break;
      case FCmpPred::UGE: r = unordered || x >= y; break;
      case FCmpPred::ULT: r = unordered || x < y; break;
      case FCmpPred::ULE: r = unordered || x <= y; break;
      case FCmpPred::UNE: r = unordered || x != y; break;
      case FCmpPred::UNO: r = unordered; break;
      case FCmpPred::True: r = true; break;
    }
    return LaneValue::ofInt(APInt(1, r));
}

LaneValue
evalCastLane(const ExecPlan::PlanInst &inst, const LaneValue &a)
{
    if (a.poison)
        return LaneValue::ofPoison();
    unsigned dst = inst.cast_width;
    const ir::InstFlags &flags = inst.flags;
    switch (inst.op) {
      case Opcode::Trunc: {
        APInt t = a.bits.truncTo(dst);
        if (flags.nuw && t.zextTo(a.bits.width()).zext() != a.bits.zext())
            return LaneValue::ofPoison();
        if (flags.nsw && t.sextTo(a.bits.width()).zext() != a.bits.zext())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(t);
      }
      case Opcode::ZExt:
        if (flags.nneg && a.bits.isSignBitSet())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(a.bits.zextTo(dst));
      case Opcode::SExt:
        return LaneValue::ofInt(a.bits.sextTo(dst));
      default:
        assert(false);
        return LaneValue::ofPoison();
    }
}

LaneValue
evalIntrinsicLane(Intrinsic intr, const LaneValue *args)
{
    if (intr == Intrinsic::FAbs) {
        if (args[0].poison)
            return LaneValue::ofPoison();
        return LaneValue::ofFP(std::fabs(args[0].fp));
    }
    if (args[0].poison)
        return LaneValue::ofPoison();
    const APInt &x = args[0].bits;
    unsigned w = x.width();
    switch (intr) {
      case Intrinsic::UMin:
      case Intrinsic::UMax:
      case Intrinsic::SMin:
      case Intrinsic::SMax: {
        if (args[1].poison)
            return LaneValue::ofPoison();
        const APInt &y = args[1].bits;
        switch (intr) {
          case Intrinsic::UMin: return LaneValue::ofInt(x.umin(y));
          case Intrinsic::UMax: return LaneValue::ofInt(x.umax(y));
          case Intrinsic::SMin: return LaneValue::ofInt(x.smin(y));
          default: return LaneValue::ofInt(x.smax(y));
        }
      }
      case Intrinsic::Abs: {
        bool min_poison = !args[1].bits.isZero();
        if (x.isSignedMin())
            return min_poison ? LaneValue::ofPoison() : LaneValue::ofInt(x);
        return LaneValue::ofInt(x.isSignBitSet() ? x.neg() : x);
      }
      case Intrinsic::CtPop:
        return LaneValue::ofInt(APInt(w, x.popCount()));
      case Intrinsic::CtLz: {
        bool zero_poison = !args[1].bits.isZero();
        if (x.isZero() && zero_poison)
            return LaneValue::ofPoison();
        return LaneValue::ofInt(APInt(w, x.countLeadingZeros()));
      }
      case Intrinsic::CtTz: {
        bool zero_poison = !args[1].bits.isZero();
        if (x.isZero() && zero_poison)
            return LaneValue::ofPoison();
        return LaneValue::ofInt(APInt(w, x.countTrailingZeros()));
      }
      case Intrinsic::USubSat: {
        if (args[1].poison)
            return LaneValue::ofPoison();
        const APInt &y = args[1].bits;
        return LaneValue::ofInt(x.ult(y) ? APInt::zero(w) : x.sub(y));
      }
      case Intrinsic::UAddSat: {
        if (args[1].poison)
            return LaneValue::ofPoison();
        const APInt &y = args[1].bits;
        return LaneValue::ofInt(
            x.addOverflowsUnsigned(y) ? APInt::allOnes(w) : x.add(y));
      }
      case Intrinsic::SSubSat: {
        if (args[1].poison)
            return LaneValue::ofPoison();
        const APInt &y = args[1].bits;
        if (x.subOverflowsSigned(y))
            return LaneValue::ofInt(x.sge(y) ? APInt::signedMax(w)
                                             : APInt::signedMin(w));
        return LaneValue::ofInt(x.sub(y));
      }
      case Intrinsic::SAddSat: {
        if (args[1].poison)
            return LaneValue::ofPoison();
        const APInt &y = args[1].bits;
        if (x.addOverflowsSigned(y))
            return LaneValue::ofInt(x.isSignBitSet() ? APInt::signedMin(w)
                                                     : APInt::signedMax(w));
        return LaneValue::ofInt(x.add(y));
      }
      default:
        assert(false && "unhandled intrinsic");
        return LaneValue::ofPoison();
    }
}

/** Compile-time evaluation of a scalar constant into one lane. */
LaneValue
evalScalarConstant(const Value *v)
{
    switch (v->kind()) {
      case Value::Kind::ConstInt:
        return LaneValue::ofInt(
            static_cast<const ir::ConstantInt *>(v)->value());
      case Value::Kind::ConstFP:
        return LaneValue::ofFP(
            static_cast<const ir::ConstantFP *>(v)->value());
      case Value::Kind::Poison:
        return LaneValue::ofPoison();
      default:
        assert(false && "not a scalar constant");
        return LaneValue::ofPoison();
    }
}

} // namespace

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

ExecPlan
ExecPlan::compile(const ir::Function &fn, unsigned step_limit)
{
    ExecPlan plan;
    plan.step_limit_ = step_limit;
    plan.num_args_ = fn.numArgs();

    std::map<const Value *, uint32_t> slot_of;
    uint32_t next_lane = 0;

    auto addSlot = [&](uint32_t lanes) -> uint32_t {
        uint32_t id = static_cast<uint32_t>(plan.slots_.size());
        plan.slots_.push_back(SlotInfo{next_lane, lanes});
        plan.init_lanes_.resize(next_lane + lanes);
        next_lane += lanes;
        return id;
    };

    // Arguments occupy the first slots, in declaration order; their
    // flattened lane layout doubles as the exhaustive-decode program.
    for (unsigned i = 0; i < fn.numArgs(); ++i) {
        const ir::Argument *arg = fn.arg(i);
        const Type *type = arg->type();
        uint32_t lanes = laneCount(type);
        uint32_t id = addSlot(lanes);
        slot_of[arg] = id;
        plan.arg_slots_.push_back(plan.slots_[id]);
        if (type->isPtr() || type->scalarType()->isFloat()) {
            plan.exhaustive_ok_ = false;
            continue;
        }
        unsigned width = type->scalarType()->intWidth();
        for (uint32_t lane = 0; lane < lanes; ++lane)
            plan.arg_lanes_.push_back(
                ArgLane{plan.slots_[id].offset + lane,
                        static_cast<uint8_t>(width)});
        plan.input_bits_ += lanes * width;
    }

    // Every instruction result gets its slot up front so operands can
    // reference values defined later in the block (phi back-edges).
    for (const auto &bb : fn.blocks()) {
        for (const auto &inst_ptr : bb->instructions()) {
            const Instruction *inst = inst_ptr.get();
            if (inst->op() == Opcode::Ret || inst->op() == Opcode::Br)
                continue;
            uint32_t lanes = inst->op() == Opcode::Store
                                 ? 0
                                 : laneCount(inst->type());
            slot_of[inst] = addSlot(lanes);
        }
    }

    // Constants get slots on first use, with their value baked into
    // the arena image.
    auto slotFor = [&](const Value *v) -> uint32_t {
        auto it = slot_of.find(v);
        if (it != slot_of.end())
            return it->second;
        assert(v->isConstant() && "operand evaluated before definition");
        uint32_t lanes = laneCount(v->type());
        uint32_t id = addSlot(lanes);
        LaneValue *base = plan.init_lanes_.data() + plan.slots_[id].offset;
        if (v->kind() == Value::Kind::ConstVector) {
            const auto *cv = static_cast<const ir::ConstantVector *>(v);
            for (uint32_t lane = 0; lane < lanes; ++lane)
                base[lane] = evalScalarConstant(cv->elements()[lane]);
        } else if (v->kind() == Value::Kind::Poison) {
            for (uint32_t lane = 0; lane < lanes; ++lane)
                base[lane] = LaneValue::ofPoison();
        } else {
            base[0] = evalScalarConstant(v);
        }
        slot_of[v] = id;
        return id;
    };

    // Block labels resolve to dense indices.
    std::map<std::string, uint32_t> block_index;
    for (size_t b = 0; b < fn.blocks().size(); ++b)
        block_index[fn.blocks()[b]->label()] = static_cast<uint32_t>(b);

    for (const auto &bb : fn.blocks()) {
        BlockRange range;
        range.begin = static_cast<uint32_t>(plan.insts_.size());
        for (const auto &inst_ptr : bb->instructions()) {
            const Instruction *inst = inst_ptr.get();
            PlanInst pi;
            pi.op = inst->op();
            pi.flags = inst->flags();
            pi.icmp_pred = inst->icmpPred();
            pi.fcmp_pred = inst->fcmpPred();
            pi.intrinsic = inst->intrinsic();
            pi.num_operands =
                static_cast<uint8_t>(inst->numOperands());
            // Phis carry unboundedly many incoming values; they are
            // decoded into phi_incoming below and never read the
            // fixed-size operand arrays.
            if (inst->op() != Opcode::Phi) {
                assert(inst->numOperands() <= 3 &&
                       "unexpected operand count");
                for (unsigned i = 0; i < inst->numOperands(); ++i) {
                    uint32_t slot = slotFor(inst->operand(i));
                    pi.op_off[i] = plan.slots_[slot].offset;
                    pi.op_lanes[i] = plan.slots_[slot].lanes;
                }
            }

            switch (inst->op()) {
              case Opcode::Ret:
              case Opcode::Br:
                break; // no result slot
              default: {
                uint32_t id = slot_of.at(inst);
                pi.dest_off = plan.slots_[id].offset;
                pi.dest_lanes = plan.slots_[id].lanes;
              }
            }

            switch (inst->op()) {
              case Opcode::SDiv:
              case Opcode::SRem:
                pi.is_signed_divrem = true;
                break;
              case Opcode::Select:
                pi.scalar_cond = inst->operand(0)->type()->isBool();
                break;
              case Opcode::Trunc:
              case Opcode::ZExt:
              case Opcode::SExt:
                pi.cast_width = static_cast<uint8_t>(
                    inst->type()->scalarType()->intWidth());
                break;
              case Opcode::Freeze: {
                const Type *scalar = inst->type()->scalarType();
                pi.freeze_fill = scalar->isFloat()
                    ? LaneValue::ofFP(0.0)
                    : LaneValue::ofInt(APInt::zero(
                          scalar->isInt() ? scalar->intWidth() : 64));
                break;
              }
              case Opcode::Gep:
                pi.elem_size = inst->accessType()->storeSizeBytes();
                break;
              case Opcode::Load: {
                const Type *scalar = inst->type()->scalarType();
                pi.access_bytes = inst->type()->storeSizeBytes();
                pi.elem_bytes = scalar->storeSizeBytes();
                pi.elem_is_fp = scalar->isFloat();
                pi.elem_width = static_cast<uint8_t>(
                    scalar->isInt() ? scalar->intWidth() : 0);
                plan.touches_memory_ = true;
                break;
              }
              case Opcode::Store: {
                const Type *vt = inst->operand(0)->type();
                pi.access_bytes = vt->storeSizeBytes();
                pi.elem_bytes = vt->scalarType()->storeSizeBytes();
                pi.elem_is_fp = vt->scalarType()->isFloat();
                plan.touches_memory_ = true;
                break;
              }
              case Opcode::Br: {
                const auto &labels = inst->brLabels();
                pi.br_true = block_index.at(labels[0]);
                pi.br_false = labels.size() > 1
                                  ? block_index.at(labels[1])
                                  : pi.br_true;
                break;
              }
              case Opcode::Phi:
                for (unsigned i = 0; i < inst->numOperands(); ++i) {
                    uint32_t slot = slotFor(inst->operand(i));
                    pi.phi_incoming.emplace_back(
                        block_index.at(inst->phiLabels()[i]),
                        plan.slots_[slot].offset);
                }
                break;
              default:
                break;
            }
            plan.insts_.push_back(std::move(pi));
        }
        range.end = static_cast<uint32_t>(plan.insts_.size());
        plan.blocks_.push_back(range);
    }
    return plan;
}

ExecFrame
ExecPlan::makeFrame() const
{
    ExecFrame frame;
    frame.lanes_ = init_lanes_;
    return frame;
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

PlanResult
ExecPlan::exec(ExecFrame &frame) const
{
    LaneValue *L = frame.lanes_.data();
    std::vector<MemoryObject> &memory = frame.memory_;
    PlanResult out;

    auto trap = [&out](const char *reason) -> const PlanResult & {
        out.ub = true;
        out.ub_reason = reason;
        return out;
    };

    uint32_t block = 0;
    uint32_t prev_block = UINT32_MAX;
    uint32_t pc = blocks_.empty() ? 0 : blocks_[0].begin;
    unsigned steps = 0;

    while (true) {
        if (blocks_.empty() || pc == blocks_[block].end)
            return out; // malformed; verifier rejects this earlier
        const PlanInst &inst = insts_[pc];
        if (++steps > step_limit_)
            return trap("step limit exceeded");

        switch (inst.op) {
          case Opcode::Ret:
            if (inst.num_operands == 1) {
                out.has_ret = true;
                out.ret = L + inst.op_off[0];
                out.ret_lanes = inst.op_lanes[0];
            }
            return out;

          case Opcode::Br: {
            uint32_t next;
            if (inst.num_operands == 0) {
                next = inst.br_true;
            } else {
                const LaneValue &cond = L[inst.op_off[0]];
                if (cond.poison)
                    return trap("branch on poison");
                next = cond.bits.isZero() ? inst.br_false : inst.br_true;
            }
            prev_block = block;
            block = next;
            pc = blocks_[block].begin;
            continue;
          }

          case Opcode::Phi: {
            bool matched = false;
            for (const auto &[pred, src_off] : inst.phi_incoming) {
                if (pred == prev_block) {
                    for (uint32_t i = 0; i < inst.dest_lanes; ++i)
                        L[inst.dest_off + i] = L[src_off + i];
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return trap("phi has no entry for predecessor");
            ++pc;
            continue;
          }

          case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
          case Opcode::UDiv: case Opcode::SDiv:
          case Opcode::URem: case Opcode::SRem:
          case Opcode::Shl: case Opcode::LShr: case Opcode::AShr:
          case Opcode::And: case Opcode::Or: case Opcode::Xor: {
            const LaneValue *a = L + inst.op_off[0];
            const LaneValue *b = L + inst.op_off[1];
            if (ir::isIntDivRem(inst.op)) {
                for (uint32_t i = 0; i < inst.op_lanes[1]; ++i) {
                    if (b[i].poison)
                        return trap("division by poison");
                    if (b[i].bits.isZero())
                        return trap("division by zero");
                    if (inst.is_signed_divrem && !a[i].poison &&
                        a[i].bits.isSignedMin() && b[i].bits.isAllOnes())
                        return trap("signed division overflow");
                }
            }
            for (uint32_t i = 0; i < inst.dest_lanes; ++i)
                L[inst.dest_off + i] = evalIntBinary(inst, a[i], b[i]);
            break;
          }

          case Opcode::FAdd: case Opcode::FSub:
          case Opcode::FMul: case Opcode::FDiv: {
            const LaneValue *a = L + inst.op_off[0];
            const LaneValue *b = L + inst.op_off[1];
            for (uint32_t i = 0; i < inst.dest_lanes; ++i)
                L[inst.dest_off + i] = evalFPBinary(inst.op, a[i], b[i]);
            break;
          }

          case Opcode::ICmp: {
            const LaneValue *a = L + inst.op_off[0];
            const LaneValue *b = L + inst.op_off[1];
            for (uint32_t i = 0; i < inst.dest_lanes; ++i)
                L[inst.dest_off + i] =
                    evalICmpLane(inst.icmp_pred, a[i], b[i]);
            break;
          }

          case Opcode::FCmp: {
            const LaneValue *a = L + inst.op_off[0];
            const LaneValue *b = L + inst.op_off[1];
            for (uint32_t i = 0; i < inst.dest_lanes; ++i)
                L[inst.dest_off + i] =
                    evalFCmpLane(inst.fcmp_pred, a[i], b[i]);
            break;
          }

          case Opcode::Select: {
            const LaneValue *cond = L + inst.op_off[0];
            const LaneValue *tval = L + inst.op_off[1];
            const LaneValue *fval = L + inst.op_off[2];
            for (uint32_t i = 0; i < inst.dest_lanes; ++i) {
                const LaneValue &c = inst.scalar_cond ? cond[0] : cond[i];
                if (c.poison)
                    L[inst.dest_off + i] = LaneValue::ofPoison();
                else
                    L[inst.dest_off + i] =
                        c.bits.isZero() ? fval[i] : tval[i];
            }
            break;
          }

          case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt: {
            const LaneValue *a = L + inst.op_off[0];
            for (uint32_t i = 0; i < inst.dest_lanes; ++i)
                L[inst.dest_off + i] = evalCastLane(inst, a[i]);
            break;
          }

          case Opcode::Freeze: {
            const LaneValue *a = L + inst.op_off[0];
            for (uint32_t i = 0; i < inst.dest_lanes; ++i)
                L[inst.dest_off + i] =
                    a[i].poison ? inst.freeze_fill : a[i];
            break;
          }

          case Opcode::Call: {
            LaneValue lane_args[3];
            for (uint32_t i = 0; i < inst.dest_lanes; ++i) {
                for (unsigned a = 0; a < inst.num_operands; ++a) {
                    // Scalar immargs (abs/ctlz i1 flag) broadcast.
                    lane_args[a] = inst.op_lanes[a] == 1
                                       ? L[inst.op_off[a]]
                                       : L[inst.op_off[a] + i];
                }
                L[inst.dest_off + i] =
                    evalIntrinsicLane(inst.intrinsic, lane_args);
            }
            break;
          }

          case Opcode::Gep: {
            const LaneValue &b = L[inst.op_off[0]];
            const LaneValue &idx = L[inst.op_off[1]];
            if (b.poison || idx.poison) {
                L[inst.dest_off] = LaneValue::ofPoison();
                break;
            }
            int64_t offset = static_cast<int64_t>(b.bits.zext()) +
                             idx.bits.sext() * inst.elem_size;
            LaneValue lane = LaneValue::ofPtr(
                b.object_id, static_cast<uint64_t>(offset));
            if (inst.flags.inbounds) {
                int64_t size =
                    b.object_id >= 0 &&
                    b.object_id < static_cast<int>(memory.size())
                        ? static_cast<int64_t>(
                              memory[b.object_id].bytes.size())
                        : 0;
                if (offset < 0 || offset > size)
                    lane = LaneValue::ofPoison();
            }
            L[inst.dest_off] = lane;
            break;
          }

          case Opcode::Load: {
            const LaneValue &p = L[inst.op_off[0]];
            if (p.poison)
                return trap("load from poison pointer");
            if (p.object_id < 0 ||
                p.object_id >= static_cast<int>(memory.size()))
                return trap("load from non-pointer value");
            const std::vector<uint8_t> &bytes =
                memory[p.object_id].bytes;
            uint64_t offset = p.bits.zext();
            if (offset + inst.access_bytes > bytes.size())
                return trap("out-of-bounds load");
            for (uint32_t i = 0; i < inst.dest_lanes; ++i) {
                if (inst.elem_is_fp) {
                    double d;
                    std::memcpy(&d,
                                bytes.data() + offset +
                                    i * inst.elem_bytes, 8);
                    L[inst.dest_off + i] = LaneValue::ofFP(d);
                } else {
                    uint64_t raw = 0;
                    std::memcpy(&raw,
                                bytes.data() + offset +
                                    i * inst.elem_bytes,
                                inst.elem_bytes);
                    L[inst.dest_off + i] =
                        LaneValue::ofInt(APInt(inst.elem_width, raw));
                }
            }
            break;
          }

          case Opcode::Store: {
            const LaneValue *val = L + inst.op_off[0];
            const LaneValue &p = L[inst.op_off[1]];
            if (p.poison)
                return trap("store to poison pointer");
            if (p.object_id < 0 ||
                p.object_id >= static_cast<int>(memory.size()))
                return trap("store to non-pointer value");
            std::vector<uint8_t> &bytes = memory[p.object_id].bytes;
            uint64_t offset = p.bits.zext();
            if (offset + inst.access_bytes > bytes.size())
                return trap("out-of-bounds store");
            for (uint32_t i = 0; i < inst.op_lanes[0]; ++i) {
                const LaneValue &lane = val[i];
                // Storing poison pins the bytes to zero (matches the
                // freeze convention of the legacy interpreter).
                uint64_t raw = 0;
                if (!lane.poison) {
                    if (inst.elem_is_fp)
                        std::memcpy(&raw, &lane.fp, 8);
                    else
                        raw = lane.bits.zext();
                }
                std::memcpy(bytes.data() + offset + i * inst.elem_bytes,
                            &raw, inst.elem_bytes);
            }
            break;
          }

          default:
            assert(false && "unhandled opcode in plan execution");
            return trap("internal: unhandled opcode");
        }
        ++pc;
    }
}

PlanResult
ExecPlan::run(ExecFrame &frame, const ExecutionInput &input) const
{
    assert(input.args.size() == num_args_ && "argument count mismatch");
    LaneValue *L = frame.lanes_.data();
    for (unsigned i = 0; i < num_args_; ++i) {
        const SlotInfo &slot = arg_slots_[i];
        const RtValue &v = input.args[i];
        assert(v.lanes.size() == slot.lanes && "argument lane mismatch");
        for (uint32_t lane = 0; lane < slot.lanes; ++lane)
            L[slot.offset + lane] = v.lanes[lane];
    }
    frame.memory_ = input.memory;
    return exec(frame);
}

PlanResult
ExecPlan::runExhaustive(ExecFrame &frame, uint64_t index) const
{
    assert(exhaustive_ok_ && "function has non-integer arguments");
    LaneValue *L = frame.lanes_.data();
    frame.memory_.clear();
    for (const ArgLane &arg : arg_lanes_) {
        uint64_t mask = arg.width >= 64
                            ? ~uint64_t(0)
                            : ((uint64_t(1) << arg.width) - 1);
        L[arg.offset] = LaneValue::ofInt(APInt(arg.width, index & mask));
        index = arg.width >= 64 ? 0 : index >> arg.width;
    }
    return exec(frame);
}

ExecutionResult
ExecPlan::materialize(const ExecFrame &frame,
                      const PlanResult &result) const
{
    ExecutionResult out;
    out.ub = result.ub;
    out.ub_reason = result.ub_reason;
    if (!result.ub && result.has_ret) {
        RtValue v;
        v.lanes.assign(result.ret, result.ret + result.ret_lanes);
        out.ret = std::move(v);
    }
    out.memory = frame.memory_;
    return out;
}

} // namespace lpo::interp
