#include "interp/interp.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <map>

#include "interp/exec_plan.h"
#include "ir/printer.h"

namespace lpo::interp {

using ir::FCmpPred;
using ir::ICmpPred;
using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace {

unsigned
laneCount(const Type *type)
{
    return type->isVector() ? type->lanes() : 1;
}

/** Evaluation machinery for one execution. */
class Machine
{
  public:
    Machine(const ir::Function &fn, const ExecutionInput &input,
            unsigned step_limit)
        : fn_(fn), step_limit_(step_limit)
    {
        memory_ = input.memory;
        for (unsigned i = 0; i < fn.numArgs(); ++i)
            env_[fn.arg(i)] = input.args[i];
    }

    ExecutionResult run();

  private:
    RtValue valueOf(const Value *v);
    bool evalInstruction(const Instruction *inst);

    LaneValue evalIntBinary(const Instruction *inst, const LaneValue &a,
                            const LaneValue &b);
    LaneValue evalFPBinary(Opcode op, const LaneValue &a,
                           const LaneValue &b);
    LaneValue evalICmpLane(ICmpPred pred, const LaneValue &a,
                           const LaneValue &b);
    LaneValue evalFCmpLane(FCmpPred pred, const LaneValue &a,
                           const LaneValue &b);
    LaneValue evalCastLane(const Instruction *inst, const LaneValue &a);
    LaneValue evalIntrinsicLane(const Instruction *inst,
                                const std::vector<LaneValue> &args);

    /** Raise immediate UB. */
    bool
    trap(std::string reason)
    {
        result_.ub = true;
        result_.ub_reason = std::move(reason);
        return false;
    }

    const ir::Function &fn_;
    unsigned step_limit_;
    std::map<const Value *, RtValue> env_;
    std::vector<MemoryObject> memory_;
    ExecutionResult result_;
    const ir::BasicBlock *prev_block_ = nullptr;
};

RtValue
Machine::valueOf(const Value *v)
{
    switch (v->kind()) {
      case Value::Kind::Argument:
      case Value::Kind::Instruction: {
        auto it = env_.find(v);
        assert(it != env_.end() && "value evaluated before definition");
        return it->second;
      }
      case Value::Kind::ConstInt:
        return RtValue::scalarInt(
            static_cast<const ir::ConstantInt *>(v)->value());
      case Value::Kind::ConstFP:
        return RtValue::scalarFP(
            static_cast<const ir::ConstantFP *>(v)->value());
      case Value::Kind::Poison:
        return RtValue::poison(laneCount(v->type()));
      case Value::Kind::ConstVector: {
        const auto *cv = static_cast<const ir::ConstantVector *>(v);
        RtValue out;
        for (const Value *e : cv->elements())
            out.lanes.push_back(valueOf(e).scalar());
        return out;
      }
    }
    assert(false);
    return {};
}

LaneValue
Machine::evalIntBinary(const Instruction *inst, const LaneValue &a,
                       const LaneValue &b)
{
    const Opcode op = inst->op();
    const ir::InstFlags &flags = inst->flags();

    // Division by a poison or zero divisor is immediate UB and handled
    // by the caller before lane evaluation. Here poison just flows.
    if (a.poison || b.poison)
        return LaneValue::ofPoison();

    const APInt &x = a.bits;
    const APInt &y = b.bits;
    unsigned width = x.width();

    switch (op) {
      case Opcode::Add:
        if ((flags.nuw && x.addOverflowsUnsigned(y)) ||
            (flags.nsw && x.addOverflowsSigned(y)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.add(y));
      case Opcode::Sub:
        if ((flags.nuw && x.subOverflowsUnsigned(y)) ||
            (flags.nsw && x.subOverflowsSigned(y)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.sub(y));
      case Opcode::Mul:
        if ((flags.nuw && x.mulOverflowsUnsigned(y)) ||
            (flags.nsw && x.mulOverflowsSigned(y)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.mul(y));
      case Opcode::UDiv:
        if (flags.exact && !x.urem(y).isZero())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.udiv(y));
      case Opcode::SDiv:
        if (flags.exact && !x.srem(y).isZero())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.sdiv(y));
      case Opcode::URem:
        return LaneValue::ofInt(x.urem(y));
      case Opcode::SRem:
        return LaneValue::ofInt(x.srem(y));
      case Opcode::Shl: {
        if (y.zext() >= width)
            return LaneValue::ofPoison();
        unsigned amount = static_cast<unsigned>(y.zext());
        if ((flags.nuw && x.shlOverflowsUnsigned(amount)) ||
            (flags.nsw && x.shlOverflowsSigned(amount)))
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.shl(amount));
      }
      case Opcode::LShr: {
        if (y.zext() >= width)
            return LaneValue::ofPoison();
        unsigned amount = static_cast<unsigned>(y.zext());
        if (flags.exact && x.lshr(amount).shl(amount).zext() != x.zext())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.lshr(amount));
      }
      case Opcode::AShr: {
        if (y.zext() >= width)
            return LaneValue::ofPoison();
        unsigned amount = static_cast<unsigned>(y.zext());
        if (flags.exact && x.ashr(amount).shl(amount).zext() != x.zext())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.ashr(amount));
      }
      case Opcode::And:
        return LaneValue::ofInt(x.andOp(y));
      case Opcode::Or:
        if (flags.disjoint && !x.andOp(y).isZero())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.orOp(y));
      case Opcode::Xor:
        return LaneValue::ofInt(x.xorOp(y));
      default:
        assert(false && "not an integer binary op");
        return LaneValue::ofPoison();
    }
}

LaneValue
Machine::evalFPBinary(Opcode op, const LaneValue &a, const LaneValue &b)
{
    if (a.poison || b.poison)
        return LaneValue::ofPoison();
    switch (op) {
      case Opcode::FAdd: return LaneValue::ofFP(a.fp + b.fp);
      case Opcode::FSub: return LaneValue::ofFP(a.fp - b.fp);
      case Opcode::FMul: return LaneValue::ofFP(a.fp * b.fp);
      case Opcode::FDiv: return LaneValue::ofFP(a.fp / b.fp);
      default:
        assert(false);
        return LaneValue::ofPoison();
    }
}

LaneValue
Machine::evalICmpLane(ICmpPred pred, const LaneValue &a, const LaneValue &b)
{
    if (a.poison || b.poison)
        return LaneValue::ofPoison();
    const APInt &x = a.bits;
    const APInt &y = b.bits;
    bool r = false;
    switch (pred) {
      case ICmpPred::EQ: r = x.eq(y); break;
      case ICmpPred::NE: r = x.ne(y); break;
      case ICmpPred::UGT: r = x.ugt(y); break;
      case ICmpPred::UGE: r = x.uge(y); break;
      case ICmpPred::ULT: r = x.ult(y); break;
      case ICmpPred::ULE: r = x.ule(y); break;
      case ICmpPred::SGT: r = x.sgt(y); break;
      case ICmpPred::SGE: r = x.sge(y); break;
      case ICmpPred::SLT: r = x.slt(y); break;
      case ICmpPred::SLE: r = x.sle(y); break;
    }
    return LaneValue::ofInt(APInt(1, r));
}

LaneValue
Machine::evalFCmpLane(FCmpPred pred, const LaneValue &a, const LaneValue &b)
{
    if (a.poison || b.poison)
        return LaneValue::ofPoison();
    double x = a.fp;
    double y = b.fp;
    bool unordered = std::isnan(x) || std::isnan(y);
    bool r = false;
    switch (pred) {
      case FCmpPred::False: r = false; break;
      case FCmpPred::OEQ: r = !unordered && x == y; break;
      case FCmpPred::OGT: r = !unordered && x > y; break;
      case FCmpPred::OGE: r = !unordered && x >= y; break;
      case FCmpPred::OLT: r = !unordered && x < y; break;
      case FCmpPred::OLE: r = !unordered && x <= y; break;
      case FCmpPred::ONE: r = !unordered && x != y; break;
      case FCmpPred::ORD: r = !unordered; break;
      case FCmpPred::UEQ: r = unordered || x == y; break;
      case FCmpPred::UGT: r = unordered || x > y; break;
      case FCmpPred::UGE: r = unordered || x >= y; break;
      case FCmpPred::ULT: r = unordered || x < y; break;
      case FCmpPred::ULE: r = unordered || x <= y; break;
      case FCmpPred::UNE: r = unordered || x != y; break;
      case FCmpPred::UNO: r = unordered; break;
      case FCmpPred::True: r = true; break;
    }
    return LaneValue::ofInt(APInt(1, r));
}

LaneValue
Machine::evalCastLane(const Instruction *inst, const LaneValue &a)
{
    if (a.poison)
        return LaneValue::ofPoison();
    unsigned dst = inst->type()->scalarType()->intWidth();
    const ir::InstFlags &flags = inst->flags();
    switch (inst->op()) {
      case Opcode::Trunc: {
        APInt t = a.bits.truncTo(dst);
        if (flags.nuw && t.zextTo(a.bits.width()).zext() != a.bits.zext())
            return LaneValue::ofPoison();
        if (flags.nsw && t.sextTo(a.bits.width()).zext() != a.bits.zext())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(t);
      }
      case Opcode::ZExt:
        if (flags.nneg && a.bits.isSignBitSet())
            return LaneValue::ofPoison();
        return LaneValue::ofInt(a.bits.zextTo(dst));
      case Opcode::SExt:
        return LaneValue::ofInt(a.bits.sextTo(dst));
      default:
        assert(false);
        return LaneValue::ofPoison();
    }
}

LaneValue
Machine::evalIntrinsicLane(const Instruction *inst,
                           const std::vector<LaneValue> &args)
{
    Intrinsic intr = inst->intrinsic();
    if (intr == Intrinsic::FAbs) {
        if (args[0].poison)
            return LaneValue::ofPoison();
        return LaneValue::ofFP(std::fabs(args[0].fp));
    }
    if (args[0].poison)
        return LaneValue::ofPoison();
    const APInt &x = args[0].bits;
    unsigned w = x.width();
    switch (intr) {
      case Intrinsic::UMin:
      case Intrinsic::UMax:
      case Intrinsic::SMin:
      case Intrinsic::SMax: {
        if (args[1].poison)
            return LaneValue::ofPoison();
        const APInt &y = args[1].bits;
        switch (intr) {
          case Intrinsic::UMin: return LaneValue::ofInt(x.umin(y));
          case Intrinsic::UMax: return LaneValue::ofInt(x.umax(y));
          case Intrinsic::SMin: return LaneValue::ofInt(x.smin(y));
          default: return LaneValue::ofInt(x.smax(y));
        }
      }
      case Intrinsic::Abs: {
        // args[1] is the is_int_min_poison immarg (i1 constant).
        bool min_poison = !args[1].bits.isZero();
        if (x.isSignedMin())
            return min_poison ? LaneValue::ofPoison() : LaneValue::ofInt(x);
        return LaneValue::ofInt(x.isSignBitSet() ? x.neg() : x);
      }
      case Intrinsic::CtPop:
        return LaneValue::ofInt(APInt(w, x.popCount()));
      case Intrinsic::CtLz: {
        bool zero_poison = !args[1].bits.isZero();
        if (x.isZero() && zero_poison)
            return LaneValue::ofPoison();
        return LaneValue::ofInt(APInt(w, x.countLeadingZeros()));
      }
      case Intrinsic::CtTz: {
        bool zero_poison = !args[1].bits.isZero();
        if (x.isZero() && zero_poison)
            return LaneValue::ofPoison();
        return LaneValue::ofInt(APInt(w, x.countTrailingZeros()));
      }
      case Intrinsic::USubSat: {
        const APInt &y = args[1].bits;
        if (args[1].poison)
            return LaneValue::ofPoison();
        return LaneValue::ofInt(x.ult(y) ? APInt::zero(w) : x.sub(y));
      }
      case Intrinsic::UAddSat: {
        const APInt &y = args[1].bits;
        if (args[1].poison)
            return LaneValue::ofPoison();
        return LaneValue::ofInt(
            x.addOverflowsUnsigned(y) ? APInt::allOnes(w) : x.add(y));
      }
      case Intrinsic::SSubSat: {
        const APInt &y = args[1].bits;
        if (args[1].poison)
            return LaneValue::ofPoison();
        if (x.subOverflowsSigned(y))
            return LaneValue::ofInt(x.sge(y) ? APInt::signedMax(w)
                                             : APInt::signedMin(w));
        return LaneValue::ofInt(x.sub(y));
      }
      case Intrinsic::SAddSat: {
        const APInt &y = args[1].bits;
        if (args[1].poison)
            return LaneValue::ofPoison();
        if (x.addOverflowsSigned(y))
            return LaneValue::ofInt(x.isSignBitSet() ? APInt::signedMin(w)
                                                     : APInt::signedMax(w));
        return LaneValue::ofInt(x.add(y));
      }
      default:
        assert(false && "unhandled intrinsic");
        return LaneValue::ofPoison();
    }
}

bool
Machine::evalInstruction(const Instruction *inst)
{
    unsigned lanes = laneCount(inst->type());
    RtValue out;

    if (inst->isIntBinaryOp()) {
        RtValue a = valueOf(inst->operand(0));
        RtValue b = valueOf(inst->operand(1));
        if (ir::isIntDivRem(inst->op())) {
            for (unsigned i = 0; i < b.lanes.size(); ++i) {
                if (b.lanes[i].poison)
                    return trap("division by poison");
                if (b.lanes[i].bits.isZero())
                    return trap("division by zero");
                bool is_signed = inst->op() == Opcode::SDiv ||
                                 inst->op() == Opcode::SRem;
                if (is_signed && !a.lanes[i].poison &&
                    a.lanes[i].bits.isSignedMin() &&
                    b.lanes[i].bits.isAllOnes())
                    return trap("signed division overflow");
            }
        }
        for (unsigned i = 0; i < lanes; ++i)
            out.lanes.push_back(
                evalIntBinary(inst, a.lanes[i], b.lanes[i]));
        env_[inst] = out;
        return true;
    }

    switch (inst->op()) {
      case Opcode::FAdd: case Opcode::FSub:
      case Opcode::FMul: case Opcode::FDiv: {
        RtValue a = valueOf(inst->operand(0));
        RtValue b = valueOf(inst->operand(1));
        for (unsigned i = 0; i < lanes; ++i)
            out.lanes.push_back(
                evalFPBinary(inst->op(), a.lanes[i], b.lanes[i]));
        break;
      }
      case Opcode::ICmp: {
        RtValue a = valueOf(inst->operand(0));
        RtValue b = valueOf(inst->operand(1));
        for (unsigned i = 0; i < lanes; ++i)
            out.lanes.push_back(
                evalICmpLane(inst->icmpPred(), a.lanes[i], b.lanes[i]));
        break;
      }
      case Opcode::FCmp: {
        RtValue a = valueOf(inst->operand(0));
        RtValue b = valueOf(inst->operand(1));
        for (unsigned i = 0; i < lanes; ++i)
            out.lanes.push_back(
                evalFCmpLane(inst->fcmpPred(), a.lanes[i], b.lanes[i]));
        break;
      }
      case Opcode::Select: {
        RtValue cond = valueOf(inst->operand(0));
        RtValue tval = valueOf(inst->operand(1));
        RtValue fval = valueOf(inst->operand(2));
        bool scalar_cond = inst->operand(0)->type()->isBool();
        for (unsigned i = 0; i < lanes; ++i) {
            const LaneValue &c = scalar_cond ? cond.lanes[0] : cond.lanes[i];
            if (c.poison) {
                out.lanes.push_back(LaneValue::ofPoison());
                continue;
            }
            out.lanes.push_back(c.bits.isZero() ? fval.lanes[i]
                                                : tval.lanes[i]);
        }
        break;
      }
      case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt: {
        RtValue a = valueOf(inst->operand(0));
        for (unsigned i = 0; i < lanes; ++i)
            out.lanes.push_back(evalCastLane(inst, a.lanes[i]));
        break;
      }
      case Opcode::Freeze: {
        RtValue a = valueOf(inst->operand(0));
        const Type *scalar = inst->type()->scalarType();
        for (unsigned i = 0; i < lanes; ++i) {
            LaneValue lane = a.lanes[i];
            if (lane.poison) {
                lane = scalar->isFloat()
                    ? LaneValue::ofFP(0.0)
                    : LaneValue::ofInt(APInt::zero(
                          scalar->isInt() ? scalar->intWidth() : 64));
            }
            out.lanes.push_back(lane);
        }
        break;
      }
      case Opcode::Call: {
        std::vector<RtValue> args;
        for (const Value *operand : inst->operands())
            args.push_back(valueOf(operand));
        for (unsigned i = 0; i < lanes; ++i) {
            std::vector<LaneValue> lane_args;
            for (unsigned a = 0; a < args.size(); ++a) {
                // Scalar immargs (abs/ctlz i1 flag) broadcast.
                lane_args.push_back(args[a].lanes.size() == 1
                                        ? args[a].lanes[0]
                                        : args[a].lanes[i]);
            }
            out.lanes.push_back(evalIntrinsicLane(inst, lane_args));
        }
        break;
      }
      case Opcode::Gep: {
        RtValue base = valueOf(inst->operand(0));
        RtValue index = valueOf(inst->operand(1));
        const LaneValue &b = base.lanes[0];
        const LaneValue &idx = index.lanes[0];
        if (b.poison || idx.poison) {
            out.lanes.push_back(LaneValue::ofPoison());
            break;
        }
        int64_t elem_size = inst->accessType()->storeSizeBytes();
        int64_t offset = static_cast<int64_t>(b.bits.zext()) +
                         idx.bits.sext() * elem_size;
        LaneValue lane = LaneValue::ofPtr(b.object_id,
                                          static_cast<uint64_t>(offset));
        if (inst->flags().inbounds) {
            int64_t size = b.object_id >= 0 &&
                           b.object_id < static_cast<int>(memory_.size())
                ? static_cast<int64_t>(memory_[b.object_id].bytes.size())
                : 0;
            if (offset < 0 || offset > size)
                lane = LaneValue::ofPoison();
        }
        out.lanes.push_back(lane);
        break;
      }
      case Opcode::Load: {
        RtValue ptr = valueOf(inst->operand(0));
        const LaneValue &p = ptr.lanes[0];
        if (p.poison)
            return trap("load from poison pointer");
        if (p.object_id < 0 ||
            p.object_id >= static_cast<int>(memory_.size()))
            return trap("load from non-pointer value");
        const std::vector<uint8_t> &bytes = memory_[p.object_id].bytes;
        uint64_t offset = p.bits.zext();
        unsigned size = inst->type()->storeSizeBytes();
        if (offset + size > bytes.size())
            return trap("out-of-bounds load");
        const Type *scalar = inst->type()->scalarType();
        unsigned elem_size = scalar->storeSizeBytes();
        for (unsigned i = 0; i < lanes; ++i) {
            uint64_t raw = 0;
            std::memcpy(&raw, bytes.data() + offset + i * elem_size,
                        elem_size);
            if (scalar->isFloat()) {
                double d;
                std::memcpy(&d, bytes.data() + offset + i * elem_size, 8);
                out.lanes.push_back(LaneValue::ofFP(d));
            } else {
                out.lanes.push_back(
                    LaneValue::ofInt(APInt(scalar->intWidth(), raw)));
            }
        }
        break;
      }
      case Opcode::Store: {
        RtValue val = valueOf(inst->operand(0));
        RtValue ptr = valueOf(inst->operand(1));
        const LaneValue &p = ptr.lanes[0];
        if (p.poison)
            return trap("store to poison pointer");
        if (p.object_id < 0 ||
            p.object_id >= static_cast<int>(memory_.size()))
            return trap("store to non-pointer value");
        std::vector<uint8_t> &bytes = memory_[p.object_id].bytes;
        uint64_t offset = p.bits.zext();
        const Type *vt = inst->operand(0)->type();
        unsigned size = vt->storeSizeBytes();
        if (offset + size > bytes.size())
            return trap("out-of-bounds store");
        const Type *scalar = vt->scalarType();
        unsigned elem_size = scalar->storeSizeBytes();
        for (unsigned i = 0; i < val.lanes.size(); ++i) {
            const LaneValue &lane = val.lanes[i];
            // Storing poison is allowed; the bytes become arbitrary.
            // We pin them to zero (matches the freeze convention).
            uint64_t raw = 0;
            if (!lane.poison) {
                if (scalar->isFloat())
                    std::memcpy(&raw, &lane.fp, 8);
                else
                    raw = lane.bits.zext();
            }
            std::memcpy(bytes.data() + offset + i * elem_size, &raw,
                        elem_size);
        }
        env_[inst] = RtValue{};
        return true;
      }
      default:
        assert(false && "unhandled opcode in interpreter");
        return trap("internal: unhandled opcode");
    }
    env_[inst] = out;
    return true;
}

ExecutionResult
Machine::run()
{
    const ir::BasicBlock *block = fn_.entry();
    unsigned steps = 0;
    size_t index = 0;
    while (true) {
        if (index >= block->size())
            return result_; // malformed; verifier rejects this earlier
        const Instruction *inst = block->at(index);
        if (++steps > step_limit_) {
            trap("step limit exceeded");
            result_.memory = memory_;
            return result_;
        }
        switch (inst->op()) {
          case Opcode::Ret: {
            if (inst->numOperands() == 1)
                result_.ret = valueOf(inst->operand(0));
            result_.memory = memory_;
            return result_;
          }
          case Opcode::Br: {
            const std::string *label;
            if (inst->numOperands() == 0) {
                label = &inst->brLabels()[0];
            } else {
                RtValue cond = valueOf(inst->operand(0));
                if (cond.scalar().poison) {
                    trap("branch on poison");
                    result_.memory = memory_;
                    return result_;
                }
                label = cond.scalar().bits.isZero() ? &inst->brLabels()[1]
                                                    : &inst->brLabels()[0];
            }
            const ir::BasicBlock *next = fn_.findBlock(*label);
            assert(next && "br to unknown label");
            prev_block_ = block;
            block = next;
            index = 0;
            continue;
          }
          case Opcode::Phi: {
            assert(prev_block_ && "phi in entry block");
            bool matched = false;
            for (unsigned i = 0; i < inst->numOperands(); ++i) {
                if (inst->phiLabels()[i] == prev_block_->label()) {
                    env_[inst] = valueOf(inst->operand(i));
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                trap("phi has no entry for predecessor");
                result_.memory = memory_;
                return result_;
            }
            ++index;
            continue;
          }
          default:
            if (!evalInstruction(inst)) {
                result_.memory = memory_;
                return result_;
            }
            ++index;
        }
    }
}

} // namespace

ExecutionResult
execute(const ir::Function &fn, const ExecutionInput &input,
        unsigned step_limit)
{
    assert(input.args.size() == fn.numArgs() &&
           "argument count mismatch");
    ExecPlan plan = ExecPlan::compile(fn, step_limit);
    ExecFrame frame = plan.makeFrame();
    PlanResult result = plan.run(frame, input);
    return plan.materialize(frame, result);
}

ExecutionResult
executeLegacy(const ir::Function &fn, const ExecutionInput &input,
              unsigned step_limit)
{
    assert(input.args.size() == fn.numArgs() &&
           "argument count mismatch");
    Machine machine(fn, input, step_limit);
    return machine.run();
}

std::string
describeInput(const ir::Function &fn, const ExecutionInput &input)
{
    std::string out;
    for (unsigned i = 0; i < fn.numArgs(); ++i) {
        const ir::Argument *arg = fn.arg(i);
        out += arg->type()->toString() + " %" + arg->name() + " = ";
        const RtValue &v = input.args[i];
        if (arg->type()->isPtr()) {
            int obj = v.scalar().object_id;
            out += "&obj" + std::to_string(obj);
            if (obj >= 0 && obj < static_cast<int>(input.memory.size())) {
                out += " [";
                const auto &bytes = input.memory[obj].bytes;
                for (size_t b = 0; b < bytes.size() && b < 16; ++b) {
                    if (b)
                        out += " ";
                    out += std::to_string(bytes[b]);
                }
                if (bytes.size() > 16)
                    out += " ...";
                out += "]";
            }
        } else {
            for (size_t lane = 0; lane < v.lanes.size(); ++lane) {
                if (lane)
                    out += ", ";
                const LaneValue &lv = v.lanes[lane];
                if (lv.poison)
                    out += "poison";
                else if (lv.is_fp)
                    out += std::to_string(lv.fp);
                else
                    out += lv.bits.toString();
            }
        }
        out += "\n";
    }
    return out;
}

std::string
describeResult(const ExecutionResult &result)
{
    if (result.ub)
        return "UB (" + result.ub_reason + ")";
    if (!result.ret)
        return "void";
    std::string out;
    for (size_t lane = 0; lane < result.ret->lanes.size(); ++lane) {
        if (lane)
            out += ", ";
        const LaneValue &lv = result.ret->lanes[lane];
        if (lv.poison)
            out += "poison";
        else if (lv.is_fp)
            out += std::to_string(lv.fp);
        else
            out += lv.bits.toString();
    }
    return out;
}

} // namespace lpo::interp
