/**
 * @file
 * The simulated LLM (offline substitute for the paper's API models).
 *
 * Mechanism, not lookup table: the model parses the IR it is given,
 * pattern-matches its private rewrite library (rule set B) against it,
 * and emits the rewrite as text. The capability profile governs
 *  - whether the model spots the applicable pattern at all
 *    (skill vs. pattern difficulty, seeded RNG per round);
 *  - hallucinations: a found rewrite may be emitted with a syntax
 *    error (bare `smax` opcode, exactly the paper's Fig. 3b) or with a
 *    semantic slip (perturbed constant);
 *  - repair: on a second attempt with verifier feedback, reasoning
 *    models usually correct the mistake — non-reasoning models often
 *    do not. This is the mechanism behind the LPO vs LPO- gap.
 *
 * Latency and token cost are modeled per profile for RQ3.
 */
#ifndef LPO_LLM_MOCK_MODEL_H
#define LPO_LLM_MOCK_MODEL_H

#include "llm/client.h"
#include "llm/model_profile.h"

namespace lpo::llm {

/** Deterministic simulated model. */
class MockModel : public LlmClient
{
  public:
    explicit MockModel(ModelProfile profile, uint64_t session_seed = 1)
        : profile_(std::move(profile)), session_seed_(session_seed)
    {}

    const std::string &name() const override { return profile_.name; }
    const ModelProfile &profile() const { return profile_; }

    LlmResponse complete(const LlmRequest &request) override;

  private:
    ModelProfile profile_;
    uint64_t session_seed_;
};

/**
 * Corrupt IR text with an invalid-opcode spelling (Fig. 3b style):
 * the first intrinsic call becomes a bare pseudo-instruction.
 * Exposed for testing.
 */
std::string injectSyntaxError(const std::string &text);

/** Corrupt IR text semantically (perturb a constant / drop a flag). */
std::string injectSemanticError(const std::string &text);

} // namespace lpo::llm

#endif // LPO_LLM_MOCK_MODEL_H
