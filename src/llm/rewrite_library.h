/**
 * @file
 * Rewrite library: "rule set B", the mock models' optimization
 * knowledge.
 *
 * Each rule is a generalized pattern matcher + rewriter covering one
 * family of missed optimizations (any width, scalar or vector,
 * arbitrary constants satisfying the side conditions). The in-tree
 * InstCombine ("rule set A") deliberately lacks these rules, so every
 * match is a genuine missed optimization of this compiler — the same
 * relationship the paper's 25 GitHub issues have to LLVM.
 *
 * The mock LLM applies its rule subset to the function under
 * optimization and emits the rewrite as text; the capability profile
 * decides which rules the model "sees" and whether the emission is
 * corrupted (hallucination).
 */
#ifndef LPO_LLM_REWRITE_LIBRARY_H
#define LPO_LLM_REWRITE_LIBRARY_H

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/function.h"

namespace lpo::llm {

/** One optimization pattern in the library. */
struct RewriteRule
{
    std::string family;   ///< matches corpus::MissedOptBenchmark::family
    double difficulty;    ///< how hard the pattern is to spot [0,1]; 2.0
                          ///< marks rules beyond current models
    /**
     * Try the rule on @p fn; on success return the rewritten function
     * as IR text (same signature, function renamed to @p fn's name).
     */
    std::function<std::optional<std::string>(const ir::Function &)> apply;
};

/** The full library, ordered by increasing difficulty. */
const std::vector<RewriteRule> &rewriteLibrary();

/** The value returned by a single-exit function (nullptr for void). */
ir::Value *returnedValue(const ir::Function &fn);

/**
 * Builds a rewritten function with the source's signature. Shared by
 * the library rules and the e-graph's algebraic rule set
 * (egraph/rules.cc).
 */
class Rewriter
{
  public:
    explicit Rewriter(const ir::Function &src);

    ir::Builder &b() { return *builder_; }
    ir::Context &ctx() { return src_.context(); }

    /** Map a source argument / constant into the new function. */
    ir::Value *map(ir::Value *v);

    /**
     * Materialize @p v in the new function, recursively cloning its
     * defining instruction chain. This lets a rule fire when the
     * pattern's leaves are loads/geps or other computations rather
     * than bare arguments (e.g. the Fig. 1d vector body, where the
     * clamped value is a wide load).
     */
    ir::Value *take(ir::Value *v);

    std::string finish(ir::Value *result);

  private:
    const ir::Function &src_;
    std::unique_ptr<ir::Function> out_;
    ir::BasicBlock *block_ = nullptr;
    std::unique_ptr<ir::Builder> builder_;
    std::map<ir::Value *, ir::Value *> cloned_;
};

} // namespace lpo::llm

#endif // LPO_LLM_REWRITE_LIBRARY_H
