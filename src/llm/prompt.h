/**
 * @file
 * Prompt construction for the optimizer loop (paper Fig. 2, "System
 * Prompt"). The mock model does not read natural language, but the
 * prompts are materialized anyway so logs and token/cost accounting
 * match what a real API deployment would send.
 */
#ifndef LPO_LLM_PROMPT_H
#define LPO_LLM_PROMPT_H

#include <string>

namespace lpo::llm {

/** The fixed system prompt from the paper's workflow figure. */
const std::string &systemPrompt();

/** Assemble the user prompt for one attempt. */
std::string buildUserPrompt(const std::string &function_text,
                            const std::string &feedback);

} // namespace lpo::llm

#endif // LPO_LLM_PROMPT_H
