#include "llm/client.h"

namespace lpo::llm {

uint64_t
estimateTokens(const std::string &text)
{
    return (text.size() + 3) / 4;
}

} // namespace lpo::llm
