#include "llm/mock_model.h"

#include <cctype>
#include <cstring>
#include <algorithm>

#include "ir/parser.h"
#include "ir/pattern.h"
#include "ir/printer.h"
#include "llm/prompt.h"
#include "llm/rewrite_library.h"
#include "support/rng.h"
#include "support/string_utils.h"

namespace lpo::llm {

namespace {

bool
hasVectorType(const ir::Function &fn)
{
    for (const auto &arg : fn.args())
        if (arg->type()->isVector())
            return true;
    for (const auto &bb : fn.blocks())
        for (const auto &inst : bb->instructions())
            if (inst->type()->isVector())
                return true;
    return false;
}

} // namespace

std::string
injectSyntaxError(const std::string &text)
{
    // Turn "%x = [tail ]call <ty> @llvm.NAME.SUFFIX(<ty> a, <ty> b)"
    // into "%x = NAME <ty> a, b" — the exact hallucination of Fig. 3b.
    size_t call_pos = text.find("call ");
    size_t at_pos = text.find("@llvm.", call_pos);
    if (call_pos != std::string::npos && at_pos != std::string::npos) {
        size_t name_begin = at_pos + 6;
        size_t name_end = name_begin;
        while (name_end < text.size() &&
               (std::isalpha(static_cast<unsigned char>(text[name_end])) ||
                text[name_end] == '.'))
            ++name_end;
        std::string sym = text.substr(name_begin, name_end - name_begin);
        // Base name without the type suffix ("umin.i32" -> "umin").
        size_t dot = sym.find('.');
        std::string base = dot == std::string::npos ? sym
                                                    : sym.substr(0, dot);
        size_t line_begin = text.rfind('\n', call_pos);
        line_begin = line_begin == std::string::npos ? 0 : line_begin + 1;
        size_t tail_pos = text.rfind("tail call", call_pos);
        size_t stmt_pos = (tail_pos != std::string::npos &&
                           tail_pos >= line_begin)
                              ? tail_pos
                              : call_pos;
        size_t open = text.find('(', at_pos);
        size_t close = text.find(')', open);
        if (open != std::string::npos && close != std::string::npos) {
            std::string args = text.substr(open + 1, close - open - 1);
            // Drop the per-argument types after the first one so the
            // result reads like a malformed binary op.
            std::string replacement = base + " " + args;
            return text.substr(0, stmt_pos) + replacement +
                   text.substr(close + 1);
        }
    }
    // No intrinsic call: misspell the first opcode after an '='.
    size_t eq = text.find("= ");
    if (eq != std::string::npos) {
        size_t op_begin = eq + 2;
        size_t op_end = op_begin;
        while (op_end < text.size() &&
               std::isalpha(static_cast<unsigned char>(text[op_end])))
            ++op_end;
        return text.substr(0, op_begin) + "v" +
               text.substr(op_begin, op_end - op_begin) +
               text.substr(op_end);
    }
    return text + "\n%broken";
}

std::string
injectSemanticError(const std::string &text)
{
    // Perturb the last integer constant in the body (+1); if none,
    // drop a poison-flag keyword, silently changing semantics.
    size_t body = text.find('{');
    if (body == std::string::npos)
        body = 0;
    for (size_t i = text.size(); i > body + 1; --i) {
        size_t pos = i - 1;
        if (!std::isdigit(static_cast<unsigned char>(text[pos])))
            continue;
        // Expand to the full number.
        size_t end = pos + 1;
        size_t begin = pos;
        while (begin > body &&
               std::isdigit(static_cast<unsigned char>(text[begin - 1])))
            --begin;
        // Only perturb literal operands: a constant is preceded by a
        // space (or a unary minus after a space). Anything else is a
        // register name (%t0), type width (i32), suffix, or label.
        bool literal = false;
        if (begin > 0 && text[begin - 1] == ' ')
            literal = true;
        if (begin > 1 && text[begin - 1] == '-' &&
            text[begin - 2] == ' ')
            literal = true;
        if (!literal)
            continue;
        if (begin >= 6 && text.substr(begin - 6, 6) == "align ")
            continue;
        long value = std::stol(text.substr(begin, end - begin));
        return text.substr(0, begin) + std::to_string(value + 1) +
               text.substr(end);
    }
    for (const char *flag : {" nuw", " nsw", " disjoint", " exact"}) {
        size_t pos = text.find(flag);
        if (pos != std::string::npos)
            return text.substr(0, pos) + text.substr(pos + strlen(flag));
    }
    return text;
}

LlmResponse
MockModel::complete(const LlmRequest &request)
{
    LlmResponse response;
    std::string user_prompt =
        buildUserPrompt(request.function_text, request.feedback);
    response.prompt_tokens = estimateTokens(systemPrompt()) +
                             estimateTokens(user_prompt);

    ir::Context context;
    auto parsed = ir::parseFunction(context, request.function_text);

    // Deterministic stream per (model, round-seed, function).
    uint64_t fn_digest = parsed ? ir::structuralHash(**parsed)
                                : fnv1a64(request.function_text);
    Rng rng(session_seed_ ^ (request.seed * 0x9e3779b97f4a7c15ull) ^
            fn_digest ^ fnv1a64(profile_.name));

    auto finalize = [&](std::string text) {
        response.completion_tokens = estimateTokens(text);
        double jitter = 0.75 + 0.5 * rng.nextDouble();
        response.latency_seconds = profile_.latency_seconds * jitter;
        if (!profile_.local) {
            response.cost_usd =
                response.prompt_tokens * profile_.usd_per_mtok_in / 1e6 +
                response.completion_tokens * profile_.usd_per_mtok_out /
                    1e6;
        }
        response.text = std::move(text);
        return response;
    };

    if (!parsed) {
        // Even a weak model echoes something plausible.
        return finalize(request.function_text);
    }
    const ir::Function &fn = **parsed;

    // Find the applicable rewrite (the model's "insight").
    const RewriteRule *found = nullptr;
    std::string rewrite;
    for (const RewriteRule &rule : rewriteLibrary()) {
        if (auto text = rule.apply(fn)) {
            found = &rule;
            rewrite = std::move(*text);
            break;
        }
    }

    bool retrying = !request.feedback.empty();
    if (!found) {
        // Nothing in the model's knowledge matches: it answers with
        // the original function ("already optimal").
        return finalize(ir::printFunction(fn));
    }

    double difficulty = found->difficulty;
    if (hasVectorType(fn))
        difficulty += 0.20; // wide IR is harder to reason about
    double p_find = profile_.findProbability(difficulty);
    if (retrying)
        p_find = std::min(0.97, p_find + 0.10); // feedback focuses search

    if (!rng.chance(p_find))
        return finalize(ir::printFunction(fn)); // pattern not spotted

    // The model has the right idea; emission may still be corrupted.
    bool corrupt_syntax = rng.chance(profile_.syntax_error_rate);
    bool corrupt_semantics =
        !corrupt_syntax && rng.chance(profile_.semantic_error_rate);
    if (retrying) {
        // With concrete feedback, a capable model repairs the output.
        if (rng.chance(profile_.repair_skill)) {
            corrupt_syntax = false;
            corrupt_semantics = false;
        }
    }
    if (corrupt_syntax)
        return finalize(injectSyntaxError(rewrite));
    if (corrupt_semantics)
        return finalize(injectSemanticError(rewrite));
    return finalize(rewrite);
}

} // namespace lpo::llm
