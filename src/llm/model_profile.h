/**
 * @file
 * Model capability profiles (paper Table 1).
 *
 * Each profile calibrates the simulated model's behaviour:
 *  - skill: how hard a pattern it can spot (matched against each
 *    benchmark's difficulty);
 *  - error rates: how often a correct idea is emitted with a syntax
 *    error (invalid opcode spelling, Fig. 3b) or a semantic slip
 *    (wrong constant / dropped flag);
 *  - repair skill: how well verifier feedback is converted into a fix
 *    (this is what separates LPO from LPO-);
 *  - latency / price: drive the RQ3 throughput and cost table.
 */
#ifndef LPO_LLM_MODEL_PROFILE_H
#define LPO_LLM_MODEL_PROFILE_H

#include <string>
#include <vector>

namespace lpo::llm {

/** Static description + calibration of one model. */
struct ModelProfile
{
    std::string name;          ///< e.g. "Gemini2.0T"
    std::string version;       ///< e.g. "gemini-2.0-flash-thinking-..."
    bool reasoning = false;
    std::string cutoff;        ///< knowledge cut-off date
    bool local = false;        ///< locally deployed vs API

    double skill = 0.5;            ///< pattern-spotting ability [0,1]
    double syntax_error_rate = 0.2;
    double semantic_error_rate = 0.1;
    double repair_skill = 0.5;     ///< P(fix | feedback)

    double latency_seconds = 5.0;  ///< per completion
    double usd_per_mtok_in = 0.1;
    double usd_per_mtok_out = 0.4;

    /** Success probability against a pattern of @p difficulty. */
    double findProbability(double difficulty) const;
};

/** The Table 1 registry. */
const std::vector<ModelProfile> &modelRegistry();

/** Look up a profile by display name (aborts if unknown). */
const ModelProfile &modelByName(const std::string &name);

} // namespace lpo::llm

#endif // LPO_LLM_MODEL_PROFILE_H
