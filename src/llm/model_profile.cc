#include "llm/model_profile.h"

#include <algorithm>
#include <cassert>

namespace lpo::llm {

double
ModelProfile::findProbability(double difficulty) const
{
    // Linear logit around the model's skill; benchmarks with
    // difficulty 2.0 are beyond every model by construction.
    double p = (skill - difficulty) * 2.5 + 0.5;
    return std::clamp(p, 0.0, 0.97);
}

const std::vector<ModelProfile> &
modelRegistry()
{
    static const std::vector<ModelProfile> registry = [] {
        std::vector<ModelProfile> models;
        // name, version, reasoning, cutoff, local,
        // skill, syn_err, sem_err, repair, latency, $/Mtok in, out
        models.push_back({"Gemma3", "gemma3:27b", false, "08/2024", true,
                          0.20, 0.25, 0.15, 0.20, 14.0, 0.0, 0.0});
        models.push_back({"Llama3.3", "llama3.3:70b", false, "12/2023",
                          true, 0.55, 0.25, 0.10, 0.80, 24.0, 0.0, 0.0});
        models.push_back({"Gemini2.0", "gemini-2.0-flash", false,
                          "08/2024", false, 0.55, 0.20, 0.08, 0.85, 4.2,
                          0.10, 0.40});
        models.push_back({"Gemini2.0T",
                          "gemini-2.0-flash-thinking-exp-01-21", true,
                          "08/2024", false, 0.78, 0.28, 0.07, 0.95, 8.5,
                          0.10, 0.40});
        models.push_back({"GPT-4.1", "gpt-4.1-2025-04-14", false,
                          "06/2024", false, 0.55, 0.45, 0.30, 0.85, 5.5,
                          2.00, 8.00});
        models.push_back({"o4-mini", "o4-mini-2025-04-16", true,
                          "06/2024", false, 0.73, 0.25, 0.08, 0.90, 11.0,
                          1.10, 4.40});
        models.push_back({"Gemini2.5", "gemini-2.5-flash-lite", true,
                          "01/2025", false, 0.62, 0.08, 0.05, 0.80, 4.8,
                          0.10, 0.40});
        return models;
    }();
    return registry;
}

const ModelProfile &
modelByName(const std::string &name)
{
    for (const ModelProfile &model : modelRegistry())
        if (model.name == name)
            return model;
    assert(false && "unknown model name");
    return modelRegistry().front();
}

} // namespace lpo::llm
