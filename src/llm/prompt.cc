#include "llm/prompt.h"

namespace lpo::llm {

const std::string &
systemPrompt()
{
    static const std::string prompt =
        "If the provided instruction sequence is suboptimal, output the "
        "optimal and correct implementation. If the result is incorrect, "
        "revise it based on the provided feedback. Keep the function "
        "signature unchanged and answer with LLVM IR only.";
    return prompt;
}

std::string
buildUserPrompt(const std::string &function_text,
                const std::string &feedback)
{
    std::string prompt = "```llvm\n" + function_text + "```\n";
    if (!feedback.empty()) {
        prompt += "\nYour previous attempt was rejected with the "
                  "following feedback:\n" + feedback +
                  "\nPlease produce a corrected optimal function.\n";
    }
    return prompt;
}

} // namespace lpo::llm
