/**
 * @file
 * The LLM client abstraction.
 *
 * The paper drives commercial LLM APIs; offline we simulate them (see
 * DESIGN.md, Substitutions). The interface mirrors what the pipeline
 * needs: given a prompt containing an IR function (and optionally
 * feedback from a failed attempt), return candidate IR text, plus the
 * latency and token cost the call would have incurred — those feed the
 * RQ3 throughput/cost accounting.
 */
#ifndef LPO_LLM_CLIENT_H
#define LPO_LLM_CLIENT_H

#include <cstdint>
#include <string>

namespace lpo::llm {

/** One model invocation's request. */
struct LlmRequest
{
    std::string system_prompt;
    std::string function_text; ///< the IR to optimize
    std::string feedback;      ///< error/counterexample from last attempt
    uint64_t seed = 0;         ///< per-round nonce for reproducibility
};

/** One model invocation's response. */
struct LlmResponse
{
    std::string text;          ///< proposed function (IR text)
    double latency_seconds = 0.0;
    double cost_usd = 0.0;
    uint64_t prompt_tokens = 0;
    uint64_t completion_tokens = 0;
};

/** Abstract client; the mock model is the offline implementation. */
class LlmClient
{
  public:
    virtual ~LlmClient() = default;

    /** Model display name (Table 1's "Model Name"). */
    virtual const std::string &name() const = 0;

    /**
     * Run one completion.
     *
     * MUST be safe to call concurrently from multiple threads:
     * core::Pipeline::processModule fans sequences out over a worker
     * pool (PipelineConfig::num_threads) and shares one client across
     * workers. MockModel is stateless per call; implementations with
     * internal state (sessions, caches, accounting) need their own
     * synchronization.
     */
    virtual LlmResponse complete(const LlmRequest &request) = 0;
};

/** Rough token count of a text (4 chars/token heuristic). */
uint64_t estimateTokens(const std::string &text);

} // namespace lpo::llm

#endif // LPO_LLM_CLIENT_H
