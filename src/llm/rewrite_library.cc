#include "llm/rewrite_library.h"

#include <algorithm>
#include <map>

#include "ir/builder.h"
#include "ir/pattern.h"
#include "ir/printer.h"

namespace lpo::llm {

using ir::Argument;
using ir::Builder;
using ir::Context;
using ir::ICmpPred;
using ir::InstFlags;
using ir::Instruction;
using ir::Intrinsic;
using ir::Opcode;
using ir::Type;
using ir::Value;

ir::Value *
returnedValue(const ir::Function &fn)
{
    for (const auto &bb : fn.blocks()) {
        const Instruction *term = bb->terminator();
        if (term && term->op() == Opcode::Ret && term->numOperands() == 1)
            return term->operand(0);
    }
    return nullptr;
}

Rewriter::Rewriter(const ir::Function &src)
    : src_(src),
      out_(std::make_unique<ir::Function>(src.context(), src.name(),
                                          src.returnType()))
{
    for (const auto &arg : src.args())
        out_->addArg(arg->type(), arg->name());
    block_ = out_->addBlock("entry");
    builder_ = std::make_unique<Builder>(*out_, block_);
}

Value *
Rewriter::map(Value *v)
{
    if (v->kind() == Value::Kind::Argument)
        return out_->arg(static_cast<Argument *>(v)->index());
    return v; // constants are shared via the Context
}

Value *
Rewriter::take(Value *v)
{
    if (v->kind() == Value::Kind::Argument)
        return map(v);
    if (v->isConstant())
        return v;
    auto it = cloned_.find(v);
    if (it != cloned_.end())
        return it->second;
    auto *inst = static_cast<Instruction *>(v);
    std::vector<Value *> operands;
    operands.reserve(inst->numOperands());
    for (Value *operand : inst->operands())
        operands.push_back(take(operand));
    auto copy = std::make_unique<Instruction>(
        inst->op(), inst->type(), std::move(operands));
    copy->flags() = inst->flags();
    copy->setICmpPred(inst->icmpPred());
    copy->setFCmpPred(inst->fcmpPred());
    copy->setIntrinsic(inst->intrinsic());
    copy->setAccessType(inst->accessType());
    copy->setAlign(inst->align());
    copy->setName("p" + std::to_string(cloned_.size()));
    Instruction *placed = block_->append(std::move(copy));
    cloned_[v] = placed;
    return placed;
}

std::string
Rewriter::finish(Value *result)
{
    builder_->ret(result);
    out_->numberValues();
    return ir::printFunction(*out_);
}

namespace {

using ir::typedConst;

// ---------------- individual rules ----------------

std::optional<std::string>
rwClampUMin(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    if (!ret)
        return std::nullopt;
    Value *cond, *tval, *fval;
    Value *select_v = ret;
    Instruction *trunc_inst = nullptr;
    // Optional trailing trunc above the select or below it: the
    // canonical Fig. 1 form has the trunc inside the select's arm.
    if (!ir::matchSelect(select_v, &cond, &tval, &fval))
        return std::nullopt;
    ICmpPred pred;
    Value *cx, *cy;
    if (!ir::matchICmp(cond, &pred, &cx, &cy) || pred != ICmpPred::SLT ||
        !ir::isZeroInt(cy) || !ir::isZeroInt(tval))
        return std::nullopt;
    // fval is umin(x, C) or trunc nuw (umin(x, C)).
    Value *umin_v = fval;
    Value *mx, *mc;
    if (ir::matchCast(fval, Opcode::Trunc, &umin_v)) {
        trunc_inst = static_cast<Instruction *>(fval);
        if (!trunc_inst->flags().nuw)
            return std::nullopt;
    }
    if (!ir::matchIntrinsic2(umin_v, Intrinsic::UMin, &mx, &mc))
        return std::nullopt;
    APInt limit;
    if (mx != cx || !ir::matchConstInt(mc, &limit))
        return std::nullopt;

    Rewriter rw(fn);
    Value *x = rw.take(cx);
    Value *smax = rw.b().smax(x, rw.ctx().getNullValue(x->type()));
    Value *umin = rw.b().umin(smax, rw.take(mc));
    Value *result = umin;
    if (trunc_inst) {
        InstFlags flags;
        flags.nuw = true;
        result = rw.b().cast(Opcode::Trunc, umin, trunc_inst->type(),
                             flags);
    }
    return rw.finish(result);
}

std::optional<std::string>
rwLoadMerge(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    if (!ret)
        return std::nullopt;
    Value *shl_v, *zlo_v;
    if (!ir::matchBinary(ret, Opcode::Or, &shl_v, &zlo_v))
        return std::nullopt;
    if (!static_cast<Instruction *>(ret)->flags().disjoint)
        return std::nullopt;
    Value *zhi_v, *shamt_v;
    if (!ir::matchBinary(shl_v, Opcode::Shl, &zhi_v, &shamt_v))
        return std::nullopt;
    Value *hi_load_v, *lo_load_v;
    if (!ir::matchCast(zhi_v, Opcode::ZExt, &hi_load_v) ||
        !ir::matchCast(zlo_v, Opcode::ZExt, &lo_load_v))
        return std::nullopt;
    APInt shamt;
    if (!ir::matchConstInt(shamt_v, &shamt))
        return std::nullopt;
    if (hi_load_v->kind() != Value::Kind::Instruction ||
        lo_load_v->kind() != Value::Kind::Instruction)
        return std::nullopt;
    auto *hi_load = static_cast<Instruction *>(hi_load_v);
    auto *lo_load = static_cast<Instruction *>(lo_load_v);
    if (hi_load->op() != Opcode::Load || lo_load->op() != Opcode::Load)
        return std::nullopt;
    const Type *half = lo_load->type();
    if (hi_load->type() != half || !half->isInt())
        return std::nullopt;
    unsigned half_bits = half->intWidth();
    if (shamt.zext() != half_bits ||
        ret->type()->intWidth() != half_bits * 2)
        return std::nullopt;
    // lo load from %p, hi load from gep(%p, half_bits/8 bytes).
    Value *base = lo_load->operand(0);
    Value *hi_ptr = hi_load->operand(0);
    if (hi_ptr->kind() != Value::Kind::Instruction)
        return std::nullopt;
    auto *gep = static_cast<Instruction *>(hi_ptr);
    if (gep->op() != Opcode::Gep || gep->operand(0) != base)
        return std::nullopt;
    APInt offset;
    if (!ir::matchConstInt(gep->operand(1), &offset))
        return std::nullopt;
    unsigned elem_bytes = gep->accessType()->storeSizeBytes();
    if (offset.zext() * elem_bytes != half_bits / 8)
        return std::nullopt;

    Rewriter rw(fn);
    Value *merged = rw.b().load(ret->type(), rw.take(base),
                                lo_load->align());
    return rw.finish(merged);
}

std::optional<std::string>
rwUMaxShl(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    if (!ret)
        return std::nullopt;
    Value *shl_v, *c2_v;
    if (!ir::matchIntrinsic2(ret, Intrinsic::UMax, &shl_v, &c2_v))
        return std::nullopt;
    Value *inner_v, *k_v;
    if (!ir::matchBinary(shl_v, Opcode::Shl, &inner_v, &k_v) ||
        !static_cast<Instruction *>(shl_v)->flags().nuw)
        return std::nullopt;
    Value *x, *c1_v;
    if (!ir::matchIntrinsic2(inner_v, Intrinsic::UMax, &x, &c1_v))
        return std::nullopt;
    APInt c1, c2, k;
    if (!ir::matchConstInt(c1_v, &c1) || !ir::matchConstInt(c2_v, &c2) ||
        !ir::matchConstInt(k_v, &k))
        return std::nullopt;
    unsigned width = c1.width();
    if (k.zext() >= width || c1.shlOverflowsUnsigned(
            static_cast<unsigned>(k.zext())))
        return std::nullopt;
    if (!c1.shl(static_cast<unsigned>(k.zext())).ule(c2))
        return std::nullopt;

    Rewriter rw(fn);
    InstFlags flags;
    flags.nuw = true;
    Value *shl = rw.b().shl(rw.take(x), rw.take(k_v), flags);
    Value *result = rw.b().umax(shl, rw.take(c2_v));
    return rw.finish(result);
}

std::optional<std::string>
rwFcmpOrdSelect(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    if (!ret || ret->kind() != Value::Kind::Instruction)
        return std::nullopt;
    auto *cmp = static_cast<Instruction *>(ret);
    if (cmp->op() != Opcode::FCmp || cmp->fcmpPred() != ir::FCmpPred::OEQ)
        return std::nullopt;
    Value *sel_v = cmp->operand(0);
    Value *cmp_const = cmp->operand(1);
    if (cmp_const->kind() != Value::Kind::ConstFP ||
        static_cast<ir::ConstantFP *>(cmp_const)->value() == 0.0)
        return std::nullopt;
    Value *cond, *tval, *fval;
    if (!ir::matchSelect(sel_v, &cond, &tval, &fval))
        return std::nullopt;
    if (cond->kind() != Value::Kind::Instruction)
        return std::nullopt;
    auto *ord = static_cast<Instruction *>(cond);
    if (ord->op() != Opcode::FCmp || ord->fcmpPred() != ir::FCmpPred::ORD)
        return std::nullopt;
    Value *x = ord->operand(0);
    if (tval != x)
        return std::nullopt;
    if (fval->kind() != Value::Kind::ConstFP ||
        static_cast<ir::ConstantFP *>(fval)->value() != 0.0)
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().fcmp(ir::FCmpPred::OEQ, rw.take(x), cmp_const);
    return rw.finish(result);
}

std::optional<std::string>
rwSubAddCmp(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    ICmpPred pred;
    Value *sub_v, *add_v;
    if (!ret || !ir::matchICmp(ret, &pred, &sub_v, &add_v) ||
        pred != ICmpPred::SGT)
        return std::nullopt;
    Value *sa, *sb, *aa, *ab;
    if (!ir::matchBinary(sub_v, Opcode::Sub, &sa, &sb) ||
        !ir::matchBinary(add_v, Opcode::Add, &aa, &ab))
        return std::nullopt;
    if (!static_cast<Instruction *>(sub_v)->flags().nsw ||
        !static_cast<Instruction *>(add_v)->flags().nsw)
        return std::nullopt;
    bool operands_match = (sa == aa && sb == ab) || (sa == ab && sb == aa);
    if (!operands_match)
        return std::nullopt;

    Rewriter rw(fn);
    Value *b = rw.take(sb);
    Value *result = rw.b().icmp(ICmpPred::SLT, b,
                                rw.ctx().getNullValue(b->type()));
    return rw.finish(result);
}

std::optional<std::string>
rwAddSignbit(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *x, *c_v;
    if (!ret || !ir::matchBinary(ret, Opcode::Add, &x, &c_v))
        return std::nullopt;
    APInt c;
    if (!ir::matchConstInt(c_v, &c) || !c.isSignedMin())
        return std::nullopt;
    if (static_cast<Instruction *>(ret)->flags().nuw ||
        static_cast<Instruction *>(ret)->flags().nsw)
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().xorOp(rw.take(x), rw.take(c_v));
    return rw.finish(result);
}

std::optional<std::string>
rwICmpLshr(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    ICmpPred pred;
    Value *shift_v, *zero_v;
    if (!ret || !ir::matchICmp(ret, &pred, &shift_v, &zero_v) ||
        pred != ICmpPred::EQ || !ir::isZeroInt(zero_v))
        return std::nullopt;
    Value *x, *k_v;
    if (!ir::matchBinary(shift_v, Opcode::LShr, &x, &k_v))
        return std::nullopt;
    APInt k;
    if (!ir::matchConstInt(k_v, &k) || k.isZero() ||
        k.zext() >= k.width())
        return std::nullopt;

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    APInt bound = APInt::one(k.width()).shl(
        static_cast<unsigned>(k.zext()));
    Value *result = rw.b().icmp(
        ICmpPred::ULT, xx, typedConst(rw.ctx(), xx->type(), bound));
    return rw.finish(result);
}

std::optional<std::string>
rwUMinZext(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *z_v, *c_v;
    if (!ret || !ir::matchIntrinsic2(ret, Intrinsic::UMin, &z_v, &c_v))
        return std::nullopt;
    Value *x;
    if (!ir::matchCast(z_v, Opcode::ZExt, &x))
        return std::nullopt;
    APInt c;
    if (!ir::matchConstInt(c_v, &c))
        return std::nullopt;
    unsigned narrow = x->type()->scalarType()->intWidth();
    APInt narrow_max = APInt::allOnes(narrow).zextTo(c.width());
    if (!c.uge(narrow_max))
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().zext(rw.take(x), ret->type());
    return rw.finish(result);
}

std::optional<std::string>
rwUSubSat(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *cond, *tval, *fval;
    if (!ret || !ir::matchSelect(ret, &cond, &tval, &fval) ||
        !ir::isZeroInt(fval))
        return std::nullopt;
    ICmpPred pred;
    Value *cx, *cy;
    if (!ir::matchICmp(cond, &pred, &cx, &cy))
        return std::nullopt;
    Value *sx, *sy;
    if (!ir::matchBinary(tval, Opcode::Sub, &sx, &sy))
        return std::nullopt;
    bool gt_form = (pred == ICmpPred::UGT && cx == sx && cy == sy) ||
                   (pred == ICmpPred::ULT && cx == sy && cy == sx) ||
                   (pred == ICmpPred::UGE && cx == sx && cy == sy);
    if (!gt_form)
        return std::nullopt;
    // uge also works: x == y gives sub == 0 == the select's else value.

    Rewriter rw(fn);
    Value *result = rw.b().intrinsic(Intrinsic::USubSat,
                                     {rw.take(sx), rw.take(sy)});
    return rw.finish(result);
}

std::optional<std::string>
rwUMaxSub(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *max_v, *y1;
    if (!ret || !ir::matchBinary(ret, Opcode::Sub, &max_v, &y1))
        return std::nullopt;
    Value *x, *y2;
    if (!ir::matchIntrinsic2(max_v, Intrinsic::UMax, &x, &y2))
        return std::nullopt;
    if (y2 == y1) {
        // umax(x, y) - y
    } else if (x == y1) {
        std::swap(x, y2); // umax(y, x) - y
    } else {
        return std::nullopt;
    }

    Rewriter rw(fn);
    Value *result = rw.b().intrinsic(Intrinsic::USubSat,
                                     {rw.take(x), rw.take(y1)});
    return rw.finish(result);
}

std::optional<std::string>
rwUMinIdem(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *inner_v, *z;
    if (!ret || !ir::matchIntrinsic2(ret, Intrinsic::UMin, &inner_v, &z))
        return std::nullopt;
    Value *x, *y;
    if (!ir::matchIntrinsic2(inner_v, Intrinsic::UMin, &x, &y))
        return std::nullopt;
    if (z != x && z != y)
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().umin(rw.take(x), rw.take(y));
    return rw.finish(result);
}

std::optional<std::string>
rwTruncAnd(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *and_v;
    if (!ret || !ir::matchCast(ret, Opcode::Trunc, &and_v))
        return std::nullopt;
    if (static_cast<Instruction *>(ret)->flags().nuw ||
        static_cast<Instruction *>(ret)->flags().nsw)
        return std::nullopt;
    Value *x, *m_v;
    if (!ir::matchBinary(and_v, Opcode::And, &x, &m_v))
        return std::nullopt;
    APInt mask;
    if (!ir::matchConstInt(m_v, &mask))
        return std::nullopt;
    unsigned narrow = ret->type()->scalarType()->intWidth();
    APInt needed = APInt::allOnes(narrow).zextTo(mask.width());
    if (!mask.andOp(needed).eq(needed))
        return std::nullopt; // mask must keep all narrow bits

    Rewriter rw(fn);
    Value *result = rw.b().trunc(rw.take(x), ret->type());
    return rw.finish(result);
}

std::optional<std::string>
rwNegSub(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *zero_v, *inner_v;
    if (!ret || !ir::matchBinary(ret, Opcode::Sub, &zero_v, &inner_v) ||
        !ir::isZeroInt(zero_v))
        return std::nullopt;
    if (static_cast<Instruction *>(ret)->flags().nsw ||
        static_cast<Instruction *>(ret)->flags().nuw)
        return std::nullopt;
    Value *x, *y;
    if (!ir::matchBinary(inner_v, Opcode::Sub, &x, &y))
        return std::nullopt;
    auto *inner = static_cast<Instruction *>(inner_v);
    if (inner->flags().nsw || inner->flags().nuw)
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().sub(rw.take(y), rw.take(x));
    return rw.finish(result);
}

std::optional<std::string>
rwSMaxAbs(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *a, *b;
    if (!ret || !ir::matchIntrinsic2(ret, Intrinsic::SMax, &a, &b))
        return std::nullopt;
    auto is_neg_of = [](Value *neg, Value *x) {
        Value *z, *v;
        if (!ir::matchBinary(neg, Opcode::Sub, &z, &v))
            return false;
        if (static_cast<Instruction *>(neg)->flags().nsw)
            return false;
        return ir::isZeroInt(z) && v == x;
    };
    Value *x = nullptr;
    if (is_neg_of(b, a))
        x = a;
    else if (is_neg_of(a, b))
        x = b;
    if (!x)
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().intrinsic(
        Intrinsic::Abs, {rw.take(x), rw.ctx().getBool(false)});
    return rw.finish(result);
}

std::optional<std::string>
rwOrZext(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *za_v, *zb_v;
    if (!ret || !ir::matchBinary(ret, Opcode::Or, &za_v, &zb_v))
        return std::nullopt;
    Value *a, *b;
    if (!ir::matchCast(za_v, Opcode::ZExt, &a) ||
        !ir::matchCast(zb_v, Opcode::ZExt, &b))
        return std::nullopt;
    if (a->type() != b->type() || !a->type()->isBool())
        return std::nullopt;

    Rewriter rw(fn);
    Value *or_v = rw.b().orOp(rw.take(a), rw.take(b));
    Value *result = rw.b().zext(or_v, ret->type());
    return rw.finish(result);
}

std::optional<std::string>
rwAddAndOr(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *and_v, *or_v;
    if (!ret || !ir::matchBinary(ret, Opcode::Add, &and_v, &or_v))
        return std::nullopt;
    if (static_cast<Instruction *>(ret)->flags().nuw ||
        static_cast<Instruction *>(ret)->flags().nsw)
        return std::nullopt;
    Value *ax, *ay, *ox, *oy;
    if (!ir::matchBinary(and_v, Opcode::And, &ax, &ay)) {
        std::swap(and_v, or_v);
        if (!ir::matchBinary(and_v, Opcode::And, &ax, &ay))
            return std::nullopt;
    }
    if (!ir::matchBinary(or_v, Opcode::Or, &ox, &oy))
        return std::nullopt;
    bool same = (ax == ox && ay == oy) || (ax == oy && ay == ox);
    if (!same)
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().add(rw.take(ax), rw.take(ay));
    return rw.finish(result);
}

std::optional<std::string>
rwAnd1Trunc(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    ICmpPred pred;
    Value *and_v, *zero_v;
    if (!ret || !ir::matchICmp(ret, &pred, &and_v, &zero_v) ||
        pred != ICmpPred::NE || !ir::isZeroInt(zero_v))
        return std::nullopt;
    Value *x, *one_v;
    if (!ir::matchBinary(and_v, Opcode::And, &x, &one_v) ||
        !ir::isConstIntValue(one_v, 1))
        return std::nullopt;
    if (x->type()->isVector())
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().trunc(rw.take(x), rw.ctx().types().boolTy());
    return rw.finish(result);
}

std::optional<std::string>
rwMulParity(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *mul_v, *one_v;
    if (!ret || !ir::matchBinary(ret, Opcode::And, &mul_v, &one_v) ||
        !ir::isConstIntValue(one_v, 1))
        return std::nullopt;
    Value *x, *y;
    if (!ir::matchBinary(mul_v, Opcode::Mul, &x, &y) || x != y)
        return std::nullopt;
    auto *mul = static_cast<Instruction *>(mul_v);
    if (mul->flags().nuw || mul->flags().nsw)
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().andOp(rw.take(x), rw.take(one_v));
    return rw.finish(result);
}

std::optional<std::string>
rwSdivExact(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *x, *c_v;
    if (!ret || !ir::matchBinary(ret, Opcode::SDiv, &x, &c_v))
        return std::nullopt;
    if (!static_cast<Instruction *>(ret)->flags().exact)
        return std::nullopt;
    APInt c;
    if (!ir::matchConstInt(c_v, &c) || !c.isPowerOf2() || c.isOne())
        return std::nullopt;

    Rewriter rw(fn);
    InstFlags flags;
    flags.exact = true;
    Value *xx = rw.take(x);
    Value *result = rw.b().binary(
        Opcode::AShr, xx,
        typedConst(rw.ctx(), xx->type(),
                   APInt(c.width(), c.countTrailingZeros())),
        flags);
    return rw.finish(result);
}

std::optional<std::string>
rwFabsOlt(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    if (!ret || ret->kind() != Value::Kind::Instruction)
        return std::nullopt;
    auto *cmp = static_cast<Instruction *>(ret);
    if (cmp->op() != Opcode::FCmp || cmp->fcmpPred() != ir::FCmpPred::OLT)
        return std::nullopt;
    Value *fabs_v = cmp->operand(0);
    Value *zero_v = cmp->operand(1);
    if (zero_v->kind() != Value::Kind::ConstFP ||
        static_cast<ir::ConstantFP *>(zero_v)->value() != 0.0)
        return std::nullopt;
    if (fabs_v->kind() != Value::Kind::Instruction)
        return std::nullopt;
    auto *fabs_inst = static_cast<Instruction *>(fabs_v);
    if (fabs_inst->op() != Opcode::Call ||
        fabs_inst->intrinsic() != Intrinsic::FAbs)
        return std::nullopt;
    Value *x = fabs_inst->operand(0);

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    Value *result = rw.b().fcmp(ir::FCmpPred::False, xx, xx);
    return rw.finish(result);
}

std::optional<std::string>
rwUAddSat(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *cond, *tval, *fval;
    if (!ret || !ir::matchSelect(ret, &cond, &tval, &fval) ||
        !ir::isAllOnesInt(tval))
        return std::nullopt;
    Value *sum_v = fval;
    Value *x, *y;
    if (!ir::matchBinary(sum_v, Opcode::Add, &x, &y))
        return std::nullopt;
    auto *add = static_cast<Instruction *>(sum_v);
    if (add->flags().nuw || add->flags().nsw)
        return std::nullopt;
    ICmpPred pred;
    Value *cx, *cy;
    if (!ir::matchICmp(cond, &pred, &cx, &cy) || pred != ICmpPred::ULT ||
        cx != sum_v || (cy != x && cy != y))
        return std::nullopt;

    Rewriter rw(fn);
    Value *result = rw.b().intrinsic(Intrinsic::UAddSat,
                                     {rw.take(x), rw.take(y)});
    return rw.finish(result);
}

std::optional<std::string>
rwClzCmp(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    ICmpPred pred;
    Value *clz_v, *w_v;
    if (!ret || !ir::matchICmp(ret, &pred, &clz_v, &w_v) ||
        pred != ICmpPred::EQ)
        return std::nullopt;
    Value *x, *flag;
    if (!ir::matchIntrinsic2(clz_v, Intrinsic::CtLz, &x, &flag) ||
        !ir::isConstIntValue(flag, 0))
        return std::nullopt;
    unsigned width = x->type()->scalarType()->intWidth();
    if (!ir::isConstIntValue(w_v, width))
        return std::nullopt;

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    Value *result = rw.b().icmp(ICmpPred::EQ, xx,
                                rw.ctx().getNullValue(xx->type()));
    return rw.finish(result);
}

std::optional<std::string>
rwCttzAnd(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    ICmpPred pred;
    Value *ctz_v, *k_v;
    if (!ret || !ir::matchICmp(ret, &pred, &ctz_v, &k_v) ||
        (pred != ICmpPred::UGE && pred != ICmpPred::UGT))
        return std::nullopt;
    Value *x, *flag;
    if (!ir::matchIntrinsic2(ctz_v, Intrinsic::CtTz, &x, &flag) ||
        !ir::isConstIntValue(flag, 0))
        return std::nullopt;
    APInt k;
    if (!ir::matchConstInt(k_v, &k))
        return std::nullopt;
    if (pred == ICmpPred::UGT)
        k = k.add(APInt::one(k.width())); // ugt k-1 == uge k
    if (k.isZero() || k.zext() >= k.width())
        return std::nullopt;

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    APInt mask = APInt::one(k.width())
                     .shl(static_cast<unsigned>(k.zext()))
                     .sub(APInt::one(k.width()));
    Value *and_v = rw.b().andOp(xx,
                                typedConst(rw.ctx(), xx->type(), mask));
    Value *result = rw.b().icmp(ICmpPred::EQ, and_v,
                                rw.ctx().getNullValue(xx->type()));
    return rw.finish(result);
}

std::optional<std::string>
rwSatChain(const ir::Function &fn)
{
    Value *ret = returnedValue(fn);
    Value *inner_v, *c2_v;
    if (!ret ||
        !ir::matchIntrinsic2(ret, Intrinsic::UAddSat, &inner_v, &c2_v))
        return std::nullopt;
    Value *x, *c1_v;
    if (!ir::matchIntrinsic2(inner_v, Intrinsic::UAddSat, &x, &c1_v))
        return std::nullopt;
    APInt c1, c2;
    if (!ir::matchConstInt(c1_v, &c1) || !ir::matchConstInt(c2_v, &c2))
        return std::nullopt;
    if (c1.addOverflowsUnsigned(c2))
        return std::nullopt;

    Rewriter rw(fn);
    Value *xx = rw.take(x);
    Value *result = rw.b().intrinsic(
        Intrinsic::UAddSat,
        {xx, typedConst(rw.ctx(), xx->type(), c1.add(c2))});
    return rw.finish(result);
}

} // namespace

const std::vector<RewriteRule> &
rewriteLibrary()
{
    static const std::vector<RewriteRule> library = [] {
        std::vector<RewriteRule> rules;
        rules.push_back({"add_signbit", 0.30, rwAddSignbit});
        rules.push_back({"trunc_and", 0.32, rwTruncAnd});
        rules.push_back({"neg_sub", 0.35, rwNegSub});
        rules.push_back({"umin_idem", 0.36, rwUMinIdem});
        rules.push_back({"add_and_or", 0.38, rwAddAndOr});
        rules.push_back({"icmp_lshr", 0.52, rwICmpLshr});
        rules.push_back({"sdiv_exact", 0.54, rwSdivExact});
        rules.push_back({"sub_add_cmp", 0.55, rwSubAddCmp});
        rules.push_back({"umin_zext", 0.55, rwUMinZext});
        rules.push_back({"and1_trunc", 0.57, rwAnd1Trunc});
        rules.push_back({"mul_parity", 0.58, rwMulParity});
        rules.push_back({"or_zext", 0.60, rwOrZext});
        rules.push_back({"clamp_umin", 0.72, rwClampUMin});
        rules.push_back({"umax_sub", 0.76, rwUMaxSub});
        rules.push_back({"usub_sat", 0.78, rwUSubSat});
        rules.push_back({"fcmp_ord_select", 0.80, rwFcmpOrdSelect});
        rules.push_back({"smax_abs", 0.80, rwSMaxAbs});
        rules.push_back({"umax_shl", 0.80, rwUMaxShl});
        rules.push_back({"uadd_sat", 0.82, rwUAddSat});
        rules.push_back({"load_merge", 0.88, rwLoadMerge});
        rules.push_back({"fabs_olt", 0.90, rwFabsOlt});
        // Beyond current models (paper Table 2's empty rows).
        rules.push_back({"clz_cmp", 2.0, rwClzCmp});
        rules.push_back({"cttz_and", 2.0, rwCttzAnd});
        rules.push_back({"sat_chain", 2.0, rwSatChain});
        return rules;
    }();
    return library;
}

} // namespace lpo::llm
