#include "core/pipeline.h"

#include <cstdio>

#include "core/interestingness.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "opt/opt_driver.h"
#include "support/telemetry.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace lpo::core {

namespace {

const char *
verdictLabel(verify::Verdict verdict)
{
    switch (verdict) {
      case verify::Verdict::Correct: return "correct";
      case verify::Verdict::Incorrect: return "incorrect";
      case verify::Verdict::Unsupported: return "unsupported";
      case verify::Verdict::BadSignature: return "bad-signature";
      case verify::Verdict::Timeout: return "timeout";
      case verify::Verdict::Degraded: return "degraded";
    }
    return "?";
}

/** Per-leg propose latency (catalog / llm / egraph). */
telemetry::Histogram
proposerHistogram(Proposer::Backend backend)
{
    static const telemetry::Histogram catalog =
        telemetry::histogram("proposer.catalog_ns");
    static const telemetry::Histogram llm =
        telemetry::histogram("proposer.llm_ns");
    static const telemetry::Histogram egraph =
        telemetry::histogram("proposer.egraph_ns");
    switch (backend) {
      case Proposer::Backend::Catalog: return catalog;
      case Proposer::Backend::Llm: return llm;
      case Proposer::Backend::EGraph: return egraph;
    }
    return llm;
}

} // namespace

Pipeline::Pipeline(llm::LlmClient &client, PipelineConfig config)
    : client_(client), config_(std::move(config))
{
    if (config_.store_path.empty())
        return;
    std::string warning;
    store_ = verify::PersistentStore::open(config_.store_path,
                                           &verify_cache_, &warning);
    if (!warning.empty())
        // Once, at construction: persistence problems degrade to
        // in-memory operation, they never abort or fail the run.
        std::fprintf(stderr, "lpo: warning: %s\n", warning.c_str());
    if (store_)
        catalog_proposer_ = CatalogProposer(&store_->catalog());
    refreshCacheStats();
}

Pipeline::~Pipeline()
{
    // Detach the publish hook (it captures this pipeline's store)
    // before members destruct; the store's own destructor flushes.
    if (store_)
        flushStore();
}

bool
Pipeline::flushStore()
{
    if (!store_)
        return true;
    bool ok = store_->flush();
    refreshCacheStats();
    return ok;
}

bool
Pipeline::compactStore(std::string *error)
{
    if (!store_) {
        if (error)
            *error = "no persistent store configured";
        return false;
    }
    bool ok = store_->compact(error);
    refreshCacheStats();
    return ok;
}

void
Pipeline::discardPendingStore()
{
    if (store_)
        store_->discardPending();
}

const char *
caseStatusName(CaseStatus status)
{
    switch (status) {
      case CaseStatus::Found: return "found";
      case CaseStatus::NotInteresting: return "not-interesting";
      case CaseStatus::Incorrect: return "incorrect";
      case CaseStatus::SyntaxError: return "syntax-error";
      case CaseStatus::Unsupported: return "unsupported";
      case CaseStatus::NoCandidate: return "no-candidate";
      case CaseStatus::Degraded: return "degraded";
      case CaseStatus::Error: return "error";
      case CaseStatus::Skipped: return "skipped";
    }
    return "?";
}

CaseOutcome
Pipeline::optimizeSequence(const ir::Function &seq, uint64_t round_seed)
{
    CaseOutcome outcome = runCase(seq, round_seed, stats_, config_.refine);
    refreshCacheStats();
    return outcome;
}

void
Pipeline::refreshCacheStats()
{
    verify::VerifyCache::Stats cache_stats = verify_cache_.stats();
    stats_.verify_cache_hits = cache_stats.hits;
    stats_.verify_cache_misses = cache_stats.misses;
    stats_.verify_cache_evictions = cache_stats.evictions;
    if (!store_)
        return;
    verify::StoreStats store_stats = store_->stats();
    stats_.store_cache_loaded = store_stats.cache_loaded;
    stats_.store_catalog_loaded = store_stats.catalog_loaded;
    stats_.store_cache_flushed = store_stats.cache_flushed;
    stats_.store_catalog_flushed = store_stats.catalog_flushed;
    stats_.store_flush_failures = store_stats.flush_failures;
    stats_.store_recoveries = store_stats.recoveries;
    stats_.store_quarantined = store_stats.quarantined;
    stats_.store_rejected_files = store_stats.rejected_files;
    stats_.store_decode_skipped = store_stats.decode_skipped;
}

CaseOutcome
Pipeline::runAttemptLoop(Proposer &proposer, const ir::Function &seq,
                         uint64_t round_seed, PipelineStats &stats,
                         verify::RefinementSession &session)
{
    const Proposer::Backend backend = proposer.backend();
    CaseOutcome outcome;
    outcome.proposer = proposer.name();
    outcome.total_seconds = config_.overhead_seconds;

    std::string seq_text = ir::printFunction(seq);
    std::string feedback;
    unsigned counter = 0;

    while (counter < config_.attempt_limit) {
        if (backend == Proposer::Backend::EGraph)
            ++stats.egraph_consults;
        else if (backend == Proposer::Backend::Catalog)
            ++stats.catalog_consults;
        std::optional<Proposal> proposal;
        {
            LPO_TRACE_SPAN(span, "propose", "pipeline");
            static const telemetry::Histogram propose_hist =
                telemetry::histogram("phase.propose_ns");
            telemetry::ScopedTimer timer(propose_hist);
            proposal = proposer.propose(seq, seq_text, feedback,
                                        round_seed * 7919 + counter);
            uint64_t elapsed = timer.stopNanos();
            proposerHistogram(backend).record(elapsed);
            stats.timings.propose_ns += elapsed;
            if (span.active()) {
                span.arg("leg", proposer.name());
                span.arg("fn", std::string(seq.name()));
            }
        }
        if (!proposal) {
            // Backend has nothing (more) to offer; stop without
            // burning the remaining attempts.
            if (outcome.attempts == 0)
                outcome.status = CaseStatus::NoCandidate;
            break;
        }
        switch (backend) {
          case Proposer::Backend::Llm: ++stats.llm_calls; break;
          case Proposer::Backend::EGraph: ++stats.egraph_proposals; break;
          case Proposer::Backend::Catalog:
            ++stats.catalog_proposals;
            break;
        }
        ++outcome.attempts;
        outcome.llm_seconds += proposal->latency_seconds;
        outcome.total_seconds += proposal->latency_seconds;
        outcome.cost_usd += proposal->cost_usd;

        // Step 3: opt — syntax check + canonicalize/optimize further.
        ir::Context &context = seq.context();
        opt::OptResult opted = opt::runOpt(context, proposal->text);
        if (opted.failed) {
            ++stats.syntax_errors;
            ++counter;
            outcome.status = CaseStatus::SyntaxError;
            outcome.last_feedback = opted.error_message;
            if (!config_.enable_feedback)
                break;
            feedback = opted.error_message;
            continue;
        }

        // Step: interestingness gate (before the costlier verifier).
        Interestingness gate = checkInteresting(seq, *opted.function);
        if (!gate.interesting) {
            ++stats.not_interesting;
            outcome.status = CaseStatus::NotInteresting;
            outcome.last_feedback = gate.reason;
            break; // abandon this sequence (Algorithm 1 line 16)
        }

        // Step 5: correctness via the translation validator. The
        // case-lifetime session amortizes the source encoding and the
        // solver's learnt clauses over every candidate this loop (and
        // the hybrid fallback's) produces.
        verify::RefinementResult verdict;
        {
            LPO_TRACE_SPAN(span, "verify", "pipeline");
            static const telemetry::Histogram verify_hist =
                telemetry::histogram("phase.verify_ns");
            telemetry::ScopedTimer timer(verify_hist);
            verdict = session.check(*opted.function);
            stats.timings.verify_ns += timer.stopNanos();
            if (span.active()) {
                span.arg("fn", std::string(seq.name()));
                span.arg("backend", verdict.backend);
                span.arg("verdict", verdictLabel(verdict.verdict));
            }
        }
        ++stats.verifier_calls;
        outcome.total_seconds += config_.verify_seconds;
        outcome.verifier_backend = verdict.backend;

        if (verdict.verdict == verify::Verdict::Unsupported) {
            outcome.status = CaseStatus::Unsupported;
            outcome.last_feedback = verdict.detail;
            break;
        }
        if (verdict.verdict == verify::Verdict::Degraded) {
            // The whole budget ladder plus the concrete fallback ran
            // and still could not decide this candidate. Another
            // candidate for the same sequence would re-burn the full
            // ladder with the same prospects, so the case stops here;
            // a Degraded candidate is never recorded as Found.
            outcome.status = CaseStatus::Degraded;
            outcome.last_feedback = verdict.detail;
            break;
        }
        if (!verdict.correct()) {
            ++stats.incorrect_candidates;
            ++counter;
            outcome.status = CaseStatus::Incorrect;
            outcome.last_feedback = verdict.feedbackMessage(seq);
            if (!config_.enable_feedback)
                break;
            feedback = outcome.last_feedback;
            continue;
        }

        // Success: record the pair for further analysis (step 7).
        outcome.status = CaseStatus::Found;
        outcome.candidate_text = ir::printFunction(*opted.function);
        ++stats.found;
        switch (backend) {
          case Proposer::Backend::Llm: ++stats.found_by_llm; break;
          case Proposer::Backend::EGraph: ++stats.found_by_egraph; break;
          case Proposer::Backend::Catalog:
            ++stats.found_by_catalog;
            break;
        }
        break;
    }

    // A loop that only ever saw the model echo the input is reported
    // as NoCandidate rather than Incorrect.
    if (outcome.status == CaseStatus::NotInteresting &&
        outcome.attempts == 1 && outcome.last_feedback ==
            "identical or not cheaper") {
        outcome.status = CaseStatus::NoCandidate;
    }

    return outcome;
}

/**
 * Run one proposer leg with crash isolation: an exception escaping the
 * proposer, the encoder, or the verifier is contained into a
 * CaseStatus::Error outcome instead of unwinding through the module
 * run. The partial outcome the leg built before throwing is lost, but
 * its stats side effects (calls, attempts) stand — work-done
 * semantics, like the SAT counters.
 */
CaseOutcome
Pipeline::runLegContained(Proposer &proposer, const ir::Function &seq,
                          uint64_t round_seed, PipelineStats &stats,
                          verify::RefinementSession &session)
{
    try {
        return runAttemptLoop(proposer, seq, round_seed, stats, session);
    } catch (const std::exception &e) {
        ++stats.contained_exceptions;
        CaseOutcome outcome;
        outcome.proposer = proposer.name();
        outcome.status = CaseStatus::Error;
        outcome.last_feedback =
            std::string("contained exception: ") + e.what();
        outcome.total_seconds = config_.overhead_seconds;
        return outcome;
    }
}

CaseOutcome
Pipeline::runCase(const ir::Function &seq, uint64_t round_seed,
                  PipelineStats &stats,
                  const verify::RefineOptions &refine)
{
    ++stats.cases;
    LPO_TRACE_SPAN(case_span, "case", "pipeline");

    // All workers share the pipeline-lifetime cache; the RefineOptions
    // copy just points at it. The SAT telemetry and degradation
    // counters are per-case and folded into the worker's stats delta
    // below.
    verify::SatTelemetry telemetry;
    verify::DegradationStats degradation;
    verify::RefineOptions refine_opts = refine;
    refine_opts.cache =
        config_.enable_verify_cache ? &verify_cache_ : nullptr;
    refine_opts.sat_telemetry = &telemetry;
    refine_opts.degradation = &degradation;

    // One incremental session per case: every candidate the proposers
    // emit for this sequence — feedback retries and the hybrid
    // fallback leg included — shares one persistent solver.
    verify::RefinementSession session(seq, refine_opts);

    CaseOutcome outcome;
    switch (config_.proposer) {
      case ProposerKind::Llm:
        outcome = runLegContained(llm_proposer_, seq, round_seed, stats,
                                  session);
        break;
      case ProposerKind::EGraph:
        outcome = runLegContained(egraph_proposer_, seq, round_seed,
                                  stats, session);
        break;
      case ProposerKind::Hybrid: {
        // Zero-SAT-cost first leg: replay a catalog rewrite learned in
        // a previous run (verify/persist.h). A hit verifies against
        // the seeded cache and skips the LLM entirely; any failure —
        // miss, stale candidate refuted, gate rejection — falls
        // through to the ordinary LLM leg as if the catalog were
        // absent (its lookup is free, so no time is charged).
        if (catalog_proposer_.enabled()) {
            CaseOutcome replayed = runLegContained(
                catalog_proposer_, seq, round_seed, stats, session);
            if (replayed.found()) {
                outcome = std::move(replayed);
                break;
            }
        }
        outcome = runLegContained(llm_proposer_, seq, round_seed, stats,
                                  session);
        // Fall back whenever the LLM leg failed for a reason the
        // e-graph could overcome: nothing proposed, refuted, never
        // parsed, not an improvement, undecidable within the budget
        // ladder, or lost to a contained fault. Unsupported is
        // excluded — the verifier cannot handle the function
        // regardless of who proposes.
        if (outcome.status == CaseStatus::NoCandidate ||
            outcome.status == CaseStatus::Incorrect ||
            outcome.status == CaseStatus::SyntaxError ||
            outcome.status == CaseStatus::NotInteresting ||
            outcome.status == CaseStatus::Degraded ||
            outcome.status == CaseStatus::Error) {
            ++stats.hybrid_fallbacks;
            CaseOutcome fallback = runLegContained(
                egraph_proposer_, seq, round_seed, stats, session);
            if (fallback.found()) {
                // The combined record keeps the e-graph's result but
                // accounts for the failed LLM attempts too.
                fallback.attempts += outcome.attempts;
                fallback.llm_seconds += outcome.llm_seconds;
                fallback.total_seconds += outcome.total_seconds;
                fallback.cost_usd += outcome.cost_usd;
                outcome = std::move(fallback);
            } else {
                // Keep the LLM outcome (richer feedback) but charge
                // the extra e-graph pass.
                outcome.total_seconds += fallback.total_seconds;
            }
        }
        break;
      }
    }

    // Learn every verified rewrite (any mode, any backend except the
    // catalog itself — re-recording a replay would be a no-op). The
    // record is a pending entry flushed with the store; it never
    // becomes visible to lookups within this run (determinism).
    if (store_ && outcome.found() && outcome.proposer != "catalog")
        store_->catalog().record(ir::printFunctionCanonical(seq),
                                 outcome.candidate_text);

    // The deadline currency: deterministic work units, not seconds.
    outcome.step_cost = telemetry.conflicts + outcome.attempts;

    if (case_span.active()) {
        case_span.arg("fn", std::string(seq.name()));
        case_span.arg("verdict", caseStatusName(outcome.status));
        case_span.arg("proposer", outcome.proposer);
        case_span.arg("sat_conflicts", telemetry.conflicts);
    }

    stats.sat_escalations += degradation.escalations;
    stats.concrete_fallbacks += degradation.concrete_fallbacks;
    stats.exhaustive_rescues += degradation.exhaustive_rescues;
    stats.degraded_verdicts += degradation.degraded;

    stats.sat_solves += telemetry.solves;
    stats.sat_decisions += telemetry.decisions;
    stats.sat_conflicts += telemetry.conflicts;
    stats.sat_propagations += telemetry.propagations;
    stats.sat_restarts += telemetry.restarts;
    stats.sat_sessions += telemetry.sessions;
    stats.session_reuses += telemetry.session_reuses;
    stats.learnts_carried += telemetry.learnts_carried;
    stats.session_vars_saved += telemetry.session_vars_saved;
    stats.session_clauses_saved += telemetry.session_clauses_saved;
    stats.session_fallbacks += telemetry.session_fallbacks;

    stats.total_seconds += outcome.total_seconds;
    stats.total_cost_usd += outcome.cost_usd;
    return outcome;
}

std::vector<CaseOutcome>
Pipeline::processModule(const ir::Module &module,
                        extract::Extractor &extractor, uint64_t round_seed)
{
    auto sequences = extractor.extractFromModule(module);
    std::vector<const ir::Function *> ptrs;
    ptrs.reserve(sequences.size());
    for (const auto &seq : sequences)
        ptrs.push_back(seq.get());
    return processSequences(ptrs, round_seed);
}

std::vector<CaseOutcome>
Pipeline::processSequences(
    const std::vector<const ir::Function *> &sequences,
    uint64_t round_seed,
    const std::function<void(size_t, const CaseOutcome &)> &on_commit)
{
    unsigned threads = config_.num_threads
                           ? config_.num_threads
                           : ThreadPool::hardwareThreads();
    std::vector<CaseOutcome> outcomes(sequences.size());

    if (threads <= 1 || sequences.size() <= 1) {
        for (size_t i = 0; i < sequences.size(); ++i) {
            outcomes[i] = optimizeSequence(*sequences[i], round_seed);
            if (on_commit)
                on_commit(i, outcomes[i]);
        }
        return outcomes;
    }

    // Parallel fan-out on the work-stealing task graph. The extracted
    // sequences all live in the module's shared ir::Context, which is
    // not safe to mutate concurrently (runOpt parses candidates into
    // it), so each case task re-parses its sequence's text into a
    // private Context and runs the whole loop there.
    // print(parse(print(f))) is stable, so the prompt text — and
    // therefore the mock model's seeded RNG stream — is byte-identical
    // to the serial path.
    std::vector<std::string> texts(sequences.size());
    for (size_t i = 0; i < sequences.size(); ++i)
        texts[i] = ir::printFunction(*sequences[i]);

    // The pipeline-level fan-out already saturates the machine, so
    // each worker runs its verification sweeps serially rather than
    // nesting a second hardware-wide pool per candidate.
    verify::RefineOptions worker_refine = config_.refine;
    worker_refine.num_threads = 1;

    // The advisory per-task conflict budget is the most SAT work one
    // case can possibly perform per query (the whole ladder, or the
    // single-shot budget when no ladder is configured).
    uint64_t case_budget = 0;
    if (worker_refine.budget_tiers.empty()) {
        case_budget = worker_refine.conflict_budget;
    } else {
        for (uint64_t tier : worker_refine.budget_tiers)
            case_budget += tier;
    }

    static const telemetry::Histogram chain_hist =
        telemetry::histogram("pipeline.chain_latency_ns");

    std::vector<PipelineStats> deltas(sequences.size());

    TaskScheduler::Options sched_options;
    sched_options.num_threads = threads;
    sched_options.steal_seed = round_seed ^ 0x9E3779B97F4A7C15ull;
    TaskScheduler scheduler(sched_options);
    TaskScope scope(scheduler);
    // A cancelled scope (first task exception) interrupts in-flight
    // SAT solves at the next conflict boundary instead of finishing
    // multi-million-conflict proofs nobody will read.
    worker_refine.interrupt = scope.cancelFlag();

    // Each sequence is one case task; a chain of commit tasks (commit
    // i depends on case i and commit i-1) folds its stat delta and
    // streams the outcome out in sequence order — the exact
    // accumulation order of the serial path, so totals (including the
    // doubles) are bit-identical for any thread count, while later
    // cases are still running.
    std::vector<TaskId> case_ids(sequences.size());
    for (size_t i = 0; i < sequences.size(); ++i) {
        case_ids[i] = scope.submit(
            [this, i, round_seed, &texts, &outcomes, &deltas,
             &worker_refine] {
                telemetry::ScopedTimer timer(chain_hist);
                ir::Context context;
                auto parsed = ir::parseFunction(context, texts[i]);
                if (!parsed.ok()) {
                    // Cannot happen for printer output; recorded
                    // rather than silently dropped if it ever does.
                    ++deltas[i].cases;
                    ++deltas[i].syntax_errors;
                    outcomes[i].status = CaseStatus::SyntaxError;
                    outcomes[i].last_feedback =
                        parsed.error().toString();
                    outcomes[i].total_seconds = config_.overhead_seconds;
                    deltas[i].total_seconds += outcomes[i].total_seconds;
                    return;
                }
                outcomes[i] = runCase(**parsed, round_seed, deltas[i],
                                      worker_refine);
            },
            {}, case_budget);
    }
    TaskId prev_commit = kInvalidTask;
    for (size_t i = 0; i < sequences.size(); ++i) {
        std::vector<TaskId> deps;
        deps.push_back(case_ids[i]);
        if (prev_commit != kInvalidTask)
            deps.push_back(prev_commit);
        prev_commit = scope.submit(
            [this, i, &deltas, &outcomes, &on_commit] {
                foldStats(deltas[i]);
                if (on_commit)
                    on_commit(i, outcomes[i]);
            },
            deps);
    }
    scope.wait();

    stats_.scheduler += scope.stats();
    telemetry::counter("sched.tasks_run").add(scope.stats().tasks_run);
    telemetry::counter("sched.steals").add(scope.stats().steals);
    telemetry::counter("sched.steal_attempts")
        .add(scope.stats().steal_attempts);
    telemetry::counter("sched.queue_depth_max")
        .add(scope.stats().max_queue_depth);
    telemetry::counter("sched.idle_ns").add(scope.stats().idle_ns);

    refreshCacheStats();
    return outcomes;
}

void
Pipeline::foldStats(const PipelineStats &delta)
{
    stats_.cases += delta.cases;
    stats_.found += delta.found;
    stats_.llm_calls += delta.llm_calls;
    stats_.verifier_calls += delta.verifier_calls;
    stats_.syntax_errors += delta.syntax_errors;
    stats_.incorrect_candidates += delta.incorrect_candidates;
    stats_.not_interesting += delta.not_interesting;
    stats_.egraph_consults += delta.egraph_consults;
    stats_.egraph_proposals += delta.egraph_proposals;
    stats_.found_by_llm += delta.found_by_llm;
    stats_.found_by_egraph += delta.found_by_egraph;
    stats_.hybrid_fallbacks += delta.hybrid_fallbacks;
    stats_.catalog_consults += delta.catalog_consults;
    stats_.catalog_proposals += delta.catalog_proposals;
    stats_.found_by_catalog += delta.found_by_catalog;
    stats_.sat_solves += delta.sat_solves;
    stats_.sat_decisions += delta.sat_decisions;
    stats_.sat_conflicts += delta.sat_conflicts;
    stats_.sat_propagations += delta.sat_propagations;
    stats_.sat_restarts += delta.sat_restarts;
    stats_.sat_sessions += delta.sat_sessions;
    stats_.session_reuses += delta.session_reuses;
    stats_.learnts_carried += delta.learnts_carried;
    stats_.session_vars_saved += delta.session_vars_saved;
    stats_.session_clauses_saved += delta.session_clauses_saved;
    stats_.session_fallbacks += delta.session_fallbacks;
    stats_.sat_escalations += delta.sat_escalations;
    stats_.concrete_fallbacks += delta.concrete_fallbacks;
    stats_.exhaustive_rescues += delta.exhaustive_rescues;
    stats_.degraded_verdicts += delta.degraded_verdicts;
    stats_.contained_exceptions += delta.contained_exceptions;
    stats_.total_seconds += delta.total_seconds;
    stats_.total_cost_usd += delta.total_cost_usd;
    stats_.timings.propose_ns += delta.timings.propose_ns;
    stats_.timings.verify_ns += delta.timings.verify_ns;
}

void
Pipeline::addStageTimings(const StageTimings &timings)
{
    stats_.timings.extract_ns += timings.extract_ns;
    stats_.timings.patch_ns += timings.patch_ns;
    stats_.timings.dce_ns += timings.dce_ns;
    stats_.timings.total_ns += timings.total_ns;
}

} // namespace lpo::core
