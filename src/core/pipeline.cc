#include "core/pipeline.h"

#include "core/interestingness.h"
#include "ir/printer.h"
#include "opt/opt_driver.h"

namespace lpo::core {

const char *
caseStatusName(CaseStatus status)
{
    switch (status) {
      case CaseStatus::Found: return "found";
      case CaseStatus::NotInteresting: return "not-interesting";
      case CaseStatus::Incorrect: return "incorrect";
      case CaseStatus::SyntaxError: return "syntax-error";
      case CaseStatus::Unsupported: return "unsupported";
      case CaseStatus::NoCandidate: return "no-candidate";
    }
    return "?";
}

CaseOutcome
Pipeline::optimizeSequence(const ir::Function &seq, uint64_t round_seed)
{
    CaseOutcome outcome;
    ++stats_.cases;
    outcome.total_seconds = config_.overhead_seconds;

    std::string seq_text = ir::printFunction(seq);
    std::string feedback;
    unsigned counter = 0;

    while (counter < config_.attempt_limit) {
        llm::LlmRequest request;
        request.system_prompt = "(see llm/prompt.h)";
        request.function_text = seq_text;
        request.feedback = feedback;
        request.seed = round_seed * 7919 + counter;
        llm::LlmResponse response = client_.complete(request);
        ++stats_.llm_calls;
        ++outcome.attempts;
        outcome.llm_seconds += response.latency_seconds;
        outcome.total_seconds += response.latency_seconds;
        outcome.cost_usd += response.cost_usd;

        // Step 3: opt — syntax check + canonicalize/optimize further.
        ir::Context &context = seq.context();
        opt::OptResult opted = opt::runOpt(context, response.text);
        if (opted.failed) {
            ++stats_.syntax_errors;
            ++counter;
            outcome.status = CaseStatus::SyntaxError;
            outcome.last_feedback = opted.error_message;
            if (!config_.enable_feedback)
                break;
            feedback = opted.error_message;
            continue;
        }

        // Step: interestingness gate (before the costlier verifier).
        Interestingness gate = checkInteresting(seq, *opted.function);
        if (!gate.interesting) {
            ++stats_.not_interesting;
            outcome.status = CaseStatus::NotInteresting;
            outcome.last_feedback = gate.reason;
            break; // abandon this sequence (Algorithm 1 line 16)
        }

        // Step 5: correctness via the translation validator.
        verify::RefinementResult verdict =
            verify::checkRefinement(seq, *opted.function, config_.refine);
        ++stats_.verifier_calls;
        outcome.total_seconds += config_.verify_seconds;
        outcome.verifier_backend = verdict.backend;

        if (verdict.verdict == verify::Verdict::Unsupported) {
            outcome.status = CaseStatus::Unsupported;
            outcome.last_feedback = verdict.detail;
            break;
        }
        if (!verdict.correct()) {
            ++stats_.incorrect_candidates;
            ++counter;
            outcome.status = CaseStatus::Incorrect;
            outcome.last_feedback = verdict.feedbackMessage(seq);
            if (!config_.enable_feedback)
                break;
            feedback = outcome.last_feedback;
            continue;
        }

        // Success: record the pair for further analysis (step 7).
        outcome.status = CaseStatus::Found;
        outcome.candidate_text = ir::printFunction(*opted.function);
        ++stats_.found;
        break;
    }

    // A loop that only ever saw the model echo the input is reported
    // as NoCandidate rather than Incorrect.
    if (outcome.status == CaseStatus::NotInteresting &&
        outcome.attempts == 1 && outcome.last_feedback ==
            "identical or not cheaper") {
        outcome.status = CaseStatus::NoCandidate;
    }

    stats_.total_seconds += outcome.total_seconds;
    stats_.total_cost_usd += outcome.cost_usd;
    return outcome;
}

std::vector<CaseOutcome>
Pipeline::processModule(const ir::Module &module,
                        extract::Extractor &extractor, uint64_t round_seed)
{
    std::vector<CaseOutcome> outcomes;
    auto sequences = extractor.extractFromModule(module);
    for (const auto &seq : sequences)
        outcomes.push_back(optimizeSequence(*seq, round_seed));
    return outcomes;
}

} // namespace lpo::core
