/**
 * @file
 * Plain-text table rendering for the benchmark binaries.
 *
 * Every table/figure binary prints rows in the same aligned format so
 * EXPERIMENTS.md can quote them directly.
 */
#ifndef LPO_CORE_REPORT_H
#define LPO_CORE_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace lpo::core {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void addRow(std::vector<std::string> row);
    /** Render with padded columns and a header underline. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a series (values must be positive). */
double geomean(const std::vector<double> &values);

/**
 * "12 hits / 4 misses (75.0% hit rate)" — the standard rendering of
 * cache counters (verification cache, unique table) for reports.
 */
std::string cacheSummary(uint64_t hits, uint64_t misses);

} // namespace lpo::core

#endif // LPO_CORE_REPORT_H
