/**
 * @file
 * Plain-text table rendering for the benchmark binaries.
 *
 * Every table/figure binary prints rows in the same aligned format so
 * EXPERIMENTS.md can quote them directly.
 */
#ifndef LPO_CORE_REPORT_H
#define LPO_CORE_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace lpo::telemetry {
struct MetricsSnapshot;
} // namespace lpo::telemetry

namespace lpo::core {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void addRow(std::vector<std::string> row);
    /** Render with padded columns and a header underline. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a series (values must be positive). */
double geomean(const std::vector<double> &values);

/**
 * "12 hits / 4 misses (75.0% hit rate)" — the standard rendering of
 * cache counters (verification cache, unique table) for reports.
 */
std::string cacheSummary(uint64_t hits, uint64_t misses);

struct PipelineStats;
struct CaseOutcome;

/**
 * The standard module-run summary: a per-proposer outcome breakdown
 * table (one row per backend that produced attempts, one column per
 * CaseStatus), the aggregate counters, and — only when the respective
 * feature was actually enabled — the verify-cache summary line and
 * the incremental-SAT session line. Used by the lpo CLI's `run`
 * command and the proposer-comparison benchmark.
 */
std::string moduleSummary(const PipelineStats &stats,
                          const std::vector<CaseOutcome> &outcomes,
                          bool verify_cache_enabled,
                          bool incremental_sat_enabled = false);

/**
 * The one-line solver work summary backing `lpo run --sat-stats`:
 * decisions / conflicts / propagations / restarts across every SAT
 * verification performed, plus the learnt clauses reused sessions
 * carried into their solves.
 */
std::string satStatsLine(const PipelineStats &stats);

/**
 * The one-line degradation summary backing `lpo run
 * --degradation-stats` and the CI chaos artifact: budget-ladder
 * escalations, concrete fallbacks (with the soundly-concluded
 * exhaustive rescues called out), Degraded verdicts, and contained
 * per-case exceptions. moduleSummary appends it automatically whenever
 * any of those counters is nonzero.
 */
std::string degradationStatsLine(const PipelineStats &stats);

/**
 * The per-phase wall-time table backing `lpo run --profile`: one row
 * per pipeline phase (extract, propose, verify, patch, dce) with its
 * total wall time from PipelineStats::timings, its share of the
 * optimize run, and the p50/p90/p99 per-invocation latency from the
 * matching `phase.*_ns` histogram in @p metrics; the closing total row
 * carries the per-module latency percentiles (module.latency_ns).
 * propose/verify fold per-case times across every worker thread (CPU
 * time, not wall), so their share can exceed 100% on threaded runs.
 * Purely additive — never part of moduleSummary's default output, so
 * existing pinned summaries stay byte-identical.
 */
std::string profileSummary(const PipelineStats &stats,
                           const telemetry::MetricsSnapshot &metrics);

/**
 * The one-line persistent-store summary backing `lpo run --store` and
 * the CI durability sweep: verdicts/rewrites loaded and flushed, plus
 * the recovery counters (files repaired, records quarantined, records
 * whose payload failed to decode, files rejected for version/option
 * skew, records dropped by failed writes). moduleSummary appends it
 * automatically whenever a store was configured (any counter nonzero).
 */
std::string storeStatsLine(const PipelineStats &stats);

} // namespace lpo::core

#endif // LPO_CORE_REPORT_H
