/**
 * @file
 * Streaming JSON writer shared by the benchmark binaries, the metrics
 * exporter, and the trace writer.
 *
 * Replaces the hand-rolled snprintf JSON blocks that were duplicated
 * across the bench_*.cc binaries (each with its own escaping bugs
 * waiting to happen). The writer is a thin state machine: it inserts
 * commas, quotes and `": "` separators; the caller decides layout per
 * container (pretty = one entry per line with two-space indentation,
 * the committed BENCH_*.json shape the CI regression greps rely on;
 * inline = a whole object on one line, the shape of per-case rows
 * inside a pretty array).
 *
 * Numeric formatting is explicit: integers print exactly, doubles take
 * a fixed decimal count so committed baselines stay byte-stable across
 * writers.
 */
#ifndef LPO_CORE_JSON_WRITER_H
#define LPO_CORE_JSON_WRITER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lpo::core {

class JsonWriter
{
  public:
    enum class Layout {
        Pretty, ///< one entry per line, two-space indent per level
        Inline  ///< whole container on one line: {"a": 1, "b": 2}
    };

    JsonWriter &beginObject(Layout layout = Layout::Pretty);
    JsonWriter &endObject();
    JsonWriter &beginArray(Layout layout = Layout::Pretty);
    JsonWriter &endArray();

    /** Emit an object key; the next value() attaches to it. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(bool v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(long long v)
    {
        return value(static_cast<int64_t>(v));
    }
    JsonWriter &value(unsigned long long v)
    {
        return value(static_cast<uint64_t>(v));
    }
    /** Fixed-point double: %.{decimals}f, the baseline-stable form. */
    JsonWriter &value(double v, int decimals = 6);
    /** Emit @p token verbatim (caller guarantees it is valid JSON). */
    JsonWriter &valueRaw(std::string_view token);

    /** key() + value() in one call, for terse call sites. */
    template <typename T>
    JsonWriter &field(std::string_view k, const T &v)
    {
        return key(k).value(v);
    }
    JsonWriter &field(std::string_view k, double v, int decimals)
    {
        return key(k).value(v, decimals);
    }

    /** The document so far; complete once every container is closed. */
    const std::string &str() const { return out_; }

    /** JSON string-escape @p raw (no surrounding quotes). */
    static std::string escape(std::string_view raw);

  private:
    struct Frame
    {
        bool is_object = false;
        bool inline_layout = false;
        bool has_entries = false;
    };

    void beforeValue();
    void beginContainer(char open, bool is_object, Layout layout);
    void endContainer(char close, bool is_object);
    void newlineIndent(size_t depth);

    std::string out_;
    std::vector<Frame> stack_;
    bool key_pending_ = false;
};

} // namespace lpo::core

#endif // LPO_CORE_JSON_WRITER_H
