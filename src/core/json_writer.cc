#include "core/json_writer.h"

#include <cassert>
#include <cstdio>

namespace lpo::core {

std::string
JsonWriter::escape(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::newlineIndent(size_t depth)
{
    out_ += '\n';
    out_.append(2 * depth, ' ');
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty())
        return;
    Frame &frame = stack_.back();
    if (frame.is_object) {
        // key() already placed the separator for this value.
        assert(!key_pending_ || out_.ends_with(": "));
        if (key_pending_) {
            key_pending_ = false;
            return;
        }
        assert(false && "object value requires a key()");
        return;
    }
    if (frame.has_entries)
        out_ += frame.inline_layout ? ", " : ",";
    if (!frame.inline_layout)
        newlineIndent(stack_.size());
    frame.has_entries = true;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    assert(!stack_.empty() && stack_.back().is_object && !key_pending_);
    Frame &frame = stack_.back();
    if (frame.has_entries)
        out_ += frame.inline_layout ? ", " : ",";
    if (!frame.inline_layout)
        newlineIndent(stack_.size());
    frame.has_entries = true;
    out_ += '"';
    out_ += escape(k);
    out_ += "\": ";
    key_pending_ = true;
    return *this;
}

void
JsonWriter::beginContainer(char open, bool is_object, Layout layout)
{
    beforeValue();
    out_ += open;
    stack_.push_back(
        {is_object, layout == Layout::Inline, /*has_entries=*/false});
}

void
JsonWriter::endContainer(char close, bool is_object)
{
    assert(!stack_.empty() && stack_.back().is_object == is_object);
    (void)is_object;
    Frame frame = stack_.back();
    stack_.pop_back();
    if (frame.has_entries && !frame.inline_layout)
        newlineIndent(stack_.size());
    out_ += close;
}

JsonWriter &
JsonWriter::beginObject(Layout layout)
{
    beginContainer('{', /*is_object=*/true, layout);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    endContainer('}', /*is_object=*/true);
    return *this;
}

JsonWriter &
JsonWriter::beginArray(Layout layout)
{
    beginContainer('[', /*is_object=*/false, layout);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    endContainer(']', /*is_object=*/false);
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::valueRaw(std::string_view token)
{
    beforeValue();
    out_ += token;
    return *this;
}

JsonWriter &
JsonWriter::value(double v, int decimals)
{
    beforeValue();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    out_ += buf;
    return *this;
}

} // namespace lpo::core
