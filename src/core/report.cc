#include "core/report.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace lpo::core {

void
TextTable::addRow(std::vector<std::string> row)
{
    assert(row.size() == headers_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + 2;
    out += std::string(total - 2, '-') + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

std::string
cacheSummary(uint64_t hits, uint64_t misses)
{
    uint64_t total = hits + misses;
    double rate = total ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(total)
                        : 0.0;
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "%llu hits / %llu misses (%.1f%% hit rate)",
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses), rate);
    return buffer;
}

} // namespace lpo::core
