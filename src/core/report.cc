#include "core/report.h"

#include <cassert>
#include <cmath>
#include <cstdio>

#include "core/pipeline.h"
#include "support/telemetry.h"

namespace lpo::core {

void
TextTable::addRow(std::vector<std::string> row)
{
    assert(row.size() == headers_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + 2;
    out += std::string(total - 2, '-') + "\n";
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

std::string
cacheSummary(uint64_t hits, uint64_t misses)
{
    uint64_t total = hits + misses;
    double rate = total ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(total)
                        : 0.0;
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "%llu hits / %llu misses (%.1f%% hit rate)",
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses), rate);
    return buffer;
}

std::string
satStatsLine(const PipelineStats &stats)
{
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "sat: %llu solves, %llu decisions, %llu conflicts, "
        "%llu propagations, %llu restarts, %llu learnts carried\n",
        static_cast<unsigned long long>(stats.sat_solves),
        static_cast<unsigned long long>(stats.sat_decisions),
        static_cast<unsigned long long>(stats.sat_conflicts),
        static_cast<unsigned long long>(stats.sat_propagations),
        static_cast<unsigned long long>(stats.sat_restarts),
        static_cast<unsigned long long>(stats.learnts_carried));
    return line;
}

std::string
degradationStatsLine(const PipelineStats &stats)
{
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "degradation: %llu escalations, %llu concrete fallbacks "
        "(%llu exhaustive rescues), %llu degraded verdicts, "
        "%llu contained exceptions\n",
        static_cast<unsigned long long>(stats.sat_escalations),
        static_cast<unsigned long long>(stats.concrete_fallbacks),
        static_cast<unsigned long long>(stats.exhaustive_rescues),
        static_cast<unsigned long long>(stats.degraded_verdicts),
        static_cast<unsigned long long>(stats.contained_exceptions));
    return line;
}

std::string
storeStatsLine(const PipelineStats &stats)
{
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "store: %llu verdicts + %llu rewrites loaded, %llu + %llu "
        "flushed, %llu recoveries, %llu quarantined, %llu undecodable, "
        "%llu rejected files, %llu dropped writes\n",
        static_cast<unsigned long long>(stats.store_cache_loaded),
        static_cast<unsigned long long>(stats.store_catalog_loaded),
        static_cast<unsigned long long>(stats.store_cache_flushed),
        static_cast<unsigned long long>(stats.store_catalog_flushed),
        static_cast<unsigned long long>(stats.store_recoveries),
        static_cast<unsigned long long>(stats.store_quarantined),
        static_cast<unsigned long long>(stats.store_decode_skipped),
        static_cast<unsigned long long>(stats.store_rejected_files),
        static_cast<unsigned long long>(stats.store_flush_failures));
    return line;
}

std::string
profileSummary(const PipelineStats &stats,
               const telemetry::MetricsSnapshot &metrics)
{
    auto fmt = [](const char *format, double value) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), format, value);
        return std::string(buffer);
    };
    auto ms = [&](uint64_t ns) {
        return fmt("%.3f", static_cast<double>(ns) / 1e6);
    };

    const StageTimings &t = stats.timings;
    struct Phase
    {
        const char *name;
        uint64_t total_ns;
        const char *histogram;
    };
    const Phase phases[] = {
        {"extract", t.extract_ns, "phase.extract_ns"},
        {"propose", t.propose_ns, "phase.propose_ns"},
        {"verify", t.verify_ns, "phase.verify_ns"},
        {"patch", t.patch_ns, "phase.patch_ns"},
        {"dce", t.dce_ns, "phase.dce_ns"},
    };
    // Share is of the phase-accounted time when no module total was
    // folded (the `run` command drives the pipeline directly, without
    // the extract/patch/dce envelope).
    uint64_t accounted = 0;
    for (const Phase &phase : phases)
        accounted += phase.total_ns;
    uint64_t denominator = t.total_ns ? t.total_ns : accounted;

    TextTable table({"phase", "total ms", "share", "count", "p50 us",
                     "p90 us", "p99 us"});
    auto percentiles = [&](const char *name,
                           std::vector<std::string> &row) {
        const telemetry::HistogramSnapshot *hist =
            metrics.histogram(name);
        if (hist == nullptr || hist->count == 0) {
            row.push_back("0");
            row.insert(row.end(), 3, "-");
            return;
        }
        row.push_back(std::to_string(hist->count));
        for (double q : {0.50, 0.90, 0.99})
            row.push_back(fmt("%.1f", hist->percentile(q) / 1e3));
    };
    for (const Phase &phase : phases) {
        std::vector<std::string> row{phase.name, ms(phase.total_ns)};
        row.push_back(
            denominator
                ? fmt("%.1f%%", 100.0 *
                                    static_cast<double>(phase.total_ns) /
                                    static_cast<double>(denominator))
                : "-");
        percentiles(phase.histogram, row);
        table.addRow(std::move(row));
    }
    std::vector<std::string> total{"total", ms(denominator),
                                   denominator ? "100.0%" : "-"};
    percentiles("module.latency_ns", total);
    table.addRow(std::move(total));
    std::string rendered =
        "profile (wall time per phase):\n" + table.render();

    // Scheduler behaviour behind those phases. Work-done telemetry,
    // not results: steal counts and queue depths vary run to run even
    // though the emitted module never does.
    const TaskGraphStats &sched = stats.scheduler;
    TextTable sched_table({"tasks run", "steals", "steal attempts",
                           "max queue depth", "idle ms"});
    sched_table.addRow({std::to_string(sched.tasks_run),
                        std::to_string(sched.steals),
                        std::to_string(sched.steal_attempts),
                        std::to_string(sched.max_queue_depth),
                        ms(sched.idle_ns)});
    rendered += "scheduler (work-stealing task graph):\n" +
                sched_table.render();
    return rendered;
}

std::string
moduleSummary(const PipelineStats &stats,
              const std::vector<CaseOutcome> &outcomes,
              bool verify_cache_enabled, bool incremental_sat_enabled)
{
    static constexpr CaseStatus kStatuses[] = {
        CaseStatus::Found,         CaseStatus::NotInteresting,
        CaseStatus::Incorrect,     CaseStatus::SyntaxError,
        CaseStatus::Unsupported,   CaseStatus::NoCandidate,
        CaseStatus::Degraded,      CaseStatus::Error,
        CaseStatus::Skipped,
    };
    static constexpr size_t kNumStatuses =
        sizeof(kStatuses) / sizeof(kStatuses[0]);

    // Per-proposer outcome breakdown. Rows appear in the fixed order
    // llm, egraph so reports diff cleanly between runs.
    std::vector<std::string> headers{"proposer"};
    for (CaseStatus status : kStatuses)
        headers.push_back(caseStatusName(status));
    TextTable table(std::move(headers));
    bool any_rows = false;
    for (const char *backend : {"catalog", "llm", "egraph"}) {
        uint64_t counts[kNumStatuses] = {};
        uint64_t total = 0;
        for (const CaseOutcome &outcome : outcomes) {
            if (outcome.proposer != backend)
                continue;
            ++total;
            for (size_t s = 0; s < kNumStatuses; ++s)
                if (outcome.status == kStatuses[s])
                    ++counts[s];
        }
        if (total == 0)
            continue;
        std::vector<std::string> row{backend};
        for (size_t s = 0; s < kNumStatuses; ++s)
            row.push_back(std::to_string(counts[s]));
        table.addRow(std::move(row));
        any_rows = true;
    }

    // A headerless run (e.g. the extractor found no sequences) would
    // render as an orphaned header + underline; skip the table.
    std::string out = any_rows ? table.render() : std::string();
    char line[320];
    if (stats.catalog_consults || stats.found_by_catalog) {
        std::snprintf(
            line, sizeof(line),
            "cases=%llu found=%llu (catalog %llu, llm %llu, egraph "
            "%llu) llm-calls=%llu egraph-consults=%llu "
            "catalog-consults=%llu hybrid-fallbacks=%llu "
            "verifier-calls=%llu\n",
            static_cast<unsigned long long>(stats.cases),
            static_cast<unsigned long long>(stats.found),
            static_cast<unsigned long long>(stats.found_by_catalog),
            static_cast<unsigned long long>(stats.found_by_llm),
            static_cast<unsigned long long>(stats.found_by_egraph),
            static_cast<unsigned long long>(stats.llm_calls),
            static_cast<unsigned long long>(stats.egraph_consults),
            static_cast<unsigned long long>(stats.catalog_consults),
            static_cast<unsigned long long>(stats.hybrid_fallbacks),
            static_cast<unsigned long long>(stats.verifier_calls));
    } else {
        // Catalog-free runs keep the historical line byte-identical.
        std::snprintf(
            line, sizeof(line),
            "cases=%llu found=%llu (llm %llu, egraph %llu) llm-calls=%llu "
            "egraph-consults=%llu hybrid-fallbacks=%llu verifier-calls=%llu\n",
            static_cast<unsigned long long>(stats.cases),
            static_cast<unsigned long long>(stats.found),
            static_cast<unsigned long long>(stats.found_by_llm),
            static_cast<unsigned long long>(stats.found_by_egraph),
            static_cast<unsigned long long>(stats.llm_calls),
            static_cast<unsigned long long>(stats.egraph_consults),
            static_cast<unsigned long long>(stats.hybrid_fallbacks),
            static_cast<unsigned long long>(stats.verifier_calls));
    }
    out += line;
    // The cache line would read "0 hits / 0 misses" on disabled runs
    // and suggest a malfunction; emit it only when the cache ran.
    if (verify_cache_enabled) {
        out += "verify cache: ";
        out += cacheSummary(stats.verify_cache_hits,
                            stats.verify_cache_misses);
        out += "\n";
    }
    // Same rationale for the session line: only meaningful when the
    // incremental solver actually ran.
    if (incremental_sat_enabled) {
        std::snprintf(
            line, sizeof(line),
            "incremental sat: %llu sessions, %llu reuses, "
            "%llu learnts carried, %llu vars / %llu clauses saved\n",
            static_cast<unsigned long long>(stats.sat_sessions),
            static_cast<unsigned long long>(stats.session_reuses),
            static_cast<unsigned long long>(stats.learnts_carried),
            static_cast<unsigned long long>(stats.session_vars_saved),
            static_cast<unsigned long long>(stats.session_clauses_saved));
        out += line;
    }
    // Degradation telemetry only matters when something degraded;
    // fault-free runs keep the summary unchanged (and byte-compatible
    // with pre-ladder reports).
    if (stats.sat_escalations || stats.concrete_fallbacks ||
        stats.degraded_verdicts || stats.contained_exceptions)
        out += degradationStatsLine(stats);
    // Store telemetry only when persistence actually did something —
    // store-less runs keep the summary byte-identical to before.
    if (stats.store_cache_loaded || stats.store_catalog_loaded ||
        stats.store_cache_flushed || stats.store_catalog_flushed ||
        stats.store_recoveries || stats.store_quarantined ||
        stats.store_rejected_files || stats.store_flush_failures ||
        stats.store_decode_skipped)
        out += storeStatsLine(stats);
    return out;
}

} // namespace lpo::core
