/**
 * @file
 * The LPO closed loop (paper Fig. 2 / Algorithm 1).
 *
 * For each instruction sequence: ask the configured proposer backend
 * for a candidate (the LLM, the e-graph equality-saturation engine,
 * or the hybrid of both — see core/proposer.h); syntax-check and
 * canonicalize the candidate with the opt driver; gate on
 * interestingness; verify refinement with the translation validator;
 * on failure, feed the error message or counterexample back to the
 * proposer and retry up to ATTEMPT_LIMIT times. The LPO- ablation
 * disables the feedback loop.
 */
#ifndef LPO_CORE_PIPELINE_H
#define LPO_CORE_PIPELINE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/proposer.h"
#include "extract/extractor.h"
#include "ir/module.h"
#include "llm/client.h"
#include "support/task_graph.h"
#include "verify/cache.h"
#include "verify/refine.h"

namespace lpo::core {

/** Pipeline configuration. */
struct PipelineConfig
{
    /** Max LLM attempts per sequence (paper: 2). */
    unsigned attempt_limit = 2;
    /** False selects the LPO- ablation (no feedback, single shot). */
    bool enable_feedback = true;
    verify::RefineOptions refine;
    /** Fixed non-LLM overhead (opt + checks) in simulated seconds. */
    double overhead_seconds = 0.5;
    /** Additional simulated seconds per verifier invocation. */
    double verify_seconds = 0.4;
    /**
     * Threads for processModule's per-sequence fan-out (0 = hardware
     * concurrency; 1 reproduces the original serial behavior). Every
     * thread count produces bit-identical outcomes and stats: each
     * case's seed depends only on its position, workers run cases in
     * isolated per-thread IR contexts, and per-case stat deltas are
     * merged in sequence order (see DESIGN.md, "Deterministic
     * parallelism").
     */
    unsigned num_threads = 0;
    /**
     * Share a verification result cache across all cases and workers
     * (see verify/cache.h). Outcomes and stats are bit-identical with
     * the cache on or off; only the cache hit/miss counters differ.
     */
    bool enable_verify_cache = true;
    /**
     * Candidate-generation backend (see core/proposer.h). Hybrid runs
     * the LLM loop first and falls back to the e-graph when it ends
     * in any failure the e-graph could overcome (NoCandidate,
     * Incorrect, SyntaxError, NotInteresting), so hybrid's verified
     * findings are always a superset of the LLM's at equal settings.
     */
    ProposerKind proposer = ProposerKind::Llm;
    /** E-graph saturation budgets (egraph / hybrid modes). */
    egraph::SaturationLimits egraph_limits;
    /**
     * Directory of the crash-safe persistent verify store (empty =
     * no persistence; see verify/persist.h). On construction the
     * pipeline seeds its verify cache from `verify.lpo` and loads the
     * learned rewrite catalog from `catalog.lpo`; fresh verdicts and
     * rewrites are journaled back on flushStore()/destruction. In
     * hybrid mode the catalog runs as a zero-SAT-cost first proposer
     * leg. An unusable path degrades to in-memory operation with one
     * stderr warning — persistence never fails a run.
     */
    std::string store_path;
};

/** Why a case ended. */
enum class CaseStatus {
    Found,            ///< verified missed optimization recorded
    NotInteresting,   ///< candidate no better than the original
    Incorrect,        ///< verification kept failing
    SyntaxError,      ///< candidate never parsed
    Unsupported,      ///< verifier cannot handle the function
    NoCandidate,      ///< model echoed the input (nothing proposed)
    Degraded,         ///< verification budget ladder exhausted; the
                      ///< candidate only survived bounded testing
                      ///< (never patched)
    Error,            ///< an exception escaped the case and was
                      ///< contained (the run continued)
    Skipped,          ///< module step-budget deadline hit before this
                      ///< case ran
};

const char *caseStatusName(CaseStatus status);

/** Full record of one sequence's trip through the loop. */
struct CaseOutcome
{
    CaseStatus status = CaseStatus::NoCandidate;
    unsigned attempts = 0;
    std::string candidate_text;    ///< verified optimized function
    std::string last_feedback;     ///< final feedback message (if any)
    double llm_seconds = 0.0;      ///< simulated LLM latency
    double total_seconds = 0.0;    ///< simulated end-to-end latency
    double cost_usd = 0.0;
    std::string verifier_backend;  ///< "sat"/"exhaustive"/"sampled"
    std::string proposer;          ///< backend of the final attempt
                                   ///< ("llm" or "egraph")
    /**
     * Deterministic work units this case consumed (SAT conflicts
     * performed + candidate attempts) — the currency of the module
     * step-budget deadline. Wall-clock never enters, so deadline cuts
     * reproduce across machines (see core/module_opt.h).
     */
    uint64_t step_cost = 0;

    bool found() const { return status == CaseStatus::Found; }
};

/**
 * Wall-clock attribution by pipeline phase, in nanoseconds.
 *
 * Unlike every other PipelineStats field these are measurements of
 * real time, so they vary run to run and thread count to thread
 * count; determinism tests must never compare them (and none do —
 * the byte-identity contract covers outcomes and work counters).
 * All zero when telemetry is disabled: the accumulation is fed by
 * telemetry::ScopedTimer, which is inert then. propose/verify fold
 * per case in sequence order with the other per-case deltas;
 * extract/patch/dce/total are folded in by ModuleOptimizer via
 * Pipeline::addStageTimings().
 */
struct StageTimings
{
    uint64_t extract_ns = 0;
    uint64_t propose_ns = 0;
    uint64_t verify_ns = 0;
    uint64_t patch_ns = 0;
    uint64_t dce_ns = 0;
    uint64_t total_ns = 0;
};

/** Aggregate statistics over a run. */
struct PipelineStats
{
    uint64_t cases = 0;
    uint64_t found = 0;
    uint64_t llm_calls = 0;
    uint64_t verifier_calls = 0;
    uint64_t syntax_errors = 0;
    uint64_t incorrect_candidates = 0;
    uint64_t not_interesting = 0;
    /**
     * Verification cache counters (absolute snapshots of the shared
     * cache, not per-run deltas). Compute-once semantics make both
     * counts thread-count-invariant: exactly one miss per distinct
     * query key, ever.
     */
    uint64_t verify_cache_hits = 0;
    uint64_t verify_cache_misses = 0;
    uint64_t verify_cache_evictions = 0;
    /**
     * SAT work counters (verify::SatTelemetry folded per case in
     * sequence order). They count solving actually performed, so with
     * the shared cache on in a parallel run the per-case attribution
     * of a shared query can move between workers; verdicts and
     * outcomes stay byte-identical regardless.
     */
    uint64_t sat_solves = 0;
    uint64_t sat_decisions = 0;
    uint64_t sat_conflicts = 0;
    uint64_t sat_propagations = 0;
    uint64_t sat_restarts = 0;
    /** Incremental-session accounting (see verify::RefinementSession). */
    uint64_t sat_sessions = 0;
    uint64_t session_reuses = 0;
    uint64_t learnts_carried = 0;
    uint64_t session_vars_saved = 0;
    uint64_t session_clauses_saved = 0;
    uint64_t session_fallbacks = 0;
    // Per-proposer accounting (surfaced by core::moduleSummary).
    uint64_t egraph_consults = 0;   ///< propose() calls on the e-graph
                                    ///< backend (a consult may decline
                                    ///< — unsupported function, retry —
                                    ///< without running a saturation)
    uint64_t egraph_proposals = 0;  ///< candidates the e-graph offered
    uint64_t found_by_llm = 0;      ///< findings from LLM attempts
    uint64_t found_by_egraph = 0;   ///< findings from e-graph attempts
    uint64_t hybrid_fallbacks = 0;  ///< hybrid cases that consulted
                                    ///< the e-graph after the LLM
    // Learned-catalog accounting (hybrid first leg; see
    // verify/persist.h and core::CatalogProposer).
    uint64_t catalog_consults = 0;  ///< propose() calls on the catalog
    uint64_t catalog_proposals = 0; ///< candidates the catalog offered
    uint64_t found_by_catalog = 0;  ///< findings replayed from it
    /**
     * Persistent-store accounting (absolute snapshots of the store's
     * StoreStats, like the cache counters above; all zero when no
     * store is configured). See verify/persist.h.
     */
    uint64_t store_cache_loaded = 0;
    uint64_t store_catalog_loaded = 0;
    uint64_t store_cache_flushed = 0;
    uint64_t store_catalog_flushed = 0;
    uint64_t store_flush_failures = 0;
    uint64_t store_recoveries = 0;
    uint64_t store_quarantined = 0;
    uint64_t store_rejected_files = 0;
    uint64_t store_decode_skipped = 0;
    /**
     * Degradation-ladder accounting (verify::DegradationStats folded
     * per case in sequence order; work-done semantics like the SAT
     * counters above). See DESIGN.md, "Fault containment and
     * degradation ladder".
     */
    uint64_t sat_escalations = 0;      ///< budget-tier bumps
    uint64_t concrete_fallbacks = 0;   ///< SAT queries degraded to the
                                       ///< concrete backend
    uint64_t exhaustive_rescues = 0;   ///< fallbacks still concluded
                                       ///< soundly (full enumeration)
    uint64_t degraded_verdicts = 0;    ///< queries ending Degraded
    uint64_t contained_exceptions = 0; ///< per-case exceptions caught
                                       ///< (CaseStatus::Error)
    double total_seconds = 0.0;
    double total_cost_usd = 0.0;
    /** Real-time phase attribution (never compared for determinism). */
    StageTimings timings;
    /**
     * Work-stealing scheduler counters folded over every parallel
     * processSequences fan-out. Pure scheduling telemetry: steal and
     * queue-depth figures depend on thread timing, so — like timings —
     * they are never part of any determinism comparison.
     */
    TaskGraphStats scheduler;
};

/** The LPO engine. */
class Pipeline
{
  public:
    /**
     * Opens the persistent store when config.store_path is set:
     * seeds the verify cache, loads the catalog, and prints one
     * stderr warning (then continues in-memory) if the path is
     * unusable. The destructor flushes pending store state.
     */
    Pipeline(llm::LlmClient &client, PipelineConfig config = {});
    ~Pipeline();

    /** Run the loop on one wrapped instruction sequence. */
    CaseOutcome optimizeSequence(const ir::Function &seq,
                                 uint64_t round_seed = 0);

    /**
     * Extract sequences from @p module and run the loop on each;
     * returns outcomes for every extracted sequence.
     */
    std::vector<CaseOutcome> processModule(const ir::Module &module,
                                           extract::Extractor &extractor,
                                           uint64_t round_seed = 0);

    /**
     * Run the loop on an already-extracted batch of sequences —
     * processModule minus the extraction, and the entry point
     * core::ModuleOptimizer shards its unique wrapped sequences
     * through. Outcomes are returned in input order and, like
     * processModule, are bit-identical for every thread count and
     * with the verify cache on or off (per-case stat deltas fold in
     * sequence order; each parallel worker re-parses its sequence
     * into a private Context).
     *
     * The parallel fan-out runs on a work-stealing task graph: each
     * sequence is one case task, and a chain of commit tasks — commit
     * i depends on case i and commit i-1 — folds stat deltas and
     * streams results out strictly in sequence order while later
     * cases are still running. @p on_commit, when set, is invoked
     * from that chain, once per sequence in index order, after the
     * case's stats have been folded; ModuleOptimizer patches results
     * back into the module from it. The callback must not call back
     * into this Pipeline. On the serial path it is invoked inline
     * after each case, preserving identical observable order.
     */
    std::vector<CaseOutcome>
    processSequences(const std::vector<const ir::Function *> &sequences,
                     uint64_t round_seed = 0,
                     const std::function<void(size_t, const CaseOutcome &)>
                         &on_commit = {});

    const PipelineStats &stats() const { return stats_; }

    /**
     * Fold module-level phase timings (extract/patch/dce/total,
     * measured by ModuleOptimizer around this pipeline) into stats().
     */
    void addStageTimings(const StageTimings &timings);

    /**
     * Journal pending verdicts and learned rewrites to the store and
     * fsync (no-op without a store). Called by the destructor too;
     * exposed so module runs can persist before reporting. Returns
     * false if any record failed to append (counted in stats).
     */
    bool flushStore();

    /**
     * Snapshot-compact the store (flush + rewrite both files as
     * deduplicated snapshots; see verify::PersistentStore::compact).
     * False with @p error when no store is configured, the store is
     * read-only, or a snapshot failed. Callers run this between
     * requests, never inside one.
     */
    bool compactStore(std::string *error = nullptr);

    /**
     * Drop pending (unflushed) store records — the fault-quarantine
     * path (see verify::PersistentStore::discardPending). No-op
     * without a store.
     */
    void discardPendingStore();

    /** The open persistent store, or nullptr (no store_path / path
     *  unusable). */
    const verify::PersistentStore *store() const { return store_.get(); }

  private:
    /**
     * One sequence's trip through the loop, accounted into @p stats,
     * verifying with @p refine (processModule workers pass a serial
     * copy so per-case sweeps don't nest thread pools; by the
     * deterministic-parallelism contract this cannot change results).
     * Dispatches to the configured proposer; in Hybrid mode runs the
     * LLM attempt loop and falls back to the e-graph on
     * NoCandidate/Incorrect. Owns the case's incremental verification
     * session: one verify::RefinementSession spans every candidate the
     * case produces, across both hybrid legs.
     */
    CaseOutcome runCase(const ir::Function &seq, uint64_t round_seed,
                        PipelineStats &stats,
                        const verify::RefineOptions &refine);

    /** The propose -> opt -> gate -> verify attempt loop over one
     *  backend (Algorithm 1's body, proposer-agnostic), verifying
     *  every candidate through the case's @p session. */
    CaseOutcome runAttemptLoop(Proposer &proposer,
                               const ir::Function &seq,
                               uint64_t round_seed, PipelineStats &stats,
                               verify::RefinementSession &session);

    /** runAttemptLoop behind crash isolation: an escaping exception
     *  becomes a CaseStatus::Error outcome, never a lost run. */
    CaseOutcome runLegContained(Proposer &proposer,
                                const ir::Function &seq,
                                uint64_t round_seed, PipelineStats &stats,
                                verify::RefinementSession &session);

    /** Copy the shared cache's and store's counters into stats_. */
    void refreshCacheStats();

    /** Fold one case's stat delta into stats_. Field-by-field in a
     *  fixed order so parallel totals (including the doubles) are
     *  bit-identical to serial accumulation; called from the ordered
     *  commit chain, never concurrently. */
    void foldStats(const PipelineStats &delta);

    llm::LlmClient &client_;
    PipelineConfig config_;
    PipelineStats stats_;
    /** Proposer backends (shared by all workers; see the Proposer
     *  thread-safety contract). Declared after config_: the e-graph
     *  proposer copies its budgets from it. */
    LlmProposer llm_proposer_{client_};
    EGraphProposer egraph_proposer_{config_.egraph_limits};
    /** Shared across every case and worker thread for the lifetime
     *  of the pipeline, so repeat candidates across modules hit. The
     *  entry cap bounds memory on long-running deployments (oldest
     *  entries evicted per shard); it is far above any single run's
     *  distinct-query count, so stats stay thread-count-invariant in
     *  practice (see verify/cache.h). */
    verify::VerifyCache verify_cache_{16, size_t(1) << 20};
    /** Open store for config_.store_path, or null. Declared after
     *  verify_cache_ (it seeds the cache and hooks its publishes) and
     *  before catalog_proposer_ (which reads its catalog). */
    std::unique_ptr<verify::PersistentStore> store_;
    CatalogProposer catalog_proposer_{nullptr};
};

} // namespace lpo::core

#endif // LPO_CORE_PIPELINE_H
