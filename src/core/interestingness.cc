#include "core/interestingness.h"

#include "ir/pattern.h"
#include "mca/cost_model.h"

namespace lpo::core {

Interestingness
checkInteresting(const ir::Function &original,
                 const ir::Function &candidate)
{
    Interestingness result;
    mca::CostSummary before = mca::analyzeFunction(original);
    mca::CostSummary after = mca::analyzeFunction(candidate);
    result.instruction_delta =
        static_cast<int>(after.instruction_count) -
        static_cast<int>(before.instruction_count);
    result.cycle_delta = after.total_cycles - before.total_cycles;

    if (result.instruction_delta < 0) {
        result.interesting = true;
        result.reason = "fewer instructions";
        return result;
    }
    if (result.instruction_delta == 0 && result.cycle_delta < 0) {
        result.interesting = true;
        result.reason = "fewer estimated cycles";
        return result;
    }
    if (result.instruction_delta == 0 && result.cycle_delta == 0 &&
        !ir::structurallyEqual(original, candidate)) {
        result.interesting = true;
        result.reason = "syntactically different at equal cost";
        return result;
    }
    result.reason = result.instruction_delta > 0
        ? "more instructions than the original"
        : "identical or not cheaper";
    return result;
}

} // namespace lpo::core
