/**
 * @file
 * Interestingness checking (paper §3.3).
 *
 * Decides whether a candidate potentially manifests a beneficial
 * optimization before the (costlier) correctness check runs. Two
 * metrics: instruction count and the static cycle estimate from the
 * llvm-mca substitute on the btver2 model. Ties that still differ
 * syntactically remain interesting (they may enable follow-on
 * optimizations).
 */
#ifndef LPO_CORE_INTERESTINGNESS_H
#define LPO_CORE_INTERESTINGNESS_H

#include <string>

#include "ir/function.h"

namespace lpo::core {

/** Outcome of the interestingness check. */
struct Interestingness
{
    bool interesting = false;
    std::string reason;
    int instruction_delta = 0;  ///< candidate - original (negative good)
    double cycle_delta = 0.0;   ///< candidate - original (negative good)
};

/** Compare @p candidate against @p original. */
Interestingness checkInteresting(const ir::Function &original,
                                 const ir::Function &candidate);

} // namespace lpo::core

#endif // LPO_CORE_INTERESTINGNESS_H
