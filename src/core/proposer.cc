#include "core/proposer.h"

#include "egraph/extract.h"
#include "support/failpoint.h"
#include "ir/ir_verifier.h"
#include "ir/printer.h"
#include "mca/cost_model.h"

namespace lpo::core {

const char *
proposerKindName(ProposerKind kind)
{
    switch (kind) {
      case ProposerKind::Llm: return "llm";
      case ProposerKind::EGraph: return "egraph";
      case ProposerKind::Hybrid: return "hybrid";
    }
    return "?";
}

bool
parseProposerKind(const std::string &name, ProposerKind *out)
{
    if (name == "llm")
        *out = ProposerKind::Llm;
    else if (name == "egraph")
        *out = ProposerKind::EGraph;
    else if (name == "hybrid")
        *out = ProposerKind::Hybrid;
    else
        return false;
    return true;
}

const char *
Proposer::name() const
{
    switch (backend()) {
      case Backend::Llm: return "llm";
      case Backend::EGraph: return "egraph";
      case Backend::Catalog: return "catalog";
    }
    return "?";
}

std::optional<Proposal>
LlmProposer::propose(const ir::Function &, const std::string &seq_text,
                     const std::string &feedback, uint64_t attempt_seed)
{
    // Chaos-test injection: a provider outage (throw) or a model that
    // has nothing to offer (none).
    if (LPO_FAILPOINT("proposer.llm.throw"))
        throw FailPointError("injected LLM backend failure "
                             "(failpoint proposer.llm.throw)");
    if (LPO_FAILPOINT("proposer.llm.none"))
        return std::nullopt;
    llm::LlmRequest request;
    request.system_prompt = "(see llm/prompt.h)";
    request.function_text = seq_text;
    request.feedback = feedback;
    request.seed = attempt_seed;
    llm::LlmResponse response = client_.complete(request);
    Proposal proposal;
    proposal.text = std::move(response.text);
    proposal.latency_seconds = response.latency_seconds;
    proposal.cost_usd = response.cost_usd;
    return proposal;
}

std::optional<Proposal>
EGraphProposer::propose(const ir::Function &seq, const std::string &,
                        const std::string &feedback, uint64_t)
{
    // Chaos-test injection, mirroring the LLM leg's two fault shapes.
    if (LPO_FAILPOINT("proposer.egraph.throw"))
        throw FailPointError("injected e-graph backend failure "
                             "(failpoint proposer.egraph.throw)");
    if (LPO_FAILPOINT("proposer.egraph.none"))
        return std::nullopt;
    // Saturation is deterministic: after a failed attempt there is
    // nothing different to say, so don't repeat the proposal.
    if (!feedback.empty())
        return std::nullopt;
    if (!egraph::EGraph::supports(seq))
        return std::nullopt;

    egraph::EGraph graph(seq.context());
    std::optional<egraph::ClassId> root = graph.addFunction(seq);
    if (!root)
        return std::nullopt;
    egraph::saturate(graph, *root, seq, limits_);
    std::unique_ptr<ir::Function> best =
        egraph::extractFunction(graph, *root, seq);
    if (!best || !ir::isValid(*best))
        return std::nullopt;

    // Only propose strict improvements under the interestingness
    // ordering (instruction count first, then cycles): equal-cost
    // re-spellings would pass the gate as "syntactically different"
    // and pollute the found set with cosmetic rewrites.
    mca::CostSummary before = mca::analyzeFunction(seq);
    mca::CostSummary after = mca::analyzeFunction(*best);
    bool better =
        after.instruction_count < before.instruction_count ||
        (after.instruction_count == before.instruction_count &&
         after.total_cycles < before.total_cycles);
    if (!better)
        return std::nullopt;

    Proposal proposal;
    proposal.text = ir::printFunction(*best);
    return proposal;
}

std::optional<Proposal>
CatalogProposer::propose(const ir::Function &seq, const std::string &,
                         const std::string &feedback, uint64_t)
{
    if (!catalog_)
        return std::nullopt;
    // One candidate per sequence: non-empty feedback means that
    // candidate already failed this case, so there is nothing new to
    // offer (same contract as the e-graph backend).
    if (!feedback.empty())
        return std::nullopt;
    const std::string *text =
        catalog_->lookup(ir::printFunctionCanonical(seq));
    if (!text)
        return std::nullopt;
    Proposal proposal;
    proposal.text = *text;
    return proposal;
}

} // namespace lpo::core
