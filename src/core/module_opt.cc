#include "core/module_opt.h"

#include <cassert>
#include <cstdio>
#include <map>
#include <set>

#include "core/report.h"
#include "ir/ir_verifier.h"
#include "ir/parser.h"
#include "mca/cost_model.h"
#include "opt/dce.h"
#include "support/failpoint.h"
#include "support/telemetry.h"
#include "support/trace.h"

namespace lpo::core {

using ir::Instruction;
using ir::Value;

namespace {

std::string
fmt1(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

} // namespace

ModuleOptimizer::ModuleOptimizer(llm::LlmClient &client,
                                 ModuleOptOptions options)
    : options_(std::move(options)), pipeline_(client, options_.pipeline)
{
}

bool
ModuleOptimizer::applyRewrite(const extract::SequenceSite &site,
                              const ir::Function &tgt,
                              NameAllocator *names)
{
    // Chaos-test injection: a patch-back refusal must surface as a
    // counted patch failure, leaving the function untouched and valid.
    if (LPO_FAILPOINT("patchback.fail"))
        return false;
    // Defensive pre-checks: extraction and verification already
    // guarantee all of this, so any failure here means the site
    // drifted under us (an earlier patch collapsed two of its outside
    // operands, say) — skip the site rather than splice a rewrite
    // whose argument mapping no longer matches what was verified.
    if (tgt.blocks().size() != 1)
        return false;
    const Instruction *tail = site.insts.back();
    std::vector<Value *> outside =
        extract::Extractor::outsideOperands(site.insts);
    if (outside.size() != tgt.numArgs())
        return false;
    for (unsigned i = 0; i < tgt.numArgs(); ++i)
        if (outside[i]->type() != tgt.arg(i)->type())
            return false;
    if (tgt.returnType() != tail->type())
        return false;
    const Instruction *ret = tgt.entry()->terminator();
    if (!ret || ret->op() != ir::Opcode::Ret || ret->numOperands() != 1)
        return false;

    // The extractor recorded const views into a module the caller
    // handed us as mutable; recover the mutable handles.
    auto *fn = const_cast<ir::Function *>(site.fn);
    auto *block = const_cast<ir::BasicBlock *>(site.block);
    size_t anchor = block->size();
    for (size_t i = 0; i < block->size(); ++i)
        if (block->at(i) == tail) {
            anchor = i;
            break;
        }
    if (anchor == block->size())
        return false;

    // Fresh, deterministic names for the spliced instructions: the
    // per-function counter advances monotonically, skipping anything
    // the input module already uses (seeded once, on the function's
    // first patch), so 1-thread and N-thread runs — and repeated
    // patches into one function — print identically.
    if (!names->seeded) {
        names->seeded = true;
        for (const auto &arg : fn->args())
            names->taken.insert(arg->name());
        for (const auto &bb : fn->blocks())
            for (const auto &inst : bb->instructions())
                names->taken.insert(inst->name());
    }
    auto fresh = [&]() {
        std::string name;
        do
            name = "lpo.p" + std::to_string(names->counter++);
        while (names->taken.count(name));
        names->taken.insert(name);
        return name;
    };

    // Clone the rewrite body at the anchor, remapping its arguments
    // back to the original outside-sequence operands.
    std::map<const Value *, Value *> remap;
    for (unsigned i = 0; i < tgt.numArgs(); ++i)
        remap[tgt.arg(i)] = outside[i];
    for (const auto &inst : tgt.entry()->instructions()) {
        if (inst->isTerminator())
            continue;
        auto copy = ir::cloneInstruction(*inst, remap);
        copy->setName(fresh());
        remap[inst.get()] = block->insert(anchor++, std::move(copy));
    }

    // Redirect every user of the sequence tail to the new result; the
    // dead originals stay behind for the DCE sweep.
    Value *ret_operand = ret->operand(0);
    auto it = remap.find(ret_operand);
    Value *new_result = it == remap.end() ? ret_operand : it->second;
    fn->replaceAllUses(tail, new_result);
    return true;
}

ModuleOptResult
ModuleOptimizer::optimize(ir::Module &module, uint64_t round_seed)
{
    ModuleOptResult result;
    StageTimings timings;
    LPO_TRACE_SPAN(module_span, "optimize-module", "module");
    static const telemetry::Histogram module_hist =
        telemetry::histogram("module.latency_ns");
    telemetry::ScopedTimer module_timer(module_hist);

    std::vector<FunctionSavings> savings;
    extract::Extractor extractor(options_.extractor);
    std::vector<extract::ExtractedSequence> sequences;
    std::vector<const ir::Function *> wrapped;
    {
        LPO_TRACE_SPAN(span, "extract", "phase");
        static const telemetry::Histogram extract_hist =
            telemetry::histogram("phase.extract_ns");
        telemetry::ScopedTimer timer(extract_hist);

        for (const auto &fn : module.functions()) {
            FunctionSavings s;
            s.function = fn->name();
            s.insts_before = fn->instructionCount();
            s.cycles_before = mca::analyzeFunction(*fn).total_cycles;
            result.cycles_before += s.cycles_before;
            savings.push_back(std::move(s));
        }

        // Extract with sites (fresh dedup per module — see the class
        // comment), then shard the unique wrapped sequences through
        // the pipeline (shared verify cache, per-worker SAT sessions,
        // sequence-order stat folding — see Pipeline).
        sequences = extractor.extractDetailed(module);
        wrapped.reserve(sequences.size());
        for (const auto &seq : sequences)
            wrapped.push_back(seq.wrapped.get());

        timings.extract_ns = timer.stopNanos();
        if (span.active()) {
            span.arg("functions",
                     static_cast<uint64_t>(module.functions().size()));
            span.arg("sequences",
                     static_cast<uint64_t>(sequences.size()));
        }
    }
    // Patch-back state, set up before the pipeline runs: verified
    // improvements are spliced back *while later sequences are still
    // verifying*, from the pipeline's ordered commit chain (see
    // Pipeline::processSequences). Commits arrive strictly in
    // sequence index order — the extraction order — and one at a
    // time, so the rewritten module is byte-identical to the old
    // patch-after-the-fact loop for any thread count. All state is
    // indexed by function position in the module.
    std::map<const ir::Function *, size_t> fn_index;
    for (size_t i = 0; i < module.functions().size(); ++i)
        fn_index[module.functions()[i].get()] = i;
    std::vector<NameAllocator> name_allocators(module.functions().size());
    /** Pre-patch body of every patched function, cloned before its
     *  first splice, for the net-negative rollback below. */
    std::vector<std::unique_ptr<ir::Function>> snapshots(
        module.functions().size());
    /** Functions a contained splice exception may have left
     *  half-mutated; force-validated (and restored) in the sweep. */
    std::vector<char> poisoned(module.functions().size(), 0);
    static const telemetry::Histogram patch_hist =
        telemetry::histogram("phase.patch_ns");

    auto patchSequence = [&](size_t i, const CaseOutcome &outcome) {
        if (!outcome.found())
            return;
        telemetry::ScopedTimer patch_timer(patch_hist);
        auto tgt =
            ir::parseFunction(module.context(), outcome.candidate_text);
        if (!tgt.ok()) {
            result.patch_failures += sequences[i].sites.size();
            timings.patch_ns += patch_timer.stopNanos();
            return;
        }
        for (const extract::SequenceSite &site : sequences[i].sites) {
            size_t index = fn_index.at(site.fn);
            // Contained: a throw out of a single splice (snapshot
            // clone, remap, insert) costs that site, never the run.
            // applyRewrite touches nothing until its pre-checks pass,
            // and the function snapshot is taken first, so the
            // rollback sweep below still has a clean body to restore.
            try {
                if (!snapshots[index])
                    snapshots[index] = site.fn->clone(site.fn->name());
                if (!applyRewrite(site, **tgt,
                                  &name_allocators[index])) {
                    ++result.patch_failures;
                    continue;
                }
            } catch (const std::exception &) {
                ++result.patch_failures;
                // The splice may have died mid-mutation; force the
                // function through the validation sweep even if no
                // other site patched it, so a half-spliced body is
                // caught and restored. (If the snapshot clone itself
                // threw, the function was never touched — skip.)
                if (snapshots[index])
                    poisoned[index] = 1;
                continue;
            }
            ++result.patched_rewrites;
            ++savings[index].patched;
            result.patches.push_back(PatchRecord{
                site.fn->name(), index, site.block->label(),
                static_cast<unsigned>(site.insts.size()), i});
        }
        timings.patch_ns += patch_timer.stopNanos();
    };

    if (options_.step_budget == 0) {
        // No deadline: one batch, exactly the pre-deadline behavior.
        result.outcomes =
            pipeline_.processSequences(wrapped, round_seed, patchSequence);
        for (const CaseOutcome &outcome : result.outcomes)
            result.steps_used += outcome.step_cost;
    } else {
        // Deterministic deadline: process fixed-size waves (the wave
        // size never depends on the thread count) and compare the
        // cumulative step cost against the budget at each boundary.
        // The wave in flight always completes — everything verified
        // so far is patched below — and the remainder is reported
        // Skipped, which patch-back naturally ignores.
        const uint64_t wave =
            options_.deadline_wave ? options_.deadline_wave : 64;
        result.outcomes.resize(wrapped.size());
        size_t done = 0;
        while (done < wrapped.size()) {
            if (result.steps_used >= options_.step_budget) {
                result.deadline_skipped = wrapped.size() - done;
                for (size_t i = done; i < wrapped.size(); ++i) {
                    result.outcomes[i].status = CaseStatus::Skipped;
                    result.outcomes[i].last_feedback =
                        "step-budget deadline reached";
                }
                break;
            }
            size_t count = std::min<size_t>(wave, wrapped.size() - done);
            std::vector<const ir::Function *> batch(
                wrapped.begin() + done, wrapped.begin() + done + count);
            std::vector<CaseOutcome> outcomes = pipeline_.processSequences(
                batch, round_seed,
                [&patchSequence, done](size_t i,
                                       const CaseOutcome &outcome) {
                    patchSequence(done + i, outcome);
                });
            for (size_t i = 0; i < outcomes.size(); ++i) {
                result.steps_used += outcomes[i].step_cost;
                result.outcomes[done + i] = std::move(outcomes[i]);
            }
            done += count;
        }
    }
    result.unique_sequences = sequences.size();
    // Patch-back already streamed from the commit chain above. The
    // "patch" phase therefore no longer exists as its own wall-clock
    // interval — its cost lives inside the pipeline span, attributed
    // via timings.patch_ns (summed commit-callback time) and the
    // phase.patch_ns histogram (one sample per patched sequence).

    LPO_TRACE_SPAN(dce_span, "dce", "phase");
    static const telemetry::Histogram dce_hist =
        telemetry::histogram("phase.dce_ns");
    telemetry::ScopedTimer dce_timer(dce_hist);

    // Sweep the dead originals, re-validate, and re-measure; module
    // order keeps the pass deterministic. A patched function that
    // fails validation (a bug) or costs more mca cycles than before
    // (a size-first rewrite stretching the critical path) is restored
    // from its snapshot and its sites are un-counted.
    std::set<size_t> rolled_back;
    for (size_t i = 0; i < module.functions().size(); ++i) {
        FunctionSavings &fs = savings[i];
        if (fs.patched == 0 && !poisoned[i]) {
            // Untouched function: nothing ran on it, reuse the
            // measurement from the top of the pass.
            fs.insts_after = fs.insts_before;
            fs.cycles_after = fs.cycles_before;
            result.cycles_after += fs.cycles_after;
            continue;
        }
        ir::Function &fn = *module.functions()[i];
        unsigned removed = 0;
        unsigned insts_after;
        double cycles_after;
        if (options_.run_dce) {
            removed = opt::removeDeadInstructions(fn);
            insts_after = fn.instructionCount();
            cycles_after = mca::analyzeFunction(fn).total_cycles;
        } else {
            // No in-place sweep requested; the profit decision AND
            // the reported savings still price the function as-if
            // swept (the dead originals' issue-bound cost would
            // otherwise roll back every patch / report regressions
            // for verified-profitable rewrites).
            auto probe = fn.clone(fn.name());
            opt::removeDeadInstructions(*probe);
            insts_after = probe->instructionCount();
            cycles_after = mca::analyzeFunction(*probe).total_cycles;
        }
        bool valid = ir::isValid(fn);
        if (!valid) {
            ++result.invalid_functions;
            assert(false && "patch-back produced invalid IR");
        }
        if (!valid || cycles_after > fs.cycles_before) {
            module.replaceFunction(i, std::move(snapshots[i]));
            ++result.functions_rolled_back;
            result.patched_rewrites -= fs.patched;
            rolled_back.insert(i);
            fs.patched = 0;
            fs.insts_after = fs.insts_before;
            fs.cycles_after = fs.cycles_before;
            result.cycles_after += fs.cycles_after;
            continue;
        }
        result.dce_removed += removed;
        fs.insts_after = insts_after;
        fs.cycles_after = cycles_after;
        result.cycles_after += fs.cycles_after;
    }
    if (!rolled_back.empty()) {
        std::vector<PatchRecord> kept;
        for (PatchRecord &patch : result.patches)
            if (!rolled_back.count(patch.function_index))
                kept.push_back(std::move(patch));
        result.patches = std::move(kept);
    }
    timings.dce_ns = dce_timer.stopNanos();
    if (dce_span.active())
        dce_span.arg("removed", result.dce_removed);
    dce_span.end();

    result.functions = std::move(savings);
    result.extraction = extractor.stats();
    timings.total_ns = module_timer.stopNanos();
    if (module_span.active()) {
        module_span.arg("patched", result.patched_rewrites);
        module_span.arg("sequences",
                        static_cast<uint64_t>(result.outcomes.size()));
    }
    pipeline_.addStageTimings(timings);
    // Make this run's verdicts and learned rewrites durable before the
    // stats snapshot: a kill -9 between modules then loses nothing,
    // and the reported store counters include this run's flush.
    pipeline_.flushStore();
    result.pipeline = pipeline_.stats();
    return result;
}

std::string
savingsTable(const ModuleOptResult &result)
{
    TextTable table({"function", "insts", "insts'", "cycles", "cycles'",
                     "saved", "patched"});
    double saved_total = 0.0;
    unsigned insts_before = 0, insts_after = 0;
    for (const FunctionSavings &fs : result.functions) {
        insts_before += fs.insts_before;
        insts_after += fs.insts_after;
        saved_total += fs.cycles_before - fs.cycles_after;
        if (fs.patched == 0)
            continue;
        table.addRow({fs.function, std::to_string(fs.insts_before),
                      std::to_string(fs.insts_after),
                      fmt1(fs.cycles_before), fmt1(fs.cycles_after),
                      fmt1(fs.cycles_before - fs.cycles_after),
                      std::to_string(fs.patched)});
    }
    table.addRow({"TOTAL (" + std::to_string(result.functions.size()) +
                      " functions)",
                  std::to_string(insts_before),
                  std::to_string(insts_after), fmt1(result.cycles_before),
                  fmt1(result.cycles_after), fmt1(saved_total),
                  std::to_string(result.patched_rewrites)});
    return table.render();
}

} // namespace lpo::core
