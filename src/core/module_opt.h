/**
 * @file
 * Module-scale extract -> optimize -> patch-back (paper §3.2,
 * Algorithm 2, closed over whole modules).
 *
 * The LPO loop operates on wrapped instruction sequences; this is the
 * layer that credits its findings back to the program they came from.
 * ModuleOptimizer runs extract::Extractor over an input module (with
 * occurrence sites recorded), shards the unique wrapped sequences
 * through core::Pipeline — one shared verification cache, per-worker
 * SAT sessions, deterministic sequence-order stat folding — and then
 * splices every verified improvement back into its source functions:
 * the rewrite's body is cloned at the sequence anchor with its
 * arguments remapped to the original outside-sequence operands, all
 * users of the sequence tail are redirected to the new result, and a
 * DCE sweep removes the now-dead originals. Patched functions are
 * re-validated with ir::isValid and their mca cycle estimate is
 * re-measured, so a run reports exactly how many cycles the module
 * gained (see DESIGN.md, "Module pipeline", for the soundness and
 * determinism arguments).
 */
#ifndef LPO_CORE_MODULE_OPT_H
#define LPO_CORE_MODULE_OPT_H

#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "extract/extractor.h"
#include "ir/module.h"

namespace lpo::core {

/** Configuration for a module optimization run. */
struct ModuleOptOptions
{
    /** Proposer / threads / cache / verification knobs. */
    PipelineConfig pipeline;
    /** Extraction window and memory policy. */
    extract::ExtractorOptions extractor;
    /** Sweep dead originals out of patched functions afterwards.
     *  When off, only the in-place sweep is skipped: rollback
     *  decisions and the reported per-function savings still price
     *  each patched function as-if swept (via a throwaway clone), so
     *  the monotone-savings invariant holds in both modes. */
    bool run_dce = true;
    /**
     * Deterministic deadline for the whole run, measured in case step
     * costs (SAT conflicts performed + candidate attempts — never
     * wall-clock, so the cut point reproduces across machines). 0
     * disables the deadline (the default: one batch, no extra cost).
     * When positive, sequences are processed in fixed-size waves; once
     * the cumulative step cost crosses the budget at a wave boundary,
     * every remaining sequence is reported CaseStatus::Skipped and the
     * run proceeds straight to patch-back with what it has — a valid
     * partial result. The in-flight wave always completes, so the
     * overshoot is bounded by one wave's ladder budgets.
     */
    uint64_t step_budget = 0;
    /**
     * Wave size for deadline enforcement. Thread-count independent by
     * construction; with the verify cache off the cut point is
     * byte-identical at any thread count (see DESIGN.md, "Fault
     * containment and degradation ladder" for the cache-on caveat).
     */
    uint64_t deadline_wave = 64;

    ModuleOptOptions()
    {
        // Module-scale traffic favors throughput, but a flat budget
        // wastes the easy proofs' headroom: the escalation ladder
        // starts every query cheap, escalates the few that need it
        // (keeping learnt clauses), and degrades the pathological
        // tail to bounded testing instead of stalling the run.
        pipeline.refine.conflict_budget = 200'000;
        pipeline.refine.budget_tiers = {50'000, 200'000, 2'000'000};
    }
};

/** Before/after accounting for one source function. */
struct FunctionSavings
{
    std::string function;
    unsigned insts_before = 0;
    unsigned insts_after = 0;
    double cycles_before = 0.0;
    double cycles_after = 0.0;
    /** Rewrite sites spliced into this function. */
    unsigned patched = 0;
};

/** One applied patch (for reports and the per-family accounting). */
struct PatchRecord
{
    std::string function;
    /** Index into ModuleOptResult::functions — names need not be
     *  unique in a parsed module, so bookkeeping keys on this. */
    size_t function_index = 0;
    std::string block;      ///< label of the block holding the anchor
    unsigned seq_length = 0;
    size_t sequence_index = 0; ///< index into ModuleOptResult::outcomes
};

/** Everything a ModuleOptimizer::optimize call produced. */
struct ModuleOptResult
{
    /** Per unique wrapped sequence, in extraction order. */
    std::vector<CaseOutcome> outcomes;
    /** Per source function, in module order. */
    std::vector<FunctionSavings> functions;
    std::vector<PatchRecord> patches;
    extract::ExtractionStats extraction;
    /** Pipeline stats snapshot after this run. */
    PipelineStats pipeline;
    uint64_t unique_sequences = 0;
    /** Sites a verified rewrite was spliced into. */
    uint64_t patched_rewrites = 0;
    /** Sites skipped because a pre-splice check failed (always 0
     *  unless extraction and verification disagree — a bug). */
    uint64_t patch_failures = 0;
    /** Patched functions ir::isValid rejected (always 0 on sound
     *  patch-back; checked by tests and the benchmark). Such
     *  functions are rolled back to their pre-patch body. */
    uint64_t invalid_functions = 0;
    /**
     * Functions restored to their pre-patch body because the patched
     * version cost MORE mca cycles (the interestingness gate orders
     * by instruction count first, so a smaller rewrite with a longer
     * critical path can locally regress; the rollback makes
     * per-function cycle savings monotone). Their sites are excluded
     * from patched_rewrites and `patches`.
     */
    uint64_t functions_rolled_back = 0;
    /** Sequences never processed because the step-budget deadline hit
     *  first (their outcomes read CaseStatus::Skipped). */
    uint64_t deadline_skipped = 0;
    /** Step cost consumed by the processed sequences (the deadline's
     *  currency; see ModuleOptOptions::step_budget). */
    uint64_t steps_used = 0;
    double cycles_before = 0.0;
    double cycles_after = 0.0;
    unsigned dce_removed = 0;
};

/**
 * The module-scale optimizer. Owns one Pipeline, so the verification
 * cache (and its hit statistics) persists across optimize() calls —
 * repeated sequences in later modules verify for free. Extraction
 * dedup, by contrast, is per call: every module must surface all its
 * own occurrence sites or patch-back would silently skip sequences
 * first seen in an earlier module.
 */
class ModuleOptimizer
{
  public:
    ModuleOptimizer(llm::LlmClient &client, ModuleOptOptions options = {});

    /**
     * Optimize @p module in place. Deterministic: the patched module
     * text is byte-identical for every pipeline thread count and with
     * the verification cache on or off.
     */
    ModuleOptResult optimize(ir::Module &module, uint64_t round_seed = 1);

    const PipelineStats &pipelineStats() const { return pipeline_.stats(); }

    /** Journal pending store state now (optimize() already flushes at
     *  the end of every call); see Pipeline::flushStore. */
    bool flushStore() { return pipeline_.flushStore(); }

    /** Snapshot-compact the store; see Pipeline::compactStore. */
    bool compactStore(std::string *error = nullptr)
    {
        return pipeline_.compactStore(error);
    }

    /** Drop unflushed store records (fault quarantine); see
     *  Pipeline::discardPendingStore. */
    void discardPendingStore() { pipeline_.discardPendingStore(); }

    /** The pipeline's open persistent store, or nullptr. */
    const verify::PersistentStore *store() const
    {
        return pipeline_.store();
    }

  private:
    /** Per-function fresh-name state for spliced instructions: one
     *  monotone counter plus the set of names already in use (seeded
     *  from the function once, on first patch). */
    struct NameAllocator
    {
        unsigned counter = 0;
        std::set<std::string> taken;
        bool seeded = false;
    };

    /**
     * Splice @p tgt (the verified rewrite of the sequence wrapped at
     * @p site) into the site's function. Returns false — touching
     * nothing — if a defensive pre-check fails.
     */
    bool applyRewrite(const extract::SequenceSite &site,
                      const ir::Function &tgt, NameAllocator *names);

    ModuleOptOptions options_;
    Pipeline pipeline_;
};

/** Render the per-function savings table (functions with patches,
 *  plus a module total row) for the CLI and the benchmark. */
std::string savingsTable(const ModuleOptResult &result);

} // namespace lpo::core

#endif // LPO_CORE_MODULE_OPT_H
