/**
 * @file
 * Candidate-generation backends behind one interface.
 *
 * The LPO loop (core/pipeline.h) is proposer-agnostic: each attempt
 * it asks a Proposer for candidate IR text and pushes whatever comes
 * back through the unchanged opt / interestingness / verification
 * gates. Two backends exist — the LLM client (the paper's loop) and
 * the e-graph equality-saturation engine — plus a hybrid pipeline
 * mode that falls back from the first to the second. See DESIGN.md,
 * "The Proposer contract".
 */
#ifndef LPO_CORE_PROPOSER_H
#define LPO_CORE_PROPOSER_H

#include <optional>
#include <string>

#include "egraph/rules.h"
#include "ir/function.h"
#include "llm/client.h"
#include "verify/persist.h"

namespace lpo::core {

/** Candidate-generation strategy selected by PipelineConfig. */
enum class ProposerKind { Llm, EGraph, Hybrid };

const char *proposerKindName(ProposerKind kind);
/** Parse "llm" / "egraph" / "hybrid" (CLI spelling). */
bool parseProposerKind(const std::string &name, ProposerKind *out);

/** One candidate produced by a backend. */
struct Proposal
{
    std::string text;            ///< candidate function as IR text
    double latency_seconds = 0.0; ///< simulated backend latency
    double cost_usd = 0.0;        ///< simulated backend cost
};

/**
 * A candidate-generation backend.
 *
 * Contract:
 *  - propose() MUST be safe to call concurrently (the pipeline shares
 *    one instance across its worker pool) and MUST be deterministic
 *    in (seq_text, feedback, attempt_seed);
 *  - returning nullopt means the backend has nothing (more) to offer
 *    for this sequence — the loop stops instead of burning attempts;
 *  - a returned proposal is *text*, not trusted IR: the pipeline
 *    still syntax-checks, canonicalizes, gates, and verifies it.
 */
class Proposer
{
  public:
    enum class Backend { Llm, EGraph, Catalog };

    virtual ~Proposer() = default;

    virtual Backend backend() const = 0;
    /** Stats/report key: "llm", "egraph", or "catalog". */
    const char *name() const;

    virtual std::optional<Proposal>
    propose(const ir::Function &seq, const std::string &seq_text,
            const std::string &feedback, uint64_t attempt_seed) = 0;
};

/** The paper's backend: one LlmClient completion per attempt. */
class LlmProposer : public Proposer
{
  public:
    explicit LlmProposer(llm::LlmClient &client) : client_(client) {}

    Backend backend() const override { return Backend::Llm; }
    std::optional<Proposal>
    propose(const ir::Function &seq, const std::string &seq_text,
            const std::string &feedback, uint64_t attempt_seed) override;

  private:
    llm::LlmClient &client_;
};

/**
 * The equality-saturation backend: build an e-graph from the
 * sequence, saturate under budget, extract the cheapest equivalent,
 * and propose it when it is strictly better (fewer instructions, or
 * equally many at fewer estimated cycles — the same ordering the
 * interestingness gate enforces, so cosmetic re-spellings are never
 * proposed). Deterministic and feedback-free: a non-empty feedback
 * string means a previous identical proposal already failed, so it
 * returns nullopt rather than repeating itself.
 */
class EGraphProposer : public Proposer
{
  public:
    explicit EGraphProposer(egraph::SaturationLimits limits = {})
        : limits_(limits)
    {}

    Backend backend() const override { return Backend::EGraph; }
    std::optional<Proposal>
    propose(const ir::Function &seq, const std::string &seq_text,
            const std::string &feedback, uint64_t attempt_seed) override;

    const egraph::SaturationLimits &limits() const { return limits_; }

  private:
    egraph::SaturationLimits limits_;
};

/**
 * The learned-rewrite backend: replay a candidate the persistent
 * store (see verify/persist.h) remembers as once verified against a
 * structurally identical sequence. Runs as the first hybrid leg — a
 * hit skips the LLM entirely, and because the matching verdict was
 * persisted alongside it, verification is a cache hit: zero SAT cost.
 * The proposal is still plain text that re-runs opt, the
 * interestingness gate, and full verification, so a stale or corrupt
 * catalog entry degrades to an ordinary failed attempt, never an
 * unproved patch. Deterministic: lookups see only open-time catalog
 * state. Feedback-free like the e-graph — its one candidate already
 * failed if feedback is non-empty.
 */
class CatalogProposer : public Proposer
{
  public:
    /** @p catalog may be null (no store configured): never proposes. */
    explicit CatalogProposer(const verify::RewriteCatalog *catalog)
        : catalog_(catalog)
    {}

    Backend backend() const override { return Backend::Catalog; }
    std::optional<Proposal>
    propose(const ir::Function &seq, const std::string &seq_text,
            const std::string &feedback, uint64_t attempt_seed) override;

    bool enabled() const { return catalog_ != nullptr; }

  private:
    const verify::RewriteCatalog *catalog_;
};

} // namespace lpo::core

#endif // LPO_CORE_PROPOSER_H
