#include "support/rng.h"

#include <cassert>

namespace lpo {
namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

uint64_t
fnv1a(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // namespace

Rng::Rng(uint64_t seed)
{
    for (auto &word : state_)
        word = splitmix64(seed);
}

Rng
Rng::fork(const std::string &label) const
{
    Rng child(state_[0] ^ rotl(state_[2], 17) ^ fnv1a(label));
    return child;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t sample = next();
        if (sample >= threshold)
            return sample % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double probability)
{
    if (probability <= 0.0)
        return false;
    if (probability >= 1.0)
        return true;
    return nextDouble() < probability;
}

} // namespace lpo
