/**
 * @file
 * Work-stealing streaming task-graph scheduler.
 *
 * The module pipeline's original fan-out (ThreadPool::parallelFor over
 * static chunks with hard phase barriers) lets one adversarial SAT
 * query idle a worker's whole share of the module while every other
 * phase waits. This scheduler replaces the barriers with a dependency
 * graph: tasks become ready when their dependency count reaches zero,
 * ready tasks go to the enqueuing worker's own Chase-Lev-style deque
 * (owner pushes and pops the bottom without contention; thieves CAS
 * the top), and idle workers steal from deterministically seeded
 * randomized victims. One pathological task now stalls only the
 * chain behind it.
 *
 * Structure and determinism contract:
 *
 *  - Tasks are submitted into a TaskScope. The scope is *structured*:
 *    TaskScope::wait() (and the destructor) returns only at
 *    quiescence — every submitted task has either run to completion
 *    or been discarded by cancellation. No detached work survives the
 *    scope, so a scope cannot leak tasks, closures, or threads.
 *  - Execution order is unspecified across threads; callers that need
 *    deterministic output must funnel side effects through an ordered
 *    chain of commit tasks (task i+1 depends on task i), exactly as
 *    Pipeline::processSequences does. With num_threads <= 1 no worker
 *    threads exist and wait() runs tasks on the caller in dependency
 *    order — the reproducibility baseline.
 *  - cancel() marks the scope: tasks that have not started are
 *    discarded (their dependents too), running tasks see the scope's
 *    cancellation flag (wired into SatSolver::setInterrupt by the
 *    verification layer) and finish early at the next conflict
 *    boundary. wait() still drains to quiescence.
 *  - Per-task conflict budgets: submit() records a budget with each
 *    task; the running task can read it via currentTaskBudget(). The
 *    pipeline maps it onto the verifier's budget ladder.
 *
 * Victim selection is a per-worker xorshift stream seeded from
 * (options.steal_seed, worker index), so two runs of the same build
 * probe victims in the same order; actual steal outcomes still depend
 * on timing, which is why the scheduler's counters are telemetry, not
 * part of any pinned snapshot.
 */
#ifndef LPO_SUPPORT_TASK_GRAPH_H
#define LPO_SUPPORT_TASK_GRAPH_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lpo {

/** Scope-local task handle (index into the scope's node array). */
using TaskId = uint32_t;
inline constexpr TaskId kInvalidTask = ~TaskId(0);

/** Folded scheduler counters; see the per-field comments. */
struct TaskGraphStats
{
    uint64_t tasks_run = 0;       ///< bodies executed to completion
    uint64_t tasks_cancelled = 0; ///< discarded before starting
    uint64_t steals = 0;          ///< successful steals
    uint64_t steal_attempts = 0;  ///< probes, successful or not
    uint64_t max_queue_depth = 0; ///< deepest any worker deque got
    uint64_t idle_ns = 0;         ///< summed worker wait time

    TaskGraphStats &operator+=(const TaskGraphStats &other)
    {
        tasks_run += other.tasks_run;
        tasks_cancelled += other.tasks_cancelled;
        steals += other.steals;
        steal_attempts += other.steal_attempts;
        if (other.max_queue_depth > max_queue_depth)
            max_queue_depth = other.max_queue_depth;
        idle_ns += other.idle_ns;
        return *this;
    }
};

class TaskScope;

class TaskScheduler
{
  public:
    struct Options
    {
        /** Total parallelism counting the caller; 0 = hardware. */
        unsigned num_threads = 0;
        /** Base seed of the per-worker victim-selection streams. */
        uint64_t steal_seed = 0x9E3779B97F4A7C15ull;
    };

    TaskScheduler(); ///< defaults: hardware threads, fixed seed
    explicit TaskScheduler(const Options &options);
    ~TaskScheduler();

    TaskScheduler(const TaskScheduler &) = delete;
    TaskScheduler &operator=(const TaskScheduler &) = delete;

    /** Total parallelism, counting the calling thread. */
    unsigned size() const { return num_threads_; }

    /** Counters folded over every completed scope (quiescent reads
     *  only: call between scopes, not while one is running). */
    const TaskGraphStats &stats() const { return stats_; }

    /**
     * Conflict budget of the task currently executing on this thread
     * (0 when none, or when the task was submitted without one).
     */
    static uint64_t currentTaskBudget();

  private:
    friend class TaskScope;
    class Deque;
    struct Worker;

    /** Monotonic shared counters; scopes report deltas over these. */
    struct Counters
    {
        std::atomic<uint64_t> tasks_run{0};
        std::atomic<uint64_t> tasks_cancelled{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> steal_attempts{0};
        std::atomic<uint64_t> max_queue_depth{0};
        std::atomic<uint64_t> idle_ns{0};
    };

    void workerLoop(unsigned index);
    /** Run ready tasks for @p scope from slot @p index. Workers stay
     *  (idling between tasks) until the scope is detached; the caller
     *  (slot 0, is_worker = false) returns at quiescence. */
    void runScopeTasks(TaskScope &scope, unsigned index, bool is_worker);
    bool runOneTask(TaskScope &scope, unsigned index);
    void executeTask(TaskScope &scope, TaskId task);
    /** Done/Discarded bookkeeping: cascades dependents, decrements the
     *  scope's unfinished count, wakes sleepers at quiescence. */
    void finishNode(TaskScope &scope, TaskId task, bool ran);
    void enqueueReady(TaskScope &scope, TaskId task);
    void noteQueueDepth(uint64_t depth);

    unsigned num_threads_;
    uint64_t steal_seed_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable scope_done_;
    TaskScope *active_scope_ = nullptr;  // guarded by mutex_
    unsigned workers_in_scope_ = 0;      // guarded by mutex_
    std::deque<TaskId> injector_;        // guarded by mutex_; overflow
                                         // queue for enqueues from
                                         // threads without a deque
    bool stop_ = false;

    Counters counters_;
    TaskGraphStats stats_; // folded at scope exit
};

class TaskScope
{
  public:
    explicit TaskScope(TaskScheduler &scheduler);
    /** Drains to quiescence (implicit wait()). */
    ~TaskScope();

    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;

    /**
     * Add a task. @p deps must be ids returned by earlier submit()
     * calls on this scope; the task runs only after all of them have
     * completed. Submitting after wait() returned is invalid.
     * @p conflict_budget is advisory metadata readable by the running
     * task via TaskScheduler::currentTaskBudget().
     */
    TaskId submit(std::function<void()> fn,
                  const std::vector<TaskId> &deps = {},
                  uint64_t conflict_budget = 0);

    /**
     * Cancel the scope: no not-yet-started task will run (each is
     * counted in tasks_cancelled instead), and running tasks can
     * observe cancelFlag() to finish early. Idempotent; safe from any
     * thread, including from inside a task.
     */
    void cancel();
    bool cancelled() const
    {
        return cancel_flag_.load(std::memory_order_relaxed);
    }
    /** Stable address for cooperative-cancellation wiring (e.g.
     *  SatSolver::setInterrupt). */
    const std::atomic<bool> *cancelFlag() const { return &cancel_flag_; }

    /**
     * Run tasks on the calling thread alongside the workers until the
     * scope is quiescent: every submitted task completed or was
     * discarded by cancellation. Rethrows the first captured task
     * exception (by completion order) after quiescence; the remaining
     * tasks are cancelled, never leaked.
     */
    void wait();

    /** Counters for this scope (valid after wait()). */
    const TaskGraphStats &stats() const { return stats_; }

  private:
    friend class TaskScheduler;

    enum class State : uint8_t { Pending, Ready, Running, Done, Discarded };

    struct Node
    {
        std::function<void()> fn;
        uint64_t conflict_budget = 0;
        /** Dependencies not yet completed; the node becomes ready at
         *  zero. Starts at deps.size() + 1: the extra count is the
         *  submission itself, dropped once the dependents lists are
         *  linked, so a node can never fire mid-submit. */
        std::atomic<int32_t> pending{1};
        State state = State::Pending; // guarded by scope mutex
        std::vector<TaskId> dependents;
    };

    TaskScheduler &scheduler_;
    std::atomic<bool> cancel_flag_{false};
    /** Tasks not yet finished (completed or discarded). */
    std::atomic<int64_t> unfinished_{0};
    std::mutex graph_mutex_;
    std::vector<std::unique_ptr<Node>> nodes_; // guarded by graph_mutex_
    std::exception_ptr first_error_;           // guarded by graph_mutex_
    /** Ready queue of the single-threaded scheduler: lowest id first,
     *  which makes serial execution follow submission order among
     *  ready tasks — the deterministic baseline. */
    std::priority_queue<TaskId, std::vector<TaskId>, std::greater<TaskId>>
        serial_ready_; // guarded by graph_mutex_
    bool waited_ = false;
    TaskGraphStats counters_base_; ///< scheduler counters at scope entry
    TaskGraphStats stats_;
};

} // namespace lpo

#endif // LPO_SUPPORT_TASK_GRAPH_H
