/**
 * @file
 * Arbitrary-precision (1..64 bit) two's-complement integer.
 *
 * Mirrors the subset of llvm::APInt behaviour the rest of the system
 * depends on: modular arithmetic, signed/unsigned comparisons and
 * division, shifts, and the overflow predicates needed to implement
 * the poison-generating instruction flags (nsw, nuw, exact, ...).
 */
#ifndef LPO_SUPPORT_APINT_H
#define LPO_SUPPORT_APINT_H

#include <cstdint>
#include <string>

namespace lpo {

/**
 * A fixed-width integer value of 1 to 64 bits.
 *
 * The value is stored zero-extended in a uint64_t; all operations
 * truncate their result back to the declared bit width, so arithmetic
 * is modular exactly as in LLVM IR.
 */
class APInt
{
  public:
    /** Construct the zero value of width 1 (the default i1 false). */
    APInt() : width_(1), value_(0) {}

    /** Construct @p value truncated to @p width bits. */
    APInt(unsigned width, uint64_t value);

    /** The all-zeros value of @p width bits. */
    static APInt zero(unsigned width) { return APInt(width, 0); }
    /** The value one of @p width bits. */
    static APInt one(unsigned width) { return APInt(width, 1); }
    /** The all-ones value (i.e. -1) of @p width bits. */
    static APInt allOnes(unsigned width);
    /** The most negative signed value (sign bit only). */
    static APInt signedMin(unsigned width);
    /** The most positive signed value. */
    static APInt signedMax(unsigned width);
    /** The largest unsigned value (same bits as allOnes). */
    static APInt unsignedMax(unsigned width) { return allOnes(width); }
    /** Construct from a signed 64-bit quantity, truncating. */
    static APInt fromSigned(unsigned width, int64_t value);

    unsigned width() const { return width_; }
    /** Zero-extended raw bits. */
    uint64_t zext() const { return value_; }
    /** Sign-extended value as int64_t. */
    int64_t sext() const;

    bool isZero() const { return value_ == 0; }
    bool isOne() const { return value_ == 1; }
    bool isAllOnes() const;
    bool isSignBitSet() const;
    bool isSignedMin() const;
    /** True if exactly one bit is set. */
    bool isPowerOf2() const;

    unsigned countLeadingZeros() const;
    unsigned countTrailingZeros() const;
    unsigned popCount() const;

    // Modular arithmetic.
    APInt add(const APInt &rhs) const;
    APInt sub(const APInt &rhs) const;
    APInt mul(const APInt &rhs) const;
    /** Unsigned division; caller must reject a zero divisor. */
    APInt udiv(const APInt &rhs) const;
    APInt urem(const APInt &rhs) const;
    /** Signed division; caller must reject zero and MIN/-1. */
    APInt sdiv(const APInt &rhs) const;
    APInt srem(const APInt &rhs) const;

    // Bitwise.
    APInt andOp(const APInt &rhs) const;
    APInt orOp(const APInt &rhs) const;
    APInt xorOp(const APInt &rhs) const;
    APInt notOp() const;
    APInt neg() const;

    // Shifts. Shift amounts >= width yield an unspecified value; the
    // interpreter turns them into poison before calling these.
    APInt shl(unsigned amount) const;
    APInt lshr(unsigned amount) const;
    APInt ashr(unsigned amount) const;

    // Width changes.
    APInt truncTo(unsigned new_width) const;
    APInt zextTo(unsigned new_width) const;
    APInt sextTo(unsigned new_width) const;

    // Comparisons.
    bool eq(const APInt &rhs) const { return value_ == rhs.value_; }
    bool ne(const APInt &rhs) const { return value_ != rhs.value_; }
    bool ult(const APInt &rhs) const { return value_ < rhs.value_; }
    bool ule(const APInt &rhs) const { return value_ <= rhs.value_; }
    bool ugt(const APInt &rhs) const { return value_ > rhs.value_; }
    bool uge(const APInt &rhs) const { return value_ >= rhs.value_; }
    bool slt(const APInt &rhs) const { return sext() < rhs.sext(); }
    bool sle(const APInt &rhs) const { return sext() <= rhs.sext(); }
    bool sgt(const APInt &rhs) const { return sext() > rhs.sext(); }
    bool sge(const APInt &rhs) const { return sext() >= rhs.sext(); }

    // Overflow predicates for poison-generating flags.
    bool addOverflowsUnsigned(const APInt &rhs) const;
    bool addOverflowsSigned(const APInt &rhs) const;
    bool subOverflowsUnsigned(const APInt &rhs) const;
    bool subOverflowsSigned(const APInt &rhs) const;
    bool mulOverflowsUnsigned(const APInt &rhs) const;
    bool mulOverflowsSigned(const APInt &rhs) const;
    /** shl nuw: true when any set bit is shifted out. */
    bool shlOverflowsUnsigned(unsigned amount) const;
    /** shl nsw: true when the signed value changes on round trip. */
    bool shlOverflowsSigned(unsigned amount) const;

    // Min/max used by the umin/umax/smin/smax intrinsics.
    APInt umin(const APInt &rhs) const { return ult(rhs) ? *this : rhs; }
    APInt umax(const APInt &rhs) const { return ugt(rhs) ? *this : rhs; }
    APInt smin(const APInt &rhs) const { return slt(rhs) ? *this : rhs; }
    APInt smax(const APInt &rhs) const { return sgt(rhs) ? *this : rhs; }

    bool operator==(const APInt &rhs) const
    {
        return width_ == rhs.width_ && value_ == rhs.value_;
    }

    /** Decimal rendering, signed if the sign bit is set (LLVM style). */
    std::string toString() const;

  private:
    uint64_t mask() const;

    unsigned width_;
    uint64_t value_;
};

} // namespace lpo

#endif // LPO_SUPPORT_APINT_H
