/**
 * @file
 * Crash-safe append-only key/value store (the durability primitive
 * under the persistent verify cache and the learned rewrite catalog;
 * see verify/persist.h for the clients and DESIGN.md, "Persistent
 * verify store", for the invariants).
 *
 * One store is one file: a checksummed, versioned header followed by
 * length-prefixed records, each carrying two CRC32s — one over its
 * frame (the length fields) and one over its payload. Writes are
 * append-only journal appends (a record is written with a single
 * write(2) call); rewrites (compaction, corruption repair) go through
 * the atomic snapshot path: write everything to `<path>.tmp`, fsync,
 * rename over the original. A reader therefore always sees either the
 * old file or the new one, never a mix.
 *
 * Recovery-on-open never crashes and never yields a corrupt record:
 *  - a record that extends past EOF (a torn append — the process was
 *    killed mid-write) truncates the file at the record's start;
 *  - a record whose frame CRC holds but whose payload CRC does not
 *    (bit rot, a partially synced page) is copied verbatim to the
 *    `<path>.quarantine` sidecar and skipped; the file is then
 *    rewritten without it via the snapshot path;
 *  - a record whose frame CRC fails leaves no trustworthy way to find
 *    the next record, so the remainder of the file is quarantined and
 *    truncated.
 *
 * Version and option skew is rejected, never reinterpreted: a header
 * whose magic, format version, client tag, or options key differs
 * from what the caller expects fails open() with a Rejected status
 * and leaves the file byte-untouched — the caller runs memory-only
 * rather than guessing at another format's bytes (see DESIGN.md for
 * why migration is a non-goal).
 *
 * Failpoints (chaos-testable end to end, see support/failpoint.h):
 * `store.write.fail` (append drops its record), `store.fsync.fail`
 * (sync reports failure), `store.load.corrupt` (a loaded record is
 * treated as payload-corrupt and quarantined).
 */
#ifndef LPO_SUPPORT_KVSTORE_H
#define LPO_SUPPORT_KVSTORE_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace lpo {

/** CRC-32 (IEEE 802.3 polynomial, the zlib convention). */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

/** Identity a store file is opened against; any mismatch rejects. */
struct KvOpenOptions
{
    /** Client identity (e.g. "lpo-verify-cache"); a catalog file can
     *  never be misread as a cache file. */
    std::string client_tag;
    /** On-disk format version of the client's record payloads. */
    uint32_t format_version = 1;
    /** Fingerprint of everything else that must match for records to
     *  be meaningful (e.g. the cache-key schema version). */
    std::string options_key;
    /** Open for inspection only: no header creation, no repair. */
    bool read_only = false;
};

/** Outcome of KvStore::open. Only Fresh and Loaded are usable. */
enum class KvOpen {
    Fresh,           ///< no prior data; header written (unless read-only)
    Loaded,          ///< records streamed to the callback (repairs done)
    RejectedFormat,  ///< magic missing or header unreadably corrupt
    RejectedVersion, ///< header format_version != expected
    RejectedTag,     ///< header client_tag != expected
    RejectedOptions, ///< header options_key != expected
    IoError,         ///< file unopenable/unreadable (permissions, ...)
};

const char *kvOpenName(KvOpen status);
inline bool
kvOpenUsable(KvOpen status)
{
    return status == KvOpen::Fresh || status == KvOpen::Loaded;
}

/** What recovery-on-open found and did. */
struct KvLoadStats
{
    uint64_t records = 0;     ///< valid records streamed out
    uint64_t quarantined = 0; ///< corrupt records moved to the sidecar
    uint64_t torn_bytes = 0;  ///< tail bytes truncated (torn append)
    bool recovered = false;   ///< any truncation or quarantine happened
};

class KvStore
{
  public:
    /** Called once per valid record during open, in file order. */
    using RecordFn =
        std::function<void(std::string &&key, std::string &&value)>;

    KvStore() = default;
    ~KvStore();

    KvStore(const KvStore &) = delete;
    KvStore &operator=(const KvStore &) = delete;

    /**
     * Open @p path, validate its header against @p options, recover,
     * and stream every valid record into @p on_record. On a Rejected
     * status the file is left untouched and the store is unusable
     * (isOpen() false); the caller decides whether to proceed
     * memory-only. @p error receives a human-readable reason for
     * anything other than Fresh/Loaded.
     */
    KvOpen open(const std::string &path, const KvOpenOptions &options,
                const RecordFn &on_record, std::string *error = nullptr);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }
    const KvLoadStats &loadStats() const { return load_stats_; }

    /**
     * Append one record to the journal (a single write call, so a
     * crash leaves at most one torn record for recovery to truncate).
     * Returns false — dropping the record, run unaffected — when the
     * store is not open, the write failed, or `store.write.fail`
     * fired. A real write error additionally poisons the store
     * (healthy() false): later appends fail fast.
     */
    bool append(const std::string &key, const std::string &value);

    /** fsync the journal; false on failure or `store.fsync.fail`. */
    bool sync();

    /**
     * Atomically replace the file's contents with header + @p records
     * (write `<path>.tmp`, fsync, rename). Used by compaction and by
     * recovery's corrupt-record repair.
     */
    bool snapshot(
        const std::vector<std::pair<std::string, std::string>> &records,
        std::string *error = nullptr);

    /** True until a real (non-injected) I/O error poisons the store. */
    bool healthy() const { return healthy_; }

    uint64_t appends() const { return appends_; }
    uint64_t appendFailures() const { return append_failures_; }

    void close();

    /**
     * Read-only scan for `lpo store info|verify`: header check plus a
     * full CRC walk, no repairs, no side effects. @p on_record may be
     * null when only the stats are wanted.
     */
    static KvOpen inspect(const std::string &path,
                          const KvOpenOptions &options,
                          const RecordFn &on_record, KvLoadStats *stats,
                          std::string *error = nullptr);

    /** Default `.quarantine` sidecar cap (see setQuarantineCap). */
    static constexpr size_t kDefaultQuarantineCap = 1u << 20;

    /**
     * Cap the `.quarantine` sidecar's size, process-wide. When an
     * append would grow it past the cap, the oldest bytes are dropped
     * first (rotation): a persistently faulty disk keeps its newest
     * corruption for diagnosis without unbounded growth. 0 disables
     * the cap.
     */
    static void setQuarantineCap(size_t bytes);
    static size_t quarantineCap();

    /** Size in bytes of @p path's `.quarantine` sidecar (0 if none). */
    static uint64_t quarantineSize(const std::string &path);

    /**
     * Crash-test seam: after @p bytes more bytes have been written
     * through this process's KvStore appends/snapshots, the write in
     * flight is cut short at exactly that offset and the process is
     * SIGKILLed — a real torn write at a chosen offset, for the
     * fork-based recovery harness in tests/test_persist.cc. Negative
     * disarms (the default).
     */
    static void testKillAfterBytes(int64_t bytes);

  private:
    int fd_ = -1;
    std::string path_;
    KvOpenOptions options_;
    KvLoadStats load_stats_;
    bool healthy_ = true;
    uint64_t appends_ = 0;
    uint64_t append_failures_ = 0;
};

} // namespace lpo

#endif // LPO_SUPPORT_KVSTORE_H
