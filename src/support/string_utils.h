/**
 * @file
 * Small string helpers shared across the library.
 */
#ifndef LPO_SUPPORT_STRING_UTILS_H
#define LPO_SUPPORT_STRING_UTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lpo {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** 64-bit FNV-1a hash of a byte string. */
uint64_t fnv1a64(std::string_view text);

/** Mix an additional 64-bit value into a running hash (boost-style). */
uint64_t hashCombine(uint64_t seed, uint64_t value);

/** Format a double with fixed @p decimals digits. */
std::string formatFixed(double value, int decimals);

} // namespace lpo

#endif // LPO_SUPPORT_STRING_UTILS_H
