#include "support/telemetry.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "core/json_writer.h"

namespace lpo::telemetry {

namespace {

/**
 * Registry liveness set: thread-exit shard retirement must not touch
 * a registry that was already destroyed (tests create short-lived
 * instances). Both structures are leaked so they outlive every
 * thread-local destructor, including main's.
 */
std::mutex &
livenessMutex()
{
    static std::mutex *m = new std::mutex;
    return *m;
}

std::set<const void *> &
liveRegistries()
{
    static auto *s = new std::set<const void *>;
    return *s;
}

} // namespace

const std::array<uint64_t, kHistogramBuckets - 1> &
histogramBounds()
{
    // 1-2-5 series: 1, 2, 5, 10, ..., 5e10, 1e11 (ns: 1ns .. 100s).
    static const auto bounds = [] {
        std::array<uint64_t, kHistogramBuckets - 1> b{};
        uint64_t decade = 1;
        size_t i = 0;
        while (i + 2 < b.size()) {
            b[i++] = decade;
            b[i++] = 2 * decade;
            b[i++] = 5 * decade;
            decade *= 10;
        }
        b[i] = decade; // 1e11
        return b;
    }();
    return bounds;
}

uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Fixed-capacity block of relaxed-atomic cells, one per thread. */
struct MetricsRegistry::Shard
{
    static constexpr uint32_t kCapacity = 4096;
    std::array<std::atomic<uint64_t>, kCapacity> cells{};
};

struct MetricsRegistry::ThreadShardCache
{
    struct Entry
    {
        MetricsRegistry *registry;
        Shard *shard;
    };
    std::vector<Entry> entries;

    ~ThreadShardCache()
    {
        std::lock_guard<std::mutex> live(livenessMutex());
        for (const Entry &entry : entries)
            if (liveRegistries().count(entry.registry))
                entry.registry->retireShard(entry.shard);
    }
};

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked: shard retirement from thread-local destructors (main's
    // included) must never race static destruction.
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

MetricsRegistry::MetricsRegistry() : retired_(std::make_unique<Shard>())
{
    std::lock_guard<std::mutex> live(livenessMutex());
    liveRegistries().insert(this);
}

MetricsRegistry::~MetricsRegistry()
{
    std::lock_guard<std::mutex> live(livenessMutex());
    liveRegistries().erase(this);
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    thread_local ThreadShardCache cache;
    for (const ThreadShardCache::Entry &entry : cache.entries)
        if (entry.registry == this)
            return *entry.shard;
    auto owned = std::make_unique<Shard>();
    Shard *shard = owned.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::move(owned));
    }
    cache.entries.push_back({this, shard});
    return *shard;
}

void
MetricsRegistry::retireShard(Shard *shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Histogram max slots fold by max, everything else by wrapping
    // sum — mirroring the snapshot fold, so a shard retired at thread
    // exit is indistinguishable from one still live.
    std::vector<bool> is_max_slot(next_slot_, false);
    for (const auto &[name, info] : metrics_)
        if (info.kind == Kind::Histogram)
            is_max_slot[info.slot + kHistogramBuckets + 1] = true;
    for (uint32_t i = 0; i < next_slot_; ++i) {
        uint64_t v = shard->cells[i].load(std::memory_order_relaxed);
        if (!v)
            continue;
        if (is_max_slot[i]) {
            std::atomic<uint64_t> &cell = retired_->cells[i];
            uint64_t seen = cell.load(std::memory_order_relaxed);
            while (v > seen &&
                   !cell.compare_exchange_weak(
                       seen, v, std::memory_order_relaxed))
                ;
        } else {
            retired_->cells[i].fetch_add(v, std::memory_order_relaxed);
        }
    }
    auto it = std::find_if(
        shards_.begin(), shards_.end(),
        [shard](const std::unique_ptr<Shard> &s) { return s.get() == shard; });
    if (it != shards_.end())
        shards_.erase(it);
}

uint32_t
MetricsRegistry::allocateSlots(std::string_view name, Kind kind,
                               uint32_t width)
{
    // Caller holds mutex_.
    if (next_slot_ + width > Shard::kCapacity)
        throw std::runtime_error("telemetry: metric slot space exhausted");
    uint32_t slot = next_slot_;
    next_slot_ += width;
    metrics_.emplace(std::string(name), MetricInfo{kind, slot});
    return slot;
}

Counter
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        assert(it->second.kind == Kind::Counter);
        return Counter(this, it->second.slot);
    }
    return Counter(this, allocateSlots(name, Kind::Counter, 1));
}

Gauge
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        assert(it->second.kind == Kind::Gauge);
        return Gauge(this, it->second.slot);
    }
    uint32_t slot = static_cast<uint32_t>(gauges_.size());
    gauges_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    metrics_.emplace(std::string(name), MetricInfo{Kind::Gauge, slot});
    return Gauge(this, slot);
}

Histogram
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        assert(it->second.kind == Kind::Histogram);
        return Histogram(this, it->second.slot);
    }
    return Histogram(this, allocateSlots(name, Kind::Histogram,
                                         kHistogramBuckets + 2));
}

void
MetricsRegistry::addCollector(std::function<void(MetricsSnapshot &)> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    collectors_.push_back(std::move(fn));
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::vector<std::function<void(MetricsSnapshot &)>> collectors;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Wrapping uint64 sums commute, so the result is independent
        // of shard count and fold order: 1 thread and 8 threads
        // recording the same work produce the same snapshot.
        std::vector<uint64_t> totals(next_slot_, 0);
        auto fold = [&](const Shard &shard) {
            for (uint32_t i = 0; i < next_slot_; ++i)
                totals[i] +=
                    shard.cells[i].load(std::memory_order_relaxed);
        };
        fold(*retired_);
        for (const auto &shard : shards_)
            fold(*shard);
        // Exception: max slots fold by max, not sum; redo them below.
        for (const auto &[name, info] : metrics_) {
            switch (info.kind) {
            case Kind::Counter:
                snap.counters.emplace_back(name, totals[info.slot]);
                break;
            case Kind::Gauge:
                snap.gauges.emplace_back(
                    name, gauges_[info.slot]->load(
                              std::memory_order_relaxed));
                break;
            case Kind::Histogram: {
                HistogramSnapshot h;
                h.name = name;
                for (size_t i = 0; i < kHistogramBuckets; ++i) {
                    h.buckets[i] = totals[info.slot + i];
                    h.count += h.buckets[i];
                }
                h.sum = totals[info.slot + kHistogramBuckets];
                uint32_t max_slot = info.slot + kHistogramBuckets + 1;
                uint64_t max = retired_->cells[max_slot].load(
                    std::memory_order_relaxed);
                for (const auto &shard : shards_)
                    max = std::max(max,
                                   shard->cells[max_slot].load(
                                       std::memory_order_relaxed));
                h.max = max;
                snap.histograms.push_back(std::move(h));
                break;
            }
            }
        }
        collectors = collectors_;
    }
    for (const auto &fn : collectors)
        fn(snap);
    std::sort(snap.counters.begin(), snap.counters.end());
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto zero = [&](Shard &shard) {
        for (uint32_t i = 0; i < next_slot_; ++i)
            shard.cells[i].store(0, std::memory_order_relaxed);
    };
    zero(*retired_);
    for (const auto &shard : shards_)
        zero(*shard);
    for (const auto &g : gauges_)
        g->store(0, std::memory_order_relaxed);
}

void
Counter::add(uint64_t delta) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    registry_->localShard().cells[slot_].fetch_add(
        delta, std::memory_order_relaxed);
}

void
Gauge::set(int64_t value) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    registry_->gauges_[slot_]->store(value, std::memory_order_relaxed);
}

void
Histogram::record(uint64_t value) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    const auto &bounds = histogramBounds();
    size_t bucket = static_cast<size_t>(
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin());
    auto &cells = registry_->localShard().cells;
    cells[slot_ + bucket].fetch_add(1, std::memory_order_relaxed);
    cells[slot_ + kHistogramBuckets].fetch_add(
        value, std::memory_order_relaxed);
    std::atomic<uint64_t> &max_cell =
        cells[slot_ + kHistogramBuckets + 1];
    uint64_t seen = max_cell.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_cell.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed))
        ;
}

double
HistogramSnapshot::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    const auto &bounds = histogramBounds();
    double rank = q * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        uint64_t next = cumulative + buckets[i];
        if (static_cast<double>(next) >= rank) {
            double lo =
                i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
            double hi = i < kHistogramBuckets - 1
                            ? static_cast<double>(bounds[i])
                            : std::max(static_cast<double>(max), lo);
            double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets[i]);
            if (frac < 0)
                frac = 0;
            return lo + (hi - lo) * frac;
        }
        cumulative = next;
    }
    return static_cast<double>(max);
}

uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(std::string_view name) const
{
    for (const HistogramSnapshot &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

void
MetricsSnapshot::addCounter(std::string name, uint64_t value)
{
    counters.emplace_back(std::move(name), value);
}

std::string
MetricsSnapshot::toJson() const
{
    core::JsonWriter w;
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        w.field(name, value);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, value] : gauges)
        w.field(name, value);
    w.endObject();
    w.key("histograms").beginObject();
    const auto &bounds = histogramBounds();
    for (const HistogramSnapshot &h : histograms) {
        w.key(h.name).beginObject();
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("max", h.max);
        w.field("p50", h.p50(), 1);
        w.field("p90", h.p90(), 1);
        w.field("p99", h.p99(), 1);
        w.key("buckets").beginArray();
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
            if (h.buckets[i] == 0)
                continue;
            w.beginObject(core::JsonWriter::Layout::Inline);
            if (i < kHistogramBuckets - 1)
                w.field("le", bounds[i]);
            else
                w.field("le", "+Inf");
            w.field("count", h.buckets[i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

ScopedTimer::ScopedTimer(Histogram hist) : hist_(hist)
{
    if (hist_.active())
        start_ = nowNanos();
}

ScopedTimer::~ScopedTimer()
{
    stopNanos();
}

uint64_t
ScopedTimer::stopNanos()
{
    if (start_ == 0)
        return 0;
    uint64_t elapsed = nowNanos() - start_;
    start_ = 0;
    hist_.record(elapsed);
    return elapsed;
}

} // namespace lpo::telemetry
