/**
 * @file
 * Deterministic fault injection (failpoints) for chaos testing.
 *
 * A failpoint is a named site compiled into production code where a
 * fault can be requested at runtime: the SAT solver pretending its
 * conflict budget ran out, a proposer throwing, the parser rejecting
 * well-formed input. Sites are registered statically (the full list
 * lives in failpoint.cc and is printed by `lpo_cli failpoints`), so a
 * typo in a configuration string is an error instead of a silent
 * no-op.
 *
 * Activation:
 *  - programmatic: FailPoints::instance().configure("site=mode;...")
 *  - environment:  LPO_FAILPOINTS with the same grammar, applied once
 *    when the registry is first touched.
 *
 * Modes: `off`, `always`, `once` (first hit only), `nth:N` (exactly
 * the Nth hit, 1-based), `prob:P[:SEED]` (seeded Bernoulli draw per
 * hit). `always` and `off` are deterministic at any thread count;
 * `once`, `nth` and `prob` are deterministic only in serial runs,
 * where hit order is fixed — the chaos suite uses `always` for its
 * cross-thread byte-identity assertions.
 *
 * Cost when idle: the LPO_FAILPOINT macro is a single relaxed atomic
 * load while no site is armed, so leaving the sites compiled into hot
 * paths (one check per SAT solve / parse / proposal, never inside
 * inner loops) does not perturb benchmarks.
 */
#ifndef LPO_SUPPORT_FAILPOINT_H
#define LPO_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lpo {

/** Thrown by throw-flavored sites when they fire. */
class FailPointError : public std::runtime_error
{
  public:
    explicit FailPointError(const std::string &what)
        : std::runtime_error(what)
    {}
};

class FailPoints
{
  public:
    /** The process-wide registry. First use applies LPO_FAILPOINTS. */
    static FailPoints &instance();

    /**
     * Fast guard for call sites: false once the registry is known to
     * have no armed site. Starts true ("unknown") so the first hit
     * constructs the registry and applies the environment.
     */
    static bool anyArmed()
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /**
     * Replace the whole configuration with @p spec
     * (`site=mode[;site=mode...]`, `,` also accepted as a separator;
     * empty spec disarms everything). Unknown sites and malformed
     * modes are rejected atomically: on failure nothing changes,
     * false is returned and @p error (if given) explains why.
     *
     * Not safe to call while other threads are inside shouldFail;
     * configure between runs, as the tests and the CLI do.
     */
    bool configure(const std::string &spec, std::string *error = nullptr);

    /** Disarm every site and zero its counters. */
    void clear();

    /** All registered site names, in registration order. */
    std::vector<std::string> siteNames() const;

    /** Times the site was reached / times it actually fired. */
    uint64_t hits(const std::string &site) const;
    uint64_t fires(const std::string &site) const;

    /**
     * Count a hit on @p site and decide whether the fault fires.
     * @p site must be a registered name (asserted). Call through the
     * LPO_FAILPOINT macro so disarmed builds pay one atomic load.
     */
    bool shouldFail(const char *site);

    /** Opaque registry entry; defined (with the site table) in
     *  failpoint.cc. Public only so the table can live at namespace
     *  scope there. */
    struct Site;

  private:
    FailPoints();
    Site *find(const char *name) const;
    void recomputeArmed();

    static std::atomic<bool> armed_;
};

} // namespace lpo

/** True iff the named failpoint fires at this hit. */
#define LPO_FAILPOINT(site)                                             \
    (::lpo::FailPoints::anyArmed() &&                                   \
     ::lpo::FailPoints::instance().shouldFail(site))

#endif // LPO_SUPPORT_FAILPOINT_H
