#include "support/task_graph.h"

#include <chrono>
#include <stdexcept>

namespace lpo {

namespace {

/** splitmix64 — seeds the per-worker victim streams so no two workers
 *  share a sequence even for adjacent indices. */
uint64_t splitmix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

uint64_t xorshift64star(uint64_t &state)
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1Dull;
}

/** The slot this thread occupies in the scheduler it is serving (the
 *  scope owner is slot 0, workers are 1..n-1). Used to route ready
 *  tasks to the enqueuing thread's own deque. */
thread_local TaskScheduler *tls_scheduler = nullptr;
thread_local unsigned tls_worker = 0;
thread_local uint64_t tls_budget = 0;

void atomicMax(std::atomic<uint64_t> &slot, uint64_t value)
{
    uint64_t seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed))
        ;
}

} // namespace

/*
 * Chase-Lev work-stealing deque (memory ordering per Lê et al.,
 * "Correct and Efficient Work-Stealing for Weak Memory Models").
 * The owning worker pushes and pops the bottom without contention;
 * thieves CAS the top. The ring buffer grows by doubling; outgrown
 * buffers are retired, not freed, until the deque is destroyed,
 * because a concurrent thief may still be reading a stale buffer
 * pointer (it will then lose its CAS and retry — reading retired
 * memory is harmless, freeing it would not be).
 */
class TaskScheduler::Deque
{
  public:
    Deque()
    {
        auto initial = std::make_unique<Buffer>(kInitialCapacity);
        buffer_.store(initial.get(), std::memory_order_relaxed);
        buffers_.push_back(std::move(initial));
    }

    /** Owner only. Returns the depth after the push. */
    int64_t pushBottom(TaskId task)
    {
        int64_t b = bottom_.load(std::memory_order_relaxed);
        int64_t t = top_.load(std::memory_order_acquire);
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        if (b - t > buf->capacity - 1)
            buf = grow(buf, t, b);
        buf->at(b).store(task, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return b + 1 - t;
    }

    /** Owner only. */
    TaskId popBottom()
    {
        int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        Buffer *buf = buffer_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t t = top_.load(std::memory_order_relaxed);
        TaskId task = kInvalidTask;
        if (t <= b) {
            task = buf->at(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it.
                if (!top_.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed))
                    task = kInvalidTask;
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return task;
    }

    /** Any thread. */
    TaskId stealTop()
    {
        int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return kInvalidTask;
        Buffer *buf = buffer_.load(std::memory_order_acquire);
        TaskId task = buf->at(t).load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return kInvalidTask;
        return task;
    }

  private:
    static constexpr int64_t kInitialCapacity = 64; // power of two

    struct Buffer
    {
        explicit Buffer(int64_t cap)
            : capacity(cap), slots(new std::atomic<TaskId>[cap])
        {}
        std::atomic<TaskId> &at(int64_t i)
        {
            return slots[i & (capacity - 1)];
        }
        int64_t capacity;
        std::unique_ptr<std::atomic<TaskId>[]> slots;
    };

    Buffer *grow(Buffer *old, int64_t t, int64_t b)
    {
        auto next = std::make_unique<Buffer>(old->capacity * 2);
        for (int64_t i = t; i < b; ++i)
            next->at(i).store(old->at(i).load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
        Buffer *raw = next.get();
        buffers_.push_back(std::move(next)); // old buffer stays retired
        buffer_.store(raw, std::memory_order_release);
        return raw;
    }

    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::atomic<Buffer *> buffer_{nullptr};
    std::vector<std::unique_ptr<Buffer>> buffers_; // owner only
};

struct TaskScheduler::Worker
{
    explicit Worker(uint64_t rng_seed) : rng(rng_seed) {}
    Deque deque;
    uint64_t rng; ///< victim-selection stream, owner only
};

TaskScheduler::TaskScheduler() : TaskScheduler(Options()) {}

TaskScheduler::TaskScheduler(const Options &options)
{
    unsigned n = options.num_threads != 0
                     ? options.num_threads
                     : std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    num_threads_ = n;
    steal_seed_ = options.steal_seed;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(
            std::make_unique<Worker>(splitmix64(steal_seed_ ^ i)));
    threads_.reserve(n > 0 ? n - 1 : 0);
    for (unsigned i = 1; i < n; ++i)
        threads_.emplace_back(&TaskScheduler::workerLoop, this, i);
}

TaskScheduler::~TaskScheduler()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

uint64_t TaskScheduler::currentTaskBudget() { return tls_budget; }

void TaskScheduler::workerLoop(unsigned index)
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        work_ready_.wait(
            lk, [&] { return stop_ || active_scope_ != nullptr; });
        if (stop_)
            return;
        TaskScope *scope = active_scope_;
        ++workers_in_scope_;
        lk.unlock();

        tls_scheduler = this;
        tls_worker = index;
        runScopeTasks(*scope, index, /*is_worker=*/true);
        tls_scheduler = nullptr;
        tls_worker = 0;

        lk.lock();
        if (--workers_in_scope_ == 0)
            scope_done_.notify_all();
        // Do not respin on the same scope: wait until it is detached
        // (runScopeTasks only returns once it saw that happen, so the
        // predicate above will not re-trigger spuriously).
    }
}

void TaskScheduler::runScopeTasks(TaskScope &scope, unsigned index,
                                  bool is_worker)
{
    using Clock = std::chrono::steady_clock;
    for (;;) {
        if (!is_worker &&
            scope.unfinished_.load(std::memory_order_acquire) == 0)
            return; // caller exits at quiescence
        if (runOneTask(scope, index))
            continue;
        // Single-threaded scheduler: no other thread can make
        // progress, so an empty ready queue with unfinished tasks is a
        // stalled graph (cannot be reached through submit()'s
        // backward-dependency check; purely defensive).
        if (num_threads_ <= 1)
            throw std::logic_error(
                "TaskScope: dependency graph stalled");
        // Nothing runnable right now: sleep until new work arrives.
        // The wait is timed so a lost notification costs a
        // millisecond, never a deadlock.
        Clock::time_point idle_start = Clock::now();
        std::unique_lock<std::mutex> lk(mutex_);
        if (is_worker && active_scope_ != &scope)
            return; // scope detached while we were idle
        if (!is_worker &&
            scope.unfinished_.load(std::memory_order_acquire) == 0)
            return;
        work_ready_.wait_for(lk, std::chrono::milliseconds(1));
        lk.unlock();
        counters_.idle_ns.fetch_add(
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - idle_start)
                    .count()),
            std::memory_order_relaxed);
    }
}

bool TaskScheduler::runOneTask(TaskScope &scope, unsigned index)
{
    Worker &self = *workers_[index];
    TaskId task = kInvalidTask;

    if (num_threads_ <= 1) {
        // Serial mode: pull the lowest ready id — submission order.
        std::lock_guard<std::mutex> lk(scope.graph_mutex_);
        if (!scope.serial_ready_.empty()) {
            task = scope.serial_ready_.top();
            scope.serial_ready_.pop();
        }
    } else {
        task = self.deque.popBottom();
        if (task == kInvalidTask) {
            std::lock_guard<std::mutex> lk(mutex_);
            if (!injector_.empty()) {
                task = injector_.front();
                injector_.pop_front();
            }
        }
        if (task == kInvalidTask) {
            // Steal from randomized victims; a couple of full sweeps
            // before declaring this slot idle.
            for (unsigned probe = 0;
                 probe < 2 * num_threads_ && task == kInvalidTask;
                 ++probe) {
                unsigned victim = static_cast<unsigned>(
                    xorshift64star(self.rng) % num_threads_);
                if (victim == index)
                    continue;
                counters_.steal_attempts.fetch_add(
                    1, std::memory_order_relaxed);
                task = workers_[victim]->deque.stealTop();
                if (task != kInvalidTask)
                    counters_.steals.fetch_add(
                        1, std::memory_order_relaxed);
            }
        }
    }

    if (task == kInvalidTask)
        return false;
    executeTask(scope, task);
    return true;
}

void TaskScheduler::executeTask(TaskScope &scope, TaskId task)
{
    TaskScope::Node *node = nullptr;
    bool run = false;
    {
        std::lock_guard<std::mutex> lk(scope.graph_mutex_);
        node = scope.nodes_[task].get();
        if (node->state != TaskScope::State::Ready)
            return; // stale id (already executed or discarded)
        if (scope.cancelled()) {
            // finishNode() below flips it to Discarded.
        } else {
            node->state = TaskScope::State::Running;
            run = true;
        }
    }
    if (run) {
        uint64_t saved_budget = tls_budget;
        tls_budget = node->conflict_budget;
        try {
            node->fn();
        } catch (...) {
            {
                std::lock_guard<std::mutex> lk(scope.graph_mutex_);
                if (!scope.first_error_)
                    scope.first_error_ = std::current_exception();
            }
            scope.cancel();
        }
        tls_budget = saved_budget;
        node->fn = nullptr; // drop the closure at completion, not at
                            // scope destruction
    }
    finishNode(scope, task, run);
}

void TaskScheduler::finishNode(TaskScope &scope, TaskId task, bool ran)
{
    std::vector<TaskId> now_ready;
    {
        std::lock_guard<std::mutex> lk(scope.graph_mutex_);
        TaskScope::Node &node = *scope.nodes_[task];
        node.state = ran ? TaskScope::State::Done
                         : TaskScope::State::Discarded;
        if (!ran)
            node.fn = nullptr;
        for (TaskId dep : node.dependents) {
            TaskScope::Node &child = *scope.nodes_[dep];
            // A discarded dependency still unblocks its dependents:
            // they flow through the ready queues and are themselves
            // discarded on sight (the scope is cancelled by then),
            // which is what drains a cancelled graph to quiescence.
            if (child.pending.fetch_sub(1, std::memory_order_acq_rel) ==
                    1 &&
                child.state == TaskScope::State::Pending) {
                child.state = TaskScope::State::Ready;
                now_ready.push_back(dep);
            }
        }
    }
    if (ran)
        counters_.tasks_run.fetch_add(1, std::memory_order_relaxed);
    else
        counters_.tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
    for (TaskId id : now_ready)
        enqueueReady(scope, id);
    if (scope.unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Quiescent: wake the waiter (and idle workers, so they can
        // re-check for detachment promptly).
        std::lock_guard<std::mutex> lk(mutex_);
        work_ready_.notify_all();
        scope_done_.notify_all();
    }
}

void TaskScheduler::enqueueReady(TaskScope &scope, TaskId task)
{
    if (num_threads_ <= 1) {
        std::lock_guard<std::mutex> lk(scope.graph_mutex_);
        scope.serial_ready_.push(task);
        return;
    }
    if (tls_scheduler == this) {
        int64_t depth = workers_[tls_worker]->deque.pushBottom(task);
        noteQueueDepth(static_cast<uint64_t>(depth));
    } else {
        std::lock_guard<std::mutex> lk(mutex_);
        injector_.push_back(task);
    }
    work_ready_.notify_one();
}

void TaskScheduler::noteQueueDepth(uint64_t depth)
{
    atomicMax(counters_.max_queue_depth, depth);
}

TaskScope::TaskScope(TaskScheduler &scheduler) : scheduler_(scheduler)
{
    std::lock_guard<std::mutex> lk(scheduler_.mutex_);
    if (scheduler_.active_scope_ != nullptr)
        throw std::logic_error(
            "TaskScope: scheduler already has an active scope");
    scheduler_.active_scope_ = this;
    counters_base_.tasks_run =
        scheduler_.counters_.tasks_run.load(std::memory_order_relaxed);
    counters_base_.tasks_cancelled =
        scheduler_.counters_.tasks_cancelled.load(
            std::memory_order_relaxed);
    counters_base_.steals =
        scheduler_.counters_.steals.load(std::memory_order_relaxed);
    counters_base_.steal_attempts =
        scheduler_.counters_.steal_attempts.load(
            std::memory_order_relaxed);
    counters_base_.max_queue_depth =
        scheduler_.counters_.max_queue_depth.load(
            std::memory_order_relaxed);
    counters_base_.idle_ns =
        scheduler_.counters_.idle_ns.load(std::memory_order_relaxed);
    // The creating thread is slot 0 for the scope's lifetime, so
    // submit() routes ready tasks into slot 0's deque (it owns it).
    tls_scheduler = &scheduler_;
    tls_worker = 0;
    scheduler_.work_ready_.notify_all();
}

TaskScope::~TaskScope()
{
    try {
        wait();
    } catch (...) {
        // A task failure surfaces from an explicit wait(); the
        // destructor only guarantees quiescence.
    }
}

TaskId TaskScope::submit(std::function<void()> fn,
                         const std::vector<TaskId> &deps,
                         uint64_t conflict_budget)
{
    TaskId id;
    bool ready = false;
    {
        std::lock_guard<std::mutex> lk(graph_mutex_);
        if (waited_)
            throw std::logic_error(
                "TaskScope::submit: scope already waited");
        id = static_cast<TaskId>(nodes_.size());
        auto node = std::make_unique<Node>();
        node->fn = std::move(fn);
        node->conflict_budget = conflict_budget;
        // The +1 guard count keeps the node from firing while its
        // dependents links are still being written.
        int32_t outstanding = 1;
        for (TaskId dep : deps) {
            if (dep >= id)
                throw std::logic_error(
                    "TaskScope::submit: dependency on a later task");
            Node &parent = *nodes_[dep];
            if (parent.state == State::Done ||
                parent.state == State::Discarded)
                continue; // already satisfied (or moot)
            parent.dependents.push_back(id);
            ++outstanding;
        }
        node->pending.store(outstanding, std::memory_order_relaxed);
        nodes_.push_back(std::move(node));
        unfinished_.fetch_add(1, std::memory_order_acq_rel);
        Node &placed = *nodes_[id];
        if (placed.pending.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
            placed.state = State::Ready;
            ready = true;
        }
    }
    if (ready)
        scheduler_.enqueueReady(*this, id);
    return id;
}

void TaskScope::cancel()
{
    cancel_flag_.store(true, std::memory_order_release);
    // Wake idle participants so the drain makes progress immediately.
    std::lock_guard<std::mutex> lk(scheduler_.mutex_);
    scheduler_.work_ready_.notify_all();
}

void TaskScope::wait()
{
    if (waited_)
        return;
    std::exception_ptr internal_error;
    try {
        scheduler_.runScopeTasks(*this, 0, /*is_worker=*/false);
    } catch (...) {
        // Internal failure on the caller slot (not a task exception —
        // those are captured). Cancel so workers drain, then detach.
        internal_error = std::current_exception();
        cancel();
    }
    {
        std::unique_lock<std::mutex> lk(scheduler_.mutex_);
        scheduler_.active_scope_ = nullptr;
        scheduler_.work_ready_.notify_all();
        scheduler_.scope_done_.wait(
            lk, [&] { return scheduler_.workers_in_scope_ == 0; });
        const TaskScheduler::Counters &c = scheduler_.counters_;
        stats_.tasks_run =
            c.tasks_run.load(std::memory_order_relaxed) -
            counters_base_.tasks_run;
        stats_.tasks_cancelled =
            c.tasks_cancelled.load(std::memory_order_relaxed) -
            counters_base_.tasks_cancelled;
        stats_.steals = c.steals.load(std::memory_order_relaxed) -
                        counters_base_.steals;
        stats_.steal_attempts =
            c.steal_attempts.load(std::memory_order_relaxed) -
            counters_base_.steal_attempts;
        stats_.max_queue_depth =
            c.max_queue_depth.load(std::memory_order_relaxed);
        stats_.idle_ns = c.idle_ns.load(std::memory_order_relaxed) -
                         counters_base_.idle_ns;
        scheduler_.stats_ += stats_;
    }
    {
        std::lock_guard<std::mutex> lk(graph_mutex_);
        waited_ = true;
    }
    tls_scheduler = nullptr;
    tls_worker = 0;
    if (internal_error)
        std::rethrow_exception(internal_error);
    if (first_error_) {
        std::exception_ptr err = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

} // namespace lpo
