/**
 * @file
 * Lightweight error handling without exceptions.
 *
 * The library reports recoverable failures (parse errors, verifier
 * findings, solver resource exhaustion) through Result<T>, keeping
 * exceptions out of the public API as the style guides require for
 * library code that may be embedded in larger systems.
 */
#ifndef LPO_SUPPORT_ERROR_H
#define LPO_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lpo {

/** A failure description with an optional source location. */
struct Error
{
    std::string message;
    int line = 0;
    int column = 0;

    /** Render as "line L: message" when location is known. */
    std::string
    toString() const
    {
        if (line > 0)
            return "line " + std::to_string(line) + ": " + message;
        return message;
    }
};

/**
 * Either a value or an Error.
 *
 * A minimal std::expected stand-in (the toolchain's libstdc++ predates
 * a complete <expected>).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Error error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Access the value; requires ok(). */
    T &operator*() { assert(ok()); return *value_; }
    const T &operator*() const { assert(ok()); return *value_; }
    T *operator->() { assert(ok()); return &*value_; }
    const T *operator->() const { assert(ok()); return &*value_; }

    T &&take() { assert(ok()); return std::move(*value_); }

    /** Access the error; requires !ok(). */
    const Error &error() const { assert(!ok()); return *error_; }

  private:
    std::optional<T> value_;
    std::optional<Error> error_;
};

} // namespace lpo

#endif // LPO_SUPPORT_ERROR_H
