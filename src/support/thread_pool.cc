#include "support/thread_pool.h"

#include <algorithm>

namespace lpo {

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(num_threads ? num_threads : hardwareThreads())
{
    // The calling thread participates in every parallelFor, so a pool
    // of size N spawns N-1 workers; size 1 spawns none and stays
    // strictly serial.
    for (unsigned i = 1; i < num_threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    job_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        job_ready_.wait(lock, [&] {
            return stop_ || generation_ != seen_generation;
        });
        if (stop_)
            return;
        seen_generation = generation_;
        const auto *body = body_;
        uint64_t end = end_;
        uint64_t chunk = chunk_;
        lock.unlock();
        while (true) {
            uint64_t lo = cursor_.fetch_add(chunk);
            if (lo >= end)
                break;
            try {
                (*body)(lo, std::min(lo + chunk, end));
            } catch (...) {
                recordError(std::current_exception());
            }
        }
        lock.lock();
        if (--pending_ == 0)
            job_done_.notify_all();
    }
}

void
ThreadPool::recordError(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_)
        first_error_ = std::move(error);
    // Drain the range so every thread stops claiming chunks; the
    // in-flight ones finish, then parallelFor rethrows.
    cursor_.store(end_);
}

void
ThreadPool::parallelFor(uint64_t begin, uint64_t end, uint64_t chunk,
                        const std::function<void(uint64_t, uint64_t)> &body)
{
    if (begin >= end)
        return;
    if (chunk == 0)
        chunk = 1;
    // Serial pool, or a range that fits in one chunk: run inline.
    if (workers_.empty() || end - begin <= chunk) {
        for (uint64_t lo = begin; lo < end; lo += chunk)
            body(lo, std::min(lo + chunk, end));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        cursor_.store(begin);
        end_ = end;
        chunk_ = chunk;
        pending_ = static_cast<unsigned>(workers_.size());
        ++generation_;
        first_error_ = nullptr;
    }
    job_ready_.notify_all();
    // The caller claims chunks alongside the workers.
    while (true) {
        uint64_t lo = cursor_.fetch_add(chunk);
        if (lo >= end)
            break;
        try {
            body(lo, std::min(lo + chunk, end));
        } catch (...) {
            recordError(std::current_exception());
        }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
    if (first_error_) {
        std::exception_ptr error = std::move(first_error_);
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

} // namespace lpo
