#include "support/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "support/telemetry.h"

namespace lpo {

namespace {

// Pool telemetry. task_wait measures job publish -> first chunk claim
// per participant (scheduling latency); chunk_run measures each body
// invocation; per-participant busy counters expose worker utilization
// (participant 0 is always the calling thread). Totals merge across
// every pool in the process.
telemetry::Histogram
taskWaitHistogram()
{
    static const telemetry::Histogram h =
        telemetry::histogram("pool.task_wait_ns");
    return h;
}

telemetry::Histogram
chunkRunHistogram()
{
    static const telemetry::Histogram h =
        telemetry::histogram("pool.chunk_run_ns");
    return h;
}

telemetry::Counter
chunksCounter()
{
    static const telemetry::Counter c = telemetry::counter("pool.chunks");
    return c;
}

telemetry::Counter
jobsCounter()
{
    static const telemetry::Counter c = telemetry::counter("pool.jobs");
    return c;
}

telemetry::Counter
participantBusyCounter(unsigned index)
{
    return telemetry::counter("pool.worker." + std::to_string(index) +
                              ".busy_ns");
}

} // namespace

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(num_threads ? num_threads : hardwareThreads())
{
    // The calling thread participates in every parallelFor, so a pool
    // of size N spawns N-1 workers; size 1 spawns none and stays
    // strictly serial.
    for (unsigned i = 1; i < num_threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    job_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop(unsigned index)
{
    const telemetry::Counter busy_counter = participantBusyCounter(index);
    uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        job_ready_.wait(lock, [&] {
            return stop_ || generation_ != seen_generation;
        });
        if (stop_)
            return;
        seen_generation = generation_;
        const auto *body = body_;
        uint64_t end = end_;
        uint64_t chunk = chunk_;
        uint64_t publish_ns = job_publish_ns_;
        lock.unlock();
        bool first_chunk = true;
        uint64_t busy_ns = 0;
        while (true) {
            uint64_t lo = cursor_.fetch_add(chunk);
            if (lo >= end)
                break;
            if (publish_ns != 0 && first_chunk) {
                taskWaitHistogram().record(telemetry::nowNanos() -
                                           publish_ns);
                first_chunk = false;
            }
            uint64_t start_ns = publish_ns ? telemetry::nowNanos() : 0;
            try {
                (*body)(lo, std::min(lo + chunk, end));
            } catch (...) {
                recordError(std::current_exception());
            }
            if (publish_ns != 0) {
                uint64_t elapsed = telemetry::nowNanos() - start_ns;
                chunkRunHistogram().record(elapsed);
                chunksCounter().inc();
                busy_ns += elapsed;
            }
        }
        if (busy_ns != 0)
            busy_counter.add(busy_ns);
        lock.lock();
        if (--pending_ == 0)
            job_done_.notify_all();
    }
}

void
ThreadPool::recordError(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_)
        first_error_ = std::move(error);
    // Drain the range so every thread stops claiming chunks; the
    // in-flight ones finish, then parallelFor rethrows.
    cursor_.store(end_);
}

void
ThreadPool::parallelFor(uint64_t begin, uint64_t end, uint64_t chunk,
                        const std::function<void(uint64_t, uint64_t)> &body)
{
    if (begin >= end)
        return;
    if (chunk == 0)
        chunk = 1;
    // Loud failure on re-entry: a second job would interleave with the
    // in-flight one's cursor/end/pending accounting and either corrupt
    // both ranges or deadlock the completion wait. Catching it at the
    // boundary turns a heisenbug into an immediate, attributable
    // error.
    bool was_in_flight = false;
    if (!in_flight_.compare_exchange_strong(was_in_flight, true))
        throw std::logic_error(
            "ThreadPool::parallelFor: nested call on a pool that "
            "already has a parallelFor in flight");
    struct InFlightGuard
    {
        std::atomic<bool> &flag;
        ~InFlightGuard() { flag.store(false); }
    } in_flight_guard{in_flight_};
    const bool record = telemetry::MetricsRegistry::instance().enabled();
    // Serial pool, or a range that fits in one chunk: run inline.
    if (workers_.empty() || end - begin <= chunk) {
        uint64_t busy_ns = 0;
        for (uint64_t lo = begin; lo < end; lo += chunk) {
            if (!record) {
                body(lo, std::min(lo + chunk, end));
                continue;
            }
            uint64_t start_ns = telemetry::nowNanos();
            body(lo, std::min(lo + chunk, end));
            uint64_t elapsed = telemetry::nowNanos() - start_ns;
            chunkRunHistogram().record(elapsed);
            chunksCounter().inc();
            busy_ns += elapsed;
        }
        if (busy_ns != 0) {
            static const telemetry::Counter caller_busy =
                participantBusyCounter(0);
            caller_busy.add(busy_ns);
            jobsCounter().inc();
        }
        return;
    }
    uint64_t publish_ns = record ? telemetry::nowNanos() : 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        cursor_.store(begin);
        end_ = end;
        chunk_ = chunk;
        pending_ = static_cast<unsigned>(workers_.size());
        ++generation_;
        first_error_ = nullptr;
        job_publish_ns_ = publish_ns;
    }
    job_ready_.notify_all();
    if (record)
        jobsCounter().inc();
    // The caller claims chunks alongside the workers.
    uint64_t busy_ns = 0;
    while (true) {
        uint64_t lo = cursor_.fetch_add(chunk);
        if (lo >= end)
            break;
        uint64_t start_ns = publish_ns ? telemetry::nowNanos() : 0;
        try {
            body(lo, std::min(lo + chunk, end));
        } catch (...) {
            recordError(std::current_exception());
        }
        if (publish_ns != 0) {
            uint64_t elapsed = telemetry::nowNanos() - start_ns;
            chunkRunHistogram().record(elapsed);
            chunksCounter().inc();
            busy_ns += elapsed;
        }
    }
    if (busy_ns != 0) {
        static const telemetry::Counter caller_busy =
            participantBusyCounter(0);
        caller_busy.add(busy_ns);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
    if (first_error_) {
        std::exception_ptr error = std::move(first_error_);
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

} // namespace lpo
