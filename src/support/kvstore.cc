#include "support/kvstore.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "support/failpoint.h"
#include "support/telemetry.h"

namespace lpo {

namespace {

// File layout:
//   magic (8 bytes) | u32 meta_len | u32 meta_crc | meta bytes
//   then zero or more records:
//   u32 klen | u32 vlen | u32 hcrc | u32 pcrc | key bytes | value bytes
// where hcrc covers the 8 length bytes (so a torn or garbled frame is
// detected before klen/vlen are trusted) and pcrc covers key||value.
// meta = u32 format_version | u32 tag_len | tag | u32 opt_len | opt.
// All integers are little-endian (encoded explicitly, so the file is
// portable across hosts).
constexpr char kMagic[8] = {'L', 'P', 'O', 'K', 'V', 'S', '1', '\n'};
constexpr size_t kRecordHeaderSize = 16;
// Sanity bound on any single length field; a frame that passes its CRC
// but claims a larger payload is treated as corrupt rather than
// triggering a multi-gigabyte allocation.
constexpr uint32_t kMaxFieldSize = 1u << 28;

// crc32 lookup table, built once (IEEE 802.3 reflected polynomial).
const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static bool built = [] {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        return true;
    }();
    (void)built;
    return table;
}

void
putU32(std::string *out, uint32_t v)
{
    out->push_back(static_cast<char>(v & 0xFF));
    out->push_back(static_cast<char>((v >> 8) & 0xFF));
    out->push_back(static_cast<char>((v >> 16) & 0xFF));
    out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t
getU32(const char *p)
{
    const unsigned char *u = reinterpret_cast<const unsigned char *>(p);
    return static_cast<uint32_t>(u[0]) | static_cast<uint32_t>(u[1]) << 8 |
           static_cast<uint32_t>(u[2]) << 16 |
           static_cast<uint32_t>(u[3]) << 24;
}

std::string
encodeHeader(const KvOpenOptions &options)
{
    std::string meta;
    putU32(&meta, options.format_version);
    putU32(&meta, static_cast<uint32_t>(options.client_tag.size()));
    meta += options.client_tag;
    putU32(&meta, static_cast<uint32_t>(options.options_key.size()));
    meta += options.options_key;

    std::string header(kMagic, sizeof(kMagic));
    putU32(&header, static_cast<uint32_t>(meta.size()));
    putU32(&header, crc32(meta.data(), meta.size()));
    header += meta;
    return header;
}

std::string
encodeRecord(const std::string &key, const std::string &value)
{
    std::string lengths;
    putU32(&lengths, static_cast<uint32_t>(key.size()));
    putU32(&lengths, static_cast<uint32_t>(value.size()));

    std::string record = lengths;
    putU32(&record, crc32(lengths.data(), lengths.size()));
    uint32_t pcrc = crc32(key.data(), key.size());
    pcrc = crc32(value.data(), value.size(), pcrc);
    putU32(&record, pcrc);
    record += key;
    record += value;
    return record;
}

// --- Crash-test seam -------------------------------------------------
//
// When armed, every byte written through writeAll (appends, headers,
// snapshot bodies) counts against the budget; the write that would
// cross it is truncated at exactly the budget boundary and the process
// SIGKILLs itself, producing a genuine torn write at a caller-chosen
// offset. Plain int64_t (not atomic): the seam is armed in a freshly
// forked single-threaded child.
int64_t g_kill_after_bytes = -1;

/** write(2) the whole buffer, honoring the crash-test seam. */
bool
writeAll(int fd, const char *data, size_t size)
{
    if (g_kill_after_bytes >= 0) {
        if (static_cast<int64_t>(size) > g_kill_after_bytes) {
            size_t partial = static_cast<size_t>(g_kill_after_bytes);
            size_t done = 0;
            while (done < partial) {
                ssize_t n = ::write(fd, data + done, partial - done);
                if (n <= 0)
                    break;
                done += static_cast<size_t>(n);
            }
            ::fsync(fd);
            ::kill(::getpid(), SIGKILL);
            // Unreachable, but keep the compiler honest.
            return false;
        }
        g_kill_after_bytes -= static_cast<int64_t>(size);
    }
    size_t done = 0;
    while (done < size) {
        ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(n);
    }
    return true;
}

bool
readAll(int fd, std::string *out)
{
    char buf[1 << 16];
    out->clear();
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return true;
        out->append(buf, static_cast<size_t>(n));
    }
}

void
setError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
}

// Cap on the `.quarantine` sidecar (see KvStore::setQuarantineCap):
// a persistently faulty disk quarantines on every recovery, and an
// unbounded diagnostic file on an already-failing disk is its own
// fault. Oldest bytes are dropped first — the newest corruption is
// the one an operator is debugging.
size_t g_quarantine_cap = KvStore::kDefaultQuarantineCap;

/** Append @p bytes to `<path>.quarantine` (best effort), rotating
 *  oldest-first so the sidecar never exceeds the cap. */
void
quarantineBytes(const std::string &path, const char *bytes, size_t size)
{
    if (!size)
        return;
    const std::string sidecar = path + ".quarantine";
    const size_t cap = g_quarantine_cap;
    if (cap && size > cap) {
        // Even alone the new region overflows: keep its newest tail.
        bytes += size - cap;
        size = cap;
    }
    if (cap) {
        struct stat st;
        size_t existing =
            ::stat(sidecar.c_str(), &st) == 0 && st.st_size > 0
                ? static_cast<size_t>(st.st_size)
                : 0;
        if (existing + size > cap) {
            // Rotate: rewrite the sidecar as the newest tail of its
            // current contents, leaving room for the incoming bytes.
            size_t keep = cap - size;
            std::string old;
            int rd = ::open(sidecar.c_str(), O_RDONLY);
            if (rd >= 0) {
                readAll(rd, &old);
                ::close(rd);
            }
            if (old.size() > keep)
                old.erase(0, old.size() - keep);
            int wr = ::open(sidecar.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (wr < 0)
                return;
            writeAll(wr, old.data(), old.size());
            ::close(wr);
        }
    }
    int fd = ::open(sidecar.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return;
    writeAll(fd, bytes, size);
    ::close(fd);
}

/**
 * Shared header+record walk for open() and inspect(). Streams valid
 * records to @p on_record; corrupt/torn regions are described through
 * @p stats, and (in repair mode) quarantined + flagged for rewrite.
 *
 * @p repair  when true, corrupt bytes go to the sidecar and the
 *            caller is told (via @p needs_rewrite / @p truncate_at)
 *            how to make the file clean again.
 * Returns a usable status iff the header matched @p options.
 */
KvOpen
scanFile(const std::string &path, const std::string &contents,
         const KvOpenOptions &options, const KvStore::RecordFn &on_record,
         KvLoadStats *stats, bool repair, bool *needs_rewrite,
         size_t *truncate_at, std::string *error)
{
    *needs_rewrite = false;
    *truncate_at = contents.size();

    // --- Header ---
    if (contents.size() < sizeof(kMagic) + 8) {
        // Shorter than a complete header. If what is there is a prefix
        // of a valid header the process died during file creation (no
        // records could exist yet); treat as fresh rather than foreign.
        std::string expect = encodeHeader(options);
        if (contents.empty() ||
            expect.compare(0, contents.size(), contents) == 0) {
            stats->recovered = !contents.empty();
            stats->torn_bytes += contents.size();
            *truncate_at = 0;
            *needs_rewrite = !contents.empty();
            return KvOpen::Fresh;
        }
        setError(error, path + ": not an lpo kv store (no magic)");
        return KvOpen::RejectedFormat;
    }
    if (std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
        setError(error, path + ": not an lpo kv store (bad magic)");
        return KvOpen::RejectedFormat;
    }
    uint32_t meta_len = getU32(contents.data() + sizeof(kMagic));
    uint32_t meta_crc = getU32(contents.data() + sizeof(kMagic) + 4);
    size_t meta_off = sizeof(kMagic) + 8;
    if (meta_len > kMaxFieldSize ||
        meta_off + meta_len > contents.size()) {
        // Magic is intact but the meta block is torn: died mid-header.
        std::string expect = encodeHeader(options);
        if (expect.compare(0, contents.size(), contents) == 0) {
            stats->recovered = true;
            stats->torn_bytes += contents.size();
            *truncate_at = 0;
            *needs_rewrite = true;
            return KvOpen::Fresh;
        }
        setError(error, path + ": header truncated");
        return KvOpen::RejectedFormat;
    }
    const char *meta = contents.data() + meta_off;
    if (crc32(meta, meta_len) != meta_crc) {
        setError(error, path + ": header checksum mismatch");
        return KvOpen::RejectedFormat;
    }
    // Decode meta: version, tag, options key.
    if (meta_len < 4) {
        setError(error, path + ": header meta too short");
        return KvOpen::RejectedFormat;
    }
    uint32_t version = getU32(meta);
    size_t pos = 4;
    auto readBlob = [&](std::string *out) {
        if (pos + 4 > meta_len)
            return false;
        uint32_t len = getU32(meta + pos);
        pos += 4;
        if (len > meta_len || pos + len > meta_len)
            return false;
        out->assign(meta + pos, len);
        pos += len;
        return true;
    };
    std::string tag, opt;
    if (!readBlob(&tag) || !readBlob(&opt)) {
        setError(error, path + ": header meta malformed");
        return KvOpen::RejectedFormat;
    }
    if (version != options.format_version) {
        setError(error, path + ": format version " +
                            std::to_string(version) + " != expected " +
                            std::to_string(options.format_version));
        return KvOpen::RejectedVersion;
    }
    if (tag != options.client_tag) {
        setError(error,
                 path + ": client tag '" + tag + "' != expected '" +
                     options.client_tag + "'");
        return KvOpen::RejectedTag;
    }
    if (opt != options.options_key) {
        setError(error, path + ": options key mismatch ('" + opt +
                            "' != '" + options.options_key + "')");
        return KvOpen::RejectedOptions;
    }

    // --- Records ---
    size_t off = meta_off + meta_len;
    while (off < contents.size()) {
        size_t remaining = contents.size() - off;
        if (remaining < kRecordHeaderSize) {
            // Torn frame: the append died before the 16 header bytes
            // landed. Nothing after this offset is trustworthy either
            // way, and nothing complete is lost — truncate.
            stats->torn_bytes += remaining;
            stats->recovered = true;
            *truncate_at = off;
            break;
        }
        const char *frame = contents.data() + off;
        uint32_t klen = getU32(frame);
        uint32_t vlen = getU32(frame + 4);
        uint32_t hcrc = getU32(frame + 8);
        uint32_t pcrc = getU32(frame + 12);
        bool frame_ok = crc32(frame, 8) == hcrc &&
                        klen <= kMaxFieldSize && vlen <= kMaxFieldSize;
        if (!frame_ok) {
            // The lengths themselves are unreliable, so there is no
            // way to find the next record boundary: quarantine the
            // rest of the file and truncate here.
            if (repair)
                quarantineBytes(path, frame, remaining);
            stats->quarantined += 1;
            stats->recovered = true;
            *truncate_at = off;
            *needs_rewrite = repair;
            break;
        }
        size_t payload = static_cast<size_t>(klen) + vlen;
        if (remaining < kRecordHeaderSize + payload) {
            // Frame landed, payload didn't: torn append, truncate.
            stats->torn_bytes += remaining;
            stats->recovered = true;
            *truncate_at = off;
            break;
        }
        const char *body = frame + kRecordHeaderSize;
        uint32_t crc = crc32(body, klen);
        crc = crc32(body + klen, vlen, crc);
        bool corrupt_injected = repair && LPO_FAILPOINT("store.load.corrupt");
        if (crc != pcrc || corrupt_injected) {
            // Payload corrupt but the frame is sound, so the next
            // record boundary is known: quarantine just this record
            // and keep going.
            if (repair)
                quarantineBytes(path, frame, kRecordHeaderSize + payload);
            stats->quarantined += 1;
            stats->recovered = true;
            *needs_rewrite = repair;
            off += kRecordHeaderSize + payload;
            continue;
        }
        if (on_record)
            on_record(std::string(body, klen),
                      std::string(body + klen, vlen));
        stats->records += 1;
        off += kRecordHeaderSize + payload;
    }
    return KvOpen::Loaded;
}

} // namespace

uint32_t
crc32(const void *data, size_t size, uint32_t seed)
{
    const uint32_t *table = crcTable();
    const unsigned char *p = static_cast<const unsigned char *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

const char *
kvOpenName(KvOpen status)
{
    switch (status) {
      case KvOpen::Fresh: return "fresh";
      case KvOpen::Loaded: return "loaded";
      case KvOpen::RejectedFormat: return "rejected-format";
      case KvOpen::RejectedVersion: return "rejected-version";
      case KvOpen::RejectedTag: return "rejected-tag";
      case KvOpen::RejectedOptions: return "rejected-options";
      case KvOpen::IoError: return "io-error";
    }
    return "unknown";
}

KvStore::~KvStore() { close(); }

void
KvStore::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

KvOpen
KvStore::open(const std::string &path, const KvOpenOptions &options,
              const RecordFn &on_record, std::string *error)
{
    static const telemetry::Histogram open_hist =
        telemetry::histogram("kvstore.open_ns");
    telemetry::ScopedTimer timer(open_hist);
    close();
    path_ = path;
    options_ = options;
    load_stats_ = KvLoadStats{};
    healthy_ = true;

    int flags = options.read_only ? O_RDONLY : O_RDWR | O_CREAT;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        setError(error, path + ": " + std::strerror(errno));
        return KvOpen::IoError;
    }
    std::string contents;
    if (!readAll(fd, &contents)) {
        setError(error, path + ": read: " + std::strerror(errno));
        ::close(fd);
        return KvOpen::IoError;
    }

    bool empty = contents.empty();
    bool needs_rewrite = false;
    size_t truncate_at = contents.size();
    std::vector<std::pair<std::string, std::string>> kept;
    const bool repair = !options.read_only;
    KvOpen status = scanFile(
        path, contents, options,
        [&](std::string &&key, std::string &&value) {
            // Keep a copy of every valid record: corruption later in
            // the file flips needs_rewrite retroactively, and the
            // repair snapshot must carry the records seen before it.
            kept.emplace_back(key, value);
            if (on_record)
                on_record(std::move(key), std::move(value));
        },
        &load_stats_, repair, &needs_rewrite, &truncate_at, error);

    if (!kvOpenUsable(status)) {
        ::close(fd);
        return status;
    }
    if (options.read_only) {
        fd_ = fd;
        return empty ? KvOpen::Fresh : status;
    }

    fd_ = fd;
    if (needs_rewrite && status == KvOpen::Loaded) {
        // Some record was quarantined mid-file: rewrite a clean copy
        // atomically so the corruption can never be re-read.
        std::string snap_error;
        if (!snapshot(kept, &snap_error)) {
            // Keep running on the truncated original; quarantined
            // bytes were already copied out, and truncation below
            // still removes any trailing garbage.
            if (::ftruncate(fd_, static_cast<off_t>(truncate_at)) != 0)
                healthy_ = false;
            if (::lseek(fd_, 0, SEEK_END) < 0)
                healthy_ = false;
        }
        return KvOpen::Loaded;
    }
    if (truncate_at < contents.size() || (needs_rewrite && empty)) {
        if (::ftruncate(fd_, static_cast<off_t>(truncate_at)) != 0) {
            setError(error, path + ": ftruncate: " + std::strerror(errno));
            healthy_ = false;
        }
    }
    if (empty || status == KvOpen::Fresh) {
        // Brand-new (or torn-creation) file: write the header.
        std::string header = encodeHeader(options);
        if (::lseek(fd_, 0, SEEK_END) < 0 ||
            !writeAll(fd_, header.data(), header.size())) {
            setError(error, path + ": header write: " +
                                std::strerror(errno));
            healthy_ = false;
            return KvOpen::IoError;
        }
        return KvOpen::Fresh;
    }
    if (::lseek(fd_, 0, SEEK_END) < 0)
        healthy_ = false;
    return KvOpen::Loaded;
}

bool
KvStore::append(const std::string &key, const std::string &value)
{
    static const telemetry::Histogram append_hist =
        telemetry::histogram("kvstore.append_ns");
    telemetry::ScopedTimer timer(append_hist);
    if (fd_ < 0 || !healthy_)
        return false;
    if (LPO_FAILPOINT("store.write.fail")) {
        append_failures_ += 1;
        return false;
    }
    std::string record = encodeRecord(key, value);
    if (!writeAll(fd_, record.data(), record.size())) {
        healthy_ = false;
        append_failures_ += 1;
        return false;
    }
    appends_ += 1;
    static const telemetry::Counter appends_counter =
        telemetry::counter("kvstore.appends");
    appends_counter.inc();
    return true;
}

bool
KvStore::sync()
{
    static const telemetry::Histogram sync_hist =
        telemetry::histogram("kvstore.sync_ns");
    telemetry::ScopedTimer timer(sync_hist);
    if (fd_ < 0 || !healthy_)
        return false;
    if (LPO_FAILPOINT("store.fsync.fail"))
        return false;
    if (::fsync(fd_) != 0) {
        healthy_ = false;
        return false;
    }
    return true;
}

bool
KvStore::snapshot(
    const std::vector<std::pair<std::string, std::string>> &records,
    std::string *error)
{
    static const telemetry::Histogram snapshot_hist =
        telemetry::histogram("kvstore.snapshot_ns");
    telemetry::ScopedTimer timer(snapshot_hist);
    if (fd_ < 0)
        return false;
    if (LPO_FAILPOINT("store.write.fail"))
        return false;
    std::string tmp_path = path_ + ".tmp";
    int tmp = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tmp < 0) {
        setError(error, tmp_path + ": " + std::strerror(errno));
        return false;
    }
    std::string body = encodeHeader(options_);
    for (const auto &[key, value] : records)
        body += encodeRecord(key, value);
    // The injectable fsync failure sits between write and rename —
    // exactly where a real sync fault would strike mid-compaction.
    // Either failure unlinks the tmp file and leaves the original
    // journal byte-untouched: no litter, no partial snapshot.
    bool ok = writeAll(tmp, body.data(), body.size()) &&
              !LPO_FAILPOINT("store.fsync.fail") && ::fsync(tmp) == 0;
    ::close(tmp);
    if (!ok) {
        setError(error, tmp_path + ": write/sync failed");
        ::unlink(tmp_path.c_str());
        return false;
    }
    if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
        setError(error, path_ + ": rename: " + std::strerror(errno));
        ::unlink(tmp_path.c_str());
        return false;
    }
    // The old fd now points at the unlinked inode; reopen the new file
    // so later appends land in it.
    int fd = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
    if (fd < 0) {
        setError(error, path_ + ": reopen: " + std::strerror(errno));
        healthy_ = false;
        return false;
    }
    ::close(fd_);
    fd_ = fd;
    healthy_ = true;
    return true;
}

KvOpen
KvStore::inspect(const std::string &path, const KvOpenOptions &options,
                 const RecordFn &on_record, KvLoadStats *stats,
                 std::string *error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, path + ": " + std::strerror(errno));
        return KvOpen::IoError;
    }
    std::string contents;
    bool ok = readAll(fd, &contents);
    ::close(fd);
    if (!ok) {
        setError(error, path + ": read: " + std::strerror(errno));
        return KvOpen::IoError;
    }
    KvLoadStats local;
    bool needs_rewrite = false;
    size_t truncate_at = 0;
    KvOpen status =
        scanFile(path, contents, options, on_record, &local,
                 /*repair=*/false, &needs_rewrite, &truncate_at, error);
    if (status == KvOpen::Fresh && !contents.empty())
        // Read-only view of a torn-creation file: report it as
        // recovery-pending rather than pretending it is pristine.
        local.recovered = true;
    if (stats)
        *stats = local;
    return status;
}

void
KvStore::testKillAfterBytes(int64_t bytes)
{
    g_kill_after_bytes = bytes;
}

void
KvStore::setQuarantineCap(size_t bytes)
{
    g_quarantine_cap = bytes;
}

size_t
KvStore::quarantineCap()
{
    return g_quarantine_cap;
}

uint64_t
KvStore::quarantineSize(const std::string &path)
{
    struct stat st;
    if (::stat((path + ".quarantine").c_str(), &st) != 0 ||
        st.st_size < 0)
        return 0;
    return static_cast<uint64_t>(st.st_size);
}

} // namespace lpo
