#include "support/apint.h"

#include <cassert>

namespace lpo {

uint64_t
APInt::mask() const
{
    return width_ == 64 ? ~uint64_t(0) : ((uint64_t(1) << width_) - 1);
}

APInt::APInt(unsigned width, uint64_t value) : width_(width), value_(value)
{
    assert(width >= 1 && width <= 64 && "APInt width out of range");
    value_ &= mask();
}

APInt
APInt::allOnes(unsigned width)
{
    APInt r(width, 0);
    r.value_ = r.mask();
    return r;
}

APInt
APInt::signedMin(unsigned width)
{
    return APInt(width, uint64_t(1) << (width - 1));
}

APInt
APInt::signedMax(unsigned width)
{
    APInt r = allOnes(width);
    r.value_ &= ~(uint64_t(1) << (width - 1));
    return r;
}

APInt
APInt::fromSigned(unsigned width, int64_t value)
{
    return APInt(width, static_cast<uint64_t>(value));
}

int64_t
APInt::sext() const
{
    if (width_ == 64)
        return static_cast<int64_t>(value_);
    uint64_t sign = uint64_t(1) << (width_ - 1);
    if (value_ & sign)
        return static_cast<int64_t>(value_ | ~mask());
    return static_cast<int64_t>(value_);
}

bool APInt::isAllOnes() const { return value_ == mask(); }

bool
APInt::isSignBitSet() const
{
    return (value_ >> (width_ - 1)) & 1;
}

bool
APInt::isSignedMin() const
{
    return value_ == (uint64_t(1) << (width_ - 1));
}

bool
APInt::isPowerOf2() const
{
    return value_ != 0 && (value_ & (value_ - 1)) == 0;
}

unsigned
APInt::countLeadingZeros() const
{
    if (value_ == 0)
        return width_;
    unsigned total = __builtin_clzll(value_);
    return total - (64 - width_);
}

unsigned
APInt::countTrailingZeros() const
{
    if (value_ == 0)
        return width_;
    return __builtin_ctzll(value_);
}

unsigned
APInt::popCount() const
{
    return __builtin_popcountll(value_);
}

APInt APInt::add(const APInt &rhs) const { return {width_, value_ + rhs.value_}; }
APInt APInt::sub(const APInt &rhs) const { return {width_, value_ - rhs.value_}; }
APInt APInt::mul(const APInt &rhs) const { return {width_, value_ * rhs.value_}; }

APInt
APInt::udiv(const APInt &rhs) const
{
    assert(!rhs.isZero() && "udiv by zero");
    return {width_, value_ / rhs.value_};
}

APInt
APInt::urem(const APInt &rhs) const
{
    assert(!rhs.isZero() && "urem by zero");
    return {width_, value_ % rhs.value_};
}

APInt
APInt::sdiv(const APInt &rhs) const
{
    assert(!rhs.isZero() && "sdiv by zero");
    assert(!(isSignedMin() && rhs.isAllOnes()) && "sdiv overflow");
    return fromSigned(width_, sext() / rhs.sext());
}

APInt
APInt::srem(const APInt &rhs) const
{
    assert(!rhs.isZero() && "srem by zero");
    assert(!(isSignedMin() && rhs.isAllOnes()) && "srem overflow");
    return fromSigned(width_, sext() % rhs.sext());
}

APInt APInt::andOp(const APInt &rhs) const { return {width_, value_ & rhs.value_}; }
APInt APInt::orOp(const APInt &rhs) const { return {width_, value_ | rhs.value_}; }
APInt APInt::xorOp(const APInt &rhs) const { return {width_, value_ ^ rhs.value_}; }
APInt APInt::notOp() const { return {width_, ~value_}; }
APInt APInt::neg() const { return {width_, 0 - value_}; }

APInt
APInt::shl(unsigned amount) const
{
    if (amount >= width_)
        return zero(width_);
    return {width_, value_ << amount};
}

APInt
APInt::lshr(unsigned amount) const
{
    if (amount >= width_)
        return zero(width_);
    return {width_, value_ >> amount};
}

APInt
APInt::ashr(unsigned amount) const
{
    if (amount >= width_)
        amount = width_ - 1;
    return fromSigned(width_, sext() >> amount);
}

APInt
APInt::truncTo(unsigned new_width) const
{
    assert(new_width <= width_);
    return {new_width, value_};
}

APInt
APInt::zextTo(unsigned new_width) const
{
    assert(new_width >= width_);
    return {new_width, value_};
}

APInt
APInt::sextTo(unsigned new_width) const
{
    assert(new_width >= width_);
    return fromSigned(new_width, sext());
}

bool
APInt::addOverflowsUnsigned(const APInt &rhs) const
{
    return add(rhs).value_ < value_;
}

bool
APInt::addOverflowsSigned(const APInt &rhs) const
{
    int64_t r = sext() + rhs.sext();
    return r != add(rhs).sext();
}

bool
APInt::subOverflowsUnsigned(const APInt &rhs) const
{
    return value_ < rhs.value_;
}

bool
APInt::subOverflowsSigned(const APInt &rhs) const
{
    int64_t r = sext() - rhs.sext();
    return r != sub(rhs).sext();
}

bool
APInt::mulOverflowsUnsigned(const APInt &rhs) const
{
    if (value_ == 0 || rhs.value_ == 0)
        return false;
    // Use 128-bit multiplication to detect overflow past the width.
    unsigned __int128 wide =
        static_cast<unsigned __int128>(value_) * rhs.value_;
    return wide != (wide & static_cast<unsigned __int128>(mask()));
}

bool
APInt::mulOverflowsSigned(const APInt &rhs) const
{
    __int128 wide = static_cast<__int128>(sext()) * rhs.sext();
    return wide != static_cast<__int128>(mul(rhs).sext());
}

bool
APInt::shlOverflowsUnsigned(unsigned amount) const
{
    if (amount >= width_)
        return value_ != 0;
    return shl(amount).lshr(amount).value_ != value_;
}

bool
APInt::shlOverflowsSigned(unsigned amount) const
{
    if (amount >= width_)
        return value_ != 0;
    return shl(amount).ashr(amount).value_ != value_;
}

std::string
APInt::toString() const
{
    if (width_ > 1 && isSignBitSet())
        return std::to_string(sext());
    return std::to_string(value_);
}

} // namespace lpo
