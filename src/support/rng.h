/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the system (corpus generator, mock LLM
 * sampling, Souper's randomized verification fallback) draws from this
 * generator so that experiments are reproducible bit-for-bit from a seed.
 */
#ifndef LPO_SUPPORT_RNG_H
#define LPO_SUPPORT_RNG_H

#include <cstdint>
#include <string>

namespace lpo {

/**
 * SplitMix64-seeded xoshiro256** generator.
 *
 * Small, fast, and adequate for workload synthesis and sampling; not
 * intended for cryptographic use.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Derive an independent stream from this one and a label. */
    Rng fork(const std::string &label) const;

    /** Uniform 64-bit value. */
    uint64_t next();
    /** Uniform value in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);
    /** Uniform value in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);
    /** Uniform double in [0, 1). */
    double nextDouble();
    /** Bernoulli draw. */
    bool chance(double probability);

  private:
    uint64_t state_[4];
};

} // namespace lpo

#endif // LPO_SUPPORT_RNG_H
