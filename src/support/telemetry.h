/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms with lock-free per-thread shards.
 *
 * Design constraints, in order:
 *
 *  1. Recording must never perturb pipeline results. Metric cells are
 *     relaxed atomics in per-thread shards; recording takes no locks,
 *     allocates nothing after the first touch per thread, and is a
 *     no-op when the registry is disabled (one relaxed load).
 *  2. Snapshots must be deterministic for deterministic workloads.
 *     Every cell is an unsigned 64-bit value folded with wrapping
 *     addition — a commutative, associative fold — so the snapshot is
 *     independent of which thread recorded what and of fold order.
 *     Metric names are kept sorted, so the rendered JSON is
 *     byte-stable whenever the recorded values are.
 *  3. Thread churn must not leak. Worker pools are created per
 *     parallel region; when a thread exits, its shards are folded
 *     into a per-registry retired accumulator and freed.
 *
 * Histograms use fixed 1-2-5 decade bucket bounds (1ns .. 1e11ns
 * ~100s, plus overflow) so two histograms are always mergeable and
 * percentiles (p50/p90/p99, linearly interpolated within a bucket)
 * need no per-sample storage.
 *
 * The JSON export (`metrics.lpo.json`) renders through
 * core::JsonWriter. External subsystems that keep their own atomic
 * counters (e.g. the failpoint registry) can contribute snapshot-time
 * values via addCollector().
 */
#ifndef LPO_SUPPORT_TELEMETRY_H
#define LPO_SUPPORT_TELEMETRY_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lpo::telemetry {

/** Upper bucket bounds (inclusive), 1-2-5 series; last is +inf. */
inline constexpr size_t kHistogramBuckets = 35;
const std::array<uint64_t, kHistogramBuckets - 1> &histogramBounds();

class MetricsRegistry;

/** Monotonic nanoseconds (steady clock). */
uint64_t nowNanos();

/**
 * Cheap copyable handle to a counter slot. Default-constructed
 * handles are inert no-ops.
 */
class Counter
{
  public:
    Counter() = default;
    void add(uint64_t delta) const;
    void inc() const { add(1); }

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *registry, uint32_t slot)
        : registry_(registry), slot_(slot)
    {}
    MetricsRegistry *registry_ = nullptr;
    uint32_t slot_ = 0;
};

/** Last-write-wins signed value (no sharding; set is rare). */
class Gauge
{
  public:
    Gauge() = default;
    void set(int64_t value) const;

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry *registry, uint32_t slot)
        : registry_(registry), slot_(slot)
    {}
    MetricsRegistry *registry_ = nullptr;
    uint32_t slot_ = 0;
};

/** Handle to a histogram (buckets + sum + max slots). */
class Histogram
{
  public:
    Histogram() = default;
    void record(uint64_t value) const;
    /** True when bound to a registry that is currently enabled. */
    bool active() const;

  private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry *registry, uint32_t slot)
        : registry_(registry), slot_(slot)
    {}
    MetricsRegistry *registry_ = nullptr;
    uint32_t slot_ = 0; ///< first of kHistogramBuckets + 2 slots
};

struct HistogramSnapshot
{
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    /**
     * Quantile in [0, 1], linearly interpolated within the owning
     * bucket (overflow bucket interpolates toward the observed max).
     * Deterministic given deterministic counts. 0 when empty.
     */
    double percentile(double q) const;
    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }
};

struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Counter value by exact name; 0 when absent. */
    uint64_t counter(std::string_view name) const;
    /** Histogram by exact name; nullptr when absent. */
    const HistogramSnapshot *histogram(std::string_view name) const;

    /** Collector-side append; snapshot() re-sorts afterwards. */
    void addCounter(std::string name, uint64_t value);

    /** Render as the metrics.lpo.json document. */
    std::string toJson() const;
};

class MetricsRegistry
{
  public:
    /** The process-wide registry (leaked: safe from TLS destructors). */
    static MetricsRegistry &instance();

    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Find-or-create by name. Handles stay valid for the registry's
     * lifetime; re-registering a name returns the same slot. Cache
     * the handle (e.g. in a function-local static) on hot paths.
     */
    Counter counter(std::string_view name);
    Gauge gauge(std::string_view name);
    Histogram histogram(std::string_view name);

    /**
     * Master switch. Disabled recording is one relaxed load per op.
     * Flipping it never discards already-recorded values.
     */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Register a snapshot-time contributor (runs on the snapshotting
     * thread, after the shard fold). Must only append values derived
     * from its own state — it may not touch the registry.
     */
    void addCollector(std::function<void(MetricsSnapshot &)> fn);

    /** Deterministic fold of all shards + retired accumulator. */
    MetricsSnapshot snapshot() const;

    /** Zero every cell (tests; not safe concurrently with recording). */
    void reset();

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;
    struct Shard;
    struct ThreadShardCache;

    enum class Kind { Counter, Gauge, Histogram };
    struct MetricInfo
    {
        Kind kind;
        uint32_t slot;
    };

    Shard &localShard();
    void retireShard(Shard *shard); // caller holds liveness lock
    uint32_t allocateSlots(std::string_view name, Kind kind,
                           uint32_t width);

    std::atomic<bool> enabled_{true};
    mutable std::mutex mutex_;
    std::map<std::string, MetricInfo, std::less<>> metrics_;
    uint32_t next_slot_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<Shard> retired_;
    std::vector<std::unique_ptr<std::atomic<int64_t>>> gauges_;
    std::vector<std::function<void(MetricsSnapshot &)>> collectors_;
};

inline bool
Histogram::active() const
{
    return registry_ != nullptr && registry_->enabled();
}

/** Shorthand accessors against the process-wide registry. */
inline Counter counter(std::string_view name)
{
    return MetricsRegistry::instance().counter(name);
}
inline Gauge gauge(std::string_view name)
{
    return MetricsRegistry::instance().gauge(name);
}
inline Histogram histogram(std::string_view name)
{
    return MetricsRegistry::instance().histogram(name);
}

/**
 * RAII timer recording elapsed nanoseconds into a histogram at
 * destruction (or at stopNanos(), whichever comes first). Inert when
 * telemetry was disabled at construction — stopNanos() then returns 0
 * so callers accumulating StageTimings stay zero-cost too.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram hist);
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;
    ~ScopedTimer();

    /** Record now; returns elapsed ns (0 if inert). Idempotent. */
    uint64_t stopNanos();

  private:
    Histogram hist_;
    uint64_t start_ = 0; ///< 0 = inert / already stopped
};

} // namespace lpo::telemetry

#endif // LPO_SUPPORT_TELEMETRY_H
