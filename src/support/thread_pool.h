/**
 * @file
 * A small fixed-size worker pool with a chunked parallel-for.
 *
 * Built for the verification sweep and the pipeline fan-out: callers
 * hand the pool a half-open index range and a chunk size; workers (and
 * the calling thread, which participates) claim chunks from an atomic
 * cursor until the range is exhausted. With one thread the pool spawns
 * no workers at all and parallelFor degenerates to a plain serial
 * loop, which is the reproducibility baseline the determinism tests
 * pin down.
 *
 * The pool makes no ordering promises between chunks; components that
 * need deterministic answers (first counterexample, merged statistics)
 * must reduce their per-chunk results by index, as refine.cc and
 * pipeline.cc do. A body that throws does not bring the process down:
 * the first exception (by completion order) is captured, the remaining
 * range is drained so all threads stop claiming chunks, and
 * parallelFor rethrows it on the calling thread once every in-flight
 * chunk has finished; the pool stays usable afterwards. At most one
 * parallelFor may be in flight per pool at a time — enforced: a
 * nested or concurrent call on the same pool throws std::logic_error
 * immediately instead of corrupting the in-flight job's cursor and
 * pending-count accounting.
 */
#ifndef LPO_SUPPORT_THREAD_POOL_H
#define LPO_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lpo {

class ThreadPool
{
  public:
    /** @param num_threads total parallelism; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism, counting the calling thread. */
    unsigned size() const { return num_threads_; }

    /** std::thread::hardware_concurrency(), never zero. */
    static unsigned hardwareThreads();

    /**
     * Invoke @p body(lo, hi) over @p chunk-sized sub-ranges of
     * [begin, end) from every pool thread plus the caller; returns
     * once the whole range has been processed. Chunks are claimed in
     * increasing order but may complete in any order. If any body
     * invocation throws, the first captured exception is rethrown
     * here after all threads quiesce (later chunks are skipped); which
     * exception is "first" is scheduling-dependent, so callers that
     * need determinism must not let bodies throw data-dependent
     * errors.
     */
    void parallelFor(uint64_t begin, uint64_t end, uint64_t chunk,
                     const std::function<void(uint64_t, uint64_t)> &body);

  private:
    /** @p index is the participant slot (the caller is 0). */
    void workerLoop(unsigned index);
    /** Latch @p error (first wins) and drain the remaining range. */
    void recordError(std::exception_ptr error);

    unsigned num_threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable job_ready_;
    std::condition_variable job_done_;
    const std::function<void(uint64_t, uint64_t)> *body_ = nullptr;
    std::atomic<uint64_t> cursor_{0};
    uint64_t end_ = 0;
    uint64_t chunk_ = 1;
    uint64_t generation_ = 0;
    /** Publish time of the in-flight job; 0 when telemetry is off, so
     *  the hot loops skip every clock read (guarded by mutex_). */
    uint64_t job_publish_ns_ = 0;
    unsigned pending_ = 0;
    bool stop_ = false;
    /** True while a parallelFor is executing; guards against nested
     *  or concurrent calls on one pool (see the class comment). */
    std::atomic<bool> in_flight_{false};
    /** First body exception of the in-flight job (guarded by mutex_). */
    std::exception_ptr first_error_;
};

} // namespace lpo

#endif // LPO_SUPPORT_THREAD_POOL_H
