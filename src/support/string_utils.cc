#include "support/string_utils.h"

#include <cctype>
#include <cstdio>

namespace lpo {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

uint64_t
fnv1a64(std::string_view text)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

uint64_t
hashCombine(uint64_t seed, uint64_t value)
{
    return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

std::string
formatFixed(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

} // namespace lpo
