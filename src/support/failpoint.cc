#include "support/failpoint.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "support/rng.h"
#include "support/telemetry.h"

namespace lpo {

namespace {

enum class Mode : int { Off, Always, Once, Nth, Prob };

} // namespace

/**
 * One registered site. Hit counting is lock-free; only configuration
 * and the prob-mode RNG draw take the registry mutex.
 */
struct FailPoints::Site
{
    const char *name;
    std::atomic<int> mode{static_cast<int>(Mode::Off)};
    uint64_t nth = 0;     ///< 1-based target hit for Mode::Nth
    double prob = 0.0;    ///< fire probability for Mode::Prob
    uint64_t seed = 0;    ///< prob-mode RNG seed
    Rng rng{0};           ///< prob-mode stream (guarded by the mutex)
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
};

namespace {

/**
 * The static site registry. Every name used with LPO_FAILPOINT must
 * appear here; `lpo_cli failpoints` prints this list and the CI chaos
 * sweep iterates it. Naming convention: `component.event`.
 */
FailPoints::Site g_sites[] = {
    {"sat.exhaust"},          // SatSolver reports Unknown at solve entry
    {"bitblast.throw"},       // function encoder throws FailPointError
    {"verify.cache.lookup"},  // cache lookup bypassed (treated as miss)
    {"verify.cache.store"},   // computed verdict not published
    {"proposer.llm.throw"},   // LLM leg throws FailPointError
    {"proposer.llm.none"},    // LLM leg returns no candidate
    {"proposer.egraph.throw"},// e-graph leg throws FailPointError
    {"proposer.egraph.none"}, // e-graph leg returns no candidate
    {"parser.fail"},          // parseModule/parseFunction reject input
    {"patchback.fail"},       // applyRewrite declines the splice
    {"store.write.fail"},     // KvStore append drops its record
    {"store.fsync.fail"},     // KvStore sync reports failure
    {"store.load.corrupt"},   // loaded record treated as corrupt
};
constexpr size_t kNumSites = sizeof(g_sites) / sizeof(g_sites[0]);

std::mutex g_mutex;

/** Parsed form of one `site=mode` clause, staged before applying. */
struct Parsed
{
    FailPoints::Site *site = nullptr;
    Mode mode = Mode::Off;
    uint64_t nth = 0;
    double prob = 0.0;
    uint64_t seed = 0;
};

bool
parseMode(const std::string &text, Parsed *out, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    if (text == "off") {
        out->mode = Mode::Off;
        return true;
    }
    if (text == "always") {
        out->mode = Mode::Always;
        return true;
    }
    if (text == "once") {
        out->mode = Mode::Once;
        return true;
    }
    if (text.rfind("nth:", 0) == 0) {
        char *end = nullptr;
        unsigned long long n = std::strtoull(text.c_str() + 4, &end, 10);
        if (end == text.c_str() + 4 || *end || n == 0)
            return fail("bad nth count in '" + text + "'");
        out->mode = Mode::Nth;
        out->nth = n;
        return true;
    }
    if (text.rfind("prob:", 0) == 0) {
        char *end = nullptr;
        double p = std::strtod(text.c_str() + 5, &end);
        if (end == text.c_str() + 5 || p < 0.0 || p > 1.0)
            return fail("bad probability in '" + text + "'");
        uint64_t seed = 0;
        if (*end == ':') {
            char *seed_end = nullptr;
            seed = std::strtoull(end + 1, &seed_end, 10);
            if (seed_end == end + 1 || *seed_end)
                return fail("bad seed in '" + text + "'");
        } else if (*end) {
            return fail("bad probability in '" + text + "'");
        }
        out->mode = Mode::Prob;
        out->prob = p;
        out->seed = seed;
        return true;
    }
    return fail("unknown failpoint mode '" + text +
                "' (expected off|always|once|nth:N|prob:P[:SEED])");
}

} // namespace

std::atomic<bool> FailPoints::armed_{true};

FailPoints::FailPoints()
{
    // The environment is applied exactly once, on first touch of the
    // registry. A malformed spec is reported loudly and ignored; the
    // chaos CI additionally asserts that its armed site actually
    // fired, so a typo cannot silently turn the sweep into a no-op.
    const char *env = std::getenv("LPO_FAILPOINTS");
    std::string error;
    if (env && *env && !configure(env, &error))
        std::fprintf(stderr, "lpo: ignoring LPO_FAILPOINTS: %s\n",
                     error.c_str());
    else if (!env || !*env)
        recomputeArmed();

    // Mirror the per-site hit/fire counters into metrics snapshots.
    // g_sites has static storage and the registry is leaked, so the
    // collector can never dangle; it reads only this registry's own
    // atomics, as the collector contract requires.
    telemetry::MetricsRegistry::instance().addCollector(
        [](telemetry::MetricsSnapshot &snap) {
            for (const Site &site : g_sites) {
                std::string prefix = std::string("failpoint.") + site.name;
                snap.addCounter(
                    prefix + ".hits",
                    site.hits.load(std::memory_order_relaxed));
                snap.addCounter(
                    prefix + ".fires",
                    site.fires.load(std::memory_order_relaxed));
            }
        });
}

FailPoints &
FailPoints::instance()
{
    static FailPoints registry;
    return registry;
}

FailPoints::Site *
FailPoints::find(const char *name) const
{
    for (Site &site : g_sites)
        if (!std::strcmp(site.name, name))
            return &site;
    return nullptr;
}

void
FailPoints::recomputeArmed()
{
    bool any = false;
    for (const Site &site : g_sites)
        any = any ||
              site.mode.load(std::memory_order_relaxed) !=
                  static_cast<int>(Mode::Off);
    armed_.store(any, std::memory_order_relaxed);
}

bool
FailPoints::configure(const std::string &spec, std::string *error)
{
    // Parse the whole spec into a staging list first so a bad clause
    // leaves the current configuration untouched.
    std::vector<Parsed> staged;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t sep = spec.find_first_of(";,", pos);
        std::string clause = spec.substr(
            pos, sep == std::string::npos ? std::string::npos : sep - pos);
        pos = sep == std::string::npos ? spec.size() : sep + 1;
        if (clause.empty())
            continue;
        size_t eq = clause.find('=');
        if (eq == std::string::npos) {
            if (error)
                *error = "expected site=mode, got '" + clause + "'";
            return false;
        }
        Parsed parsed;
        parsed.site = find(clause.substr(0, eq).c_str());
        if (!parsed.site) {
            if (error)
                *error =
                    "unknown failpoint site '" + clause.substr(0, eq) + "'";
            return false;
        }
        if (!parseMode(clause.substr(eq + 1), &parsed, error))
            return false;
        staged.push_back(parsed);
    }

    std::lock_guard<std::mutex> lock(g_mutex);
    for (Site &site : g_sites) {
        site.mode.store(static_cast<int>(Mode::Off),
                        std::memory_order_relaxed);
        site.hits.store(0, std::memory_order_relaxed);
        site.fires.store(0, std::memory_order_relaxed);
    }
    for (const Parsed &parsed : staged) {
        parsed.site->nth = parsed.nth;
        parsed.site->prob = parsed.prob;
        parsed.site->seed = parsed.seed;
        parsed.site->rng = Rng(parsed.seed ? parsed.seed : 0xFA11);
        parsed.site->mode.store(static_cast<int>(parsed.mode),
                                std::memory_order_relaxed);
    }
    recomputeArmed();
    return true;
}

void
FailPoints::clear()
{
    configure("");
}

std::vector<std::string>
FailPoints::siteNames() const
{
    std::vector<std::string> names;
    names.reserve(kNumSites);
    for (const Site &site : g_sites)
        names.push_back(site.name);
    return names;
}

uint64_t
FailPoints::hits(const std::string &site) const
{
    const Site *s = find(site.c_str());
    return s ? s->hits.load(std::memory_order_relaxed) : 0;
}

uint64_t
FailPoints::fires(const std::string &site) const
{
    const Site *s = find(site.c_str());
    return s ? s->fires.load(std::memory_order_relaxed) : 0;
}

bool
FailPoints::shouldFail(const char *site_name)
{
    Site *site = find(site_name);
    assert(site && "LPO_FAILPOINT used with an unregistered site");
    if (!site)
        return false;
    uint64_t hit =
        site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    switch (static_cast<Mode>(site->mode.load(std::memory_order_relaxed))) {
      case Mode::Off:
        break;
      case Mode::Always:
        fire = true;
        break;
      case Mode::Once:
        fire = hit == 1;
        break;
      case Mode::Nth:
        fire = hit == site->nth;
        break;
      case Mode::Prob: {
        std::lock_guard<std::mutex> lock(g_mutex);
        fire = site->rng.chance(site->prob);
        break;
      }
    }
    if (fire)
        site->fires.fetch_add(1, std::memory_order_relaxed);
    return fire;
}

} // namespace lpo
