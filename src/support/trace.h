/**
 * @file
 * Span tracer emitting Chrome trace-event JSON (chrome://tracing /
 * Perfetto "JSON Array Format" wrapped in {"traceEvents": [...]}).
 *
 * Spans are balanced B/E duration events on per-thread tracks: each
 * thread gets its own append-only event buffer (single writer, no
 * lock after the first span per thread), a small sequential tid, and
 * a thread_name metadata record. Args (function name, verdict,
 * proposer leg, SAT conflicts) are attached to the closing E event,
 * so they can be filled in as the span runs.
 *
 * Determinism: tracing only ever appends to side buffers and reads
 * the steady clock — it never feeds back into pipeline decisions, so
 * traced and untraced runs produce byte-identical modules (pinned by
 * test_telemetry). Buffers are rendered after the run quiesces
 * (writeTo() is not meant to race live spans).
 *
 * Cost: one relaxed atomic load per span when tracing is off at
 * runtime. Compiling with -DLPO_TRACE_DISABLED turns the macros into
 * an empty struct with inline no-op methods — zero code at the call
 * site.
 */
#ifndef LPO_SUPPORT_TRACE_H
#define LPO_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lpo::trace {

class Tracer
{
  public:
    /** The process-wide tracer (leaked; see MetricsRegistry). */
    static Tracer &instance();

    /** Drop any previous events and start recording. */
    void start();
    /** Stop recording; buffered events stay until the next start(). */
    void stop();
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Stop and render everything recorded since start() as a Chrome
     * trace-event JSON document. Call after worker threads quiesce.
     */
    std::string render();
    /** render() to @p path; false (with @p error) on I/O failure. */
    bool writeTo(const std::string &path, std::string *error = nullptr);

    struct Event
    {
        uint64_t ts_ns;
        char phase; ///< 'B' or 'E'
        const char *name;
        const char *category;
        /// key -> (string value, is_number); numbers print unquoted.
        std::vector<std::pair<const char *, std::pair<std::string, bool>>>
            args;
    };

    struct Buffer
    {
        uint32_t tid;
        std::vector<Event> events;
    };

    /** The calling thread's buffer for the current recording, or
     *  nullptr when tracing is off. */
    Buffer *localBuffer();

  private:
    Tracer() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::atomic<uint64_t> generation_{0};
    uint64_t epoch_ns_ = 0; ///< ts origin, set by start()
    uint32_t next_tid_ = 0;

    friend class TraceSpan;
};

/**
 * RAII duration span: records B at construction, E (with any args)
 * at destruction — so spans stay balanced even on the exception
 * paths. @p name and @p category must be string literals (stored by
 * pointer).
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *category);
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;
    ~TraceSpan();

    /** True when this span is actually being recorded. */
    bool active() const { return buffer_ != nullptr; }

    /** Close the span now (idempotent; the destructor then no-ops). */
    void end();

    void arg(const char *key, std::string value);
    void arg(const char *key, const char *value)
    {
        arg(key, std::string(value));
    }
    void arg(const char *key, uint64_t value);

  private:
    Tracer::Buffer *buffer_ = nullptr;
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    std::vector<std::pair<const char *, std::pair<std::string, bool>>>
        args_;
};

} // namespace lpo::trace

#ifndef LPO_TRACE_DISABLED

/** Declare a scoped trace span named @p var. */
#define LPO_TRACE_SPAN(var, name, category)                             \
    ::lpo::trace::TraceSpan var((name), (category))

#else // LPO_TRACE_DISABLED

namespace lpo::trace {
struct NullSpan
{
    bool active() const { return false; }
    void end() {}
    template <typename K, typename V> void arg(K, V) {}
};
} // namespace lpo::trace

#define LPO_TRACE_SPAN(var, name, category) ::lpo::trace::NullSpan var

#endif // LPO_TRACE_DISABLED

#endif // LPO_SUPPORT_TRACE_H
