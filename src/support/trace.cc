#include "support/trace.h"

#include <cstdio>
#include <fstream>

#include "core/json_writer.h"
#include "support/telemetry.h"

namespace lpo::trace {

Tracer &
Tracer::instance()
{
    static Tracer *tracer = new Tracer;
    return *tracer;
}

void
Tracer::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.clear();
    next_tid_ = 0;
    epoch_ns_ = telemetry::nowNanos();
    generation_.fetch_add(1, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::stop()
{
    enabled_.store(false, std::memory_order_relaxed);
}

Tracer::Buffer *
Tracer::localBuffer()
{
    if (!enabled())
        return nullptr;
    thread_local Buffer *cached = nullptr;
    thread_local uint64_t cached_generation = 0;
    uint64_t generation = generation_.load(std::memory_order_relaxed);
    if (cached != nullptr && cached_generation == generation)
        return cached;
    std::lock_guard<std::mutex> lock(mutex_);
    auto owned = std::make_unique<Buffer>();
    owned->tid = next_tid_++;
    cached = owned.get();
    cached_generation = generation_.load(std::memory_order_relaxed);
    buffers_.push_back(std::move(owned));
    return cached;
}

std::string
Tracer::render()
{
    stop();
    std::lock_guard<std::mutex> lock(mutex_);
    core::JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const auto &buffer : buffers_) {
        w.beginObject(core::JsonWriter::Layout::Inline);
        w.field("ph", "M");
        w.field("name", "thread_name");
        w.field("pid", 1);
        w.field("tid", buffer->tid);
        w.key("args").beginObject(core::JsonWriter::Layout::Inline);
        w.field("name", "thread-" + std::to_string(buffer->tid));
        w.endObject();
        w.endObject();
    }
    for (const auto &buffer : buffers_) {
        for (const Event &event : buffer->events) {
            w.beginObject(core::JsonWriter::Layout::Inline);
            w.field("name", event.name);
            w.field("cat", event.category);
            w.key("ph").value(std::string_view(&event.phase, 1));
            // Microseconds with nanosecond resolution kept.
            w.field("ts",
                    static_cast<double>(event.ts_ns - epoch_ns_) / 1000.0,
                    3);
            w.field("pid", 1);
            w.field("tid", buffer->tid);
            if (!event.args.empty()) {
                w.key("args").beginObject(
                    core::JsonWriter::Layout::Inline);
                for (const auto &[key, val] : event.args) {
                    if (val.second)
                        w.key(key).valueRaw(val.first);
                    else
                        w.field(key, val.first);
                }
                w.endObject();
            }
            w.endObject();
        }
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
    return w.str();
}

bool
Tracer::writeTo(const std::string &path, std::string *error)
{
    std::string json = render();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return false;
    }
    out << json << "\n";
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = "write failed for " + path;
        return false;
    }
    return true;
}

TraceSpan::TraceSpan(const char *name, const char *category)
    : name_(name), category_(category)
{
    buffer_ = Tracer::instance().localBuffer();
    if (buffer_ != nullptr)
        buffer_->events.push_back(
            {telemetry::nowNanos(), 'B', name_, category_, {}});
}

TraceSpan::~TraceSpan()
{
    end();
}

void
TraceSpan::end()
{
    if (buffer_ == nullptr)
        return;
    buffer_->events.push_back({telemetry::nowNanos(), 'E', name_,
                               category_, std::move(args_)});
    buffer_ = nullptr;
}

void
TraceSpan::arg(const char *key, std::string value)
{
    if (buffer_ == nullptr)
        return;
    args_.emplace_back(
        key, std::make_pair(std::move(value), /*is_number=*/false));
}

void
TraceSpan::arg(const char *key, uint64_t value)
{
    if (buffer_ == nullptr)
        return;
    args_.emplace_back(
        key,
        std::make_pair(std::to_string(value), /*is_number=*/true));
}

} // namespace lpo::trace
