/**
 * @file
 * Refinement checking (the Alive2 substitute).
 *
 * Given a source/target function pair, decides whether target refines
 * source: for every input on which the source is defined, the target
 * must be defined and produce the same value; the target may only
 * remove nondeterminism (poison), never add it.
 *
 * Two backends:
 *  - "sat": sound bit-blasting over the pure integer fragment
 *    (scalar + vector, no memory/FP), with counterexample extraction;
 *  - "exhaustive"/"sampled": bounded concrete testing through the
 *    interpreter for everything else (floating point, loads, geps),
 *    mirroring Alive2's own boundedness.
 *
 * Incorrect results carry an Alive2-style counterexample string that
 * the LPO loop feeds back to the LLM.
 */
#ifndef LPO_VERIFY_REFINE_H
#define LPO_VERIFY_REFINE_H

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "interp/interp.h"
#include "ir/function.h"

namespace lpo::verify {

class VerifyCache;

/**
 * Counters for the SAT work a verification run actually performed
 * (cache hits perform none). Callers hang one off RefineOptions; the
 * SAT backend and the incremental sessions add their solver deltas
 * after every solve. Totals depend on which queries missed the shared
 * cache, so in parallel runs they describe work done, not a
 * scheduling-independent quantity — verdicts stay byte-identical
 * regardless (see DESIGN.md, "Incremental SAT sessions").
 */
struct SatTelemetry
{
    uint64_t solves = 0;       ///< SAT solver runs (fresh + session)
    uint64_t decisions = 0;
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    // Incremental-session accounting.
    uint64_t sessions = 0;         ///< sessions that bit-blasted a source
    uint64_t session_reuses = 0;   ///< session checks after the first
    uint64_t learnts_carried = 0;  ///< learnt clauses alive entering a
                                   ///< reused session solve
    uint64_t session_vars_saved = 0;    ///< source-encoding vars not
                                        ///< re-created thanks to reuse
    uint64_t session_clauses_saved = 0; ///< ditto for clauses
    uint64_t session_fallbacks = 0;     ///< Sat/Unknown answers re-proved
                                        ///< fresh for byte-identical
                                        ///< counterexamples
};

/** The verifier's verdict for a candidate transformation. */
enum class Verdict {
    Correct,      ///< target refines source (within backend bounds)
    Incorrect,    ///< counterexample found
    Unsupported,  ///< function outside every backend's fragment
    BadSignature, ///< src/tgt signatures differ (fixable LLM mistake)
    Timeout,      ///< solver budget exhausted (no escalation ladder)
    Degraded,     ///< every SAT tier exhausted; the candidate merely
                  ///< survived bounded concrete testing — explicitly
                  ///< NOT a proof, so it can never patch
};

/**
 * Counters for the budget-escalation ladder and its fallbacks (see
 * DESIGN.md, "Fault containment and degradation ladder"). Like
 * SatTelemetry these describe work actually performed — hang one off
 * RefineOptions per worker and fold in sequence order. The
 * contained_exceptions field is filled by the core layer's per-case
 * containment, not by refine.cc.
 */
struct DegradationStats
{
    uint64_t escalations = 0;        ///< tier bumps after an exhausted
                                     ///< solve (learnt clauses kept)
    uint64_t concrete_fallbacks = 0; ///< SAT queries degraded to the
                                     ///< bounded concrete backend
    uint64_t exhaustive_rescues = 0; ///< fallbacks that still concluded
                                     ///< soundly (full input-space
                                     ///< enumeration)
    uint64_t degraded = 0;           ///< queries ending in Degraded
    uint64_t contained_exceptions = 0; ///< case-level exceptions caught
                                       ///< and converted to failures
};

/** A concrete input violating refinement. */
struct Counterexample
{
    interp::ExecutionInput input;
    std::string source_value;
    std::string target_value;
};

/** Full result of a refinement query. */
struct RefinementResult
{
    Verdict verdict = Verdict::Unsupported;
    std::string backend;        ///< "sat", "exhaustive", or "sampled"
    std::string detail;         ///< human-readable explanation
    std::optional<Counterexample> counterexample;

    bool correct() const { return verdict == Verdict::Correct; }

    /** Alive2-style feedback message for the LLM loop. */
    std::string feedbackMessage(const ir::Function &src) const;
};

/** Tunables for the checker. */
struct RefineOptions
{
    /** SAT conflict budget before reporting Timeout (0 = unlimited).
     *  Ignored when budget_tiers is non-empty. */
    uint64_t conflict_budget = 2'000'000;
    /**
     * Budget-escalation ladder. Empty (the default) preserves the
     * single-shot behavior: one solve under conflict_budget, Timeout
     * on exhaustion. Non-empty, each SAT query solves under
     * budget_tiers[0] additional conflicts, then — on exhaustion —
     * re-solves the same solver under the next tier (learnt clauses
     * and phase saving carry over, so escalation resumes rather than
     * restarts the proof). A query that exhausts the final tier never
     * reports Timeout: it degrades to the bounded concrete backend,
     * whose outcome is either sound (counterexample, or exhaustive
     * enumeration) or Verdict::Degraded. Every step is counted in
     * DegradationStats.
     */
    std::vector<uint64_t> budget_tiers;
    /** Max total input bits for exhaustive concrete testing. */
    unsigned exhaustive_bit_limit = 16;
    /** Number of random inputs for the sampled backend. */
    unsigned sample_count = 20'000;
    /** Byte size of the object backing each pointer argument. */
    unsigned memory_object_bytes = 64;
    /** Seed for the sampled backend. */
    uint64_t seed = 0xA11CE;
    /**
     * Threads for the concrete-testing sweep (0 = hardware
     * concurrency, 1 = serial). Results are bit-identical for every
     * thread count: inputs are derived from their index alone and the
     * lowest violating input index always wins (see DESIGN.md,
     * "Deterministic parallelism").
     */
    unsigned num_threads = 0;
    /**
     * Structural hashing in the SAT circuit builder. A benchmark-only
     * knob for measuring the pre-hashing encoding cost; production
     * callers leave it on.
     */
    bool structural_hashing = true;
    /**
     * Optional cross-query result cache (not owned; may be shared by
     * concurrent callers). Results are bit-identical with and without
     * it — hits re-derive their counterexample instead of re-proving.
     */
    VerifyCache *cache = nullptr;
    /**
     * Let RefinementSession keep one incremental solver per source
     * (assumption-based solving with learnt-clause reuse). Verdicts
     * and counterexamples are byte-identical with the session on or
     * off; off forces the fresh-solver path everywhere.
     */
    bool incremental_sat = true;
    /**
     * Optional cooperative-cancellation flag (not owned). When it
     * becomes true, in-flight SAT solves return at the next conflict
     * boundary and the query reports Timeout; the scheduler's
     * TaskScope::cancelFlag() plugs in here so a cancelled scope
     * drains instead of finishing multi-million-conflict proofs.
     */
    const std::atomic<bool> *interrupt = nullptr;
    /** Optional SAT work counters (not owned, not thread-safe: give
     *  each worker its own and fold). */
    SatTelemetry *sat_telemetry = nullptr;
    /** Optional escalation/degradation counters (same ownership and
     *  threading contract as sat_telemetry). */
    DegradationStats *degradation = nullptr;
};

/** Check whether @p tgt refines @p src. */
RefinementResult checkRefinement(const ir::Function &src,
                                 const ir::Function &tgt,
                                 const RefineOptions &options = {});

/**
 * An incremental verification session over one source function.
 *
 * When a case presents a stream of candidate targets (LLM feedback
 * retries, hybrid fallback, e-graph top-k), the one-shot path
 * re-bit-blasts the same source and cold-starts a fresh SatSolver for
 * every candidate. A session instead encodes the shared arguments and
 * the source once into a persistent solver, then, per candidate,
 * encodes only the candidate's cone (through the same hash-consed
 * CircuitBuilder unique table, so subcircuits shared with the source
 * or with earlier candidates cost nothing), guards the refinement
 * miter behind a fresh activation literal, solves under that single
 * assumption, and releases the literal afterwards. Candidate N+1
 * therefore inherits every variable, clause, and selector-free learnt
 * clause from candidates 1..N.
 *
 * Determinism contract: check() returns byte-identical verdicts and
 * counterexamples to checkRefinement on the same pair. Unsat answers
 * are state-independent (learnt clauses are consequences of the
 * formula, so they can never flip satisfiability); Sat and
 * budget-exhausted answers are re-proved through the one-shot path so
 * the counterexample model — which *does* depend on solver state —
 * comes from the exact code the fresh path runs. Queries outside the
 * SAT fragment fall through to the one-shot backends unchanged, as
 * does everything when options.incremental_sat is false. One
 * deliberate asymmetry at the conflict-budget boundary: a proof the
 * fresh path would abandon as Timeout can complete as Correct under a
 * warm session (carried learnts shorten it) — the session is strictly
 * more accurate there, never less (see DESIGN.md, "Incremental SAT
 * sessions").
 */
class RefinementSession
{
  public:
    /** @p src must outlive the session; @p options is copied. */
    RefinementSession(const ir::Function &src,
                      const RefineOptions &options);
    ~RefinementSession();

    RefinementSession(const RefinementSession &) = delete;
    RefinementSession &operator=(const RefinementSession &) = delete;

    /** Check one candidate; equivalent to checkRefinement(src, tgt). */
    RefinementResult check(const ir::Function &tgt);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * True if checkRefinement would decide (src, tgt) with the SAT
 * backend (both in the encodable fragment, input space small enough
 * to bit-blast). Exposed so the throughput benchmark measures exactly
 * the queries production dispatches to SAT.
 */
bool usesSatBackend(const ir::Function &src, const ir::Function &tgt);

/**
 * Interesting scalar input patterns tried for every integer argument
 * of the sampled backend (exposed for testing): all values fit
 * @p width and the list is duplicate-free, including the degenerate
 * width-1 case.
 */
std::vector<uint64_t> specialPatterns(unsigned width);

} // namespace lpo::verify

#endif // LPO_VERIFY_REFINE_H
