/**
 * @file
 * Refinement checking (the Alive2 substitute).
 *
 * Given a source/target function pair, decides whether target refines
 * source: for every input on which the source is defined, the target
 * must be defined and produce the same value; the target may only
 * remove nondeterminism (poison), never add it.
 *
 * Two backends:
 *  - "sat": sound bit-blasting over the pure integer fragment
 *    (scalar + vector, no memory/FP), with counterexample extraction;
 *  - "exhaustive"/"sampled": bounded concrete testing through the
 *    interpreter for everything else (floating point, loads, geps),
 *    mirroring Alive2's own boundedness.
 *
 * Incorrect results carry an Alive2-style counterexample string that
 * the LPO loop feeds back to the LLM.
 */
#ifndef LPO_VERIFY_REFINE_H
#define LPO_VERIFY_REFINE_H

#include <optional>
#include <string>

#include "interp/interp.h"
#include "ir/function.h"

namespace lpo::verify {

class VerifyCache;

/** The verifier's verdict for a candidate transformation. */
enum class Verdict {
    Correct,      ///< target refines source (within backend bounds)
    Incorrect,    ///< counterexample found
    Unsupported,  ///< function outside every backend's fragment
    BadSignature, ///< src/tgt signatures differ (fixable LLM mistake)
    Timeout,      ///< solver budget exhausted
};

/** A concrete input violating refinement. */
struct Counterexample
{
    interp::ExecutionInput input;
    std::string source_value;
    std::string target_value;
};

/** Full result of a refinement query. */
struct RefinementResult
{
    Verdict verdict = Verdict::Unsupported;
    std::string backend;        ///< "sat", "exhaustive", or "sampled"
    std::string detail;         ///< human-readable explanation
    std::optional<Counterexample> counterexample;

    bool correct() const { return verdict == Verdict::Correct; }

    /** Alive2-style feedback message for the LLM loop. */
    std::string feedbackMessage(const ir::Function &src) const;
};

/** Tunables for the checker. */
struct RefineOptions
{
    /** SAT conflict budget before reporting Timeout (0 = unlimited). */
    uint64_t conflict_budget = 2'000'000;
    /** Max total input bits for exhaustive concrete testing. */
    unsigned exhaustive_bit_limit = 16;
    /** Number of random inputs for the sampled backend. */
    unsigned sample_count = 20'000;
    /** Byte size of the object backing each pointer argument. */
    unsigned memory_object_bytes = 64;
    /** Seed for the sampled backend. */
    uint64_t seed = 0xA11CE;
    /**
     * Threads for the concrete-testing sweep (0 = hardware
     * concurrency, 1 = serial). Results are bit-identical for every
     * thread count: inputs are derived from their index alone and the
     * lowest violating input index always wins (see DESIGN.md,
     * "Deterministic parallelism").
     */
    unsigned num_threads = 0;
    /**
     * Structural hashing in the SAT circuit builder. A benchmark-only
     * knob for measuring the pre-hashing encoding cost; production
     * callers leave it on.
     */
    bool structural_hashing = true;
    /**
     * Optional cross-query result cache (not owned; may be shared by
     * concurrent callers). Results are bit-identical with and without
     * it — hits re-derive their counterexample instead of re-proving.
     */
    VerifyCache *cache = nullptr;
};

/** Check whether @p tgt refines @p src. */
RefinementResult checkRefinement(const ir::Function &src,
                                 const ir::Function &tgt,
                                 const RefineOptions &options = {});

/**
 * True if checkRefinement would decide (src, tgt) with the SAT
 * backend (both in the encodable fragment, input space small enough
 * to bit-blast). Exposed so the throughput benchmark measures exactly
 * the queries production dispatches to SAT.
 */
bool usesSatBackend(const ir::Function &src, const ir::Function &tgt);

/**
 * Interesting scalar input patterns tried for every integer argument
 * of the sampled backend (exposed for testing): all values fit
 * @p width and the list is duplicate-free, including the degenerate
 * width-1 case.
 */
std::vector<uint64_t> specialPatterns(unsigned width);

} // namespace lpo::verify

#endif // LPO_VERIFY_REFINE_H
