/**
 * @file
 * SAT encoding of IR functions for refinement checking.
 *
 * The encoder translates the pure integer fragment (scalar and vector,
 * no memory, no floating point, no control flow) into a circuit: each
 * SSA value becomes, per lane, a BitVec plus a poison literal, and the
 * function as a whole gets an undefined-behaviour literal. This is the
 * same fragment Souper reasons about; everything outside it falls back
 * to the bounded concrete backend in refine.cc.
 */
#ifndef LPO_VERIFY_ENCODER_H
#define LPO_VERIFY_ENCODER_H

#include <optional>
#include <vector>

#include "ir/function.h"
#include "smt/bitblast.h"

namespace lpo::verify {

/** One encoded SSA lane: value bits + poison flag. */
struct LaneEnc
{
    smt::BitVec bits;
    smt::CLit poison = 0;
};

/** An encoded value: one LaneEnc per vector lane (1 for scalars). */
using ValueEnc = std::vector<LaneEnc>;

/** The encoding of a whole function. */
struct EncodedFunction
{
    std::vector<ValueEnc> args;
    ValueEnc ret;
    smt::CLit ub = 0; ///< true iff execution hits immediate UB
};

/** True if every instruction of @p fn is in the encodable fragment. */
bool canEncode(const ir::Function &fn);

/**
 * Encode @p fn.
 *
 * @param shared_args when non-null, use these as the argument values
 *        (so source and target range over identical inputs); otherwise
 *        fresh non-poison variables are created.
 * @returns nullopt if the function leaves the encodable fragment.
 */
std::optional<EncodedFunction>
encodeFunction(smt::CircuitBuilder &builder, const ir::Function &fn,
               const std::vector<ValueEnc> *shared_args = nullptr);

/**
 * Fresh, non-poison argument encodings for @p fn's signature — the
 * shared inputs both sides of a refinement query range over. Exposed
 * separately from encodeRefinementQuery so an incremental
 * RefinementSession can create them once and encode many candidate
 * targets against them.
 */
std::vector<ValueEnc> encodeSharedArgs(smt::CircuitBuilder &builder,
                                       const ir::Function &fn);

/**
 * The refinement-violation literal over two encodings that share
 * their arguments:
 *
 *   !src.ub && (tgt.ub || exists lane:
 *               !src.poison[l] && (tgt.poison[l] || bits differ))
 *
 * encodeRefinementQuery asserts it outright; a RefinementSession
 * guards it behind an activation literal instead so the candidate can
 * be retracted.
 */
smt::CLit refinementViolation(smt::CircuitBuilder &builder,
                              const EncodedFunction &src_enc,
                              const EncodedFunction &tgt_enc);

/**
 * Build the complete refinement-violation query for (src, tgt) into
 * @p builder: fresh shared non-poison arguments, both encodings over
 * them, and the asserted miter
 *
 *   !src.ub && (tgt.ub || exists lane:
 *               !src.poison[l] && (tgt.poison[l] || bits differ))
 *
 * so Unsat means tgt refines src. This is the exact query the SAT
 * backend solves; the throughput benchmark reuses it to measure query
 * sizes.
 *
 * @param shared_args_out when non-null, receives the argument
 *        encoding (for counterexample extraction from the model).
 * @returns false if either function leaves the encodable fragment.
 */
bool encodeRefinementQuery(smt::CircuitBuilder &builder,
                           const ir::Function &src,
                           const ir::Function &tgt,
                           std::vector<ValueEnc> *shared_args_out = nullptr);

} // namespace lpo::verify

#endif // LPO_VERIFY_ENCODER_H
