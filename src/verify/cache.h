/**
 * @file
 * Cross-query verification result cache.
 *
 * The rewrite library and the extraction loop repeatedly produce
 * structurally identical (src, tgt) pairs — the same candidate
 * proposed for many sites, the same site re-verified across rounds —
 * and re-proving each pair from scratch dominates the SAT path's
 * cost. This cache memoizes checkRefinement verdicts keyed on the
 * canonical alpha-renamed print of the pair plus every option that
 * can affect the verdict (see refine.cc's cacheKey), so renamed
 * copies of a proved pair hit.
 *
 * The map is sharded for concurrency (PipelineConfig::num_threads
 * workers share one cache) and is compute-once per key: the first
 * thread to ask for a key computes it while later askers block on the
 * entry, which keeps hit/miss counts — and therefore the stats the
 * pipeline reports — bit-identical at any thread count (exactly one
 * miss per distinct key, ever).
 *
 * Counterexample *inputs* are deliberately not stored: they are bulky
 * (sampled inputs carry whole memory objects) and fully re-derivable
 * — the concrete backends re-decode the violating sweep index, the
 * SAT backend re-builds the input from the recorded model words — so
 * a hit re-renders the counterexample against the caller's own
 * functions, which also keeps argument names correct when the hit
 * comes from an alpha-renamed variant of the cached pair.
 */
#ifndef LPO_VERIFY_CACHE_H
#define LPO_VERIFY_CACHE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "verify/refine.h"

namespace lpo::verify {

/** A cached verdict: RefinementResult sans counterexample input. */
struct CachedVerdict
{
    Verdict verdict = Verdict::Unsupported;
    std::string backend;
    /** Human-readable explanation (counterexample-free results). */
    std::string detail;

    /** How to re-derive the counterexample input on a hit. */
    enum class Replay {
        None,         ///< no counterexample (Correct/Timeout/...)
        TestingIndex, ///< re-decode sweep index @ref index
        SatArgs,      ///< rebuild args from @ref arg_lane_words
    };
    Replay replay = Replay::None;
    uint64_t index = 0;                   ///< TestingIndex payload
    std::vector<uint64_t> arg_lane_words; ///< SatArgs payload, lane-major
};

/** Sharded, compute-once map from query key to CachedVerdict. */
class VerifyCache
{
  public:
    /**
     * @param shard_count lock striping for concurrent callers.
     * @param max_entries soft bound on stored keys (0 = unbounded).
     *        Once reached, new keys are computed WITHOUT being
     *        inserted (existing keys keep hitting) — verdicts are
     *        never affected, but which keys made it in before the cap
     *        depends on arrival order, so a capped cache's hit/miss
     *        split is only scheduling-independent below the cap.
     */
    explicit VerifyCache(unsigned shard_count = 16,
                         size_t max_entries = 0);

    VerifyCache(const VerifyCache &) = delete;
    VerifyCache &operator=(const VerifyCache &) = delete;

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;

        double hitRate() const
        {
            uint64_t total = hits + misses;
            return total ? static_cast<double>(hits) / total : 0.0;
        }
    };

    /** A computed result plus its cacheable form. */
    struct Computed
    {
        RefinementResult result;
        CachedVerdict cached;
    };

    /**
     * Return the result for @p key, computing it at most once.
     *
     * On the first request for a key, @p compute runs (outside the
     * shard lock) and its full result — counterexample included — is
     * returned while the stripped CachedVerdict is published; later
     * requests block until the value is ready and return
     * @p rederive(cached). If the owner's compute throws, the entry
     * is abandoned (marked failed, erased from the shard) and any
     * blocked waiter falls back to computing uncached, so a failure
     * can never deadlock later queries. @p compute must not re-enter
     * the cache.
     */
    RefinementResult
    lookupOrCompute(const std::string &key,
                    const std::function<Computed()> &compute,
                    const std::function<RefinementResult(
                        const CachedVerdict &)> &rederive);

    Stats stats() const
    {
        return Stats{hits_.load(std::memory_order_relaxed),
                     misses_.load(std::memory_order_relaxed)};
    }

    /** Number of cached keys (counts in-flight computations too). */
    size_t size() const;

    /** Drop all entries and reset the counters. */
    void clear();

  private:
    struct Entry
    {
        std::mutex mutex;
        std::condition_variable ready_cv;
        bool ready = false;
        bool failed = false; ///< owner's compute threw; do not reuse
        CachedVerdict value;
    };
    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<std::string, std::shared_ptr<Entry>> map;
    };

    Shard &shardOf(const std::string &key);

    unsigned shard_count_;
    size_t max_entries_;
    std::unique_ptr<Shard[]> shards_;
    std::atomic<size_t> entry_count_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace lpo::verify

#endif // LPO_VERIFY_CACHE_H
